// Ablation G (extension; paper ref [13] iNAS): intermittent-aware
// architecture search. Searches the HAR architecture family (channel
// widths of the three convolutions and implicit FC input) for the
// accuracy / accelerator-output Pareto front — applying iPrune's
// criterion at design time instead of pruning time — and places the
// hand-built HAR architecture (and its iPrune-pruned version) on the
// same axes.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_search.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace {

using namespace iprune;

/// HAR family: widths = {c1, c2, c3} output channels.
nn::Graph build_har_family(const std::vector<std::size_t>& widths,
                           util::Rng& rng) {
  nn::Graph g({3, 1, 128});
  nn::NodeId x = g.input();
  const std::size_t kernel_w[3] = {5, 5, 3};
  std::size_t channels = 3;
  for (std::size_t i = 0; i < 3; ++i) {
    x = g.add(std::make_unique<nn::Conv2d>(
                  "conv" + std::to_string(i + 1),
                  nn::Conv2dSpec{.in_channels = channels,
                                 .out_channels = widths.at(i),
                                 .kernel_h = 1, .kernel_w = kernel_w[i],
                                 .pad_h = 0, .pad_w = kernel_w[i] / 2},
                  rng),
              {x});
    x = g.add(std::make_unique<nn::Relu>("relu" + std::to_string(i + 1)),
              {x});
    x = g.add(std::make_unique<nn::MaxPool2d>("pool" + std::to_string(i + 1),
                                              nn::PoolSpec{1, 2, 2}),
              {x});
    channels = widths.at(i);
  }
  x = g.add(std::make_unique<nn::Flatten>("flatten"), {x});
  x = g.add(std::make_unique<nn::Dense>("fc", channels * 16, 6, rng), {x});
  g.set_output(x);
  return g;
}

}  // namespace

int main() {
  std::puts("== Ablation G: intermittent-aware architecture search "
            "(HAR family) ==\n");

  apps::Workload w = apps::make_workload(apps::WorkloadId::kHar);

  core::ArchSearchConfig cfg;
  cfg.min_widths = {4, 8, 12};
  cfg.max_widths = {24, 48, 64};
  cfg.evaluations = 14;
  cfg.initial_random = 5;
  cfg.proxy_training.epochs = 6;
  cfg.proxy_training.sgd.learning_rate = 0.05f;
  cfg.proxy_training.sgd.momentum = 0.9f;
  cfg.proxy_training.lr_decay = 0.85f;
  cfg.engine = w.prune.engine;
  cfg.memory = w.prune.backend.device.memory;

  std::printf("searching %zu candidates (proxy: %zu epochs on %zu "
              "samples)...\n\n",
              cfg.evaluations, cfg.proxy_training.epochs, w.train.size());
  const core::ArchSearchResult result = core::search_architectures(
      &build_har_family, cfg, w.train, w.val);

  util::Table table({"Candidate (c1,c2,c3)", "Accuracy", "Params",
                     "Acc. Outputs"});
  for (const core::ArchCandidate& c : result.pareto_front) {
    table.row()
        .cell("(" + std::to_string(c.widths[0]) + "," +
              std::to_string(c.widths[1]) + "," +
              std::to_string(c.widths[2]) + ")")
        .cell(util::Table::format(c.accuracy * 100.0, 1) + "%")
        .cell(c.parameters)
        .cell(c.acc_outputs);
  }
  table.print();

  // Reference points: the hand-built HAR (16,32,48) and its iPrune-pruned
  // deployment from the cached Table III flow.
  apps::PreparedModel hand =
      apps::prepare_model(apps::WorkloadId::kHar, apps::Framework::kUnpruned);
  apps::PreparedModel pruned =
      apps::prepare_model(apps::WorkloadId::kHar, apps::Framework::kIPrune);
  auto outputs_of = [&](apps::PreparedModel& pm) {
    const auto layers = engine::prunable_layers(
        pm.workload.graph, pm.workload.prune.engine,
        pm.workload.prune.backend.device.memory);
    std::size_t total = 0;
    for (const auto& layer : layers) {
      total += layer.acc_outputs();
    }
    return total;
  };
  std::printf(
      "\nreference: hand-built HAR (16,32,48): %.1f%% @ %zu outputs | "
      "iPrune-pruned: %.1f%% @ %zu outputs\n",
      hand.val_accuracy * 100.0, outputs_of(hand),
      pruned.val_accuracy * 100.0, outputs_of(pruned));
  std::printf("evaluated %zu candidates (%zu infeasible)\n",
              result.evaluated, result.infeasible);
  std::puts(
      "\nReading: the search finds architectures on the accuracy vs "
      "accelerator-output frontier at design time; pruning a hand-built "
      "model (iPrune) and searching the family are complementary routes "
      "to the same objective — the paper's ref [13] explores the latter.");
  return 0;
}
