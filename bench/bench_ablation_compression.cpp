// Ablation E (paper §V future work): how do other compression techniques
// behave through the intermittent lens? Applies low-rank decomposition
// and weight sharing to the trained CKS model's big FC layer and compares
// against iPrune's block pruning on the axes that matter for
// intermittency: accelerator outputs (≈ NVM write traffic), model size,
// and accuracy.
//
// Key qualitative point: weight sharing shrinks the model but NOT the
// accelerator outputs; decomposition shrinks both when the rank is small;
// iPrune targets accelerator outputs directly.

#include <cstdio>

#include "bench_common.hpp"
#include "core/compress.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation E: other compression techniques on CKS fc1 "
            "(3150 -> 16) ==\n");

  util::Table table({"Technique", "Accuracy", "fc1 weights (eff.)",
                     "fc1 bytes (eff.)", "fc1 acc. outputs"});

  // --- baseline --------------------------------------------------------
  {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kCks, apps::Framework::kUnpruned);
    auto layers = engine::prunable_layers(
        pm.workload.graph, pm.workload.prune.engine,
        pm.workload.prune.backend.device.memory);
    const auto& fc1 = layers[2];  // conv1, conv2, fc1, fc2, fc3
    table.row()
        .cell("unpruned")
        .cell(util::Table::format(pm.val_accuracy * 100.0, 1) + "%")
        .cell(fc1.alive_weights())
        .cell(fc1.alive_weights() * 2)
        .cell(fc1.acc_outputs());
  }

  // --- iPrune (reference point, from the cached Table III flow) --------
  {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kCks, apps::Framework::kIPrune);
    auto layers = engine::prunable_layers(
        pm.workload.graph, pm.workload.prune.engine,
        pm.workload.prune.backend.device.memory);
    const auto& fc1 = layers[2];
    table.row()
        .cell("iPrune (whole model)")
        .cell(util::Table::format(pm.val_accuracy * 100.0, 1) + "%")
        .cell(fc1.alive_weights())
        .cell(fc1.alive_weights() * 2)
        .cell(fc1.acc_outputs());
  }

  // --- low-rank decomposition of fc1 ------------------------------------
  for (const std::size_t rank : {4u, 8u, 12u}) {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kCks, apps::Framework::kUnpruned);
    apps::Workload& w = pm.workload;
    auto& fc1 = dynamic_cast<nn::Dense&>(w.graph.layer(6));
    const core::Decomposition d =
        core::decompose_low_rank(fc1.weight(), rank);
    // The chained pair computes exactly U*V, so evaluating the
    // reconstructed matrix measures the decomposed model's accuracy.
    fc1.weight() = core::reconstruct(d);
    nn::Trainer trainer(w.graph);
    const double acc =
        trainer.evaluate(w.val.inputs, w.val.labels).accuracy;
    const core::DecompositionCost cost = core::decomposition_cost(
        fc1.out_features(), fc1.in_features(), rank, w.prune.engine,
        w.prune.backend.device.memory);
    table.row()
        .cell("low-rank r=" + std::to_string(rank) + " (err " +
              util::Table::format(d.relative_error * 100.0, 1) + "%)")
        .cell(util::Table::format(acc * 100.0, 1) + "%")
        .cell(cost.decomposed_weights)
        .cell(cost.decomposed_weights * 2)
        .cell(cost.decomposed_acc_outputs);
  }

  // --- weight sharing on fc1 --------------------------------------------
  for (const std::size_t clusters : {16u, 64u}) {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kCks, apps::Framework::kUnpruned);
    apps::Workload& w = pm.workload;
    auto& fc1 = dynamic_cast<nn::Dense&>(w.graph.layer(6));
    util::Rng rng(99);
    const core::WeightSharingResult shared =
        core::share_weights(fc1.weight(), clusters, rng);
    nn::Trainer trainer(w.graph);
    const double acc =
        trainer.evaluate(w.val.inputs, w.val.labels).accuracy;
    auto layers = engine::prunable_layers(w.graph, w.prune.engine,
                                          w.prune.backend.device.memory);
    table.row()
        .cell("weight sharing, " + std::to_string(clusters) + " clusters")
        .cell(util::Table::format(acc * 100.0, 1) + "%")
        .cell(layers[2].alive_weights())
        .cell(shared.shared_bytes)
        .cell(layers[2].acc_outputs());
  }

  table.print();
  std::puts(
      "\nReading: weight sharing compresses bytes but leaves the "
      "accelerator-output column (the intermittent-latency driver) "
      "unchanged; low-rank decomposition reduces both, complementing "
      "iPrune — the adaptation the paper's conclusion calls for.");
  return 0;
}
