// Ablation A (DESIGN.md): what does the *criterion / allocation policy*
// buy? Runs the identical iterative prune-retrain loop on HAR with four
// allocators — iPrune (accelerator outputs, SA), ePrune (energy),
// uniform, and random — and compares the resulting accelerator outputs,
// intermittent latency, and accuracy.

#include <cstdio>
#include <memory>

#include "baselines/eprune.hpp"
#include "bench_common.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation A: pruning criterion / allocation policy (HAR) ==");
  std::puts("(same loop, same epsilon; only the allocator differs)\n");

  struct Case {
    const char* label;
    std::unique_ptr<core::RatioAllocator> (*make)();
  };
  const Case cases[] = {
      {"iPrune (acc-output SA)",
       [] { return std::unique_ptr<core::RatioAllocator>(
                std::make_unique<core::IPruneAllocator>()); }},
      {"wPrune (NVM-write-byte SA)",
       [] {
         core::AnnealingConfig cfg;
         cfg.objective = core::AnnealingConfig::Objective::kNvmWriteBytes;
         return std::unique_ptr<core::RatioAllocator>(
             std::make_unique<core::IPruneAllocator>(cfg));
       }},
      {"ePrune (energy)",
       [] { return std::unique_ptr<core::RatioAllocator>(
                std::make_unique<baselines::EPruneAllocator>()); }},
      {"uniform",
       [] { return std::unique_ptr<core::RatioAllocator>(
                std::make_unique<baselines::UniformAllocator>()); }},
      {"random",
       [] { return std::unique_ptr<core::RatioAllocator>(
                std::make_unique<baselines::RandomAllocator>()); }},
  };

  util::Table table({"Allocator", "Accuracy", "Alive weights",
                     "Acc. Outputs", "Latency @ weak (s)", "Iterations"});

  for (const Case& c : cases) {
    apps::PreparedModel pm =
        apps::prepare_model(apps::WorkloadId::kHar,
                            apps::Framework::kUnpruned);
    apps::Workload& w = pm.workload;
    core::PruneConfig cfg = w.prune;
    cfg.max_iterations = 6;  // bounded ablation budget
    core::IterativePruner pruner(cfg, c.make());
    const core::PruneOutcome outcome =
        pruner.run(w.graph, w.train.inputs, w.train.labels, w.val.inputs,
                   w.val.labels);
    const auto m = bench::measure_inference(
        pm, bench::PowerLevel::kWeak, w.prune.engine, /*count=*/3);
    table.row()
        .cell(c.label)
        .cell(util::Table::format(outcome.final_accuracy * 100.0, 1) + "%")
        .cell(outcome.final_alive_weights)
        .cell(outcome.final_acc_outputs)
        .cell(util::Table::format(m.latency_s, 3))
        .cell(outcome.history.size());
  }
  table.print();
  std::puts(
      "\nExpected shape: the acc-output criterion yields the fewest "
      "accelerator outputs and the lowest intermittent latency at "
      "comparable accuracy; random is the floor.");
  return 0;
}
