// Ablation B (paper guideline 3): pruning granularity. Prunes the trained
// HAR model one-shot at a fixed weight ratio with block / fine-grained /
// channel granularity, retrains, and measures what actually happens to
// accelerator outputs and intermittent latency. Fine-grained pruning
// removes as many *weights* but cannot eliminate accelerator operations,
// so its latency barely moves — exactly the paper's argument for
// block-granularity pruning.

#include <cstdio>

#include "baselines/oneshot.hpp"
#include "bench_common.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation B: pruning granularity (HAR, one-shot 50% + "
            "retrain) ==\n");

  struct Case {
    const char* label;
    core::Granularity granularity;
  };
  const Case cases[] = {
      {"block (one accelerator op)", core::Granularity::kBlock},
      {"fine-grained (weights)", core::Granularity::kFine},
      {"channel (whole rows)", core::Granularity::kChannel},
  };
  constexpr double kRatio = 0.5;

  util::Table table({"Granularity", "Accuracy", "Alive weights",
                     "Acc. Outputs", "Latency @ strong (s)",
                     "NVM written/inf"});

  for (const Case& c : cases) {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kHar, apps::Framework::kUnpruned);
    apps::Workload& w = pm.workload;
    auto layers = engine::prunable_layers(w.graph, w.prune.engine,
                                          w.prune.backend.device.memory);
    nn::TrainConfig retrain = w.prune.finetune;
    retrain.epochs = 4;
    const auto result = baselines::one_shot_prune(
        w.graph, layers, kRatio, c.granularity, w.train.inputs,
        w.train.labels, w.val.inputs, w.val.labels, retrain);

    const auto m = bench::measure_inference(
        pm, bench::PowerLevel::kStrong, w.prune.engine, /*count=*/3);
    table.row()
        .cell(c.label)
        .cell(util::Table::format(result.accuracy_after_retrain * 100.0, 1) +
              "%")
        .cell(result.alive_weights)
        .cell(m.acc_outputs)
        .cell(util::Table::format(m.latency_s, 3))
        .cell(bench::kb(static_cast<std::size_t>(m.nvm_bytes_written)));
  }
  table.print();
  std::puts(
      "\nExpected shape: all three remove ~the same weight count, but only "
      "block (and the much more damaging channel) granularity reduces "
      "accelerator outputs and intermittent latency; fine-grained leaves "
      "the NVM write traffic almost untouched.");
  return 0;
}
