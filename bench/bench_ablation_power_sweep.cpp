// Ablation D (DESIGN.md): latency and power-failure count versus harvest
// power, for the unpruned and iPrune HAR models. Extends Figure 5's three
// discrete power levels into a curve and shows the speedup holding across
// the whole range (the paper's "improvement remains consistent under
// various power strengths").

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation D: harvest-power sweep (HAR) ==\n");

  apps::PreparedModel unpruned = apps::prepare_model(
      apps::WorkloadId::kHar, apps::Framework::kUnpruned);
  apps::PreparedModel ipruned = apps::prepare_model(
      apps::WorkloadId::kHar, apps::Framework::kIPrune);

  util::Table table({"Harvest power (mW)", "Unpruned latency (s)",
                     "iPrune latency (s)", "Speedup", "Unpruned failures",
                     "iPrune failures"});
  util::CsvWriter csv({"power_mw", "unpruned_s", "iprune_s", "speedup"});

  auto measure = [&](apps::PreparedModel& pm, double watts) {
    device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                             std::make_unique<power::ConstantSupply>(watts));
    std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
    const nn::Tensor calib =
        nn::gather_rows(pm.workload.val.inputs, calib_idx);
    engine::DeployedModel model(pm.workload.graph,
                                pm.workload.prune.engine, dev, calib);
    engine::IntermittentEngine eng(model, dev);
    engine::InferenceStats total{};
    constexpr std::size_t kRuns = 3;
    for (std::size_t n = 0; n < kRuns; ++n) {
      const auto r = eng.run(bench::sample_of(pm.workload.val, n));
      total.latency_s += r.stats.latency_s;
      total.power_failures += r.stats.power_failures;
    }
    total.latency_s /= kRuns;
    total.power_failures /= kRuns;
    return total;
  };

  // All (power, model) measurements are independent — each task builds its
  // own device and deployment, and deployment only reads the shared graph —
  // so they fan out over the pool; results are gathered by index so the
  // table matches the serial run exactly.
  const std::vector<double> powers = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  struct Point {
    double mw = 0.0;
    apps::PreparedModel* pm = nullptr;
  };
  std::vector<Point> points;
  for (const double mw : powers) {
    points.push_back({mw, &unpruned});
    points.push_back({mw, &ipruned});
  }
  const auto stats = runtime::parallel_map(
      runtime::ThreadPool::shared(), points.size(), [&](std::size_t i) {
        return measure(*points[i].pm, points[i].mw * 1e-3);
      });

  for (std::size_t k = 0; k < powers.size(); ++k) {
    const double mw = powers[k];
    const auto& u = stats[2 * k];
    const auto& p = stats[2 * k + 1];
    table.row()
        .cell(util::Table::format(mw, 0))
        .cell(util::Table::format(u.latency_s, 3))
        .cell(util::Table::format(p.latency_s, 3))
        .cell(util::Table::format(u.latency_s / p.latency_s, 2) + "x")
        .cell(u.power_failures)
        .cell(p.power_failures);
    csv.row({util::Table::format(mw, 0),
             util::Table::format(u.latency_s, 6),
             util::Table::format(p.latency_s, 6),
             util::Table::format(u.latency_s / p.latency_s, 3)});
  }
  table.print();
  const std::string csv_path = apps::artifact_dir() + "/power_sweep.csv";
  if (csv.save(csv_path)) {
    std::printf("\n(series also written to %s)\n", csv_path.c_str());
  }
  std::puts(
      "\nExpected shape: latency rises steeply as harvest power falls "
      "(recharge time dominates); the iPrune speedup persists across the "
      "entire range and grows slightly at the weak end (fewer power "
      "failures to recover from).");
  return 0;
}
