// Ablation F (paper §I background): progress-indicator design. Compares
// the two intermittent-safe preservation strategies the paper describes —
// HAWAII's per-job counter (recovery re-executes one job) and
// SONIC/TAILS-style atomic tasks (batched commit, recovery re-executes
// the whole interrupted task) — plus the unsafe accumulate-in-VM flow as
// the continuous reference, on the unpruned HAR model.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation F: progress preservation strategies (HAR, "
            "unpruned) ==\n");

  struct Mode {
    const char* label;
    engine::PreservationMode mode;
  };
  const Mode modes[] = {
      {"per-job counter (HAWAII)", engine::PreservationMode::kImmediate},
      {"atomic task (SONIC/TAILS-style)",
       engine::PreservationMode::kTaskAtomic},
      {"accumulate-in-VM (unsafe)",
       engine::PreservationMode::kAccumulateInVm},
  };
  const bench::PowerLevel levels[] = {bench::PowerLevel::kContinuous,
                                      bench::PowerLevel::kStrong,
                                      bench::PowerLevel::kWeak};

  util::Table table({"Power", "Preservation", "Latency (s)", "Failures",
                     "Re-executed jobs", "NVM written", "Completed"});

  for (const bench::PowerLevel level : levels) {
    for (const Mode& m : modes) {
      if (m.mode == engine::PreservationMode::kAccumulateInVm &&
          level != bench::PowerLevel::kContinuous) {
        table.row()
            .cell(bench::power_name(level))
            .cell(m.label)
            .cell("-")
            .cell("-")
            .cell("-")
            .cell("-")
            .cell("no (restarts forever)");
        continue;
      }
      apps::PreparedModel pm = apps::prepare_model(
          apps::WorkloadId::kHar, apps::Framework::kUnpruned);
      engine::EngineConfig cfg = pm.workload.prune.engine;
      cfg.mode = m.mode;

      device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                               bench::make_supply(level));
      std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
      const nn::Tensor calib =
          nn::gather_rows(pm.workload.val.inputs, calib_idx);
      engine::DeployedModel model(pm.workload.graph, cfg, dev, calib);
      engine::IntermittentEngine eng(model, dev);

      double latency = 0.0, failures = 0.0, reexec = 0.0, written = 0.0;
      bool completed = true;
      constexpr std::size_t kRuns = 3;
      for (std::size_t n = 0; n < kRuns; ++n) {
        const auto r = eng.run(bench::sample_of(pm.workload.val, n));
        latency += r.stats.latency_s / kRuns;
        failures += static_cast<double>(r.stats.power_failures) / kRuns;
        reexec += static_cast<double>(r.stats.reexecuted_jobs) / kRuns;
        written += static_cast<double>(r.stats.nvm_bytes_written) / kRuns;
        completed = completed && r.stats.completed;
      }
      table.row()
          .cell(bench::power_name(level))
          .cell(m.label)
          .cell(util::Table::format(latency, 3))
          .cell(util::Table::format(failures, 1))
          .cell(util::Table::format(reexec, 1))
          .cell(bench::kb(static_cast<std::size_t>(written)))
          .cell(completed ? "yes" : "no");
    }
  }
  table.print();
  std::puts(
      "\nReading: both intermittent-safe strategies finish under harvested "
      "power. The task-based indicator writes fewer progress bytes, but "
      "every power failure throws away a whole task's work; the per-job "
      "counter pays per-output indicator traffic and loses at most one "
      "job. The conventional flow only works with continuous power.");
  return 0;
}
