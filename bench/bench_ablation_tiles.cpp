// Ablation C (DESIGN.md): tile-size selection. Sweeps the accelerator's
// per-op reduction depth (max_k_per_op = Bk): deeper ops mean fewer
// partial-sum write-backs (fewer accelerator outputs) but longer atomic
// operations. Shows how the criterion and latency move together, and why
// the accelerator-output count is engine-configuration dependent (the
// criterion must be computed from the deployed tile plan, paper §III-B).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace iprune;
  std::puts("== Ablation C: accelerator op depth (Bk) sweep, HAR unpruned "
            "==\n");

  util::Table table({"max_k_per_op (Bk)", "Acc. Outputs",
                     "Latency @ strong (s)", "Latency @ continuous (s)",
                     "Power failures @ strong"});

  for (const std::size_t bk : {2u, 4u, 8u, 12u, 24u, 48u}) {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kHar, apps::Framework::kUnpruned);
    engine::EngineConfig cfg = pm.workload.prune.engine;
    cfg.max_k_per_op = bk;
    const auto strong = bench::measure_inference(
        pm, bench::PowerLevel::kStrong, cfg, /*count=*/3);
    const auto cont = bench::measure_inference(
        pm, bench::PowerLevel::kContinuous, cfg, /*count=*/3);
    table.row()
        .cell(bk)
        .cell(strong.acc_outputs)
        .cell(util::Table::format(strong.latency_s, 3))
        .cell(util::Table::format(cont.latency_s, 3))
        .cell(util::Table::format(strong.power_failures, 1));
  }
  table.print();
  std::puts(
      "\nExpected shape: accelerator outputs fall ~1/Bk; intermittent "
      "latency improves with depth until the op compute time overtakes the "
      "overlapped write-back.");
  return 0;
}
