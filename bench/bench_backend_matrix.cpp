// Memory-technology sensitivity matrix: the same iterative prune-retrain
// loop on HAR, re-priced under each backend preset's cost table
// (PruneConfig.backend), then deployed and measured on a device built
// from that preset via engine::make_backend. Each row reports pruning
// quality (accuracy, alive weights, accelerator outputs) and intermittent
// latency/energy at weak power, with deltas against the paper's
// MSP430+FRAM platform — the cost-ratio sensitivity claim (§V) as a
// first-class experiment axis instead of a hand-edited DeviceConfig.
//
// --smoke caps the prune budget and sample count for CI; IPRUNE_FAST=1
// additionally shrinks model preparation (apps/workloads.cpp).

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/pruner.hpp"
#include "engine/backend.hpp"

namespace {

using namespace iprune;

/// measure_inference against a backend preset instead of the hard-wired
/// MSP430 device: same calibration slice, same per-inference averaging.
bench::MeasuredLatency measure_backend(apps::PreparedModel& pm,
                                       const engine::BackendConfig& backend,
                                       std::size_t count) {
  std::unique_ptr<engine::Backend> be = engine::make_backend(
      backend, bench::make_supply(bench::PowerLevel::kWeak));
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < 8; ++i) {
    calib_idx.push_back(i);
  }
  const nn::Tensor calib =
      nn::gather_rows(pm.workload.val.inputs, calib_idx);
  engine::DeployedModel model(pm.workload.graph, pm.workload.prune.engine,
                              *be, calib);
  engine::IntermittentEngine eng(model, *be);

  bench::MeasuredLatency m;
  m.model_bytes = model.model_bytes();
  m.macs = model.total_macs();
  m.acc_outputs = model.total_acc_outputs();
  for (std::size_t n = 0; n < count; ++n) {
    const auto result = eng.run(bench::sample_of(pm.workload.val, n));
    m.completed = m.completed && result.stats.completed;
    m.latency_s += result.stats.latency_s;
    m.energy_j += result.stats.energy_j;
    m.power_failures += static_cast<double>(result.stats.power_failures);
    m.nvm_bytes_written +=
        static_cast<double>(result.stats.nvm_bytes_written);
  }
  const auto divisor = static_cast<double>(count);
  m.latency_s /= divisor;
  m.energy_j /= divisor;
  m.power_failures /= divisor;
  m.nvm_bytes_written /= divisor;
  return m;
}

std::string signed_pct(double current, double baseline) {
  if (baseline == 0.0) {
    return "-";
  }
  const double pct = (current - baseline) / baseline * 100.0;
  return (pct >= 0.0 ? "+" : "") + util::Table::format(pct, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::puts("== Backend matrix: pruning quality across memory "
            "technologies (HAR) ==");
  std::puts("(same loop, same allocator; only the backend cost table "
            "differs)\n");

  const engine::BackendConfig presets[] = {
      engine::BackendConfig::msp430_fram(),  // baseline row (the paper's
                                             // platform); deltas are
                                             // relative to it
      engine::BackendConfig::reram(),
      engine::BackendConfig::stt_mram(),
  };

  struct Row {
    std::string name;
    double accuracy = 0.0;
    std::size_t alive = 0;
    std::size_t acc_outputs = 0;
    double latency_s = 0.0;
    double energy_j = 0.0;
    bool completed = false;
  };
  std::vector<Row> rows;

  const std::size_t budget = smoke ? 2 : 6;
  const std::size_t samples = smoke ? 1 : 3;
  for (const engine::BackendConfig& backend : presets) {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kHar, apps::Framework::kUnpruned);
    apps::Workload& w = pm.workload;
    core::PruneConfig cfg = w.prune;
    cfg.max_iterations = budget;
    cfg.backend = backend;
    core::IterativePruner pruner(cfg,
                                 std::make_unique<core::IPruneAllocator>());
    const core::PruneOutcome outcome =
        pruner.run(w.graph, w.train.inputs, w.train.labels, w.val.inputs,
                   w.val.labels);
    const bench::MeasuredLatency m = measure_backend(pm, backend, samples);

    Row row;
    row.name = backend.describe();
    row.accuracy = outcome.final_accuracy;
    row.alive = outcome.final_alive_weights;
    row.acc_outputs = outcome.final_acc_outputs;
    row.latency_s = m.latency_s;
    row.energy_j = m.energy_j;
    row.completed = m.completed;
    rows.push_back(row);
  }

  const Row& base = rows.front();
  util::Table table({"Backend", "Accuracy", "dAcc", "Alive weights",
                     "dAlive", "Acc. Outputs", "dOut",
                     "Latency @ weak (s)", "Energy (mJ)"});
  bool all_completed = true;
  for (const Row& row : rows) {
    all_completed = all_completed && row.completed;
    table.row()
        .cell(row.name)
        .cell(util::Table::format(row.accuracy * 100.0, 1) + "%")
        .cell((row.accuracy - base.accuracy >= 0.0 ? "+" : "") +
              util::Table::format((row.accuracy - base.accuracy) * 100.0,
                                  1) + "pp")
        .cell(row.alive)
        .cell(signed_pct(static_cast<double>(row.alive),
                         static_cast<double>(base.alive)))
        .cell(row.acc_outputs)
        .cell(signed_pct(static_cast<double>(row.acc_outputs),
                         static_cast<double>(base.acc_outputs)))
        .cell(util::Table::format(row.latency_s, 3))
        .cell(util::Table::format(row.energy_j * 1e3, 3));
  }
  table.print();

  std::puts(
      "\nReading the deltas: reram's expensive, power-hungry writes raise "
      "the preservation cost the criterion prices, pushing the allocator "
      "toward fewer accelerator outputs; stt-mram's near-SRAM reads and "
      "cheap writes relax that pressure. The msp430-fram row is the "
      "paper's platform and the golden-digest oracle.");
  if (!all_completed) {
    std::puts("FAIL: a measured inference did not complete");
    return 1;
  }
  std::printf("backend-matrix: %zu preset(s), budget %zu iteration(s)%s\n",
              rows.size(), budget, smoke ? " [smoke]" : "");
  return 0;
}
