#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Tracing: set IPRUNE_TRACE=<dir> to record every measure_inference call
// with a telemetry::RecorderSink and write one Chrome-trace JSON per call
// into <dir> (open in Perfetto / chrome://tracing). Trace-derived latency
// breakdown fields are filled into MeasuredLatency alongside the engine's
// own aggregates so benches can cross-check the two accountings.

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "power/supply.hpp"
#include "telemetry/trace_export.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace iprune::bench {

/// The paper's three power conditions (Table I).
enum class PowerLevel { kContinuous, kStrong, kWeak };

inline const char* power_name(PowerLevel level) {
  switch (level) {
    case PowerLevel::kContinuous:
      return "Continuous (1.65 W)";
    case PowerLevel::kStrong:
      return "Strong (8 mW)";
    case PowerLevel::kWeak:
      return "Weak (4 mW)";
  }
  return "?";
}

inline std::unique_ptr<power::PowerSupply> make_supply(PowerLevel level) {
  switch (level) {
    case PowerLevel::kContinuous:
      return power::SupplyPresets::continuous();
    case PowerLevel::kStrong:
      return power::SupplyPresets::strong();
    case PowerLevel::kWeak:
      return power::SupplyPresets::weak();
  }
  return nullptr;
}

/// Average end-to-end inference statistics over the first `count`
/// validation samples of a prepared model, on a fresh device under the
/// given power level and engine configuration.
struct MeasuredLatency {
  double latency_s = 0.0;
  double on_s = 0.0;
  double off_s = 0.0;
  double nvm_read_s = 0.0;
  double nvm_write_s = 0.0;
  double lea_s = 0.0;
  double cpu_s = 0.0;
  double reboot_s = 0.0;
  double energy_j = 0.0;
  double power_failures = 0.0;
  double nvm_bytes_written = 0.0;
  std::size_t acc_outputs = 0;
  std::size_t model_bytes = 0;
  std::size_t macs = 0;
  bool completed = true;
  /// Filled only when tracing was enabled (IPRUNE_TRACE): the same
  /// latency split, but derived from the telemetry event stream.
  bool traced = false;
  telemetry::LatencyBreakdown trace;
};

/// Trace output directory (IPRUNE_TRACE), or nullptr when disabled.
inline const char* trace_dir() { return std::getenv("IPRUNE_TRACE"); }

inline nn::Tensor sample_of(const data::Dataset& d, std::size_t index) {
  nn::Tensor s(d.sample_shape());
  const std::size_t elems = s.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    s[i] = d.inputs[index * elems + i];
  }
  return s;
}

inline MeasuredLatency measure_inference(apps::PreparedModel& pm,
                                         PowerLevel level,
                                         engine::EngineConfig config,
                                         std::size_t count = 3,
                                         const std::string& trace_tag = "") {
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           make_supply(level));
  std::unique_ptr<telemetry::RecorderSink> recorder;
  if (trace_dir() != nullptr) {
    recorder = std::make_unique<telemetry::RecorderSink>();
    dev.set_trace_sink(recorder.get());
  }
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < 8; ++i) {
    calib_idx.push_back(i);
  }
  const nn::Tensor calib =
      nn::gather_rows(pm.workload.val.inputs, calib_idx);
  engine::DeployedModel model(pm.workload.graph, config, dev, calib);
  engine::IntermittentEngine eng(model, dev);

  MeasuredLatency m;
  m.model_bytes = model.model_bytes();
  m.macs = model.total_macs();
  m.acc_outputs = model.total_acc_outputs();
  for (std::size_t n = 0; n < count; ++n) {
    const auto result = eng.run(sample_of(pm.workload.val, n));
    m.completed = m.completed && result.stats.completed;
    m.latency_s += result.stats.latency_s;
    m.on_s += result.stats.on_s;
    m.off_s += result.stats.off_s;
    m.nvm_read_s += result.stats.nvm_read_s;
    m.nvm_write_s += result.stats.nvm_write_s;
    m.lea_s += result.stats.lea_s;
    m.cpu_s += result.stats.cpu_s;
    m.reboot_s += result.stats.reboot_s;
    m.energy_j += result.stats.energy_j;
    m.power_failures += static_cast<double>(result.stats.power_failures);
    m.nvm_bytes_written +=
        static_cast<double>(result.stats.nvm_bytes_written);
  }
  const auto divisor = static_cast<double>(count);
  m.latency_s /= divisor;
  m.on_s /= divisor;
  m.off_s /= divisor;
  m.nvm_read_s /= divisor;
  m.nvm_write_s /= divisor;
  m.lea_s /= divisor;
  m.cpu_s /= divisor;
  m.reboot_s /= divisor;
  m.energy_j /= divisor;
  m.power_failures /= divisor;
  m.nvm_bytes_written /= divisor;

  if (recorder != nullptr) {
    m.traced = true;
    m.trace = telemetry::LatencyBreakdown::from(recorder->registry());
    // Per-inference average, like every other MeasuredLatency field.
    m.trace.preservation_s /= divisor;
    m.trace.fetch_s /= divisor;
    m.trace.compute_s /= divisor;
    m.trace.reboot_s /= divisor;
    m.trace.recharge_s /= divisor;

    // Atomic so concurrent measure_inference calls never share a serial;
    // parallel benches pass an explicit trace_tag for stable filenames.
    static std::atomic<std::size_t> trace_serial{0};
    const std::string tag =
        trace_tag.empty()
            ? "run_" + std::to_string(trace_serial.fetch_add(1))
            : trace_tag;
    std::filesystem::create_directories(trace_dir());
    const std::string path =
        std::string(trace_dir()) + "/" + tag + ".trace.json";
    if (telemetry::export_chrome_trace(recorder->events(), path)) {
      util::log_info("trace written to " + path + " (" +
                     std::to_string(recorder->size()) + " events, " +
                     std::to_string(recorder->dropped()) + " dropped)");
    } else {
      util::log_warn("could not write trace to " + path);
    }
  }
  return m;
}

inline std::string kb(std::size_t bytes) {
  return util::Table::format(static_cast<double>(bytes) / 1024.0, 1) + " KB";
}

inline std::string kilo(std::size_t value) {
  return util::Table::format(static_cast<double>(value) / 1000.0, 0) + " K";
}

}  // namespace iprune::bench
