// Reproduces paper Figure 2: where inference latency goes on a
// continuously-powered system (outputs accumulate in VM, write-back per
// completed tile) versus an intermittently-powered system (HAWAII-style
// immediate preservation of every accelerator output). The paper's
// motivating observation is that NVM writes dominate only in the latter.

#include <cctype>
#include <cstdio>

#include "bench_common.hpp"

namespace {

std::string tag_of(const std::string& name, bool immediate) {
  std::string tag = "fig2_";
  for (const char ch : name) {
    tag += std::isalnum(static_cast<unsigned char>(ch))
               ? static_cast<char>(
                     std::tolower(static_cast<unsigned char>(ch)))
               : '_';
  }
  return tag + (immediate ? "_immediate" : "_accumulate");
}

}  // namespace

int main() {
  using namespace iprune;
  std::puts("== Figure 2: Inference latency breakdown, conventional vs "
            "intermittent preservation ==\n");
  if (bench::trace_dir() == nullptr) {
    std::puts("(set IPRUNE_TRACE=<dir> to also dump per-run Chrome-trace "
              "JSON and a trace-derived cross-check of this table)\n");
  }

  util::Table table({"App", "Preservation", "Latency (s)", "NVM write %",
                     "NVM read %", "LEA %", "CPU %", "NVM bytes written"});

  for (const apps::WorkloadId id : apps::all_workloads()) {
    apps::PreparedModel pm =
        apps::prepare_model(id, apps::Framework::kUnpruned);
    for (const bool immediate : {false, true}) {
      engine::EngineConfig cfg = pm.workload.prune.engine;
      cfg.mode = immediate ? engine::PreservationMode::kImmediate
                           : engine::PreservationMode::kAccumulateInVm;
      // Fig. 2 isolates the write-traffic structure, so both modes run
      // under continuous power (no recharge time in the denominator).
      const auto m = bench::measure_inference(
          pm, bench::PowerLevel::kContinuous, cfg, /*count=*/2,
          tag_of(pm.workload.name, immediate));
      const double busy =
          m.nvm_write_s + m.nvm_read_s + m.lea_s + m.cpu_s;
      auto pct = [&](double part) {
        return util::Table::format(100.0 * part / busy, 1) + "%";
      };
      if (m.traced) {
        // Cross-check: the same split derived from the telemetry event
        // stream must agree with the engine's aggregate counters.
        const double trace_busy = m.trace.preservation_s + m.trace.fetch_s +
                                  m.trace.compute_s;
        std::printf(
            "  [trace] %s/%s: write %.1f%%  read %.1f%%  compute %.1f%%\n",
            pm.workload.name.c_str(),
            immediate ? "immediate" : "accumulate",
            100.0 * m.trace.preservation_s / trace_busy,
            100.0 * m.trace.fetch_s / trace_busy,
            100.0 * m.trace.compute_s / trace_busy);
      }
      table.row()
          .cell(pm.workload.name)
          .cell(immediate ? "immediate (intermittent-safe)"
                          : "accumulate-in-VM (conventional)")
          .cell(util::Table::format(m.latency_s, 3))
          .cell(pct(m.nvm_write_s))
          .cell(pct(m.nvm_read_s))
          .cell(pct(m.lea_s))
          .cell(pct(m.cpu_s))
          .cell(bench::kb(static_cast<std::size_t>(m.nvm_bytes_written)));
    }
  }
  table.print();
  std::puts(
      "\nExpected shape (paper Fig. 2): NVM writes dominate the immediate-"
      "preservation rows and are minor in the accumulate-in-VM rows, where "
      "NVM reads + accelerator time dominate instead.");
  return 0;
}
