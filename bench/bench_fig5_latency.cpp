// Reproduces paper Figure 5: intermittent inference latency of the three
// TinyML applications under the three power strengths, for the Unpruned /
// ePrune / iPrune models. The speedup annotations (iPrune vs ePrune and
// iPrune vs Unpruned) correspond to the numbers above the paper's bars.
//
// Requires (or builds and caches) the pruned models from the Table III
// flow; run bench_table3_pruned_models first for a warm cache.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"

namespace {
const char* level_tag(iprune::bench::PowerLevel level) {
  switch (level) {
    case iprune::bench::PowerLevel::kContinuous:
      return "continuous";
    case iprune::bench::PowerLevel::kStrong:
      return "strong";
    case iprune::bench::PowerLevel::kWeak:
      return "weak";
  }
  return "unknown";
}
}  // namespace

int main() {
  using namespace iprune;
  std::puts("== Figure 5: Intermittent inference latency under different "
            "power strengths ==\n");

  util::Table table({"App", "Power", "Model", "Latency (s)",
                     "Power failures", "Off-time share"});
  util::CsvWriter csv({"app", "power", "model", "latency_s",
                       "power_failures"});

  const bench::PowerLevel levels[] = {bench::PowerLevel::kContinuous,
                                      bench::PowerLevel::kStrong,
                                      bench::PowerLevel::kWeak};

  for (const apps::WorkloadId id : apps::all_workloads()) {
    // Prepare all three variants once per app.
    std::vector<apps::PreparedModel> variants;
    for (const apps::Framework fw : apps::all_frameworks()) {
      variants.push_back(apps::prepare_model(id, fw));
    }
    // The 9 (power level, variant) measurements per app are independent:
    // each builds its own device + deployment and only reads the shared
    // prepared models. Fan them out and gather by index so the printed
    // table is identical to the serial run; explicit trace tags keep
    // IPRUNE_TRACE filenames stable regardless of completion order.
    struct Cell {
      bench::PowerLevel level{};
      std::size_t v = 0;
    };
    std::vector<Cell> cells;
    for (const bench::PowerLevel level : levels) {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        cells.push_back({level, v});
      }
    }
    const auto measures = runtime::parallel_map(
        runtime::ThreadPool::shared(), cells.size(), [&](std::size_t i) {
          const Cell& c = cells[i];
          const std::string tag =
              std::string(apps::workload_name(id)) + "_" +
              level_tag(c.level) + "_" +
              apps::framework_name(apps::all_frameworks()[c.v]);
          return bench::measure_inference(
              variants[c.v], c.level, variants[c.v].workload.prune.engine,
              /*count=*/3, tag);
        });

    std::size_t cell_idx = 0;
    for (const bench::PowerLevel level : levels) {
      double latency[3] = {};
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const auto& m = measures[cell_idx++];
        latency[v] = m.latency_s;
        table.row()
            .cell(variants[v].workload.name)
            .cell(bench::power_name(level))
            .cell(apps::framework_name(
                apps::all_frameworks()[v]))
            .cell(util::Table::format(m.latency_s, 3))
            .cell(util::Table::format(m.power_failures, 1))
            .cell(util::Table::format(
                      100.0 * m.off_s / std::max(m.latency_s, 1e-12), 1) +
                  "%");
        csv.row({variants[v].workload.name,
                 bench::power_name(level),
                 apps::framework_name(apps::all_frameworks()[v]),
                 util::Table::format(m.latency_s, 6),
                 util::Table::format(m.power_failures, 1)});
      }
      // Speedup annotations, as printed above the paper's bars.
      std::printf(
          "  %s @ %s: iPrune speedup %.2fx vs Unpruned, %.2fx vs ePrune\n",
          apps::workload_name(id), bench::power_name(level),
          latency[0] / latency[2], latency[1] / latency[2]);
    }
    std::puts("");
  }
  table.print();
  const std::string csv_path = apps::artifact_dir() + "/fig5_latency.csv";
  if (csv.save(csv_path)) {
    std::printf("\n(series also written to %s)\n", csv_path.c_str());
  }
  std::puts(
      "\nExpected shape (paper Fig. 5): pruning helps everywhere; iPrune "
      "beats ePrune under every power strength (paper: 1.1x-2x) and beats "
      "the unpruned model by more (paper: 1.7x-2.9x); weak power raises "
      "latency for everyone via more frequent recharges.");
  return 0;
}
