// Reproduces paper Figure 5: intermittent inference latency of the three
// TinyML applications under the three power strengths, for the Unpruned /
// ePrune / iPrune models. The speedup annotations (iPrune vs ePrune and
// iPrune vs Unpruned) correspond to the numbers above the paper's bars.
//
// Requires (or builds and caches) the pruned models from the Table III
// flow; run bench_table3_pruned_models first for a warm cache.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"

int main() {
  using namespace iprune;
  std::puts("== Figure 5: Intermittent inference latency under different "
            "power strengths ==\n");

  util::Table table({"App", "Power", "Model", "Latency (s)",
                     "Power failures", "Off-time share"});
  util::CsvWriter csv({"app", "power", "model", "latency_s",
                       "power_failures"});

  const bench::PowerLevel levels[] = {bench::PowerLevel::kContinuous,
                                      bench::PowerLevel::kStrong,
                                      bench::PowerLevel::kWeak};

  for (const apps::WorkloadId id : apps::all_workloads()) {
    // Prepare all three variants once per app.
    std::vector<apps::PreparedModel> variants;
    for (const apps::Framework fw : apps::all_frameworks()) {
      variants.push_back(apps::prepare_model(id, fw));
    }
    for (const bench::PowerLevel level : levels) {
      double latency[3] = {};
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const auto m = bench::measure_inference(
            variants[v], level, variants[v].workload.prune.engine,
            /*count=*/3);
        latency[v] = m.latency_s;
        table.row()
            .cell(variants[v].workload.name)
            .cell(bench::power_name(level))
            .cell(apps::framework_name(
                apps::all_frameworks()[v]))
            .cell(util::Table::format(m.latency_s, 3))
            .cell(util::Table::format(m.power_failures, 1))
            .cell(util::Table::format(
                      100.0 * m.off_s / std::max(m.latency_s, 1e-12), 1) +
                  "%");
        csv.row({variants[v].workload.name,
                 bench::power_name(level),
                 apps::framework_name(apps::all_frameworks()[v]),
                 util::Table::format(m.latency_s, 6),
                 util::Table::format(m.power_failures, 1)});
      }
      // Speedup annotations, as printed above the paper's bars.
      std::printf(
          "  %s @ %s: iPrune speedup %.2fx vs Unpruned, %.2fx vs ePrune\n",
          apps::workload_name(id), bench::power_name(level),
          latency[0] / latency[2], latency[1] / latency[2]);
    }
    std::puts("");
  }
  table.print();
  const std::string csv_path = apps::artifact_dir() + "/fig5_latency.csv";
  if (csv.save(csv_path)) {
    std::printf("\n(series also written to %s)\n", csv_path.c_str());
  }
  std::puts(
      "\nExpected shape (paper Fig. 5): pruning helps everywhere; iPrune "
      "beats ePrune under every power strength (paper: 1.1x-2x) and beats "
      "the unpruned model by more (paper: 1.7x-2.9x); weak power raises "
      "latency for everyone via more frequent recharges.");
  return 0;
}
