// Fleet-orchestrator scaling check: simulates the same fixed fleet on a
// widening lane sweep (1, 2, 4, ... up to IPRUNE_THREADS), verifies that
// every run produces the exact same fleet checksum — the orchestrator's
// bit-determinism contract — and reports throughput in simulated device
// steps (chargeable device events) per wall-second.
//
// Writes a BENCH_PERF-schema JSON report (one entry per lane count, the
// fleet checksum as the entry checksum) for plotting / archiving; the
// curated perf-gate baseline carries the separate single-entry
// `fleet_sim_*` scenario from bench_perf_gate. Exits nonzero on any
// cross-lane checksum mismatch.
//
// IPRUNE_FAST=1 shrinks the fleet for quick CI runs.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/orchestrator.hpp"
#include "util/perf_gate.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool fast_mode() {
  const char* value = std::getenv("IPRUNE_FAST");
  return value != nullptr && value[0] == '1';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  std::string out_path = "BENCH_FLEET.json";
  if (argc == 3 && std::string(argv[1]) == "--out") {
    out_path = argv[2];
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
    return 2;
  }

  const std::size_t devices = fast_mode() ? 24 : 96;
  fleet::FleetSpec spec = fleet::FleetSpec::example(devices);
  spec.inferences = fast_mode() ? 2 : 4;

  const std::size_t max_lanes = runtime::default_lane_count();
  std::printf("== Fleet scaling: %zu devices x %zu inferences "
              "(IPRUNE_THREADS=%zu) ==\n\n",
              spec.total_devices(), spec.inferences, max_lanes);

  util::Table table({"Lanes", "Wall (s)", "Device steps", "Steps/s",
                     "Speedup", "Checksum"});
  util::PerfReport report;
  std::uint64_t reference_checksum = 0;
  double serial_wall = 0.0;
  bool deterministic = true;

  std::vector<std::size_t> lane_counts;
  for (std::size_t lanes = 1; lanes < max_lanes; lanes *= 2) {
    lane_counts.push_back(lanes);
  }
  lane_counts.push_back(max_lanes);

  for (const std::size_t lanes : lane_counts) {
    runtime::ThreadPool pool(lanes);
    const fleet::FleetOrchestrator orchestrator(spec);
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult result = orchestrator.run(&pool);
    const double wall = seconds_since(t0);

    if (lanes == 1) {
      reference_checksum = result.checksum;
      serial_wall = wall;
    } else if (result.checksum != reference_checksum) {
      deterministic = false;
    }

    const double steps_per_s =
        wall > 0.0 ? static_cast<double>(result.total.events) / wall : 0.0;
    char checksum_hex[24];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016" PRIx64,
                  result.checksum);
    table.row()
        .cell(lanes)
        .cell(wall, 4)
        .cell(static_cast<std::size_t>(result.total.events))
        .cell(steps_per_s, 0)
        .cell(util::Table::format(wall > 0.0 ? serial_wall / wall : 0.0, 2) +
              "x")
        .cell(checksum_hex);

    util::PerfEntry entry;
    entry.name = "fleet_scaling_lanes" + std::to_string(lanes);
    entry.iters = 1;
    entry.median_ns = static_cast<std::uint64_t>(wall * 1e9);
    entry.checksum = result.checksum;
    report.add(entry);
  }

  std::printf("%s\n", table.str().c_str());
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (out) {
    out << report.to_json();
    std::printf("report written to %s (%zu entries)\n", out_path.c_str(),
                report.entries.size());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: fleet checksum differs across lane counts\n");
    return 1;
  }
  std::printf("fleet results bit-identical across all lane counts\n");
  return 0;
}
