// Fleet-orchestrator scaling check, two sections:
//
//  1. Lane sweep: simulates the same fixed fleet on a widening lane sweep
//     (1, 2, 4, ... up to IPRUNE_THREADS), verifies that every run
//     produces the exact same fleet checksum — the orchestrator's
//     bit-determinism contract — and reports throughput in simulated
//     device steps (chargeable device events) per wall-second.
//
//  2. Sim-mode comparison: the same lockstep-eligible single-group fleet
//     under all three SimKinds (stepping oracle, discrete-event
//     scheduler, batched lockstep cohorts) on one lane. Every mode must
//     produce the identical fleet digest (exit 1 otherwise); the report
//     states each mode's device-events-per-wall-second, the batched
//     speedup over the stepping oracle, and where that lands against the
//     >=5x acceptance floor / >=10x roadmap target. Pass --floor X to
//     turn the floor into a hard gate (exit 1 when the batched speedup
//     is below X).
//
// Writes a BENCH_PERF-schema JSON report (one entry per lane count plus
// one per sim mode, the fleet checksum as the entry checksum) for
// plotting / archiving; the curated perf-gate baseline carries the
// separate single-entry `fleet_sim_*` scenarios from bench_perf_gate.
// Exits nonzero on any cross-lane or cross-mode checksum mismatch.
//
// IPRUNE_FAST=1 shrinks the fleet for quick CI runs.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/orchestrator.hpp"
#include "util/perf_gate.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool fast_mode() {
  const char* value = std::getenv("IPRUNE_FAST");
  return value != nullptr && value[0] == '1';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  std::string out_path = "BENCH_FLEET.json";
  double floor = 0.0;  // 0 = report-only
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--floor" && i + 1 < argc) {
      floor = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--floor X]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t devices = fast_mode() ? 24 : 96;
  fleet::FleetSpec spec = fleet::FleetSpec::example(devices);
  spec.inferences = fast_mode() ? 2 : 4;

  const std::size_t max_lanes = runtime::default_lane_count();
  std::printf("== Fleet scaling: %zu devices x %zu inferences "
              "(IPRUNE_THREADS=%zu) ==\n\n",
              spec.total_devices(), spec.inferences, max_lanes);

  util::Table table({"Lanes", "Wall (s)", "Device steps", "Steps/s",
                     "Speedup", "Checksum"});
  util::PerfReport report;
  std::uint64_t reference_checksum = 0;
  double serial_wall = 0.0;
  bool deterministic = true;

  std::vector<std::size_t> lane_counts;
  for (std::size_t lanes = 1; lanes < max_lanes; lanes *= 2) {
    lane_counts.push_back(lanes);
  }
  lane_counts.push_back(max_lanes);

  for (const std::size_t lanes : lane_counts) {
    runtime::ThreadPool pool(lanes);
    const fleet::FleetOrchestrator orchestrator(spec);
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult result = orchestrator.run(&pool);
    const double wall = seconds_since(t0);

    if (lanes == 1) {
      reference_checksum = result.checksum;
      serial_wall = wall;
    } else if (result.checksum != reference_checksum) {
      deterministic = false;
    }

    const double steps_per_s =
        wall > 0.0 ? static_cast<double>(result.total.events) / wall : 0.0;
    char checksum_hex[24];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016" PRIx64,
                  result.checksum);
    table.row()
        .cell(lanes)
        .cell(wall, 4)
        .cell(static_cast<std::size_t>(result.total.events))
        .cell(steps_per_s, 0)
        .cell(util::Table::format(wall > 0.0 ? serial_wall / wall : 0.0, 2) +
              "x")
        .cell(checksum_hex);

    util::PerfEntry entry;
    entry.name = "fleet_scaling_lanes" + std::to_string(lanes);
    entry.backend = spec.groups[0].backend.describe();
    entry.iters = 1;
    entry.median_ns = static_cast<std::uint64_t>(wall * 1e9);
    entry.checksum = result.checksum;
    report.add(entry);
  }

  std::printf("%s\n", table.str().c_str());

  // -- Section 2: sim-mode comparison -------------------------------------
  // Lockstep-eligible single group (deterministic schedule, perfect NVM,
  // telemetry off) so the batched path actually engages; enough
  // inferences that steady-state advance dominates stack construction.
  fleet::FleetSpec mode_spec;
  mode_spec.seed = 2026;
  mode_spec.inferences = fast_mode() ? 8 : 256;
  mode_spec.batch = 64;
  {
    fleet::DeviceGroup group;
    group.name = "cohort";
    group.count = fast_mode() ? 16 : 64;
    group.model = fleet::ModelKind::kTiny;
    group.mode = engine::PreservationMode::kImmediate;
    group.power = fleet::PowerProfile::strong();
    mode_spec.groups = {group};
  }

  std::printf("== Sim-mode comparison: %zu devices x %zu inferences, "
              "1 lane ==\n\n",
              mode_spec.total_devices(), mode_spec.inferences);
  util::Table mode_table({"Mode", "Wall (s)", "Device events", "Events/s",
                          "Speedup", "Checksum"});
  std::uint64_t mode_checksum = 0;
  double stepping_wall = 0.0;
  double batched_speedup = 0.0;
  bool modes_identical = true;
  for (const fleet::SimKind sim :
       {fleet::SimKind::kStepping, fleet::SimKind::kScheduler,
        fleet::SimKind::kBatched}) {
    fleet::FleetSpec spec_for_mode = mode_spec;
    spec_for_mode.sim = sim;
    runtime::ThreadPool pool(1);
    const fleet::FleetOrchestrator orchestrator(spec_for_mode);
    (void)orchestrator.run(&pool);  // warmup (page-in, allocator steady state)
    double wall = 0.0;
    fleet::FleetResult result;
    for (int rep = 0; rep < 3; ++rep) {  // best-of-3: lane sweep noise
      const auto t0 = std::chrono::steady_clock::now();
      result = orchestrator.run(&pool);
      const double w = seconds_since(t0);
      if (rep == 0 || w < wall) {
        wall = w;
      }
    }

    if (sim == fleet::SimKind::kStepping) {
      mode_checksum = result.checksum;
      stepping_wall = wall;
    } else if (result.checksum != mode_checksum) {
      modes_identical = false;
    }
    const double speedup = wall > 0.0 ? stepping_wall / wall : 0.0;
    if (sim == fleet::SimKind::kBatched) {
      batched_speedup = speedup;
    }

    char checksum_hex[24];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016" PRIx64,
                  result.checksum);
    mode_table.row()
        .cell(fleet::sim_kind_name(sim))
        .cell(wall, 4)
        .cell(static_cast<std::size_t>(result.total.events))
        .cell(wall > 0.0
                  ? static_cast<double>(result.total.events) / wall
                  : 0.0,
              0)
        .cell(util::Table::format(speedup, 2) + "x")
        .cell(checksum_hex);

    util::PerfEntry entry;
    entry.name = std::string("fleet_modes_") + fleet::sim_kind_name(sim);
    entry.backend = mode_spec.groups[0].backend.describe();
    entry.iters = 3;
    entry.median_ns = static_cast<std::uint64_t>(wall * 1e9);
    entry.checksum = result.checksum;
    report.add(entry);
  }
  std::printf("%s\n", mode_table.str().c_str());
  std::printf("batched device-events-per-wall-second speedup vs stepping "
              "oracle: %.2fx\n",
              batched_speedup);
  std::printf("  acceptance floor >=5x: %s; roadmap target >=10x: %s\n",
              batched_speedup >= 5.0 ? "met" : "NOT met",
              batched_speedup >= 10.0 ? "met" : "NOT met");

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (out) {
    out << report.to_json();
    std::printf("report written to %s (%zu entries)\n", out_path.c_str(),
                report.entries.size());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: fleet checksum differs across lane counts\n");
    return 1;
  }
  if (!modes_identical) {
    std::fprintf(stderr,
                 "FAIL: fleet checksum differs across sim modes\n");
    return 1;
  }
  if (floor > 0.0 && batched_speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: batched speedup %.2fx below the --floor %.2fx gate\n",
                 batched_speedup, floor);
    return 1;
  }
  std::printf(
      "fleet results bit-identical across all lane counts and sim modes\n");
  return 0;
}
