// Micro-benchmarks (google-benchmark) for the host-side kernels that gate
// the prune-retrain loop's wall-clock time: GEMM, im2col conv forward,
// BSR construction, quantization, and the simulated device's job loop.

#include <benchmark/benchmark.h>

#include <memory>

#include "engine/bsr.hpp"
#include "engine/engine.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/quantize.hpp"
#include "power/supply.hpp"
#include "util/rng.hpp"

namespace {

using namespace iprune;

void BM_GemmAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) {
    v = static_cast<float>(rng.normal());
  }
  for (auto& v : b) {
    v = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    nn::gemm_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmAccumulate)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv("c",
                  {.in_channels = 16, .out_channels = 32, .kernel_h = 3,
                   .kernel_w = 3, .pad_h = 1, .pad_w = 1},
                  rng);
  nn::Tensor input({4, 16, 16, 16});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(rng.normal());
  }
  std::vector<const nn::Tensor*> ins = {&input};
  for (auto _ : state) {
    nn::Tensor out = conv.forward(ins, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_BsrBuild(benchmark::State& state) {
  util::Rng rng(3);
  engine::TilePlan plan;
  plan.rows = 64;
  plan.cols = 1;
  plan.k = 768;
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 1;
  nn::Tensor dense({plan.rows, plan.k});
  for (std::size_t i = 0; i < dense.numel(); ++i) {
    dense[i] = rng.bernoulli(0.5) ? static_cast<float>(rng.normal()) : 0.0f;
  }
  const nn::QTensor q = nn::quantize_q15(dense);
  nn::Tensor mask(dense.shape());
  for (std::size_t i = 0; i < mask.numel(); ++i) {
    mask[i] = dense[i] != 0.0f ? 1.0f : 0.0f;
  }
  const engine::BlockMask bmask = engine::BlockMask::from_dense(mask, plan);
  for (auto _ : state) {
    engine::BsrMatrix bsr = engine::BsrMatrix::build(q, bmask, plan);
    benchmark::DoNotOptimize(bsr.nnz_blocks());
  }
}
BENCHMARK(BM_BsrBuild);

void BM_QuantizeQ15(benchmark::State& state) {
  util::Rng rng(4);
  nn::Tensor t({65536});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    nn::QTensor q = nn::quantize_q15(t);
    benchmark::DoNotOptimize(q.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.numel() * 4));
}
BENCHMARK(BM_QuantizeQ15);

void BM_SimulatedInference(benchmark::State& state) {
  // Host-side throughput of the full device simulation (one small dense
  // model end to end, intermittent mode under strong power).
  util::Rng rng(5);
  nn::Graph g({64});
  auto fc1 = g.add(std::make_unique<nn::Dense>("fc1", 64, 32, rng),
                   {g.input()});
  auto fc2 = g.add(std::make_unique<nn::Dense>("fc2", 32, 10, rng), {fc1});
  g.set_output(fc2);
  nn::Tensor calib({4, 64});
  for (std::size_t i = 0; i < calib.numel(); ++i) {
    calib[i] = static_cast<float>(rng.normal());
  }
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           power::SupplyPresets::strong());
  engine::EngineConfig cfg;
  engine::DeployedModel model(g, cfg, dev, calib);
  engine::IntermittentEngine eng(model, dev);
  nn::Tensor sample({64});
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    auto result = eng.run(sample);
    benchmark::DoNotOptimize(result.logits.data());
  }
}
BENCHMARK(BM_SimulatedInference);

}  // namespace

BENCHMARK_MAIN();
