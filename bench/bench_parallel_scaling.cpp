// Parallel-runtime scaling check: runs the two search kernels that
// dominate the pruning framework — sensitivity probes and the annealing
// ratio search — once on a 1-lane pool and once on the full pool, then
// verifies the results are bit-identical and reports the wall-clock
// speedup. Exits nonzero on any mismatch, so this doubles as a gate for
// the runtime's determinism contract (docs/parallelism.md).
//
// Lane count comes from IPRUNE_THREADS (default: hardware concurrency).

#include <chrono>
#include <cstdio>

#include "apps/workloads.hpp"
#include "core/criterion.hpp"
#include "core/ratio_search.hpp"
#include "core/sensitivity.hpp"
#include "engine/lowering.hpp"
#include "runtime/thread_pool.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iprune;
  const std::size_t lanes = runtime::default_lane_count();
  std::printf("== Parallel runtime scaling (IPRUNE_THREADS=%zu) ==\n\n",
              lanes);

  apps::Workload workload = apps::make_workload(apps::WorkloadId::kHar);
  std::vector<engine::PrunableLayer> layers = engine::prunable_layers(
      workload.graph, workload.prune.engine, workload.prune.backend.device.memory);

  runtime::ThreadPool serial_pool(1);
  runtime::ThreadPool wide_pool(lanes);

  util::Table table({"Phase", "Tasks", "1 lane (s)",
                     std::to_string(lanes) + " lanes (s)", "Speedup",
                     "Bit-identical"});
  bool all_identical = true;

  // Phase 1: per-layer sensitivity probes (clone + prune + evaluate each).
  // Repeat the layer list so there are enough tasks to fill every lane.
  {
    core::SensitivityConfig cfg = workload.prune.sensitivity;
    std::vector<engine::PrunableLayer> probes;
    while (probes.size() < 4 * lanes) {
      probes.insert(probes.end(), layers.begin(), layers.end());
    }

    auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> drops_serial = core::analyze_sensitivities(
        workload.graph, probes, workload.val.inputs, workload.val.labels,
        cfg, &serial_pool);
    const double serial_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const std::vector<double> drops_wide = core::analyze_sensitivities(
        workload.graph, probes, workload.val.inputs, workload.val.labels,
        cfg, &wide_pool);
    const double wide_s = seconds_since(t0);

    const bool identical = drops_serial == drops_wide;
    all_identical = all_identical && identical;
    table.row()
        .cell("Sensitivity probes")
        .cell(probes.size())
        .cell(util::Table::format(serial_s, 3))
        .cell(util::Table::format(wide_s, 3))
        .cell(util::Table::format(serial_s / wide_s, 2) + "x")
        .cell(identical ? "yes" : "NO");
  }

  // Phase 2: multi-chain annealing ratio search. Chains have equal cost,
  // so this phase approaches ideal scaling.
  {
    std::vector<core::LayerStats> stats =
        core::collect_layer_stats(layers, workload.prune.backend.device);
    for (std::size_t i = 0; i < stats.size(); ++i) {
      stats[i].sensitivity = 0.02 * static_cast<double>(i + 1);
    }

    core::AnnealingConfig annealing;
    annealing.iterations = 200000;
    annealing.restarts = 4 * lanes;

    auto run = [&](runtime::ThreadPool& pool) {
      core::AnnealingConfig cfg = annealing;
      cfg.pool = &pool;
      core::IPruneAllocator allocator(cfg);
      util::Rng rng(workload.prune.seed);
      return allocator.allocate(stats, 0.2, rng);
    };

    auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> ratios_serial = run(serial_pool);
    const double serial_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const std::vector<double> ratios_wide = run(wide_pool);
    const double wide_s = seconds_since(t0);

    const bool identical = ratios_serial == ratios_wide;
    all_identical = all_identical && identical;
    table.row()
        .cell("Annealing chains")
        .cell(annealing.restarts)
        .cell(util::Table::format(serial_s, 3))
        .cell(util::Table::format(wide_s, 3))
        .cell(util::Table::format(serial_s / wide_s, 2) + "x")
        .cell(identical ? "yes" : "NO");
  }

  table.print();
  if (!all_identical) {
    std::puts("\nFAIL: parallel results diverged from the 1-lane run.");
    return 1;
  }
  std::puts(
      "\nAll parallel results are bit-identical to the 1-lane run. "
      "Speedups scale with IPRUNE_THREADS up to the task count.");
  return 0;
}
