// bench_perf_gate: the perf-regression gate behind the CI `perf-gate` job.
//
// Runs a fixed set of median-of-k timed scenarios — the GEMM micro-kernels
// (optimized and retained-naive reference), a Conv2d::infer, one
// end-to-end intermittent inference, and a sensitivity sweep — and writes
// BENCH_PERF.json (schema util::PerfReport). With --check the report is
// compared against the checked-in baseline and the process exits nonzero
// on a regression, a checksum change (the kernels' numerics drifted), or
// a missing entry.
//
// Usage:
//   bench_perf_gate [--out FILE] [--check] [--baseline FILE]
//                   [--write-baseline] [--tol X]
//
// Tolerance precedence: --tol, then IPRUNE_PERF_TOL, then 2.5 (the CLI
// default is looser than util::kDefaultPerfTolerance because gate runs
// share CI boxes with other jobs; see docs/performance.md).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/sensitivity.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "fleet/orchestrator.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/pool.hpp"
#include "nn/trainer.hpp"
#include "power/supply.hpp"
#include "util/atomic_write.hpp"
#include "util/perf_gate.hpp"
#include "util/rng.hpp"

#ifndef IPRUNE_PERF_BASELINE_DEFAULT
#define IPRUNE_PERF_BASELINE_DEFAULT "bench/baselines/BENCH_PERF.baseline.json"
#endif

namespace {

using iprune::util::PerfEntry;
using iprune::util::PerfReport;

/// FNV-1a over raw bytes: folds a scenario's numerical output into a
/// machine-independent fingerprint (all scenario math is deterministic).
class Checksum {
 public:
  void fold(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  void fold_floats(const float* data, std::size_t count) {
    fold(data, count * sizeof(float));
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Median wall time of `iters` calls to fn() (each call must redo the
/// full scenario; outputs are checksummed by the caller on one extra
/// untimed warmup call).
template <typename Fn>
std::uint64_t median_ns(std::size_t iters, Fn&& fn) {
  std::vector<std::uint64_t> samples;
  samples.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct GemmInputs {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c;
};

GemmInputs make_gemm_inputs(std::size_t m, std::size_t k, std::size_t n,
                            double density, std::uint64_t seed) {
  iprune::util::Rng rng(seed);
  GemmInputs in;
  in.a.resize(m * k);
  in.b.resize(k * n);
  in.c.resize(m * n, 0.0f);
  for (float& v : in.a) {
    v = rng.uniform() < density
            ? static_cast<float>(rng.uniform(-1.0, 1.0))
            : 0.0f;
  }
  for (float& v : in.b) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return in;
}

using GemmFn = void (*)(const float*, const float*, float*, std::size_t,
                        std::size_t, std::size_t);

PerfEntry time_gemm(const std::string& name, GemmFn fn, std::size_t m,
                    std::size_t k, std::size_t n, double density,
                    std::size_t iters) {
  GemmInputs in = make_gemm_inputs(m, k, n, density, 42);
  Checksum sum;
  std::fill(in.c.begin(), in.c.end(), 0.0f);
  fn(in.a.data(), in.b.data(), in.c.data(), m, k, n);
  sum.fold_floats(in.c.data(), in.c.size());
  PerfEntry e;
  e.name = name;
  e.iters = iters;
  e.checksum = sum.value();
  e.median_ns = median_ns(iters, [&] {
    std::fill(in.c.begin(), in.c.end(), 0.0f);
    fn(in.a.data(), in.b.data(), in.c.data(), m, k, n);
  });
  return e;
}

PerfEntry time_conv_infer(std::size_t iters) {
  iprune::util::Rng rng(7);
  iprune::nn::Conv2d conv(
      "gate_conv",
      iprune::nn::Conv2dSpec{.in_channels = 8, .out_channels = 16,
                             .kernel_h = 3, .kernel_w = 3, .pad_h = 1,
                             .pad_w = 1},
      rng);
  iprune::nn::Tensor input({2, 8, 16, 16});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  const iprune::nn::Tensor* ins[] = {&input};
  Checksum sum;
  const iprune::nn::Tensor out = conv.infer(ins);
  sum.fold_floats(out.data(), out.numel());
  PerfEntry e;
  e.name = "conv2d_infer_8x16x16";
  e.iters = iters;
  e.checksum = sum.value();
  e.median_ns = median_ns(iters, [&] { (void)conv.infer(ins); });
  return e;
}

/// Small conv+dense graph, the shape of the engine test models.
iprune::nn::Graph make_engine_graph(iprune::util::Rng& rng) {
  namespace nn = iprune::nn;
  nn::Graph g({2, 8, 8});
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 2, .out_channels = 6,
                                       .kernel_h = 3, .kernel_w = 3,
                                       .pad_h = 1, .pad_w = 1},
                        rng),
                    {g.input()});
  auto relu = g.add(std::make_unique<nn::Relu>("relu"), {conv});
  auto pool = g.add(std::make_unique<nn::MaxPool2d>("pool",
                                                    nn::PoolSpec{2, 2, 2}),
                    {relu});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {pool});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 6 * 4 * 4, 5, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

PerfEntry time_engine_e2e(std::size_t iters) {
  namespace nn = iprune::nn;
  iprune::util::Rng rng(99);
  nn::Graph graph = make_engine_graph(rng);
  nn::Tensor calib({16, 2, 8, 8});
  for (std::size_t i = 0; i < calib.numel(); ++i) {
    calib[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  iprune::device::Msp430Device device(
      iprune::device::DeviceConfig::msp430fr5994(),
      std::make_unique<iprune::power::ConstantSupply>(
          iprune::power::SupplyPresets::kContinuousW));
  iprune::engine::EngineConfig config;
  iprune::engine::DeployedModel model(graph, config, device, calib);
  iprune::engine::IntermittentEngine eng(model, device);
  nn::Tensor sample({2, 8, 8});
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  Checksum sum;
  const auto warm = eng.run(sample);
  sum.fold_floats(warm.logits.data(), warm.logits.size());
  PerfEntry e;
  e.name = "engine_e2e_infer";
  e.backend = iprune::engine::BackendConfig::msp430_fram().describe();
  e.iters = iters;
  e.checksum = sum.value();
  e.median_ns = median_ns(iters, [&] { (void)eng.run(sample); });
  return e;
}

PerfEntry time_sensitivity_sweep(std::size_t iters) {
  namespace nn = iprune::nn;
  iprune::util::Rng rng(3);
  nn::Graph graph({2});
  auto h = graph.add(std::make_unique<nn::Dense>("hidden", 2, 32, rng),
                     {graph.input()});
  auto r = graph.add(std::make_unique<nn::Relu>("r"), {h});
  auto o = graph.add(std::make_unique<nn::Dense>("out", 32, 2, rng), {r});
  graph.set_output(o);
  nn::Tensor x({300, 2});
  std::vector<int> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const bool cls = rng.bernoulli(0.5);
    x.at(i, 0) =
        (cls ? 1.5f : -1.5f) + static_cast<float>(rng.normal(0, 0.3));
    x.at(i, 1) = static_cast<float>(rng.normal(0, 0.3));
    y[i] = cls ? 1 : 0;
  }
  nn::TrainConfig tc;
  tc.epochs = 5;
  nn::Trainer(graph).train(x, y, tc);
  std::vector<iprune::engine::PrunableLayer> layers =
      iprune::engine::prunable_layers(graph, iprune::engine::EngineConfig{},
                                      iprune::device::MemoryConfig{});
  iprune::core::SensitivityConfig cfg;
  Checksum sum;
  const std::vector<double> drops =
      iprune::core::analyze_sensitivities(graph, layers, x, y, cfg);
  sum.fold(drops.data(), drops.size() * sizeof(double));
  PerfEntry e;
  e.name = "sensitivity_sweep_mlp";
  e.iters = iters;
  e.checksum = sum.value();
  e.median_ns = median_ns(iters, [&] {
    (void)iprune::core::analyze_sensitivities(graph, layers, x, y, cfg);
  });
  return e;
}

PerfEntry time_fleet_sim(std::size_t iters, iprune::fleet::SimKind sim,
                         const std::string& name) {
  // Small fixed heterogeneous fleet on a 1-lane pool: times the whole
  // orchestrator path (spec resolution, device construction, inference,
  // aggregation) without scheduler noise. The checksum is the fleet
  // digest, so numeric drift anywhere in the device stack trips the gate.
  // Timed per sim kind; all kinds must produce the identical digest, so
  // the three entries' checksums double as a cross-mode equivalence gate.
  iprune::fleet::FleetSpec spec = iprune::fleet::FleetSpec::example(16);
  spec.inferences = 2;
  spec.sim = sim;
  const iprune::fleet::FleetOrchestrator orchestrator(spec);
  iprune::runtime::ThreadPool pool(1);
  PerfEntry e;
  e.name = name;
  e.backend = spec.groups[0].backend.describe();
  e.iters = iters;
  e.checksum = orchestrator.run(&pool).checksum;
  e.median_ns = median_ns(iters, [&] { (void)orchestrator.run(&pool); });
  return e;
}

PerfReport run_all() {
  constexpr std::size_t kM = 64;
  constexpr std::size_t kMicroIters = 33;
  PerfReport report;
  report.add(time_gemm("gemm_dense_64", iprune::nn::gemm_accumulate, kM, kM,
                       kM, 1.0, kMicroIters));
  report.add(time_gemm("gemm_ref_dense_64", iprune::nn::ref::gemm_accumulate,
                       kM, kM, kM, 1.0, kMicroIters));
  report.add(time_gemm("gemm_sparse90_64", iprune::nn::gemm_accumulate, kM,
                       kM, kM, 0.1, kMicroIters));
  report.add(time_gemm("gemm_at_b_64", iprune::nn::gemm_at_b, kM, kM, kM,
                       1.0, kMicroIters));
  report.add(time_gemm("gemm_a_bt_64", iprune::nn::gemm_a_bt, kM, kM, kM,
                       1.0, kMicroIters));
  report.add(time_conv_infer(17));
  report.add(time_engine_e2e(7));
  report.add(time_sensitivity_sweep(5));
  report.add(
      time_fleet_sim(5, iprune::fleet::SimKind::kStepping, "fleet_sim_16"));
  report.add(time_fleet_sim(5, iprune::fleet::SimKind::kScheduler,
                            "fleet_sim_16_scheduler"));
  report.add(time_fleet_sim(5, iprune::fleet::SimKind::kBatched,
                            "fleet_sim_16_batched"));
  const PerfEntry* stepping = report.find("fleet_sim_16");
  for (const char* mode : {"fleet_sim_16_scheduler", "fleet_sim_16_batched"}) {
    const PerfEntry* entry = report.find(mode);
    if (stepping != nullptr && entry != nullptr &&
        entry->checksum != stepping->checksum) {
      throw std::runtime_error(std::string(mode) +
                               ": fleet digest diverged from the stepping "
                               "oracle — sim modes are no longer bit-identical");
    }
  }

  const PerfEntry* opt = report.find("gemm_dense_64");
  const PerfEntry* ref = report.find("gemm_ref_dense_64");
  if (opt != nullptr && ref != nullptr && opt->median_ns > 0) {
    std::cout << "dense GEMM speedup vs naive reference: "
              << static_cast<double>(ref->median_ns) /
                     static_cast<double>(opt->median_ns)
              << "x\n";
  }
  return report;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  // Temp-file + rename: a run killed mid-report never tears BENCH_PERF.json.
  iprune::util::atomic_write_or_throw(path, text, "bench_perf_gate");
}

int usage(int code) {
  std::cout
      << "bench_perf_gate [--out FILE] [--check] [--baseline FILE]\n"
         "                [--write-baseline] [--tol X]\n"
         "  --out FILE         report path (default BENCH_PERF.json)\n"
         "  --baseline FILE    baseline path (default "
      << IPRUNE_PERF_BASELINE_DEFAULT
      << ")\n"
         "  --check            compare the run against the baseline; exit\n"
         "                     1 on regression/checksum-change/missing\n"
         "  --write-baseline   re-baseline: write the report to --baseline\n"
         "  --tol X            slowdown tolerance (also IPRUNE_PERF_TOL)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PERF.json";
  std::string baseline_path = IPRUNE_PERF_BASELINE_DEFAULT;
  bool check = false;
  bool write_baseline = false;
  double tolerance = 2.5;
  if (const char* env = std::getenv("IPRUNE_PERF_TOL")) {
    tolerance = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--tol") {
      tolerance = std::atof(next().c_str());
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (tolerance <= 0.0) {
    std::cerr << "tolerance must be positive\n";
    return 2;
  }

  try {
    const PerfReport report = run_all();
    write_file(out_path, report.to_json());
    std::cout << "report written to " << out_path << " ("
              << report.entries.size() << " entries)\n";
    if (write_baseline) {
      write_file(baseline_path, report.to_json());
      std::cout << "baseline written to " << baseline_path << "\n";
    }
    if (check) {
      const PerfReport baseline =
          PerfReport::from_json(read_file(baseline_path));
      const iprune::util::PerfGateResult verdict =
          iprune::util::compare(baseline, report, tolerance);
      std::cout << verdict.summary;
      return verdict.passed ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_perf_gate: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
