// Reproduction gate: programmatically asserts the paper's qualitative
// claims against the (cached) pruned models and exits nonzero when any
// shape regresses — a CI guard for the whole reproduction. Checks:
//
//   G1  every pruned model keeps accuracy within epsilon of its baseline
//   G2  iPrune produces no more accelerator outputs than ePrune (per app)
//   G3  iPrune's intermittent latency beats ePrune and Unpruned (per app,
//       under strong and weak power)
//   G4  speedups persist across power strengths (weak/strong ratio ~1)
//   G5  NVM writes dominate immediate-mode latency but not accumulate
//   G6  weaker power means more power failures and higher latency

#include <cstdio>

#include "bench_common.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& label) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", label.c_str());
  if (!ok) {
    ++g_failures;
  }
}

}  // namespace

int main() {
  using namespace iprune;
  std::puts("== Reproduction gate ==\n");

  for (const apps::WorkloadId id : apps::all_workloads()) {
    apps::PreparedModel unpruned =
        apps::prepare_model(id, apps::Framework::kUnpruned);
    apps::PreparedModel eprune =
        apps::prepare_model(id, apps::Framework::kEPrune);
    apps::PreparedModel iprune =
        apps::prepare_model(id, apps::Framework::kIPrune);
    const std::string app = unpruned.workload.name;
    const double eps = unpruned.workload.prune.epsilon;

    // G1: accuracy parity.
    check(eprune.val_accuracy >= unpruned.val_accuracy - eps - 1e-9,
          app + " G1: ePrune accuracy within epsilon (" +
              util::Table::format(eprune.val_accuracy * 100, 1) + "% vs " +
              util::Table::format(unpruned.val_accuracy * 100, 1) + "%)");
    check(iprune.val_accuracy >= unpruned.val_accuracy - eps - 1e-9,
          app + " G1: iPrune accuracy within epsilon (" +
              util::Table::format(iprune.val_accuracy * 100, 1) + "% vs " +
              util::Table::format(unpruned.val_accuracy * 100, 1) + "%)");

    // Measure all three under the three power levels.
    const engine::EngineConfig cfg = unpruned.workload.prune.engine;
    auto m_u_strong =
        bench::measure_inference(unpruned, bench::PowerLevel::kStrong, cfg);
    auto m_e_strong =
        bench::measure_inference(eprune, bench::PowerLevel::kStrong, cfg);
    auto m_i_strong =
        bench::measure_inference(iprune, bench::PowerLevel::kStrong, cfg);
    auto m_u_weak =
        bench::measure_inference(unpruned, bench::PowerLevel::kWeak, cfg);
    auto m_i_weak =
        bench::measure_inference(iprune, bench::PowerLevel::kWeak, cfg);
    auto m_e_weak =
        bench::measure_inference(eprune, bench::PowerLevel::kWeak, cfg);

    // G2: the criterion wins on its own objective.
    check(m_i_strong.acc_outputs <= m_e_strong.acc_outputs,
          app + " G2: iPrune acc outputs <= ePrune (" +
              std::to_string(m_i_strong.acc_outputs) + " vs " +
              std::to_string(m_e_strong.acc_outputs) + ")");

    // G3: latency ordering under both harvested levels.
    check(m_i_strong.latency_s < m_e_strong.latency_s &&
              m_e_strong.latency_s < m_u_strong.latency_s,
          app + " G3: strong-power latency iPrune < ePrune < Unpruned");
    check(m_i_weak.latency_s < m_e_weak.latency_s &&
              m_e_weak.latency_s < m_u_weak.latency_s,
          app + " G3: weak-power latency iPrune < ePrune < Unpruned");

    // G4: the improvement is consistent across power strengths.
    const double speedup_strong =
        m_u_strong.latency_s / m_i_strong.latency_s;
    const double speedup_weak = m_u_weak.latency_s / m_i_weak.latency_s;
    check(speedup_weak > speedup_strong * 0.8 &&
              speedup_weak < speedup_strong * 1.3,
          app + " G4: speedup consistent across power (" +
              util::Table::format(speedup_strong, 2) + "x strong, " +
              util::Table::format(speedup_weak, 2) + "x weak)");

    // G6: weaker power -> more failures, higher latency.
    check(m_u_weak.power_failures > m_u_strong.power_failures &&
              m_u_weak.latency_s > m_u_strong.latency_s,
          app + " G6: weak power raises failures and latency");
  }

  // G5: the motivating breakdown (HAR suffices).
  {
    apps::PreparedModel pm = apps::prepare_model(
        apps::WorkloadId::kHar, apps::Framework::kUnpruned);
    engine::EngineConfig immediate = pm.workload.prune.engine;
    immediate.mode = engine::PreservationMode::kImmediate;
    engine::EngineConfig accumulate = pm.workload.prune.engine;
    accumulate.mode = engine::PreservationMode::kAccumulateInVm;
    const auto m_imm = bench::measure_inference(
        pm, bench::PowerLevel::kContinuous, immediate, 2);
    const auto m_acc = bench::measure_inference(
        pm, bench::PowerLevel::kContinuous, accumulate, 2);
    check(m_imm.nvm_write_s > m_imm.lea_s &&
              m_imm.nvm_write_s > 0.3 * m_imm.latency_s,
          "G5: NVM writes dominate immediate-mode latency");
    check(m_acc.nvm_write_s < 0.2 * (m_acc.nvm_read_s + m_acc.lea_s),
          "G5: NVM writes are minor in accumulate-in-VM mode");
  }

  std::printf("\n%s (%d failure%s)\n",
              g_failures == 0 ? "REPRODUCTION GATE PASSED"
                              : "REPRODUCTION GATE FAILED",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
