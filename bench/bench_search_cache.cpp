// Evaluation-cache effectiveness (docs/search_cache.md): runs the
// resumable search driver twice against the same on-disk state — a cold
// leg that fills the CRC-sealed vault, then a warm leg that resumes from
// the journals and answers every evaluation from the cache — and reports
// the wall-clock ratio plus the cache statistics. Exits nonzero if the
// two legs disagree on the digest (the cache must never change results)
// or the warm leg misses the cache at all. Not part of the perf gate:
// the interesting number is the ratio, which is workload-dependent.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "search/run.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iprune;
  namespace fs = std::filesystem;

  const std::string state_dir =
      (fs::temp_directory_path() / "iprune_bench_search_cache").string();
  fs::remove_all(state_dir);

  search::RunConfig config;
  config.seed = 13;
  config.evaluations = 16;
  config.initial_random = 4;
  config.batch_size = 4;
  config.anneal_iterations = 3000;
  config.anneal_checkpoint_stride = 250;
  config.state_dir = state_dir;

  std::printf("== Evaluation cache: cold fill vs warm resume ==\n\n");

  auto t0 = std::chrono::steady_clock::now();
  const search::RunReport cold = search::run_search(config);
  const double cold_s = seconds_since(t0);

  config.resume = true;
  t0 = std::chrono::steady_clock::now();
  const search::RunReport warm = search::run_search(config);
  const double warm_s = seconds_since(t0);

  util::Table table({"Leg", "Wall (s)", "Hits", "Misses", "Hit rate",
                     "Vault records", "Digest"});
  char digest[17];
  auto row = [&](const char* name, double secs,
                 const search::RunReport& report) {
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(report.digest));
    table.row()
        .cell(name)
        .cell(secs, 3)
        .cell(report.cache.hits)
        .cell(report.cache.misses)
        .cell(report.cache.hit_rate(), 3)
        .cell(report.vault_records)
        .cell(digest);
  };
  row("cold", cold_s, cold);
  row("warm", warm_s, warm);
  table.print();

  std::printf("\ncold/warm wall-clock ratio: %.2fx\n",
              warm_s > 0.0 ? cold_s / warm_s : 0.0);

  fs::remove_all(state_dir);

  if (warm.digest != cold.digest) {
    std::fprintf(stderr, "FAIL: warm digest diverged from cold digest\n");
    return 1;
  }
  if (warm.cache.misses != 0) {
    std::fprintf(stderr, "FAIL: warm leg missed the cache %zu time(s)\n",
                 warm.cache.misses);
    return 1;
  }
  std::printf("cache parity: warm leg bit-identical, zero misses\n");
  return 0;
}
