// Reproduces paper Table I: the experimental environment. Prints the
// simulated hardware/energy configuration plus derived quantities (usable
// buffer energy, recharge times) so deviations from the paper's testbed
// are explicit.

#include <cstdio>

#include "bench_common.hpp"
#include "power/energy_buffer.hpp"

int main() {
  using namespace iprune;
  const device::DeviceConfig dev = device::DeviceConfig::msp430fr5994();
  const power::BufferConfig buf;
  const power::EnergyBuffer buffer(buf);

  std::puts("== Table I: Specifications of the (simulated) experimental "
            "environment ==\n");

  util::Table hw({"Hardware", "Value"});
  hw.row().cell("MCU").cell("TI MSP430FR5994 (simulated)");
  hw.row().cell("Volatile memory").cell(bench::kb(dev.memory.vm_bytes) +
                                        " SRAM");
  hw.row().cell("Non-volatile memory").cell(
      bench::kb(dev.memory.nvm_bytes) + " FRAM (Cypress CY15B104Q model)");
  hw.row().cell("Accelerator").cell("TI Low-Energy Accelerator model, " +
                                    util::Table::format(dev.lea.mac_us, 3) +
                                    " us/MAC");
  hw.row().cell("DMA invocation").cell(
      util::Table::format(dev.dma.invocation_us, 1) + " us/command");
  hw.row().cell("NVM read / write").cell(
      util::Table::format(dev.dma.read_us_per_byte, 2) + " / " +
      util::Table::format(dev.dma.write_us_per_byte, 2) + " us/byte");
  hw.row().cell("Reboot cost").cell(
      util::Table::format(dev.reboot_us / 1000.0, 1) + " ms");
  hw.print();

  std::puts("");
  util::Table energy({"Energy", "Value"});
  energy.row().cell("Boost converter").cell("TI BQ25504 model");
  energy.row().cell("Switch on/off voltage").cell(
      util::Table::format(buf.v_on, 1) + " V / " +
      util::Table::format(buf.v_off, 1) + " V");
  energy.row().cell("Capacitance").cell(
      util::Table::format(buf.capacitance_f * 1e6, 0) + " uF");
  energy.row().cell("Usable buffer energy").cell(
      util::Table::format(buffer.usable_j() * 1e6, 1) + " uJ/cycle");
  energy.row().cell("Continuous power").cell("1.65 W = 3.3 V x 0.5 A");
  energy.row().cell("Strong power").cell("8 mW = 1 V x 8 mA");
  energy.row().cell("Weak power").cell("4 mW = 1 V x 4 mA");
  energy.row().cell("Recharge time (strong)").cell(
      util::Table::format(buffer.usable_j() / 8e-3 * 1e3, 1) + " ms");
  energy.row().cell("Recharge time (weak)").cell(
      util::Table::format(buffer.usable_j() / 4e-3 * 1e3, 1) + " ms");
  energy.print();

  std::puts("");
  util::Table rails({"Power rail", "Draw"});
  rails.row().cell("Base active").cell(
      util::Table::format(dev.rails.base_active_w * 1e3, 1) + " mW");
  rails.row().cell("LEA active (extra)").cell(
      util::Table::format(dev.rails.lea_active_w * 1e3, 1) + " mW");
  rails.row().cell("NVM read (extra)").cell(
      util::Table::format(dev.rails.nvm_read_w * 1e3, 1) + " mW");
  rails.row().cell("NVM write (extra)").cell(
      util::Table::format(dev.rails.nvm_write_w * 1e3, 1) + " mW");
  rails.row().cell("CPU active (extra)").cell(
      util::Table::format(dev.rails.cpu_active_w * 1e3, 1) + " mW");
  rails.print();

  std::puts("\nNote: latency/energy constants are datasheet-plausible "
            "models, not silicon measurements (see DESIGN.md).");
  return 0;
}
