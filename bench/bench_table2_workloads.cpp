// Reproduces paper Table II: the TinyML applications used for evaluation —
// layer inventory, 16-bit model size, MACs, accelerator outputs (under the
// HAWAII+ tile plans), and the per-layer diversity of accelerator outputs.

#include <cstdio>

#include "bench_common.hpp"
#include "engine/lowering.hpp"

int main() {
  using namespace iprune;
  std::puts("== Table II: TinyML applications used for evaluation ==\n");

  util::Table table({"Application", "Layers", "Model Size", "MACs",
                     "Acc. Outputs", "Diversity (max/min)"});

  for (const apps::WorkloadId id : apps::all_workloads()) {
    apps::Workload w = apps::make_workload(id);

    std::size_t conv = 0, pool = 0, fc = 0;
    for (nn::NodeId node = 1; node < w.graph.node_count(); ++node) {
      switch (w.graph.layer(node).kind()) {
        case nn::LayerKind::kConv2d:
          ++conv;
          break;
        case nn::LayerKind::kMaxPool:
        case nn::LayerKind::kAvgPool:
          ++pool;
          break;
        case nn::LayerKind::kDense:
          ++fc;
          break;
        default:
          break;
      }
    }
    std::string layers;
    if (conv > 0) {
      layers += "CONV x " + std::to_string(conv);
    }
    if (pool > 0) {
      layers += (layers.empty() ? "" : ", ") + std::string("POOL x ") +
                std::to_string(pool);
    }
    if (fc > 0) {
      layers += (layers.empty() ? "" : ", ") + std::string("FC x ") +
                std::to_string(fc);
    }

    const auto prunable = engine::prunable_layers(
        w.graph, w.prune.engine, w.prune.backend.device.memory);
    std::size_t macs = 0, outputs = 0;
    std::size_t min_out = SIZE_MAX, max_out = 0;
    for (const auto& layer : prunable) {
      macs += layer.macs();
      const std::size_t out = layer.acc_outputs();
      outputs += out;
      min_out = std::min(min_out, out);
      max_out = std::max(max_out, out);
    }
    const double diversity =
        static_cast<double>(max_out) / static_cast<double>(min_out);

    table.row()
        .cell(w.name + ": " + w.task)
        .cell(layers)
        .cell(bench::kb(w.graph.parameter_count() * 2))
        .cell(bench::kilo(macs))
        .cell(bench::kilo(outputs))
        .cell(util::Table::format(diversity, 1) + "x");
  }
  table.print();

  std::puts("\nPer-layer accelerator outputs (engine tile plans):");
  for (const apps::WorkloadId id : apps::all_workloads()) {
    apps::Workload w = apps::make_workload(id);
    const auto prunable = engine::prunable_layers(
        w.graph, w.prune.engine, w.prune.backend.device.memory);
    util::Table detail({"Layer (" + w.name + ")", "R", "S", "K", "Bk",
                        "MACs", "Acc. Outputs"});
    for (const auto& layer : prunable) {
      detail.row()
          .cell(layer.name)
          .cell(layer.plan.rows)
          .cell(layer.plan.cols)
          .cell(layer.plan.k)
          .cell(layer.plan.bk)
          .cell(layer.macs())
          .cell(layer.acc_outputs());
    }
    detail.print();
    std::puts("");
  }
  return 0;
}
