// Reproduces paper Table III: characteristics of the pruned models.
// For each application and framework (Unpruned / ePrune / iPrune):
// validation accuracy, deployed model size (BSR values + indices +
// biases), MACs, and accelerator outputs — plus the reduction of iPrune
// relative to ePrune, which is the paper's headline observation.
//
// First run trains + prunes everything (minutes); results are cached in
// ./artifacts so subsequent runs (and bench_fig5) are fast.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace iprune;
  std::puts("== Table III: Characteristics of the pruned models ==");
  std::puts("(cold run trains + prunes all models; cached in ./artifacts)\n");

  util::Table table({"App", "Model", "Accuracy", "Model Size", "MACs",
                     "Acc. Outputs"});
  struct Row {
    std::size_t size, macs, outputs;
  };

  for (const apps::WorkloadId id : apps::all_workloads()) {
    Row eprune{}, iprune{};
    for (const apps::Framework fw : apps::all_frameworks()) {
      apps::PreparedModel pm = apps::prepare_model(id, fw);
      // Deploy once (on a scratch device) to get the true BSR size.
      const auto m = bench::measure_inference(
          pm, bench::PowerLevel::kContinuous, pm.workload.prune.engine,
          /*count=*/1);
      table.row()
          .cell(pm.workload.name)
          .cell(apps::framework_name(fw))
          .cell(util::Table::format(pm.val_accuracy * 100.0, 1) + "%")
          .cell(bench::kb(m.model_bytes))
          .cell(bench::kilo(m.macs))
          .cell(bench::kilo(m.acc_outputs));
      if (fw == apps::Framework::kEPrune) {
        eprune = {m.model_bytes, m.macs, m.acc_outputs};
      } else if (fw == apps::Framework::kIPrune) {
        iprune = {m.model_bytes, m.macs, m.acc_outputs};
      }
    }
    std::printf(
        "  -> %s: iPrune vs ePrune: size %+.0f%%, MACs %+.0f%%, "
        "acc. outputs %+.0f%%\n",
        apps::workload_name(id),
        100.0 * (static_cast<double>(iprune.size) /
                     static_cast<double>(eprune.size) - 1.0),
        100.0 * (static_cast<double>(iprune.macs) /
                     static_cast<double>(eprune.macs) - 1.0),
        100.0 * (static_cast<double>(iprune.outputs) /
                     static_cast<double>(eprune.outputs) - 1.0));
  }
  std::puts("");
  table.print();
  std::puts(
      "\nExpected shape (paper): both frameworks shrink all three models "
      "with accuracy within epsilon of the baseline; iPrune removes more "
      "accelerator outputs than ePrune, most on high-diversity models.");
  return 0;
}
