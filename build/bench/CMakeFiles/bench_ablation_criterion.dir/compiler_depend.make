# Empty compiler generated dependencies file for bench_ablation_criterion.
# This may be replaced when dependencies are built.
