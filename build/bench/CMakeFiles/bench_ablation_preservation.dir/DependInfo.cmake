
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_preservation.cpp" "bench/CMakeFiles/bench_ablation_preservation.dir/bench_ablation_preservation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_preservation.dir/bench_ablation_preservation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/iprune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/iprune_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iprune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/iprune_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/iprune_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/iprune_device.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/iprune_power.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iprune_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iprune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
