file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preservation.dir/bench_ablation_preservation.cpp.o"
  "CMakeFiles/bench_ablation_preservation.dir/bench_ablation_preservation.cpp.o.d"
  "bench_ablation_preservation"
  "bench_ablation_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
