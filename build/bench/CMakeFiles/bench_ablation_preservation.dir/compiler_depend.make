# Empty compiler generated dependencies file for bench_ablation_preservation.
# This may be replaced when dependencies are built.
