file(REMOVE_RECURSE
  "CMakeFiles/bench_repro_gate.dir/bench_repro_gate.cpp.o"
  "CMakeFiles/bench_repro_gate.dir/bench_repro_gate.cpp.o.d"
  "bench_repro_gate"
  "bench_repro_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repro_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
