# Empty dependencies file for bench_repro_gate.
# This may be replaced when dependencies are built.
