file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pruned_models.dir/bench_table3_pruned_models.cpp.o"
  "CMakeFiles/bench_table3_pruned_models.dir/bench_table3_pruned_models.cpp.o.d"
  "bench_table3_pruned_models"
  "bench_table3_pruned_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pruned_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
