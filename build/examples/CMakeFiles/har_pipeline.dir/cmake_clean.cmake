file(REMOVE_RECURSE
  "CMakeFiles/har_pipeline.dir/har_pipeline.cpp.o"
  "CMakeFiles/har_pipeline.dir/har_pipeline.cpp.o.d"
  "har_pipeline"
  "har_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
