# Empty dependencies file for har_pipeline.
# This may be replaced when dependencies are built.
