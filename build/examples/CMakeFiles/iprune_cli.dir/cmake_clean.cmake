file(REMOVE_RECURSE
  "CMakeFiles/iprune_cli.dir/iprune_cli.cpp.o"
  "CMakeFiles/iprune_cli.dir/iprune_cli.cpp.o.d"
  "iprune_cli"
  "iprune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
