# Empty dependencies file for iprune_cli.
# This may be replaced when dependencies are built.
