file(REMOVE_RECURSE
  "CMakeFiles/solar_trace_study.dir/solar_trace_study.cpp.o"
  "CMakeFiles/solar_trace_study.dir/solar_trace_study.cpp.o.d"
  "solar_trace_study"
  "solar_trace_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_trace_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
