# Empty dependencies file for solar_trace_study.
# This may be replaced when dependencies are built.
