file(REMOVE_RECURSE
  "CMakeFiles/sparse_kws.dir/sparse_kws.cpp.o"
  "CMakeFiles/sparse_kws.dir/sparse_kws.cpp.o.d"
  "sparse_kws"
  "sparse_kws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_kws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
