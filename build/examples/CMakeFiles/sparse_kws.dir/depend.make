# Empty dependencies file for sparse_kws.
# This may be replaced when dependencies are built.
