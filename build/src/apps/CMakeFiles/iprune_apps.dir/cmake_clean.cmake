file(REMOVE_RECURSE
  "CMakeFiles/iprune_apps.dir/artifacts.cpp.o"
  "CMakeFiles/iprune_apps.dir/artifacts.cpp.o.d"
  "CMakeFiles/iprune_apps.dir/models.cpp.o"
  "CMakeFiles/iprune_apps.dir/models.cpp.o.d"
  "CMakeFiles/iprune_apps.dir/workloads.cpp.o"
  "CMakeFiles/iprune_apps.dir/workloads.cpp.o.d"
  "libiprune_apps.a"
  "libiprune_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
