file(REMOVE_RECURSE
  "libiprune_apps.a"
)
