# Empty compiler generated dependencies file for iprune_apps.
# This may be replaced when dependencies are built.
