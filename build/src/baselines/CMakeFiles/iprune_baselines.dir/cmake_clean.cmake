file(REMOVE_RECURSE
  "CMakeFiles/iprune_baselines.dir/eprune.cpp.o"
  "CMakeFiles/iprune_baselines.dir/eprune.cpp.o.d"
  "CMakeFiles/iprune_baselines.dir/oneshot.cpp.o"
  "CMakeFiles/iprune_baselines.dir/oneshot.cpp.o.d"
  "libiprune_baselines.a"
  "libiprune_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
