file(REMOVE_RECURSE
  "libiprune_baselines.a"
)
