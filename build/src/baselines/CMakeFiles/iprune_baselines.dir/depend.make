# Empty dependencies file for iprune_baselines.
# This may be replaced when dependencies are built.
