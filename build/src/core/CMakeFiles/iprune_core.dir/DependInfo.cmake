
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch_search.cpp" "src/core/CMakeFiles/iprune_core.dir/arch_search.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/arch_search.cpp.o.d"
  "/root/repo/src/core/block_pruner.cpp" "src/core/CMakeFiles/iprune_core.dir/block_pruner.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/block_pruner.cpp.o.d"
  "/root/repo/src/core/compress.cpp" "src/core/CMakeFiles/iprune_core.dir/compress.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/compress.cpp.o.d"
  "/root/repo/src/core/criterion.cpp" "src/core/CMakeFiles/iprune_core.dir/criterion.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/criterion.cpp.o.d"
  "/root/repo/src/core/pruner.cpp" "src/core/CMakeFiles/iprune_core.dir/pruner.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/pruner.cpp.o.d"
  "/root/repo/src/core/ratio_search.cpp" "src/core/CMakeFiles/iprune_core.dir/ratio_search.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/ratio_search.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/iprune_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/iprune_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/iprune_core.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/iprune_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iprune_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iprune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/iprune_device.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/iprune_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
