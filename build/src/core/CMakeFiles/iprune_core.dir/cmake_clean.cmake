file(REMOVE_RECURSE
  "CMakeFiles/iprune_core.dir/arch_search.cpp.o"
  "CMakeFiles/iprune_core.dir/arch_search.cpp.o.d"
  "CMakeFiles/iprune_core.dir/block_pruner.cpp.o"
  "CMakeFiles/iprune_core.dir/block_pruner.cpp.o.d"
  "CMakeFiles/iprune_core.dir/compress.cpp.o"
  "CMakeFiles/iprune_core.dir/compress.cpp.o.d"
  "CMakeFiles/iprune_core.dir/criterion.cpp.o"
  "CMakeFiles/iprune_core.dir/criterion.cpp.o.d"
  "CMakeFiles/iprune_core.dir/pruner.cpp.o"
  "CMakeFiles/iprune_core.dir/pruner.cpp.o.d"
  "CMakeFiles/iprune_core.dir/ratio_search.cpp.o"
  "CMakeFiles/iprune_core.dir/ratio_search.cpp.o.d"
  "CMakeFiles/iprune_core.dir/sensitivity.cpp.o"
  "CMakeFiles/iprune_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/iprune_core.dir/snapshot.cpp.o"
  "CMakeFiles/iprune_core.dir/snapshot.cpp.o.d"
  "libiprune_core.a"
  "libiprune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
