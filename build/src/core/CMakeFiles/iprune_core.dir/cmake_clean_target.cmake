file(REMOVE_RECURSE
  "libiprune_core.a"
)
