# Empty compiler generated dependencies file for iprune_core.
# This may be replaced when dependencies are built.
