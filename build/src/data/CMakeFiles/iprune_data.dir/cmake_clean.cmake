file(REMOVE_RECURSE
  "CMakeFiles/iprune_data.dir/dataset.cpp.o"
  "CMakeFiles/iprune_data.dir/dataset.cpp.o.d"
  "CMakeFiles/iprune_data.dir/synthetic.cpp.o"
  "CMakeFiles/iprune_data.dir/synthetic.cpp.o.d"
  "libiprune_data.a"
  "libiprune_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
