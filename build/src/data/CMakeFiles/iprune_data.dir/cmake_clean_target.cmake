file(REMOVE_RECURSE
  "libiprune_data.a"
)
