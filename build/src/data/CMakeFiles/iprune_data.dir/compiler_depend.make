# Empty compiler generated dependencies file for iprune_data.
# This may be replaced when dependencies are built.
