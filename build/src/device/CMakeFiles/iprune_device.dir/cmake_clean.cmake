file(REMOVE_RECURSE
  "CMakeFiles/iprune_device.dir/msp430.cpp.o"
  "CMakeFiles/iprune_device.dir/msp430.cpp.o.d"
  "CMakeFiles/iprune_device.dir/nvm.cpp.o"
  "CMakeFiles/iprune_device.dir/nvm.cpp.o.d"
  "libiprune_device.a"
  "libiprune_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
