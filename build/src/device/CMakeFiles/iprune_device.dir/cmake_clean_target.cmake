file(REMOVE_RECURSE
  "libiprune_device.a"
)
