# Empty compiler generated dependencies file for iprune_device.
# This may be replaced when dependencies are built.
