
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bsr.cpp" "src/engine/CMakeFiles/iprune_engine.dir/bsr.cpp.o" "gcc" "src/engine/CMakeFiles/iprune_engine.dir/bsr.cpp.o.d"
  "/root/repo/src/engine/deploy.cpp" "src/engine/CMakeFiles/iprune_engine.dir/deploy.cpp.o" "gcc" "src/engine/CMakeFiles/iprune_engine.dir/deploy.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/iprune_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/iprune_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/lowering.cpp" "src/engine/CMakeFiles/iprune_engine.dir/lowering.cpp.o" "gcc" "src/engine/CMakeFiles/iprune_engine.dir/lowering.cpp.o.d"
  "/root/repo/src/engine/tile_plan.cpp" "src/engine/CMakeFiles/iprune_engine.dir/tile_plan.cpp.o" "gcc" "src/engine/CMakeFiles/iprune_engine.dir/tile_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/iprune_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/iprune_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iprune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/iprune_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
