file(REMOVE_RECURSE
  "CMakeFiles/iprune_engine.dir/bsr.cpp.o"
  "CMakeFiles/iprune_engine.dir/bsr.cpp.o.d"
  "CMakeFiles/iprune_engine.dir/deploy.cpp.o"
  "CMakeFiles/iprune_engine.dir/deploy.cpp.o.d"
  "CMakeFiles/iprune_engine.dir/engine.cpp.o"
  "CMakeFiles/iprune_engine.dir/engine.cpp.o.d"
  "CMakeFiles/iprune_engine.dir/lowering.cpp.o"
  "CMakeFiles/iprune_engine.dir/lowering.cpp.o.d"
  "CMakeFiles/iprune_engine.dir/tile_plan.cpp.o"
  "CMakeFiles/iprune_engine.dir/tile_plan.cpp.o.d"
  "libiprune_engine.a"
  "libiprune_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
