file(REMOVE_RECURSE
  "libiprune_engine.a"
)
