# Empty dependencies file for iprune_engine.
# This may be replaced when dependencies are built.
