
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/iprune_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/concat.cpp" "src/nn/CMakeFiles/iprune_nn.dir/concat.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/concat.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/iprune_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/iprune_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/iprune_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/iprune_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/iprune_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/iprune_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/iprune_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/iprune_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/iprune_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/iprune_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/iprune_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/nn/CMakeFiles/iprune_nn.dir/summary.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/summary.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/iprune_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/iprune_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/iprune_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iprune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
