file(REMOVE_RECURSE
  "libiprune_nn.a"
)
