# Empty dependencies file for iprune_nn.
# This may be replaced when dependencies are built.
