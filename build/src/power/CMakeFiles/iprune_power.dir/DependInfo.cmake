
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy_buffer.cpp" "src/power/CMakeFiles/iprune_power.dir/energy_buffer.cpp.o" "gcc" "src/power/CMakeFiles/iprune_power.dir/energy_buffer.cpp.o.d"
  "/root/repo/src/power/manager.cpp" "src/power/CMakeFiles/iprune_power.dir/manager.cpp.o" "gcc" "src/power/CMakeFiles/iprune_power.dir/manager.cpp.o.d"
  "/root/repo/src/power/supply.cpp" "src/power/CMakeFiles/iprune_power.dir/supply.cpp.o" "gcc" "src/power/CMakeFiles/iprune_power.dir/supply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
