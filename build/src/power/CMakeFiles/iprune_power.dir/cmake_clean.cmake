file(REMOVE_RECURSE
  "CMakeFiles/iprune_power.dir/energy_buffer.cpp.o"
  "CMakeFiles/iprune_power.dir/energy_buffer.cpp.o.d"
  "CMakeFiles/iprune_power.dir/manager.cpp.o"
  "CMakeFiles/iprune_power.dir/manager.cpp.o.d"
  "CMakeFiles/iprune_power.dir/supply.cpp.o"
  "CMakeFiles/iprune_power.dir/supply.cpp.o.d"
  "libiprune_power.a"
  "libiprune_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
