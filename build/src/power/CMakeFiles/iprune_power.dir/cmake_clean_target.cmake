file(REMOVE_RECURSE
  "libiprune_power.a"
)
