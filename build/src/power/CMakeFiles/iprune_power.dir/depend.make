# Empty dependencies file for iprune_power.
# This may be replaced when dependencies are built.
