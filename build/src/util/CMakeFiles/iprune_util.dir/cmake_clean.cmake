file(REMOVE_RECURSE
  "CMakeFiles/iprune_util.dir/csv.cpp.o"
  "CMakeFiles/iprune_util.dir/csv.cpp.o.d"
  "CMakeFiles/iprune_util.dir/log.cpp.o"
  "CMakeFiles/iprune_util.dir/log.cpp.o.d"
  "CMakeFiles/iprune_util.dir/rng.cpp.o"
  "CMakeFiles/iprune_util.dir/rng.cpp.o.d"
  "CMakeFiles/iprune_util.dir/table.cpp.o"
  "CMakeFiles/iprune_util.dir/table.cpp.o.d"
  "libiprune_util.a"
  "libiprune_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iprune_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
