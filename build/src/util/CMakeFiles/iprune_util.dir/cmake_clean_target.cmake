file(REMOVE_RECURSE
  "libiprune_util.a"
)
