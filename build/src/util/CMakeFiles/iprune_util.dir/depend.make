# Empty dependencies file for iprune_util.
# This may be replaced when dependencies are built.
