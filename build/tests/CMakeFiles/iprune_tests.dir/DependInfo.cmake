
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/models_test.cpp" "tests/CMakeFiles/iprune_tests.dir/apps/models_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/apps/models_test.cpp.o.d"
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/iprune_tests.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/core/arch_search_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/arch_search_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/arch_search_test.cpp.o.d"
  "/root/repo/tests/core/block_pruner_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/block_pruner_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/block_pruner_test.cpp.o.d"
  "/root/repo/tests/core/compress_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/compress_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/compress_test.cpp.o.d"
  "/root/repo/tests/core/criterion_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/criterion_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/criterion_test.cpp.o.d"
  "/root/repo/tests/core/pruner_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/pruner_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/pruner_test.cpp.o.d"
  "/root/repo/tests/core/ratio_search_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/ratio_search_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/ratio_search_test.cpp.o.d"
  "/root/repo/tests/core/sensitivity_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/sensitivity_test.cpp.o.d"
  "/root/repo/tests/core/snapshot_test.cpp" "tests/CMakeFiles/iprune_tests.dir/core/snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/core/snapshot_test.cpp.o.d"
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/iprune_tests.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/synthetic_test.cpp" "tests/CMakeFiles/iprune_tests.dir/data/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/data/synthetic_test.cpp.o.d"
  "/root/repo/tests/device/msp430_test.cpp" "tests/CMakeFiles/iprune_tests.dir/device/msp430_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/device/msp430_test.cpp.o.d"
  "/root/repo/tests/device/nvm_test.cpp" "tests/CMakeFiles/iprune_tests.dir/device/nvm_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/device/nvm_test.cpp.o.d"
  "/root/repo/tests/engine/bsr_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/bsr_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/bsr_test.cpp.o.d"
  "/root/repo/tests/engine/deploy_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/deploy_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/deploy_test.cpp.o.d"
  "/root/repo/tests/engine/engine_property_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/engine_property_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/engine_property_test.cpp.o.d"
  "/root/repo/tests/engine/engine_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/engine_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/engine_test.cpp.o.d"
  "/root/repo/tests/engine/lowering_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/lowering_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/lowering_test.cpp.o.d"
  "/root/repo/tests/engine/random_graph_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/random_graph_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/random_graph_test.cpp.o.d"
  "/root/repo/tests/engine/tile_plan_test.cpp" "tests/CMakeFiles/iprune_tests.dir/engine/tile_plan_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/engine/tile_plan_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/iprune_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/nn/gemm_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/gemm_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/graph_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/graph_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/graph_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/optimizer_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/optimizer_test.cpp.o.d"
  "/root/repo/tests/nn/quantize_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/quantize_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/quantize_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/serialize_test.cpp.o.d"
  "/root/repo/tests/nn/summary_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/summary_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/summary_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/tensor_test.cpp.o.d"
  "/root/repo/tests/nn/trainer_test.cpp" "tests/CMakeFiles/iprune_tests.dir/nn/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/nn/trainer_test.cpp.o.d"
  "/root/repo/tests/power/power_test.cpp" "tests/CMakeFiles/iprune_tests.dir/power/power_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/power/power_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/iprune_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/iprune_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/iprune_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/iprune_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/iprune_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/iprune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/iprune_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iprune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/iprune_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/iprune_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/iprune_device.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/iprune_power.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iprune_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iprune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
