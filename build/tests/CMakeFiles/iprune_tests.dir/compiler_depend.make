# Empty compiler generated dependencies file for iprune_tests.
# This may be replaced when dependencies are built.
