// Full HAR pipeline on the paper's workload registry: prepares (or loads
// from the artifact cache) all three HAR variants — Unpruned, ePrune,
// iPrune — deploys each to the simulated device, and compares them under
// all three power strengths. This is the per-application slice of the
// Table III + Figure 5 story.
//
// Run: ./build/examples/har_pipeline
// (first run trains and prunes; later runs reuse ./artifacts)

#include <cstdio>
#include <vector>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "power/supply.hpp"
#include "util/table.hpp"

using namespace iprune;

namespace {

nn::Tensor sample_of(const data::Dataset& d, std::size_t index) {
  nn::Tensor s(d.sample_shape());
  const std::size_t elems = s.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    s[i] = d.inputs[index * elems + i];
  }
  return s;
}

}  // namespace

int main() {
  std::puts("== HAR end-to-end pipeline ==\n");

  std::vector<apps::PreparedModel> variants;
  for (const apps::Framework fw : apps::all_frameworks()) {
    variants.push_back(apps::prepare_model(apps::WorkloadId::kHar, fw));
    const apps::PreparedModel& pm = variants.back();
    std::printf("%-9s accuracy %.1f%%%s\n", apps::framework_name(fw),
                pm.val_accuracy * 100.0,
                pm.from_cache ? "  (from artifact cache)" : "");
    if (pm.outcome.has_value()) {
      std::printf("          pruning ran %zu iterations, %zu strikes\n",
                  pm.outcome->history.size(), pm.outcome->strikes);
    }
  }

  struct Level {
    const char* name;
    std::unique_ptr<power::PowerSupply> (*make)();
  };
  const Level levels[] = {
      {"continuous", &power::SupplyPresets::continuous},
      {"strong 8mW", &power::SupplyPresets::strong},
      {"weak 4mW", &power::SupplyPresets::weak},
  };

  util::Table table({"Power", "Model", "Size (B)", "Acc. outputs",
                     "Latency (s)", "Failures", "Energy (mJ)"});
  for (const Level& level : levels) {
    for (apps::PreparedModel& pm : variants) {
      device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                               level.make());
      std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
      const nn::Tensor calib =
          nn::gather_rows(pm.workload.val.inputs, calib_idx);
      engine::DeployedModel model(pm.workload.graph,
                                  pm.workload.prune.engine, dev, calib);
      engine::IntermittentEngine eng(model, dev);

      engine::InferenceStats avg{};
      constexpr std::size_t kRuns = 3;
      for (std::size_t n = 0; n < kRuns; ++n) {
        const auto r = eng.run(sample_of(pm.workload.val, n));
        avg.latency_s += r.stats.latency_s / kRuns;
        avg.energy_j += r.stats.energy_j / kRuns;
        avg.power_failures += r.stats.power_failures / kRuns;
      }
      table.row()
          .cell(level.name)
          .cell(apps::framework_name(pm.framework))
          .cell(model.model_bytes())
          .cell(model.total_acc_outputs())
          .cell(util::Table::format(avg.latency_s, 3))
          .cell(avg.power_failures)
          .cell(util::Table::format(avg.energy_j * 1e3, 2));
    }
  }
  std::puts("");
  table.print();
  return 0;
}
