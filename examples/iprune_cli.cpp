// Command-line driver: deploy any cached workload variant to the
// simulated device and measure intermittent inference under a chosen
// power level, preservation mode, and accelerator depth.
//
//   iprune_cli [--workload sqn|har|cks] [--framework unpruned|eprune|iprune]
//              [--power continuous|strong|weak|<milliwatts>]
//              [--mode immediate|task|accumulate]
//              [--bk <depth>] [--runs <n>]
//
// Example:
//   ./build/examples/iprune_cli --workload cks --framework iprune \
//       --power 2.5 --mode task --runs 5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "power/supply.hpp"
#include "util/table.hpp"

using namespace iprune;

namespace {

struct Options {
  apps::WorkloadId workload = apps::WorkloadId::kHar;
  apps::Framework framework = apps::Framework::kIPrune;
  std::string power = "strong";
  std::string mode = "immediate";
  std::size_t bk = 0;  // 0 = workload default
  std::size_t runs = 3;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload sqn|har|cks] "
      "[--framework unpruned|eprune|iprune]\n"
      "          [--power continuous|strong|weak|<milliwatts>] "
      "[--mode immediate|task|accumulate]\n"
      "          [--bk <depth>] [--runs <n>]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      usage(argv[0]);
    }
    const std::string value = argv[++i];
    if (flag == "--workload") {
      if (value == "sqn") {
        opt.workload = apps::WorkloadId::kSqn;
      } else if (value == "har") {
        opt.workload = apps::WorkloadId::kHar;
      } else if (value == "cks") {
        opt.workload = apps::WorkloadId::kCks;
      } else {
        usage(argv[0]);
      }
    } else if (flag == "--framework") {
      if (value == "unpruned") {
        opt.framework = apps::Framework::kUnpruned;
      } else if (value == "eprune") {
        opt.framework = apps::Framework::kEPrune;
      } else if (value == "iprune") {
        opt.framework = apps::Framework::kIPrune;
      } else {
        usage(argv[0]);
      }
    } else if (flag == "--power") {
      opt.power = value;
    } else if (flag == "--mode") {
      opt.mode = value;
    } else if (flag == "--bk") {
      opt.bk = static_cast<std::size_t>(std::strtoul(value.c_str(),
                                                     nullptr, 10));
    } else if (flag == "--runs") {
      opt.runs = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr,
                                                   10)));
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

std::unique_ptr<power::PowerSupply> make_supply(const std::string& name) {
  if (name == "continuous") {
    return power::SupplyPresets::continuous();
  }
  if (name == "strong") {
    return power::SupplyPresets::strong();
  }
  if (name == "weak") {
    return power::SupplyPresets::weak();
  }
  const double mw = std::strtod(name.c_str(), nullptr);
  if (mw <= 0.0) {
    std::fprintf(stderr, "bad --power value '%s'\n", name.c_str());
    std::exit(2);
  }
  return std::make_unique<power::ConstantSupply>(mw * 1e-3);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  apps::PreparedModel pm = apps::prepare_model(opt.workload, opt.framework);
  engine::EngineConfig cfg = pm.workload.prune.engine;
  if (opt.mode == "immediate") {
    cfg.mode = engine::PreservationMode::kImmediate;
  } else if (opt.mode == "task") {
    cfg.mode = engine::PreservationMode::kTaskAtomic;
  } else if (opt.mode == "accumulate") {
    cfg.mode = engine::PreservationMode::kAccumulateInVm;
  } else {
    usage(argv[0]);
  }
  if (opt.bk > 0) {
    cfg.max_k_per_op = opt.bk;
  }

  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           make_supply(opt.power));
  std::vector<std::size_t> calib_idx = {0, 1, 2, 3, 4, 5, 6, 7};
  const nn::Tensor calib =
      nn::gather_rows(pm.workload.val.inputs, calib_idx);
  engine::DeployedModel model(pm.workload.graph, cfg, dev, calib);
  engine::IntermittentEngine eng(model, dev);

  std::printf(
      "%s / %s | power=%s mode=%s Bk=%zu\n"
      "host accuracy %.1f%% | model %zu B | MACs %zu | acc outputs %zu\n\n",
      pm.workload.name.c_str(), apps::framework_name(opt.framework),
      opt.power.c_str(), opt.mode.c_str(), cfg.max_k_per_op,
      pm.val_accuracy * 100.0, model.model_bytes(), model.total_macs(),
      model.total_acc_outputs());

  util::Table table({"Run", "Latency (s)", "On (s)", "Off (s)", "Failures",
                     "Re-exec jobs", "Energy (mJ)", "Top-1 / label"});
  std::size_t correct = 0;
  for (std::size_t n = 0; n < opt.runs; ++n) {
    nn::Tensor sample(pm.workload.val.sample_shape());
    const std::size_t elems = sample.numel();
    for (std::size_t i = 0; i < elems; ++i) {
      sample[i] = pm.workload.val.inputs[n * elems + i];
    }
    const auto result = eng.run(sample);
    if (!result.stats.completed) {
      std::printf("run %zu: DID NOT COMPLETE (restarted %zu times)\n", n,
                  result.stats.restarts);
      continue;
    }
    const auto best = static_cast<int>(
        std::max_element(result.logits.begin(), result.logits.end()) -
        result.logits.begin());
    correct += best == pm.workload.val.labels[n] ? 1 : 0;
    table.row()
        .cell(n)
        .cell(util::Table::format(result.stats.latency_s, 4))
        .cell(util::Table::format(result.stats.on_s, 4))
        .cell(util::Table::format(result.stats.off_s, 4))
        .cell(result.stats.power_failures)
        .cell(result.stats.reexecuted_jobs)
        .cell(util::Table::format(result.stats.energy_j * 1e3, 3))
        .cell(std::to_string(best) + " / " +
              std::to_string(pm.workload.val.labels[n]));
  }
  table.print();
  std::printf("\non-device top-1: %zu/%zu correct\n", correct, opt.runs);
  return 0;
}
