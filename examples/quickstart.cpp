// Quickstart: the whole iPrune pipeline on a small model in ~a minute.
//
//   1. Build a tiny CNN and train it on a synthetic dataset.
//   2. Prune it with iPrune (accelerator-output criterion, SA allocation,
//      block granularity, iterative with the epsilon threshold).
//   3. Deploy to the simulated MSP430+LEA device and run one inference
//      under harvested power, printing the latency breakdown.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/summary.hpp"
#include "nn/trainer.hpp"
#include "power/supply.hpp"

using namespace iprune;

int main() {
  // --- 1. model + data -------------------------------------------------
  util::Rng rng(42);
  nn::Graph model({3, 1, 128});  // tri-axial accelerometer window
  auto c1 = model.add(std::make_unique<nn::Conv2d>(
                          "conv1",
                          nn::Conv2dSpec{.in_channels = 3,
                                         .out_channels = 12,
                                         .kernel_h = 1, .kernel_w = 5,
                                         .pad_h = 0, .pad_w = 2},
                          rng),
                      {model.input()});
  auto r1 = model.add(std::make_unique<nn::Relu>("relu1"), {c1});
  auto p1 = model.add(
      std::make_unique<nn::MaxPool2d>("pool1", nn::PoolSpec{1, 4, 4}), {r1});
  auto flat = model.add(std::make_unique<nn::Flatten>("flatten"), {p1});
  auto fc = model.add(std::make_unique<nn::Dense>("fc", 12 * 32, 6, rng),
                      {flat});
  model.set_output(fc);

  data::SyntheticConfig data_cfg;
  data_cfg.samples = 1200;
  data_cfg.noise = 0.8f;
  util::Rng split_rng(7);
  const data::Split data =
      data::split_dataset(data::make_har_dataset(data_cfg), 0.8, split_rng);

  std::fputs(nn::summary_table(model).c_str(), stdout);

  nn::Trainer trainer(model);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 8;
  std::puts("training...");
  trainer.train(data.train.inputs, data.train.labels, train_cfg);
  const double base_acc =
      trainer.evaluate(data.val.inputs, data.val.labels).accuracy;
  std::printf("baseline accuracy: %.1f%%\n", base_acc * 100.0);

  // --- 2. intermittent-aware pruning -----------------------------------
  core::PruneConfig prune_cfg;  // paper defaults: eps=1%, gamma_hat=40%
  prune_cfg.max_iterations = 5;
  prune_cfg.finetune.epochs = 3;
  core::IterativePruner pruner(prune_cfg,
                               std::make_unique<core::IPruneAllocator>());
  std::puts("pruning with iPrune...");
  const core::PruneOutcome outcome =
      pruner.run(model, data.train.inputs, data.train.labels,
                 data.val.inputs, data.val.labels);
  std::printf(
      "pruned: accuracy %.1f%% (baseline %.1f%%), weights %zu alive, "
      "accelerator outputs %zu\n",
      outcome.final_accuracy * 100.0, outcome.baseline_accuracy * 100.0,
      outcome.final_alive_weights, outcome.final_acc_outputs);
  for (const auto& it : outcome.history) {
    std::printf("  iter %zu: Gamma=%.2f, accuracy %.1f%%%s\n", it.iteration,
                it.gamma, it.accuracy_after_finetune * 100.0,
                it.strike ? " (strike)" : "");
  }

  // --- 3. deploy and run intermittently ---------------------------------
  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              power::SupplyPresets::strong());
  std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
  const nn::Tensor calib = nn::gather_rows(data.val.inputs, calib_idx);
  engine::EngineConfig engine_cfg;
  engine::DeployedModel deployed(model, engine_cfg, device, calib);
  engine::IntermittentEngine engine(deployed, device);

  nn::Tensor sample(data.val.sample_shape());
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = data.val.inputs[i];
  }
  const engine::InferenceResult result = engine.run(sample);

  std::printf(
      "\nintermittent inference under 8 mW harvested power:\n"
      "  model size on device : %zu bytes (BSR)\n"
      "  latency              : %.3f s (on %.3f s, recharging %.3f s)\n"
      "  power failures       : %zu (all recovered)\n"
      "  accelerator outputs  : %zu preserved to NVM\n"
      "  predicted class      : %d (true label %d)\n",
      deployed.model_bytes(), result.stats.latency_s, result.stats.on_s,
      result.stats.off_s, result.stats.power_failures,
      result.stats.acc_outputs,
      static_cast<int>(std::max_element(result.logits.begin(),
                                        result.logits.end()) -
                       result.logits.begin()),
      data.val.labels[0]);
  return 0;
}
