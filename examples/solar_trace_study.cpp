// Trace-driven power study: runs intermittent inference continuously
// against a time-varying solar harvest profile (half-sine day curve) and
// reports how inference latency and power-failure rate track the
// instantaneous harvest power over the "day". This exercises the
// TraceSupply integration path of the power manager — the scenario the
// paper's demo video (solar-powered inference) points at.
//
// Run: ./build/examples/solar_trace_study

#include <cstdio>
#include <memory>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "power/supply.hpp"
#include "util/table.hpp"

using namespace iprune;

namespace {

nn::Tensor sample_of(const data::Dataset& d, std::size_t index) {
  nn::Tensor s(d.sample_shape());
  const std::size_t elems = s.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    s[i] = d.inputs[index * elems + i];
  }
  return s;
}

}  // namespace

int main() {
  std::puts("== Solar-trace intermittent inference study (HAR / iPrune) ==");
  std::puts("half-sine day profile peaking at 10 mW, 120 s 'day'\n");

  apps::PreparedModel pm =
      apps::prepare_model(apps::WorkloadId::kHar, apps::Framework::kIPrune);

  constexpr double kPeakW = 10e-3;
  constexpr double kDayS = 120.0;
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           power::SupplyPresets::solar_day(kPeakW, kDayS));

  std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
  const nn::Tensor calib = nn::gather_rows(pm.workload.val.inputs,
                                           calib_idx);
  engine::DeployedModel model(pm.workload.graph, pm.workload.prune.engine,
                              dev, calib);
  engine::IntermittentEngine eng(model, dev);

  // Skip "night": the device can only boot once some harvest exists; we
  // start the day a bit after sunrise by burning idle recharge time.
  util::Table table({"Sim time (s)", "Harvest (mW)", "Inference", "Latency (s)",
                     "Failures"});
  std::size_t inference = 0;
  std::size_t correct = 0;
  while (dev.now_us() * 1e-6 < kDayS * 0.75 &&
         inference < pm.workload.val.size()) {
    const double now_s = dev.now_us() * 1e-6;
    const double harvest_mw =
        power::SupplyPresets::solar_day(kPeakW, kDayS)->power_w(now_s) * 1e3;
    const auto result = eng.run(sample_of(pm.workload.val, inference));
    const auto best = static_cast<int>(
        std::max_element(result.logits.begin(), result.logits.end()) -
        result.logits.begin());
    correct += best == pm.workload.val.labels[inference] ? 1 : 0;
    table.row()
        .cell(util::Table::format(now_s, 1))
        .cell(util::Table::format(harvest_mw, 2))
        .cell(inference)
        .cell(util::Table::format(result.stats.latency_s, 3))
        .cell(result.stats.power_failures);
    ++inference;
  }
  table.print();
  std::printf(
      "\ncompleted %zu inferences across the day; on-device top-1 "
      "matched %zu/%zu labels.\nLatency tracks the inverse of the harvest "
      "curve: mid-day inferences are fastest.\n",
      inference, correct, inference);
  return 0;
}
