// BSR sparse-inference deep dive (paper Fig. 1): walks one pruned CKS
// layer through the inference flow of a pruned DNN layer — BSR indexing,
// per-accelerator-op weight-block fetches, partial-sum staging, progress
// preservation — and prints the per-layer storage/indexing economics.
//
// Run: ./build/examples/sparse_kws

#include <cstdio>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "power/supply.hpp"
#include "util/table.hpp"

using namespace iprune;

int main() {
  std::puts("== Sparse keyword-spotting inference: BSR walkthrough ==\n");

  apps::PreparedModel pm =
      apps::prepare_model(apps::WorkloadId::kCks, apps::Framework::kIPrune);

  const auto layers = engine::prunable_layers(
      pm.workload.graph, pm.workload.prune.engine,
      pm.workload.prune.backend.device.memory);

  util::Table table({"Layer", "Block grid", "Alive blocks", "Sparsity",
                     "Dense bytes", "BSR bytes", "Index overhead",
                     "Acc. outputs"});
  for (const auto& layer : layers) {
    const engine::BlockMask mask = layer.block_mask();
    const std::size_t total_blocks = mask.row_tiles() * mask.k_tiles();
    const std::size_t alive = mask.alive_count();

    nn::Tensor masked = *layer.weight;
    masked.hadamard(*layer.mask);
    const nn::QTensor wq = nn::quantize_q15(masked);
    const engine::BsrMatrix bsr =
        engine::BsrMatrix::build(wq, mask, layer.plan);

    const std::size_t dense_bytes = layer.total_weights() * 2;
    const std::size_t index_bytes =
        bsr.device_bytes() - bsr.values().size() * 2;
    table.row()
        .cell(layer.name)
        .cell(std::to_string(mask.row_tiles()) + " x " +
              std::to_string(mask.k_tiles()))
        .cell(std::to_string(alive) + "/" + std::to_string(total_blocks))
        .cell(util::Table::format(
                  100.0 * (1.0 - static_cast<double>(alive) /
                                     static_cast<double>(total_blocks)),
                  1) +
              "%")
        .cell(dense_bytes)
        .cell(bsr.device_bytes())
        .cell(std::to_string(index_bytes) + " B")
        .cell(layer.acc_outputs());
  }
  table.print();

  // Now actually run one inference and show the progress-preservation
  // traffic the BSR format avoided.
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           power::SupplyPresets::strong());
  std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
  const nn::Tensor calib =
      nn::gather_rows(pm.workload.val.inputs, calib_idx);
  engine::DeployedModel model(pm.workload.graph, pm.workload.prune.engine,
                              dev, calib);
  engine::IntermittentEngine eng(model, dev);

  nn::Tensor sample(pm.workload.val.sample_shape());
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = pm.workload.val.inputs[i];
  }
  const auto result = eng.run(sample);
  std::printf(
      "\none intermittent inference (8 mW):\n"
      "  accelerator outputs preserved : %zu\n"
      "  NVM bytes written             : %zu\n"
      "  NVM bytes read                : %zu (incl. 2 index reads/op)\n"
      "  power failures recovered      : %zu\n"
      "  latency                       : %.3f s\n",
      result.stats.acc_outputs, result.stats.nvm_bytes_written,
      result.stats.nvm_bytes_read, result.stats.power_failures,
      result.stats.latency_s);
  std::puts("\nper-layer latency share:");
  util::Table nodes({"Node", "Latency (s)", "Share"});
  for (const auto& node : result.per_node) {
    nodes.row()
        .cell(node.name)
        .cell(util::Table::format(node.latency_s, 4))
        .cell(util::Table::format(
                  100.0 * node.latency_s / result.stats.latency_s, 1) +
              "%");
  }
  nodes.print();
  std::puts(
      "\nThe two index arrays cost two extra NVM reads per accelerator op "
      "(paper Sec. III-D) but skip every pruned block's fetch, compute, "
      "and NVM write-back.");
  return 0;
}
