#include "apps/artifacts.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "baselines/eprune.hpp"
#include "nn/serialize.hpp"
#include "util/log.hpp"

namespace iprune::apps {

const char* framework_name(Framework fw) {
  switch (fw) {
    case Framework::kUnpruned:
      return "Unpruned";
    case Framework::kEPrune:
      return "ePrune";
    case Framework::kIPrune:
      return "iPrune";
  }
  return "?";
}

std::vector<Framework> all_frameworks() {
  return {Framework::kUnpruned, Framework::kEPrune, Framework::kIPrune};
}

std::string artifact_dir() {
  const char* dir = std::getenv("IPRUNE_ARTIFACTS");
  std::string path = dir != nullptr ? dir : "artifacts";
  std::filesystem::create_directories(path);
  return path;
}

namespace {

std::string param_path(const Workload& w, const std::string& variant) {
  std::string name = w.name;
  for (char& ch : name) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return artifact_dir() + "/" + name + (fast_mode() ? "_fast" : "") + "_" +
         variant + ".bin";
}

std::unique_ptr<core::RatioAllocator> make_allocator(Framework fw) {
  if (fw == Framework::kIPrune) {
    return std::make_unique<core::IPruneAllocator>();
  }
  return std::make_unique<baselines::EPruneAllocator>();
}

/// Load baseline parameters or train from scratch (and cache).
void ensure_baseline(Workload& w) {
  const std::string path = param_path(w, "unpruned");
  if (nn::load_parameters(w.graph, path)) {
    return;
  }
  util::log_info("training " + w.name + " baseline (" +
                 std::to_string(w.train.size()) + " samples, " +
                 std::to_string(w.initial_training.epochs) + " epochs)...");
  nn::Trainer trainer(w.graph);
  trainer.train(w.train.inputs, w.train.labels, w.initial_training);
  if (!nn::save_parameters(w.graph, path)) {
    util::log_warn("could not cache baseline parameters at " + path);
  }
}

}  // namespace

PreparedModel prepare_model(WorkloadId id, Framework fw) {
  PreparedModel prepared;
  prepared.workload = make_workload(id);
  prepared.framework = fw;
  Workload& w = prepared.workload;

  ensure_baseline(w);

  if (fw != Framework::kUnpruned) {
    std::string variant = framework_name(fw);
    for (char& ch : variant) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    const std::string path = param_path(w, variant);
    if (nn::load_parameters(w.graph, path)) {
      prepared.from_cache = true;
    } else {
      util::log_info("pruning " + w.name + " with " +
                     std::string(framework_name(fw)) + "...");
      core::IterativePruner pruner(w.prune, make_allocator(fw));
      prepared.outcome =
          pruner.run(w.graph, w.train.inputs, w.train.labels, w.val.inputs,
                     w.val.labels);
      if (!nn::save_parameters(w.graph, path)) {
        util::log_warn("could not cache pruned parameters at " + path);
      }
    }
  }

  nn::Trainer trainer(w.graph);
  prepared.val_accuracy =
      trainer.evaluate(w.val.inputs, w.val.labels).accuracy;
  return prepared;
}

}  // namespace iprune::apps
