#pragma once
// Artifact cache: trained and pruned model parameters are stored on disk
// so the Table III / Figure 5 benches (which share the same pruned models)
// do not redo the multi-minute prune-retrain flow on every run. Delete the
// artifacts directory (or set IPRUNE_ARTIFACTS) to force recomputation.

#include <optional>

#include "apps/workloads.hpp"

namespace iprune::apps {

enum class Framework { kUnpruned, kEPrune, kIPrune };

const char* framework_name(Framework fw);
std::vector<Framework> all_frameworks();

/// Directory for cached parameters (IPRUNE_ARTIFACTS or "./artifacts");
/// created on demand.
std::string artifact_dir();

struct PreparedModel {
  Workload workload;  // graph holds the variant's parameters and masks
  Framework framework = Framework::kUnpruned;
  double val_accuracy = 0.0;
  bool from_cache = false;
  /// Present only when the pruning ran in this process (not cached).
  std::optional<core::PruneOutcome> outcome;
};

/// Build the workload and materialize the given variant's parameters:
/// loads from the artifact cache when possible, otherwise trains (and for
/// pruned variants runs the full iterative pruning flow) and saves.
PreparedModel prepare_model(WorkloadId id, Framework fw);

}  // namespace iprune::apps
