// fault_check: differential crash-consistency checking under forced
// power failures and injected NVM corruption.
//
// Usage: fault_check [--smoke] [--random N] [--seed S] [--repro TOKEN]
//                    [--corrupt] [--scrub-only]
//   (no args)    exhaustive write-boundary sweep + 200 random schedules,
//                both preservation modes, on the tiny testbed model
//   --smoke      reduced sweep for CI gating (exhaustive kImmediate sweep
//                + 24 random schedules per mode; with --corrupt, a strided
//                torn-commit sweep)
//   --random N   number of seeded-random schedules per mode
//   --seed S     base seed for the random schedules (default 2023)
//   --repro T    replay one repro token printed by a failing run, e.g.
//                  fault_check --repro 'mode=immediate;schedule=fixed:3,17'
//   --corrupt    NVM data-integrity suite: torn-commit sweeps, bit-error
//                rates, and stuck-at cells replayed with the integrity
//                layer armed, plus an unprotected baseline demonstrating
//                the silent escapes the layer exists to stop
//   --scrub-only self-test of the seal/scrub machinery: deploy a sealed
//                model, verify a clean scrub, corrupt one weight cell,
//                verify the scrub detects it
//
// Exit status (crash-consistency modes): 0 only when every schedule is
// bit-identical to the golden run; on failure the first divergence is
// minimized (ddmin over the realized outages) and printed as a replayable
// repro line.
//
// Exit status (--corrupt / --scrub-only), designed for CI gating with
// `test $? -le 1`:
//   0  every protected scenario was consistent (no corruption detected)
//   1  corruption occurred but was always detected and/or recovered
//   2  silent corruption escaped (or an unrecovered crash) with the
//      integrity layer armed

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "engine/deploy.hpp"
#include "fault/checker.hpp"
#include "fault/injector.hpp"
#include "fault/integrity.hpp"
#include "fault/testbed.hpp"
#include "power/supply.hpp"
#include "util/log.hpp"

namespace {

using namespace iprune;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--random N] [--seed S] "
               "[--repro TOKEN] [--corrupt] [--scrub-only]\n",
               argv0);
  return 2;
}

/// Strict u64 CLI argument: the whole token must be digits ("24abc" used
/// to silently parse as 24, and stoull alone wraps "-5" to 2^64-5).
std::uint64_t parse_u64_arg(const char* argv0, const char* flag,
                            const char* token) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  if (token[0] >= '0' && token[0] <= '9') {
    try {
      value = std::stoull(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
  }
  if (used == 0 || token[used] != '\0') {
    std::fprintf(stderr, "%s: %s needs an unsigned integer, got '%s'\n",
                 argv0, flag, token);
    std::exit(2);
  }
  return value;
}

struct Workbench {
  util::Rng rng{2023};
  nn::Graph graph;
  nn::Tensor calibration;
  nn::Tensor sample;
  fault::ConsistencyChecker checker;

  Workbench()
      : graph(fault::make_tiny_graph(rng)),
        calibration(fault::make_batch(rng, graph, 8)),
        sample(fault::slice_sample(calibration, 0)),
        checker(graph, calibration) {}
};

/// Replay one "mode=<m>;schedule=<s>" token; returns the process status.
int run_repro(Workbench& bench, const std::string& token) {
  const std::string mode_key = "mode=";
  const std::string sched_key = ";schedule=";
  const std::size_t sched_at = token.find(sched_key);
  if (token.rfind(mode_key, 0) != 0 || sched_at == std::string::npos) {
    std::fprintf(stderr,
                 "malformed repro token (want mode=<m>;schedule=<s>): %s\n",
                 token.c_str());
    return 2;
  }
  const engine::PreservationMode mode = fault::parse_preservation_mode(
      token.substr(mode_key.size(), sched_at - mode_key.size()));
  const fault::OutageSchedule schedule =
      fault::OutageSchedule::parse(token.substr(sched_at + sched_key.size()));

  const fault::ScheduleOutcome outcome =
      bench.checker.check(bench.sample, schedule, mode);
  std::printf("%s\n", outcome.to_string().c_str());
  return outcome.passed ? 0 : 1;
}

/// Check a batch, print a summary line, and on failure print the
/// minimized repro. Returns the number of failures.
std::size_t run_batch(Workbench& bench, const char* label,
                      const std::vector<fault::OutageSchedule>& schedules,
                      engine::PreservationMode mode) {
  const fault::CheckReport report =
      bench.checker.check_schedules(bench.sample, schedules, mode);
  std::printf("%-26s mode=%-9s %4zu schedules  %4zu failed\n", label,
              fault::preservation_mode_name(mode), report.outcomes.size(),
              report.failed());
  if (const fault::ScheduleOutcome* fail = report.first_failure()) {
    const fault::ScheduleOutcome minimized =
        bench.checker.shrink(bench.sample, *fail);
    std::printf("  first failure : %s\n", fail->to_string().c_str());
    std::printf("  minimized     : %s\n", minimized.to_string().c_str());
    std::printf("  replay with   : fault_check --repro '%s'\n",
                minimized.repro().c_str());
  }
  return report.failed();
}

/// Check one scenario batch, print its verdict histogram, and print the
/// first silent/crashed outcome in full. Returns the batch exit code
/// (0 consistent / 1 contained / 2 escaped).
int run_integrity_batch(const fault::IntegrityChecker& checker,
                        Workbench& bench, const char* label,
                        const std::vector<fault::CorruptionScenario>& batch,
                        engine::PreservationMode mode, bool protect) {
  using fault::IntegrityVerdict;
  const fault::IntegrityReport report =
      checker.check_scenarios(bench.sample, batch, mode, protect);
  std::printf(
      "%-26s mode=%-9s %-11s %4zu scenarios: "
      "%zu consistent %zu recovered %zu detected %zu silent %zu crashed\n",
      label, fault::preservation_mode_name(mode),
      protect ? "protected" : "unprotected", report.outcomes.size(),
      report.count(IntegrityVerdict::kConsistent),
      report.count(IntegrityVerdict::kRecovered),
      report.count(IntegrityVerdict::kDetected),
      report.count(IntegrityVerdict::kSilent),
      report.count(IntegrityVerdict::kCrashed));
  const fault::ScenarioOutcome* bad = report.first(IntegrityVerdict::kSilent);
  if (bad == nullptr) {
    bad = report.first(IntegrityVerdict::kCrashed);
  }
  if (bad != nullptr) {
    std::printf("  first escape  : %s\n", bad->to_string().c_str());
  }
  return report.exit_code();
}

/// NVM data-integrity suite (--corrupt). The protected batches gate the
/// exit code; the unprotected baseline demonstrates the silent escapes
/// the integrity layer exists to stop and is informational only.
int run_corrupt(Workbench& bench, bool smoke) {
  using engine::PreservationMode;
  const fault::IntegrityChecker checker(bench.graph, bench.calibration);

  const std::uint64_t boundaries = checker.count_write_boundaries(
      bench.sample, PreservationMode::kImmediate, /*protect=*/true);
  const std::uint64_t stride = smoke ? 7 : 1;
  const std::vector<fault::CorruptionScenario> torn =
      fault::IntegrityChecker::torn_commit_sweep(boundaries, stride,
                                                 {1, 2, 3, 5});

  std::vector<fault::CorruptionScenario> faults;
  {
    // Persistent cell fault inside a sealed BSR region: invisible to the
    // dataflow (the accelerator model reads host-side weights), so only
    // the boot scrub can catch it. row_ptr[0] is always 0, so forcing
    // its MSB guarantees a real storage change.
    fault::CorruptionScenario s;
    s.label = "stuck-bit(bsr)";
    s.stuck.push_back({".bsr_rowptr", /*offset=*/0, /*bit=*/7, true});
    faults.push_back(s);
  }
  {
    // Transient read noise confined to the progress records while
    // outages force recovery re-reads.
    fault::CorruptionScenario s;
    s.label = "read-noise(progress)";
    s.seed = 7;
    s.read_ber = 0.02;
    s.window_region = "progress";
    s.schedule = fault::OutageSchedule::every_nth(97, 8);
    faults.push_back(s);
  }

  int exit_code = 0;
  exit_code = std::max(
      exit_code, run_integrity_batch(checker, bench, "torn-commit sweep",
                                     torn, PreservationMode::kImmediate,
                                     /*protect=*/true));
  if (!smoke) {
    exit_code = std::max(
        exit_code, run_integrity_batch(checker, bench, "torn-commit sweep",
                                       torn, PreservationMode::kTaskAtomic,
                                       /*protect=*/true));
  }
  exit_code = std::max(
      exit_code, run_integrity_batch(checker, bench, "data faults", faults,
                                     PreservationMode::kImmediate,
                                     /*protect=*/true));

  const int baseline = run_integrity_batch(
      checker, bench, "baseline (no integrity)", torn,
      PreservationMode::kImmediate, /*protect=*/false);
  if (baseline >= 2) {
    std::printf("baseline escapes confirm the threat model "
                "(not counted against the exit code)\n");
  }

  if (exit_code == 0) {
    std::printf("OK (0): every protected scenario consistent\n");
  } else if (exit_code == 1) {
    std::printf(
        "OK (1): corruption always detected and/or recovered; protected "
        "logits stayed bit-identical to the golden run\n");
  } else {
    std::printf("FAIL (2): corruption escaped the integrity layer\n");
  }
  return exit_code;
}

/// Seal/scrub self-test (--scrub-only): a sealed deployment must scrub
/// clean, and flipping one bit in a sealed region must be detected.
int run_scrub_only(Workbench& bench) {
  engine::EngineConfig ecfg;
  ecfg.integrity.protect_progress = true;
  ecfg.integrity.seal_regions = true;
  ecfg.integrity.scrub_on_boot = true;
  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              power::SupplyPresets::continuous(), {});
  nn::Graph graph = bench.graph.clone();
  engine::DeployedModel model(graph, ecfg, device, bench.calibration);

  const std::vector<std::string> clean = model.scrub_errors(device.nvm());
  if (!clean.empty()) {
    std::printf("FAIL (2): fresh deployment failed scrub: %s\n",
                clean.front().c_str());
    return 2;
  }
  std::printf("scrub clean: %zu sealed regions verified\n",
              model.sealed_regions());

  const engine::DeployedModel::Region* target = nullptr;
  for (const auto& r : model.regions()) {
    if (r.sealed) {
      target = &r;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("FAIL (2): no sealed regions deployed\n");
    return 2;
  }
  const std::uint8_t flipped[1] = {
      static_cast<std::uint8_t>(device.nvm().peek(target->begin) ^ 0x10)};
  device.nvm().write(target->begin, flipped);
  const std::vector<std::string> dirty = model.scrub_errors(device.nvm());
  for (const std::string& label : dirty) {
    if (label == target->label) {
      std::printf("OK (1): injected bit-flip in '%s' detected by scrub\n",
                  target->label.c_str());
      return 1;
    }
  }
  std::printf("FAIL (2): bit-flip in '%s' escaped the scrub\n",
              target->label.c_str());
  return 2;
}

std::vector<fault::OutageSchedule> random_schedules(std::size_t count,
                                                    std::uint64_t base_seed) {
  std::vector<fault::OutageSchedule> schedules;
  schedules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Mix of densities; max_outages keeps the densest runs bounded.
    const double p = 0.002 + 0.05 * static_cast<double>(i % 7) / 6.0;
    schedules.push_back(
        fault::OutageSchedule::random(base_seed + i, p, 64));
  }
  return schedules;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool corrupt = false;
  bool scrub_only = false;
  std::size_t random_count = 200;
  std::uint64_t seed = 2023;
  std::string repro;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--corrupt") == 0) {
      corrupt = true;
    } else if (std::strcmp(argv[i], "--scrub-only") == 0) {
      scrub_only = true;
    } else if (std::strcmp(argv[i], "--random") == 0 && i + 1 < argc) {
      random_count = static_cast<std::size_t>(
          parse_u64_arg(argv[0], "--random", argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = parse_u64_arg(argv[0], "--seed", argv[++i]);
    } else if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc) {
      repro = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  Workbench bench;
  if (!repro.empty()) {
    return run_repro(bench, repro);
  }
  if (scrub_only) {
    return run_scrub_only(bench);
  }
  if (corrupt) {
    return run_corrupt(bench, smoke);
  }
  if (smoke) {
    random_count = 24;
  }

  using engine::PreservationMode;
  std::size_t failures = 0;

  const auto writes_imm = bench.checker.exhaustive_write_schedules(
      bench.sample, PreservationMode::kImmediate);
  failures += run_batch(bench, "exhaustive write sweep", writes_imm,
                        PreservationMode::kImmediate);
  if (!smoke) {
    const auto writes_task = bench.checker.exhaustive_write_schedules(
        bench.sample, PreservationMode::kTaskAtomic);
    failures += run_batch(bench, "exhaustive write sweep", writes_task,
                          PreservationMode::kTaskAtomic);
  }

  const auto randoms = random_schedules(random_count, seed);
  failures += run_batch(bench, "random schedules", randoms,
                        PreservationMode::kImmediate);
  failures += run_batch(bench, "random schedules", randoms,
                        PreservationMode::kTaskAtomic);

  if (failures != 0) {
    std::printf("FAIL: %zu schedule(s) violated crash consistency\n",
                failures);
    return 1;
  }
  std::printf("OK: all schedules bit-identical to the golden run\n");
  return 0;
}
