// fault_check: differential crash-consistency checking under forced
// power failures.
//
// Usage: fault_check [--smoke] [--random N] [--seed S] [--repro TOKEN]
//   (no args)   exhaustive write-boundary sweep + 200 random schedules,
//               both preservation modes, on the tiny testbed model
//   --smoke     reduced sweep for CI gating (exhaustive kImmediate sweep
//               + 24 random schedules per mode)
//   --random N  number of seeded-random schedules per mode
//   --seed S    base seed for the random schedules (default 2023)
//   --repro T   replay one repro token printed by a failing run, e.g.
//                 fault_check --repro 'mode=immediate;schedule=fixed:3,17'
//
// Exit status is 0 only when every schedule passes; on failure the first
// divergence is minimized (ddmin over the realized outages) and printed
// as a replayable repro line.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/checker.hpp"
#include "fault/injector.hpp"
#include "fault/testbed.hpp"
#include "util/log.hpp"

namespace {

using namespace iprune;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--random N] [--seed S] "
               "[--repro TOKEN]\n",
               argv0);
  return 2;
}

struct Workbench {
  util::Rng rng{2023};
  nn::Graph graph;
  nn::Tensor calibration;
  nn::Tensor sample;
  fault::ConsistencyChecker checker;

  Workbench()
      : graph(fault::make_tiny_graph(rng)),
        calibration(fault::make_batch(rng, graph, 8)),
        sample(fault::slice_sample(calibration, 0)),
        checker(graph, calibration) {}
};

/// Replay one "mode=<m>;schedule=<s>" token; returns the process status.
int run_repro(Workbench& bench, const std::string& token) {
  const std::string mode_key = "mode=";
  const std::string sched_key = ";schedule=";
  const std::size_t sched_at = token.find(sched_key);
  if (token.rfind(mode_key, 0) != 0 || sched_at == std::string::npos) {
    std::fprintf(stderr,
                 "malformed repro token (want mode=<m>;schedule=<s>): %s\n",
                 token.c_str());
    return 2;
  }
  const engine::PreservationMode mode = fault::parse_preservation_mode(
      token.substr(mode_key.size(), sched_at - mode_key.size()));
  const fault::OutageSchedule schedule =
      fault::OutageSchedule::parse(token.substr(sched_at + sched_key.size()));

  const fault::ScheduleOutcome outcome =
      bench.checker.check(bench.sample, schedule, mode);
  std::printf("%s\n", outcome.to_string().c_str());
  return outcome.passed ? 0 : 1;
}

/// Check a batch, print a summary line, and on failure print the
/// minimized repro. Returns the number of failures.
std::size_t run_batch(Workbench& bench, const char* label,
                      const std::vector<fault::OutageSchedule>& schedules,
                      engine::PreservationMode mode) {
  const fault::CheckReport report =
      bench.checker.check_schedules(bench.sample, schedules, mode);
  std::printf("%-26s mode=%-9s %4zu schedules  %4zu failed\n", label,
              fault::preservation_mode_name(mode), report.outcomes.size(),
              report.failed());
  if (const fault::ScheduleOutcome* fail = report.first_failure()) {
    const fault::ScheduleOutcome minimized =
        bench.checker.shrink(bench.sample, *fail);
    std::printf("  first failure : %s\n", fail->to_string().c_str());
    std::printf("  minimized     : %s\n", minimized.to_string().c_str());
    std::printf("  replay with   : fault_check --repro '%s'\n",
                minimized.repro().c_str());
  }
  return report.failed();
}

std::vector<fault::OutageSchedule> random_schedules(std::size_t count,
                                                    std::uint64_t base_seed) {
  std::vector<fault::OutageSchedule> schedules;
  schedules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Mix of densities; max_outages keeps the densest runs bounded.
    const double p = 0.002 + 0.05 * static_cast<double>(i % 7) / 6.0;
    schedules.push_back(
        fault::OutageSchedule::random(base_seed + i, p, 64));
  }
  return schedules;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t random_count = 200;
  std::uint64_t seed = 2023;
  std::string repro;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--random") == 0 && i + 1 < argc) {
      random_count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc) {
      repro = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  Workbench bench;
  if (!repro.empty()) {
    return run_repro(bench, repro);
  }
  if (smoke) {
    random_count = 24;
  }

  using engine::PreservationMode;
  std::size_t failures = 0;

  const auto writes_imm = bench.checker.exhaustive_write_schedules(
      bench.sample, PreservationMode::kImmediate);
  failures += run_batch(bench, "exhaustive write sweep", writes_imm,
                        PreservationMode::kImmediate);
  if (!smoke) {
    const auto writes_task = bench.checker.exhaustive_write_schedules(
        bench.sample, PreservationMode::kTaskAtomic);
    failures += run_batch(bench, "exhaustive write sweep", writes_task,
                          PreservationMode::kTaskAtomic);
  }

  const auto randoms = random_schedules(random_count, seed);
  failures += run_batch(bench, "random schedules", randoms,
                        PreservationMode::kImmediate);
  failures += run_batch(bench, "random schedules", randoms,
                        PreservationMode::kTaskAtomic);

  if (failures != 0) {
    std::printf("FAIL: %zu schedule(s) violated crash consistency\n",
                failures);
    return 1;
  }
  std::printf("OK: all schedules bit-identical to the golden run\n");
  return 0;
}
