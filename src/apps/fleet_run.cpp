// fleet_run: simulate a fleet of intermittently-powered devices.
//
// Drives fleet::FleetOrchestrator over a FleetSpec (a --spec file or the
// built-in heterogeneous example), exports metrics through the chosen
// gateways, and prints a per-group summary. Output is deterministic for a
// fixed spec — independent of IPRUNE_THREADS — which CI checks by
// comparing gateway files across lane counts.
//
// Exit status: 0 success, 1 at least one device failed or reported an
// integrity verdict other than consistent/recovered, 2 usage/spec errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "fleet/orchestrator.hpp"
#include "scenario/scenario.hpp"

namespace {

/// Strict u64 CLI argument: the whole token must be digits ("5x" used to
/// silently parse as 5, and stoull alone wraps "-5" to 2^64-5).
std::uint64_t parse_u64_arg(const char* argv0, const char* flag,
                            const char* token) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  if (token[0] >= '0' && token[0] <= '9') {
    try {
      value = std::stoull(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
  }
  if (used == 0 || token[used] != '\0') {
    std::fprintf(stderr, "%s: %s needs an unsigned integer, got '%s'\n",
                 argv0, flag, token);
    std::exit(2);
  }
  return value;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --devices N          scale the fleet to N devices (default: spec "
      "counts)\n"
      "  --spec FILE          fleet spec file (default: built-in example)\n"
      "  --seed S             override the fleet seed\n"
      "  --smoke              smoke mode: 1 inference per device, no "
      "deadline\n"
      "  --out DIR            gateway output directory (default "
      "artifacts/fleet)\n"
      "  --gateway KIND       null | csv | prom | all (default all)\n"
      "  --sim KIND           stepping | scheduler | batched (default: "
      "spec)\n"
      "  --print-spec         print the resolved spec and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  std::size_t devices = 0;
  bool have_devices = false;
  std::string spec_path;
  std::uint64_t seed = 0;
  bool have_seed = false;
  bool smoke = false;
  std::string out_dir = "artifacts/fleet";
  std::string gateway_kind = "all";
  std::string sim_kind;
  bool print_spec = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--devices") == 0) {
      devices =
          static_cast<std::size_t>(parse_u64_arg(argv[0], arg, value()));
      have_devices = true;
    } else if (std::strcmp(arg, "--spec") == 0) {
      spec_path = value();
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_u64_arg(argv[0], arg, value());
      have_seed = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = value();
    } else if (std::strcmp(arg, "--gateway") == 0) {
      gateway_kind = value();
    } else if (std::strcmp(arg, "--sim") == 0) {
      sim_kind = value();
    } else if (std::strcmp(arg, "--print-spec") == 0) {
      print_spec = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (have_devices && devices == 0) {
    std::fprintf(stderr, "%s: --devices must be >= 1\n", argv[0]);
    return 2;
  }

  try {
    fleet::FleetSpec spec =
        !spec_path.empty()
            ? fleet::FleetSpec::load(spec_path)
            : fleet::FleetSpec::example(have_devices ? devices : 10);
    if (!spec_path.empty() && have_devices) {
      // Strict rescale: silently dropping a group scaled to zero devices
      // would simulate a different fleet than the spec describes.
      spec = scenario::rescale_strict(spec, devices);
    }
    if (have_seed) {
      spec.seed = seed;
    }
    if (smoke) {
      spec.inferences = 1;
      spec.deadline_s = 0.0;
    }
    if (!sim_kind.empty()) {
      spec.sim = fleet::parse_sim_kind(sim_kind);
    }
    // Post-flag validation: CLI overrides mutate the parsed spec, so the
    // parse-time range checks alone no longer cover what actually runs.
    scenario::validate_fleet(spec);
    if (print_spec) {
      std::fputs(spec.describe().c_str(), stdout);
      return 0;
    }

    fleet::MultiGateway gateway;
    if (gateway_kind == "csv" || gateway_kind == "all") {
      gateway.add_owned(std::make_unique<fleet::CsvGateway>(out_dir));
    }
    if (gateway_kind == "prom" || gateway_kind == "all") {
      gateway.add_owned(std::make_unique<fleet::PrometheusGateway>(
          out_dir + "/fleet_metrics.prom"));
    }
    if (gateway_kind != "null" && gateway_kind != "csv" &&
        gateway_kind != "prom" && gateway_kind != "all") {
      std::fprintf(stderr, "%s: unknown gateway '%s'\n", argv[0],
                   gateway_kind.c_str());
      return 2;
    }

    const fleet::FleetOrchestrator orchestrator(spec);
    const fleet::FleetResult result = orchestrator.run(nullptr, &gateway);

    std::printf(
        "%-10s %8s %10s %9s %7s %11s %9s %11s\n", "group", "devices",
        "completed", "missed", "failed", "inferences", "outages", "events");
    const auto print_group = [](const fleet::GroupStats& g) {
      std::printf("%-10s %8zu %10zu %9zu %7zu %11" PRIu64 " %9" PRIu64
                  " %11" PRIu64 "\n",
                  g.name.c_str(), g.devices, g.completed, g.deadline_missed,
                  g.failed, g.inferences, g.power_failures, g.events);
    };
    for (const fleet::GroupStats& group : result.groups) {
      print_group(group);
    }
    print_group(result.total);
    if (result.total.compromised > 0) {
      std::printf("integrity: %zu device(s) compromised\n",
                  result.total.compromised);
    }
    std::printf(
        "energy: harvested %.6g J, consumed %.6g J, wasted %.6g J\n"
        "latency p50 %.6g us, p95 %.6g us, max %.6g us\n"
        "fleet checksum %016" PRIx64 "\n",
        result.total.harvested_j, result.total.consumed_j,
        result.total.wasted_j, result.total.latency_us.quantile(0.5),
        result.total.latency_us.quantile(0.95), result.total.latency_us.max(),
        result.checksum);
    if (gateway_kind != "null") {
      std::printf("gateway: %s\n", gateway.describe().c_str());
    }
    return result.total.failed == 0 && result.total.compromised == 0 ? 0
                                                                      : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
