#include "apps/models.hpp"

#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace iprune::apps {

namespace {

using nn::Conv2dSpec;
using nn::NodeId;
using nn::PoolSpec;

NodeId conv_relu(nn::Graph& g, NodeId input, const std::string& name,
                 Conv2dSpec spec, util::Rng& rng) {
  const NodeId conv =
      g.add(std::make_unique<nn::Conv2d>(name, spec, rng), {input});
  return g.add(std::make_unique<nn::Relu>(name + "_relu"), {conv});
}

/// SqueezeNet fire module: 1x1 squeeze followed by concatenated 1x1 and
/// 3x3 expands (3 CONV layers).
NodeId fire(nn::Graph& g, NodeId input, const std::string& name,
            std::size_t in_channels, std::size_t squeeze,
            std::size_t expand, util::Rng& rng) {
  const NodeId s = conv_relu(
      g, input, name + "_squeeze",
      {.in_channels = in_channels, .out_channels = squeeze, .kernel_h = 1,
       .kernel_w = 1},
      rng);
  const NodeId e1 = conv_relu(
      g, s, name + "_expand1x1",
      {.in_channels = squeeze, .out_channels = expand, .kernel_h = 1,
       .kernel_w = 1},
      rng);
  const NodeId e3 = conv_relu(
      g, s, name + "_expand3x3",
      {.in_channels = squeeze, .out_channels = expand, .kernel_h = 3,
       .kernel_w = 3, .pad_h = 1, .pad_w = 1},
      rng);
  return g.add(std::make_unique<nn::Concat>(name + "_concat"), {e1, e3});
}

}  // namespace

nn::Graph build_sqn(util::Rng& rng) {
  nn::Graph g({3, 32, 32});
  NodeId x = conv_relu(g, g.input(), "conv1",
                       {.in_channels = 3, .out_channels = 24, .kernel_h = 3,
                        .kernel_w = 3, .pad_h = 1, .pad_w = 1},
                       rng);
  x = g.add(std::make_unique<nn::MaxPool2d>("pool1", PoolSpec{2, 2, 2}), {x});
  x = fire(g, x, "fire1", 24, 16, 32, rng);   // -> [64,16,16]
  x = fire(g, x, "fire2", 64, 16, 32, rng);   // -> [64,16,16]
  x = g.add(std::make_unique<nn::MaxPool2d>("pool2", PoolSpec{2, 2, 2}), {x});
  x = fire(g, x, "fire3", 64, 32, 64, rng);   // -> [128,8,8]
  x = g.add(std::make_unique<nn::Conv2d>(
                "conv10",
                Conv2dSpec{.in_channels = 128, .out_channels = 10,
                           .kernel_h = 1, .kernel_w = 1},
                rng),
            {x});
  x = g.add(std::make_unique<nn::AvgPool2d>("global_avg", PoolSpec{8, 8, 8}),
            {x});
  x = g.add(std::make_unique<nn::Flatten>("flatten"), {x});
  g.set_output(x);
  return g;
}

nn::Graph build_har(util::Rng& rng) {
  nn::Graph g({3, 1, 128});
  NodeId x = conv_relu(g, g.input(), "conv1",
                       {.in_channels = 3, .out_channels = 16, .kernel_h = 1,
                        .kernel_w = 5, .pad_h = 0, .pad_w = 2},
                       rng);
  x = g.add(std::make_unique<nn::MaxPool2d>("pool1", PoolSpec{1, 2, 2}), {x});
  x = conv_relu(g, x, "conv2",
                {.in_channels = 16, .out_channels = 32, .kernel_h = 1,
                 .kernel_w = 5, .pad_h = 0, .pad_w = 2},
                rng);
  x = g.add(std::make_unique<nn::MaxPool2d>("pool2", PoolSpec{1, 2, 2}), {x});
  x = conv_relu(g, x, "conv3",
                {.in_channels = 32, .out_channels = 48, .kernel_h = 1,
                 .kernel_w = 3, .pad_h = 0, .pad_w = 1},
                rng);
  x = g.add(std::make_unique<nn::MaxPool2d>("pool3", PoolSpec{1, 2, 2}), {x});
  x = g.add(std::make_unique<nn::Flatten>("flatten"), {x});
  x = g.add(std::make_unique<nn::Dense>("fc", 48 * 16, 6, rng), {x});
  g.set_output(x);
  return g;
}

nn::Graph build_cks(util::Rng& rng) {
  nn::Graph g({1, 49, 10});
  NodeId x = conv_relu(g, g.input(), "conv1",
                       {.in_channels = 1, .out_channels = 28, .kernel_h = 8,
                        .kernel_w = 4, .stride = 2, .pad_h = 1, .pad_w = 1},
                       rng);  // -> [28,22,5]
  x = conv_relu(g, x, "conv2",
                {.in_channels = 28, .out_channels = 30, .kernel_h = 4,
                 .kernel_w = 3, .pad_h = 1, .pad_w = 1},
                rng);  // -> [30,21,5]
  x = g.add(std::make_unique<nn::Flatten>("flatten"), {x});
  x = g.add(std::make_unique<nn::Dense>("fc1", 30 * 21 * 5, 16, rng), {x});
  x = g.add(std::make_unique<nn::Relu>("fc1_relu"), {x});
  x = g.add(std::make_unique<nn::Dense>("fc2", 16, 128, rng), {x});
  x = g.add(std::make_unique<nn::Relu>("fc2_relu"), {x});
  x = g.add(std::make_unique<nn::Dense>("fc3", 128, 10, rng), {x});
  g.set_output(x);
  return g;
}

}  // namespace iprune::apps
