#pragma once
// The three TinyML model architectures of paper Table II, scaled to fit
// the 512 KB NVM alongside the engine state:
//   SQN — SqueezeNet-style image recognition (11 CONV + 2 POOL, multi-path
//         fire modules, global average-pool head), low layer diversity.
//   HAR — human-activity detection over tri-axial accelerometer windows
//         (3 CONV + 3 POOL + 1 FC), medium diversity.
//   CKS — speech keyword spotting over MFCC-like spectrograms
//         (2 CONV + 3 FC), high diversity.

#include "nn/graph.hpp"
#include "util/rng.hpp"

namespace iprune::apps {

nn::Graph build_sqn(util::Rng& rng);
nn::Graph build_har(util::Rng& rng);
nn::Graph build_cks(util::Rng& rng);

}  // namespace iprune::apps
