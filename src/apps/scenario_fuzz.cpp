// scenario_fuzz: seeded random-scenario campaign over the differential
// oracles.
//
// Generates `--count` random valid scenarios from `--seed` (scenario i is
// a pure function of (seed, i) — reproducible across machines and lane
// counts), runs each through scenario::run_scenario, and for every
// failing scenario ddmin-shrinks the document to a minimal one that still
// fails, writing it to `--out` as repro_<name>.json. Replay a repro with
// `scenario_run <file>`.
//
// Exit status: 0 no scenario failed, 1 failures found (repros written),
// 2 usage errors.

#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>

#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"
#include "util/atomic_write.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--count N] [--out DIR] "
               "[--max-shrink N] [--verbose]\n",
               argv0);
  return 2;
}

/// Strict u64 CLI argument: the whole token must be digits ("5x" is a
/// usage error, not 5, and stoull alone wraps "-5" to 2^64-5).
std::uint64_t parse_u64_arg(const char* argv0, const char* flag,
                            const char* token) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  if (token[0] >= '0' && token[0] <= '9') {
    try {
      value = std::stoull(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
  }
  if (used == 0 || token[used] != '\0') {
    std::fprintf(stderr, "%s: %s needs an unsigned integer, got '%s'\n",
                 argv0, flag, token);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  std::uint64_t seed = 1;
  std::uint64_t count = 100;
  std::size_t max_shrink = 64;
  std::string out_dir = "artifacts/scenario";
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_u64_arg(argv[0], arg, value());
    } else if (std::strcmp(arg, "--count") == 0) {
      count = parse_u64_arg(argv[0], arg, value());
    } else if (std::strcmp(arg, "--max-shrink") == 0) {
      max_shrink =
          static_cast<std::size_t>(parse_u64_arg(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = value();
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  scenario::FuzzConfig config;
  config.seed = seed;

  scenario::RunOptions options;
  options.shrink = false;  // the scenario-level shrinker owns minimization

  std::size_t failures = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const scenario::Scenario sc = scenario::random_scenario(config, i);
    const scenario::ScenarioReport report =
        scenario::run_scenario(sc, options);
    if (verbose || !report.passed()) {
      std::fputs(report.to_string().c_str(), stdout);
    }
    if (report.passed()) {
      continue;
    }
    ++failures;

    const auto still_fails = [&](const scenario::Scenario& candidate) {
      return !scenario::run_scenario(candidate, options).passed();
    };
    const scenario::Scenario shrunk =
        scenario::shrink_scenario(sc, still_fails, max_shrink);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string repro_path =
        out_dir + "/repro_" + shrunk.name + ".json";
    // Atomic: an interrupted campaign never leaves a torn repro document.
    if (!util::atomic_write(repro_path, shrunk.describe())) {
      std::fprintf(stderr, "scenario_fuzz: cannot write %s\n",
                   repro_path.c_str());
    }
    std::printf("  shrunk to %zu schema field(s): %s\n",
                shrunk.schema_fields(), repro_path.c_str());
    std::printf("  replay with: scenario_run %s\n", repro_path.c_str());
  }

  std::printf("scenario_fuzz: seed %llu, %llu scenario(s), %zu failure(s)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(count), failures);
  return failures == 0 ? 0 : 1;
}
