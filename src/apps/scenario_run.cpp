// scenario_run: run one declarative scenario through the differential
// oracles.
//
// Loads a scenario JSON document (docs/scenarios.md), simulates its fleet
// under every requested sim strategy, and asserts the scenario's checks
// (sim-digest equality, lane determinism, crash consistency, integrity
// containment). Gateways observe the reference run only — the first sim
// kind — so the exported metrics are the oracle's.
//
// Exit status: 0 every check passed, 1 at least one check failed, 2
// usage/parse/validation errors.

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "scenario/runner.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE [options]\n"
      "  --sim KIND           stepping | scheduler | batched | all —\n"
      "                       override the scenario's sim list\n"
      "  --gateway KIND       null | csv | prom | all (default null)\n"
      "  --out DIR            gateway output directory (default "
      "artifacts/scenario)\n"
      "  --print              print the canonical form and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  std::string path;
  std::string sim_kind;
  std::string gateway_kind = "null";
  std::string out_dir = "artifacts/scenario";
  bool print = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--sim") == 0) {
      sim_kind = value();
    } else if (std::strcmp(arg, "--gateway") == 0) {
      gateway_kind = value();
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = value();
    } else if (std::strcmp(arg, "--print") == 0) {
      print = true;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) {
    return usage(argv[0]);
  }

  try {
    scenario::Scenario sc = scenario::Scenario::load(path);
    if (!sim_kind.empty()) {
      if (sim_kind == "all") {
        sc.sims.clear();
      } else {
        sc.sims = {fleet::parse_sim_kind(sim_kind)};
      }
    }
    if (print) {
      std::fputs(sc.describe().c_str(), stdout);
      return 0;
    }

    fleet::MultiGateway gateway;
    if (gateway_kind == "csv" || gateway_kind == "all") {
      gateway.add_owned(std::make_unique<fleet::CsvGateway>(out_dir));
    }
    if (gateway_kind == "prom" || gateway_kind == "all") {
      gateway.add_owned(std::make_unique<fleet::PrometheusGateway>(
          out_dir + "/fleet_metrics.prom"));
    }
    if (gateway_kind != "null" && gateway_kind != "csv" &&
        gateway_kind != "prom" && gateway_kind != "all") {
      std::fprintf(stderr, "%s: unknown gateway '%s'\n", argv[0],
                   gateway_kind.c_str());
      return 2;
    }

    scenario::RunOptions options;
    if (gateway_kind != "null") {
      options.gateway = &gateway;
    }
    const scenario::ScenarioReport report =
        scenario::run_scenario(sc, options);
    std::fputs(report.to_string().c_str(), stdout);
    if (gateway_kind != "null") {
      std::printf("gateway: %s\n", gateway.describe().c_str());
    }
    return report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
