// search_run: crash-resumable search demo driver (docs/search_cache.md).
//
// Runs the three-stage search pipeline (sensitivity -> annealed ratios ->
// architecture search) with every candidate evaluation content-addressed
// into a CRC-sealed on-disk vault and every long-running stage journaled.
// Kill the process at any point, re-run with --resume, and the final
// digest is bit-identical to an uninterrupted run — the CI resume-smoke
// job does exactly that with SIGKILL.
//
// Exit status: 0 success (all assertions held), 1 an assertion failed
// (--min-hit-rate / --expect-digest), 2 usage or runtime errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "search/run.hpp"
#include "util/atomic_write.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N             search seed (default 77)\n"
      "  --evals N            architecture-search evaluations (default 12)\n"
      "  --batch N            evaluations per generation (default 4)\n"
      "  --anneal-iters N     annealing steps (default 2000)\n"
      "  --anneal-stride N    annealing journal stride (default 200)\n"
      "  --state DIR          vault + journal directory (default none:\n"
      "                       fully in-memory, no crash resume)\n"
      "  --resume             restore vault + journals from --state\n"
      "  --eval-delay-ms N    slow each uncached evaluation by N ms\n"
      "                       (stretches the CI kill window)\n"
      "  --digest-out FILE    write the final digest (hex + newline)\n"
      "  --min-hit-rate F     fail (exit 1) if this leg's cache hit rate\n"
      "                       is below F in [0,1]\n"
      "  --expect-digest HEX  fail (exit 1) on digest mismatch\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iprune;

  search::RunConfig config;
  std::string digest_out;
  double min_hit_rate = -1.0;
  std::string expect_digest;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0) {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--evals") == 0) {
      config.evaluations = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--batch") == 0) {
      config.batch_size = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--anneal-iters") == 0) {
      config.anneal_iterations = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--anneal-stride") == 0) {
      config.anneal_checkpoint_stride = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--state") == 0) {
      config.state_dir = value();
    } else if (std::strcmp(arg, "--resume") == 0) {
      config.resume = true;
    } else if (std::strcmp(arg, "--eval-delay-ms") == 0) {
      config.eval_delay_ms = std::atoi(value());
    } else if (std::strcmp(arg, "--digest-out") == 0) {
      digest_out = value();
    } else if (std::strcmp(arg, "--min-hit-rate") == 0) {
      min_hit_rate = std::atof(value());
    } else if (std::strcmp(arg, "--expect-digest") == 0) {
      expect_digest = value();
    } else {
      return usage(argv[0]);
    }
  }
  if (config.resume && config.state_dir.empty()) {
    std::fprintf(stderr, "%s: --resume requires --state DIR\n", argv[0]);
    return 2;
  }

  try {
    const search::RunReport report = search::run_search(config);

    char digest_hex[20];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64,
                  report.digest);
    std::printf("digest %s\n", digest_hex);
    std::printf("pareto %zu evaluated %zu infeasible %zu\n",
                report.arch.pareto_front.size(), report.arch.evaluated,
                report.arch.infeasible);
    std::printf("cache hits %" PRIu64 " misses %" PRIu64
                " hit-rate %.3f vault-records %zu\n",
                report.cache.hits, report.cache.misses,
                report.cache.hit_rate(), report.vault_records);
    std::printf("resumed anneal=%d arch=%d\n", report.resumed_anneal ? 1 : 0,
                report.resumed_arch ? 1 : 0);

    if (!digest_out.empty()) {
      util::atomic_write_or_throw(digest_out,
                                  std::string(digest_hex) + "\n",
                                  "search_run");
    }

    bool failed = false;
    if (min_hit_rate >= 0.0 && report.cache.hit_rate() < min_hit_rate) {
      std::fprintf(stderr,
                   "search_run: FAIL cache hit rate %.3f < required %.3f\n",
                   report.cache.hit_rate(), min_hit_rate);
      failed = true;
    }
    if (!expect_digest.empty() && expect_digest != digest_hex) {
      std::fprintf(stderr, "search_run: FAIL digest %s != expected %s\n",
                   digest_hex, expect_digest.c_str());
      failed = true;
    }
    return failed ? 1 : 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "search_run: %s\n", error.what());
    return 2;
  }
}
