// trace_report: run one traced inference and report where the time went.
//
// Usage: trace_report [workload] [power] [output.trace.json]
//   workload  sqn | har | cks                  (default har)
//   power     continuous | strong | weak       (default strong)
//   output    Chrome-trace JSON path           (default artifacts/<wl>.trace.json)
//
// Prints the Fig. 2-style preservation/computation/recharge breakdown and
// a per-layer exposure table derived from the live telemetry stream, and
// writes the full event trace for Perfetto / chrome://tracing.
// IPRUNE_FAST=1 shrinks the model-preparation step for quick runs.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/artifacts.hpp"
#include "engine/engine.hpp"
#include "nn/trainer.hpp"
#include "telemetry/trace_export.hpp"
#include "util/log.hpp"

namespace {

using namespace iprune;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [sqn|har|cks] [continuous|strong|weak] "
               "[output.trace.json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  apps::WorkloadId workload = apps::WorkloadId::kHar;
  std::unique_ptr<power::PowerSupply> supply = power::SupplyPresets::strong();
  std::string supply_name = "strong";
  std::string out_path;

  if (argc > 1) {
    if (std::strcmp(argv[1], "sqn") == 0) {
      workload = apps::WorkloadId::kSqn;
    } else if (std::strcmp(argv[1], "har") == 0) {
      workload = apps::WorkloadId::kHar;
    } else if (std::strcmp(argv[1], "cks") == 0) {
      workload = apps::WorkloadId::kCks;
    } else {
      return usage(argv[0]);
    }
  }
  if (argc > 2) {
    supply_name = argv[2];
    if (supply_name == "continuous") {
      supply = power::SupplyPresets::continuous();
    } else if (supply_name == "strong") {
      supply = power::SupplyPresets::strong();
    } else if (supply_name == "weak") {
      supply = power::SupplyPresets::weak();
    } else {
      return usage(argv[0]);
    }
  }
  out_path = argc > 3 ? argv[3]
                      : apps::artifact_dir() + "/" +
                            apps::workload_name(workload) + ".trace.json";

  apps::PreparedModel pm =
      apps::prepare_model(workload, apps::Framework::kUnpruned);

  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           std::move(supply));
  telemetry::RecorderSink recorder;
  dev.set_trace_sink(&recorder);

  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < 8; ++i) {
    calib_idx.push_back(i);
  }
  const nn::Tensor calib =
      nn::gather_rows(pm.workload.val.inputs, calib_idx);
  engine::DeployedModel model(pm.workload.graph, pm.workload.prune.engine,
                              dev, calib);
  engine::IntermittentEngine eng(model, dev);

  nn::Tensor sample(pm.workload.val.sample_shape());
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = pm.workload.val.inputs[i];
  }
  const auto result = eng.run(sample);

  std::printf("== trace_report: %s, %s power, %s ==\n\n",
              pm.workload.name.c_str(), supply_name.c_str(),
              result.stats.completed ? "completed" : "DID NOT COMPLETE");
  std::printf("latency %.6f s  (on %.6f s, off %.6f s), %zu power failures, "
              "%.3f mJ\n\n",
              result.stats.latency_s, result.stats.on_s, result.stats.off_s,
              result.stats.power_failures, result.stats.energy_j * 1e3);

  const auto breakdown =
      telemetry::LatencyBreakdown::from(recorder.registry());
  std::puts("-- Latency breakdown (trace-derived, Fig. 2 split) --");
  std::fputs(telemetry::breakdown_table(breakdown).c_str(), stdout);
  std::puts("\n-- Per-layer exposure --");
  std::fputs(telemetry::layer_table(recorder.registry()).c_str(), stdout);

  if (telemetry::export_chrome_trace(recorder.events(), out_path)) {
    std::printf(
        "\ntrace: %s (%zu events, %llu dropped) — open in "
        "https://ui.perfetto.dev or chrome://tracing\n",
        out_path.c_str(), recorder.size(),
        static_cast<unsigned long long>(recorder.dropped()));
  } else {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  const std::string csv_path =
      out_path.substr(0, out_path.find(".trace.json")) + ".summary.csv";
  if (telemetry::summary_csv(recorder.registry()).save(csv_path)) {
    std::printf("summary: %s\n", csv_path.c_str());
  }
  return result.stats.completed ? 0 : 1;
}
