#include "apps/workloads.hpp"

#include <cstdlib>
#include <stdexcept>

#include "apps/models.hpp"

namespace iprune::apps {

const char* workload_name(WorkloadId id) {
  switch (id) {
    case WorkloadId::kSqn:
      return "SQN";
    case WorkloadId::kHar:
      return "HAR";
    case WorkloadId::kCks:
      return "CKS";
  }
  return "?";
}

const char* workload_task(WorkloadId id) {
  switch (id) {
    case WorkloadId::kSqn:
      return "Image Recognition";
    case WorkloadId::kHar:
      return "Human Activity Detection";
    case WorkloadId::kCks:
      return "Speech Keyword Spotting";
  }
  return "?";
}

std::vector<WorkloadId> all_workloads() {
  return {WorkloadId::kSqn, WorkloadId::kHar, WorkloadId::kCks};
}

bool fast_mode() {
  const char* value = std::getenv("IPRUNE_FAST");
  return value != nullptr && value[0] == '1';
}

namespace {

data::Split make_split(const data::Dataset& full, std::uint64_t seed) {
  util::Rng rng(seed);
  return data::split_dataset(full, 0.8, rng);
}

void apply_fast_overrides(Workload& w) {
  w.initial_training.epochs = std::max<std::size_t>(
      2, w.initial_training.epochs / 2);
  w.prune.max_iterations = std::min<std::size_t>(w.prune.max_iterations, 4);
  w.prune.finetune.epochs = 1;
  w.prune.sensitivity.max_samples = 96;
}

}  // namespace

Workload make_workload(WorkloadId id) {
  Workload w;
  w.id = id;
  w.name = workload_name(id);
  w.task = workload_task(id);
  util::Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(id));

  // Shared pruning defaults (paper §III-D): ε = 1 %, Γ̂ = 40 %, block
  // granularity, second chance.
  w.prune.epsilon = 0.01;
  w.prune.gamma_hat = 0.40;
  w.prune.strikes_allowed = 2;
  w.prune.granularity = core::Granularity::kBlock;
  w.prune.sensitivity.probe_ratio = 0.10;
  w.prune.finetune.batch_size = 32;
  w.prune.finetune.sgd.learning_rate = 0.03f;
  w.prune.finetune.sgd.momentum = 0.9f;
  w.prune.finetune.lr_decay = 0.80f;
  w.prune.finetune.epochs = 5;

  w.initial_training.batch_size = 32;
  w.initial_training.sgd.learning_rate = 0.05f;
  w.initial_training.sgd.momentum = 0.9f;
  w.initial_training.lr_decay = 0.85f;

  data::SyntheticConfig data_cfg;
  switch (id) {
    case WorkloadId::kSqn: {
      w.graph = build_sqn(rng);
      data_cfg.samples = fast_mode() ? 600 : 1600;
      data_cfg.seed = 42;
      data_cfg.noise = 0.60f;
      data_cfg.label_noise = 0.18f;
      const data::Split split =
          make_split(data::make_image_dataset(data_cfg), 11);
      w.train = split.train;
      w.val = split.val;
      w.initial_training.epochs = 12;
      w.prune.max_iterations = 6;
      w.prune.sensitivity.max_samples = 160;
      break;
    }
    case WorkloadId::kHar: {
      w.graph = build_har(rng);
      data_cfg.samples = fast_mode() ? 800 : 2400;
      data_cfg.seed = 43;
      data_cfg.noise = 1.20f;
      data_cfg.label_noise = 0.06f;
      const data::Split split =
          make_split(data::make_har_dataset(data_cfg), 12);
      w.train = split.train;
      w.val = split.val;
      w.initial_training.epochs = 14;
      w.prune.max_iterations = 10;
      w.prune.sensitivity.max_samples = 256;
      break;
    }
    case WorkloadId::kCks: {
      w.graph = build_cks(rng);
      data_cfg.samples = fast_mode() ? 700 : 2000;
      data_cfg.seed = 44;
      data_cfg.noise = 0.70f;
      data_cfg.label_noise = 0.08f;
      const data::Split split =
          make_split(data::make_speech_dataset(data_cfg), 13);
      w.train = split.train;
      w.val = split.val;
      w.initial_training.epochs = 12;
      w.prune.max_iterations = 10;
      w.prune.sensitivity.max_samples = 256;
      break;
    }
  }
  if (fast_mode()) {
    apply_fast_overrides(w);
  }
  return w;
}

}  // namespace iprune::apps
