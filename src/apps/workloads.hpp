#pragma once
// Workload registry: model + synthetic dataset + training and pruning
// hyperparameters for each of the paper's three TinyML applications.
//
// Setting IPRUNE_FAST=1 in the environment shrinks datasets / epochs /
// iterations for quick CI runs (artifacts are cached under distinct names
// so fast and full results never mix).

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/graph.hpp"

namespace iprune::apps {

enum class WorkloadId { kSqn, kHar, kCks };

const char* workload_name(WorkloadId id);
const char* workload_task(WorkloadId id);
std::vector<WorkloadId> all_workloads();

/// True when IPRUNE_FAST=1.
bool fast_mode();

struct Workload {
  WorkloadId id = WorkloadId::kHar;
  std::string name;
  std::string task;
  nn::Graph graph;
  data::Dataset train;
  data::Dataset val;
  nn::TrainConfig initial_training;
  core::PruneConfig prune;

  Workload() : graph(nn::Shape{1}) {}
};

/// Build the untrained workload (graph + data + configs). Deterministic.
Workload make_workload(WorkloadId id);

}  // namespace iprune::apps
