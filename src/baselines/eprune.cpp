#include "baselines/eprune.hpp"

#include <memory>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::baselines {

namespace {
constexpr double kMaxLayerRatio = 0.35;
}

std::vector<double> EPruneAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  (void)rng;
  // Pruned mass proportional to layer energy: mass_i = γ_i k_i ∝ e_i,
  // i.e. preference_i = e_i / k_i (see core::scale_to_budget semantics).
  std::vector<double> preference(stats.size(), 0.0);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].alive_weights > 0) {
      preference[i] =
          stats[i].energy_j / static_cast<double>(stats[i].alive_weights);
    }
  }
  return core::scale_to_budget(stats, preference, gamma, kMaxLayerRatio);
}

std::vector<EPruneSweepPoint> sweep_eprune_gamma(
    const nn::Graph& graph, std::span<const double> gamma_hats,
    const core::PruneConfig& base_config, const nn::Tensor& train_x,
    std::span<const int> train_y, const nn::Tensor& val_x,
    std::span<const int> val_y, runtime::ThreadPool* pool) {
  // Each sweep point prunes its own clone with its own pruner, so points
  // are independent; any search the pruner itself tries to parallelize
  // runs inline inside the point's task.
  return runtime::parallel_map(
      runtime::ThreadPool::resolve(pool), gamma_hats.size(),
      [&](std::size_t i) {
        core::PruneConfig config = base_config;
        config.gamma_hat = gamma_hats[i];
        nn::Graph model = graph.clone();
        core::IterativePruner pruner(config,
                                     std::make_unique<EPruneAllocator>());
        EPruneSweepPoint point;
        point.gamma_hat = gamma_hats[i];
        point.outcome =
            pruner.run(model, train_x, train_y, val_x, val_y);
        return point;
      });
}

std::vector<double> UniformAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  (void)rng;
  return core::scale_to_budget(stats, std::vector<double>(stats.size(), 1.0),
                               gamma, kMaxLayerRatio);
}

std::vector<double> RandomAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  std::vector<double> preference(stats.size());
  for (double& p : preference) {
    p = rng.uniform(0.05, 1.0);
  }
  return core::scale_to_budget(stats, preference, gamma, kMaxLayerRatio);
}

}  // namespace iprune::baselines
