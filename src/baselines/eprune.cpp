#include "baselines/eprune.hpp"

namespace iprune::baselines {

namespace {
constexpr double kMaxLayerRatio = 0.35;
}

std::vector<double> EPruneAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  (void)rng;
  // Pruned mass proportional to layer energy: mass_i = γ_i k_i ∝ e_i,
  // i.e. preference_i = e_i / k_i (see core::scale_to_budget semantics).
  std::vector<double> preference(stats.size(), 0.0);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].alive_weights > 0) {
      preference[i] =
          stats[i].energy_j / static_cast<double>(stats[i].alive_weights);
    }
  }
  return core::scale_to_budget(stats, preference, gamma, kMaxLayerRatio);
}

std::vector<double> UniformAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  (void)rng;
  return core::scale_to_budget(stats, std::vector<double>(stats.size(), 1.0),
                               gamma, kMaxLayerRatio);
}

std::vector<double> RandomAllocator::allocate(
    const std::vector<core::LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  std::vector<double> preference(stats.size());
  for (double& p : preference) {
    p = rng.uniform(0.05, 1.0);
  }
  return core::scale_to_budget(stats, preference, gamma, kMaxLayerRatio);
}

}  // namespace iprune::baselines
