#pragma once
// Comparison frameworks (paper §IV-A).
//
// ePrune: the energy-aware baseline — same estimate-prune-retrain loop and
// the same recoverable threshold ε, but it allocates pruning mass in
// proportion to each layer's (continuous-mode) energy, and uses a fixed
// per-iteration overall ratio since it has no intermittency-aware
// guideline for choosing Γ. Modeled after Yang et al. [18].
//
// UniformAllocator / RandomAllocator: criterion-ablation strawmen.

#include <span>

#include "core/pruner.hpp"
#include "core/ratio_search.hpp"

namespace iprune::baselines {

class EPruneAllocator final : public core::RatioAllocator {
 public:
  [[nodiscard]] const char* name() const override { return "ePrune"; }

  /// Fixed per-iteration rate: half the upper bound. (iPrune's guideline-1
  /// choice is usually smaller, letting it run more iterations before the
  /// loss stops recovering — the effect Table III attributes the size gap
  /// to.)
  [[nodiscard]] double overall_ratio(const std::vector<core::LayerStats>&,
                                     double gamma_hat) const override {
    return gamma_hat * 0.5;
  }

  [[nodiscard]] std::vector<double> allocate(
      const std::vector<core::LayerStats>& stats, double gamma,
      util::Rng& rng) const override;
};

/// Uniform γ_i = Γ for every layer (pure magnitude-style pruning).
class UniformAllocator final : public core::RatioAllocator {
 public:
  [[nodiscard]] const char* name() const override { return "uniform"; }
  [[nodiscard]] double overall_ratio(const std::vector<core::LayerStats>&,
                                     double gamma_hat) const override {
    return gamma_hat * 0.5;
  }
  [[nodiscard]] std::vector<double> allocate(
      const std::vector<core::LayerStats>& stats, double gamma,
      util::Rng& rng) const override;
};

/// One point of an ePrune upper-bound sweep (see sweep_eprune_gamma).
struct EPruneSweepPoint {
  double gamma_hat = 0.0;
  core::PruneOutcome outcome;
};

/// Run the full ePrune estimate-prune-retrain loop once per Γ̂ value, each
/// against its own clone of `graph` (the original is left untouched), with
/// the runs distributed over the pool (nullptr = the shared pool). Results
/// are ordered like `gamma_hats` and bit-identical for any lane count.
std::vector<EPruneSweepPoint> sweep_eprune_gamma(
    const nn::Graph& graph, std::span<const double> gamma_hats,
    const core::PruneConfig& base_config, const nn::Tensor& train_x,
    std::span<const int> train_y, const nn::Tensor& val_x,
    std::span<const int> val_y, runtime::ThreadPool* pool = nullptr);

/// Random allocation (sanity floor for the criterion ablation).
class RandomAllocator final : public core::RatioAllocator {
 public:
  [[nodiscard]] const char* name() const override { return "random"; }
  [[nodiscard]] double overall_ratio(const std::vector<core::LayerStats>&,
                                     double gamma_hat) const override {
    return gamma_hat * 0.5;
  }
  [[nodiscard]] std::vector<double> allocate(
      const std::vector<core::LayerStats>& stats, double gamma,
      util::Rng& rng) const override;
};

}  // namespace iprune::baselines
