#include "baselines/oneshot.hpp"

namespace iprune::baselines {

OneShotResult one_shot_prune(nn::Graph& graph,
                             std::vector<engine::PrunableLayer>& layers,
                             double ratio, core::Granularity granularity,
                             const nn::Tensor& train_x,
                             std::span<const int> train_y,
                             const nn::Tensor& val_x,
                             std::span<const int> val_y,
                             const nn::TrainConfig& retrain) {
  OneShotResult result;
  for (engine::PrunableLayer& layer : layers) {
    core::prune_layer(layer, ratio, granularity);
  }
  nn::Trainer trainer(graph);
  result.accuracy_before_retrain = trainer.evaluate(val_x, val_y).accuracy;
  trainer.train(train_x, train_y, retrain);
  result.accuracy_after_retrain = trainer.evaluate(val_x, val_y).accuracy;
  for (const engine::PrunableLayer& layer : layers) {
    result.alive_weights += layer.alive_weights();
  }
  return result;
}

}  // namespace iprune::baselines
