#pragma once
// One-shot pruning baseline (background §I): prune the trained model once
// to a target ratio, then retrain. Contrasted against iterative pruning in
// the granularity/strategy ablations.

#include "core/block_pruner.hpp"
#include "nn/trainer.hpp"

namespace iprune::baselines {

struct OneShotResult {
  double accuracy_before_retrain = 0.0;
  double accuracy_after_retrain = 0.0;
  std::size_t alive_weights = 0;
};

/// Prune `ratio` of every prunable layer's weights at the given
/// granularity (uniformly across layers), then retrain.
OneShotResult one_shot_prune(nn::Graph& graph,
                             std::vector<engine::PrunableLayer>& layers,
                             double ratio, core::Granularity granularity,
                             const nn::Tensor& train_x,
                             std::span<const int> train_y,
                             const nn::Tensor& val_x,
                             std::span<const int> val_y,
                             const nn::TrainConfig& retrain);

}  // namespace iprune::baselines
