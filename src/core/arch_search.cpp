#include "core/arch_search.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/log.hpp"

namespace iprune::core {

bool pareto_insert(std::vector<ArchCandidate>& archive,
                   const ArchCandidate& candidate) {
  for (const ArchCandidate& member : archive) {
    if (member.dominates(candidate)) {
      return false;
    }
  }
  std::erase_if(archive, [&](const ArchCandidate& member) {
    return candidate.dominates(member);
  });
  archive.push_back(candidate);
  return true;
}

namespace {

std::vector<std::size_t> random_widths(const ArchSearchConfig& config,
                                       util::Rng& rng) {
  std::vector<std::size_t> widths(config.min_widths.size());
  for (std::size_t d = 0; d < widths.size(); ++d) {
    widths[d] = config.min_widths[d] +
                rng.uniform_index(config.max_widths[d] -
                                  config.min_widths[d] + 1);
  }
  return widths;
}

std::vector<std::size_t> mutate_widths(const std::vector<std::size_t>& base,
                                       const ArchSearchConfig& config,
                                       util::Rng& rng) {
  std::vector<std::size_t> widths = base;
  const std::size_t dim = rng.uniform_index(widths.size());
  const std::size_t range =
      config.max_widths[dim] - config.min_widths[dim];
  // Step by up to a quarter of the dimension's range, either direction.
  const auto max_step = std::max<std::size_t>(1, range / 4);
  const auto step = 1 + rng.uniform_index(max_step);
  if (rng.bernoulli(0.5) && widths[dim] + step <= config.max_widths[dim]) {
    widths[dim] += step;
  } else if (widths[dim] >= config.min_widths[dim] + step) {
    widths[dim] -= step;
  } else {
    widths[dim] = config.min_widths[dim] + rng.uniform_index(range + 1);
  }
  return widths;
}

}  // namespace

ArchSearchResult search_architectures(const ArchBuilder& builder,
                                      const ArchSearchConfig& config,
                                      const data::Dataset& train,
                                      const data::Dataset& val) {
  if (config.min_widths.size() != config.max_widths.size() ||
      config.min_widths.empty()) {
    throw std::invalid_argument(
        "search_architectures: inconsistent width bounds");
  }
  for (std::size_t d = 0; d < config.min_widths.size(); ++d) {
    if (config.min_widths[d] > config.max_widths[d] ||
        config.min_widths[d] == 0) {
      throw std::invalid_argument(
          "search_architectures: invalid bounds at dimension " +
          std::to_string(d));
    }
  }

  util::Rng rng(config.seed);
  ArchSearchResult result;
  std::vector<ArchCandidate> archive;
  std::size_t first_evaluation = 0;
  const ArchSearchHooks* hooks = config.hooks;
  if (hooks != nullptr && hooks->resume.has_value()) {
    const ArchSearchCheckpoint& from = *hooks->resume;
    rng = util::Rng::from_state(from.rng);
    archive = from.archive;
    first_evaluation = static_cast<std::size_t>(from.next_evaluation);
    result.evaluated = static_cast<std::size_t>(from.evaluated);
    result.infeasible = static_cast<std::size_t>(from.infeasible);
  }

  // Candidate evaluation is self-contained: the graph is built with a
  // fixed-seed init stream (independent of candidate order) and trained /
  // measured locally, so verdicts for one generation can run concurrently.
  auto evaluate = [&](const std::vector<std::size_t>& widths) -> ArchVerdict {
    ArchVerdict verdict;
    try {
      util::Rng init_rng(config.seed ^ 0x5EED);
      nn::Graph graph = [&]() -> nn::Graph {
        try {
          return builder(widths, init_rng);
        } catch (const std::exception&) {
          verdict.infeasible = true;
          throw;
        }
      }();

      nn::Trainer trainer(graph);
      trainer.train(train.inputs, train.labels, config.proxy_training);

      ArchCandidate candidate;
      candidate.widths = widths;
      candidate.accuracy =
          trainer.evaluate(val.inputs, val.labels).accuracy;
      const auto layers =
          engine::prunable_layers(graph, config.engine, config.memory);
      for (const auto& layer : layers) {
        candidate.acc_outputs += layer.acc_outputs();
      }
      candidate.parameters = graph.parameter_count();
      verdict.candidate = std::move(candidate);
    } catch (const std::exception& error) {
      util::log_debug(std::string("arch_search: infeasible candidate: ") +
                      error.what());
    }
    return verdict;
  };

  // (1+λ) loop in generations: widths drawn serially from the archive as
  // it stood at the generation start, evaluated concurrently, folded back
  // in candidate order. Checkpoints land on generation boundaries — the
  // only points where (rng, archive, counters) fully determine the rest of
  // the trajectory.
  runtime::ThreadPool& pool = runtime::ThreadPool::resolve(config.pool);
  const std::size_t batch = std::max<std::size_t>(config.batch_size, 1);
  for (std::size_t start = first_evaluation; start < config.evaluations;
       start += batch) {
    const std::size_t count =
        std::min(batch, config.evaluations - start);
    std::vector<std::vector<std::size_t>> generation;
    generation.reserve(count);
    for (std::size_t i = start; i < start + count; ++i) {
      if (i < config.initial_random || archive.empty()) {
        generation.push_back(random_widths(config, rng));
      } else {
        const ArchCandidate& parent =
            archive[rng.uniform_index(archive.size())];
        generation.push_back(mutate_widths(parent.widths, config, rng));
      }
    }
    const std::vector<ArchVerdict> verdicts = runtime::parallel_map(
        pool, count, [&](std::size_t i) -> ArchVerdict {
          if (hooks != nullptr && hooks->intercept) {
            return hooks->intercept(generation[i],
                                    [&] { return evaluate(generation[i]); });
          }
          return evaluate(generation[i]);
        });
    for (const ArchVerdict& verdict : verdicts) {
      if (verdict.infeasible) {
        ++result.infeasible;
      }
      if (verdict.candidate.has_value()) {
        ++result.evaluated;
        pareto_insert(archive, *verdict.candidate);
      }
    }
    if (hooks != nullptr && hooks->on_generation) {
      ArchSearchCheckpoint snap;
      snap.next_evaluation = start + count;
      snap.rng = rng.state();
      snap.archive = archive;
      snap.evaluated = result.evaluated;
      snap.infeasible = result.infeasible;
      hooks->on_generation(snap);
    }
  }

  std::sort(archive.begin(), archive.end(),
            [](const ArchCandidate& a, const ArchCandidate& b) {
              return a.acc_outputs < b.acc_outputs;
            });
  result.pareto_front = std::move(archive);
  return result;
}

}  // namespace iprune::core
