#pragma once
// Intermittent-aware architecture search (extension; the paper's ref [13],
// iNAS, is the same group's precursor). Searches a caller-defined family
// of architectures — parameterized by an integer width vector — for the
// accuracy / accelerator-output Pareto front: the same criterion iPrune
// prunes with, applied one level earlier at design time.
//
// The search is a simple (1+λ) evolutionary loop over a Pareto archive:
// seed with random candidates, then repeatedly mutate an archive member
// by one width step; every evaluated candidate that is not dominated
// enters the archive. Candidate evaluation trains briefly (proxy
// training) and counts accelerator outputs from the engine tile plans.

#include <cstdint>
#include <functional>
#include <optional>

#include "data/dataset.hpp"
#include "engine/lowering.hpp"
#include "nn/trainer.hpp"

namespace iprune::runtime {
class ThreadPool;
}

namespace iprune::core {

struct ArchCandidate {
  std::vector<std::size_t> widths;
  double accuracy = 0.0;
  std::size_t acc_outputs = 0;
  std::size_t parameters = 0;

  /// Pareto dominance: at least as good on both objectives (maximize
  /// accuracy, minimize accelerator outputs) and strictly better on one.
  [[nodiscard]] bool dominates(const ArchCandidate& other) const {
    const bool no_worse = accuracy >= other.accuracy &&
                          acc_outputs <= other.acc_outputs;
    const bool better = accuracy > other.accuracy ||
                        acc_outputs < other.acc_outputs;
    return no_worse && better;
  }
};

/// Outcome of evaluating one candidate width vector. `infeasible` marks a
/// builder rejection; an empty candidate without the flag means training
/// or lowering failed for another (still skippable) reason.
struct ArchVerdict {
  std::optional<ArchCandidate> candidate;
  bool infeasible = false;
};

/// Complete search state at a generation boundary: the index of the first
/// unevaluated candidate, the mutation RNG's stream position, the Pareto
/// archive, and the running counters. Restoring it and continuing yields
/// the same trajectory the uninterrupted search takes, because widths are
/// drawn serially at generation start from exactly this state.
struct ArchSearchCheckpoint {
  std::uint64_t next_evaluation = 0;
  util::RngState rng;
  std::vector<ArchCandidate> archive;
  std::uint64_t evaluated = 0;
  std::uint64_t infeasible = 0;
};

/// Optional plumbing for resumable / cached searches (src/search). All
/// members may be empty; defaults reproduce the plain search exactly.
struct ArchSearchHooks {
  /// Intercept a candidate evaluation. Receives the widths and the default
  /// evaluator for them; a cache can answer without calling the default.
  std::function<ArchVerdict(const std::vector<std::size_t>& widths,
                            const std::function<ArchVerdict()>& evaluate)>
      intercept;
  /// Called after each generation's verdicts fold into the archive.
  std::function<void(const ArchSearchCheckpoint&)> on_generation;
  /// Start from this checkpoint instead of from scratch.
  std::optional<ArchSearchCheckpoint> resume;
};

struct ArchSearchConfig {
  /// Inclusive per-dimension bounds on the width vector.
  std::vector<std::size_t> min_widths;
  std::vector<std::size_t> max_widths;
  /// Random seeds + mutations evaluated in total.
  std::size_t evaluations = 12;
  std::size_t initial_random = 4;
  /// Proxy-training schedule per candidate.
  nn::TrainConfig proxy_training;
  std::uint64_t seed = 77;
  engine::EngineConfig engine;
  device::MemoryConfig memory;
  /// Candidates evaluated concurrently per generation. Width vectors are
  /// generated serially at the start of a generation and verdicts are
  /// folded into the archive in candidate order, so the trajectory depends
  /// only on batch_size (and the seed), never on the pool's lane count;
  /// batch_size == 1 reproduces the fully serial trajectory.
  std::size_t batch_size = 4;
  /// Pool for candidate evaluation; nullptr = ThreadPool::shared().
  runtime::ThreadPool* pool = nullptr;
  /// Resume/cache plumbing (not owned); nullptr = plain search.
  const ArchSearchHooks* hooks = nullptr;
};

/// Maps a width vector to a model (throws for invalid combinations, which
/// the search treats as infeasible and skips).
using ArchBuilder =
    std::function<nn::Graph(const std::vector<std::size_t>&, util::Rng&)>;

struct ArchSearchResult {
  /// Non-dominated candidates, sorted by ascending accelerator outputs.
  std::vector<ArchCandidate> pareto_front;
  std::size_t evaluated = 0;
  std::size_t infeasible = 0;
};

ArchSearchResult search_architectures(const ArchBuilder& builder,
                                      const ArchSearchConfig& config,
                                      const data::Dataset& train,
                                      const data::Dataset& val);

/// Insert into a Pareto archive: drops dominated members, rejects the
/// candidate if it is itself dominated. Returns true when inserted.
bool pareto_insert(std::vector<ArchCandidate>& archive,
                   const ArchCandidate& candidate);

}  // namespace iprune::core
