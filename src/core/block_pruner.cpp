#include "core/block_pruner.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace iprune::core {

double block_rms(const engine::PrunableLayer& layer, std::size_t rt,
                 std::size_t kt) {
  const engine::TilePlan& plan = layer.plan;
  const nn::Tensor& w = *layer.weight;
  const std::size_t r0 = rt * plan.br;
  const std::size_t k0 = kt * plan.bk;
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t r = r0; r < r0 + plan.rows_in_tile(rt); ++r) {
    for (std::size_t kk = k0; kk < k0 + plan.k_in_tile(kt); ++kk) {
      const double v = w.at(r, kk);
      sum_sq += v * v;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sum_sq / static_cast<double>(count)) : 0.0;
}

namespace {

void zero_block(engine::PrunableLayer& layer, std::size_t rt,
                std::size_t kt) {
  const engine::TilePlan& plan = layer.plan;
  for (std::size_t r = rt * plan.br;
       r < rt * plan.br + plan.rows_in_tile(rt); ++r) {
    for (std::size_t kk = kt * plan.bk;
         kk < kt * plan.bk + plan.k_in_tile(kt); ++kk) {
      layer.mask->at(r, kk) = 0.0f;
      layer.weight->at(r, kk) = 0.0f;
    }
  }
}

std::size_t prune_blocks(engine::PrunableLayer& layer, std::size_t target) {
  struct Candidate {
    double rms;
    std::size_t rt, kt, weights;
  };
  const engine::TilePlan& plan = layer.plan;
  const engine::BlockMask bmask = layer.block_mask();
  std::vector<Candidate> candidates;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
      if (bmask.alive(rt, kt)) {
        candidates.push_back(
            {block_rms(layer, rt, kt), rt, kt, plan.block_weights(rt, kt)});
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.rms < b.rms;
                   });
  std::size_t removed = 0;
  for (const Candidate& c : candidates) {
    if (removed >= target) {
      break;
    }
    zero_block(layer, c.rt, c.kt);
    removed += c.weights;
  }
  return removed;
}

std::size_t prune_fine(engine::PrunableLayer& layer, std::size_t target) {
  struct Candidate {
    float magnitude;
    std::size_t index;
  };
  nn::Tensor& w = *layer.weight;
  nn::Tensor& m = *layer.mask;
  std::vector<Candidate> candidates;
  candidates.reserve(w.numel());
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (m[i] != 0.0f) {
      candidates.push_back({std::fabs(w[i]), i});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.magnitude < b.magnitude;
                   });
  const std::size_t count = std::min(target, candidates.size());
  for (std::size_t i = 0; i < count; ++i) {
    m[candidates[i].index] = 0.0f;
    w[candidates[i].index] = 0.0f;
  }
  return count;
}

std::size_t prune_channels(engine::PrunableLayer& layer, std::size_t target) {
  struct Candidate {
    double rms;
    std::size_t row, weights;
  };
  nn::Tensor& w = *layer.weight;
  nn::Tensor& m = *layer.mask;
  const std::size_t rows = w.dim(0);
  const std::size_t k = w.dim(1);
  std::vector<Candidate> candidates;
  for (std::size_t r = 0; r < rows; ++r) {
    double sum_sq = 0.0;
    std::size_t alive = 0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      if (m.at(r, kk) != 0.0f) {
        sum_sq += static_cast<double>(w.at(r, kk)) * w.at(r, kk);
        ++alive;
      }
    }
    if (alive > 0) {
      candidates.push_back(
          {std::sqrt(sum_sq / static_cast<double>(alive)), r, alive});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.rms < b.rms;
                   });
  std::size_t removed = 0;
  for (const Candidate& c : candidates) {
    if (removed >= target) {
      break;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      m.at(c.row, kk) = 0.0f;
      w.at(c.row, kk) = 0.0f;
    }
    removed += c.weights;
  }
  return removed;
}

}  // namespace

std::size_t prune_layer(engine::PrunableLayer& layer, double ratio,
                        Granularity granularity) {
  if (ratio <= 0.0) {
    return 0;
  }
  const std::size_t alive = layer.alive_weights();
  const auto target = static_cast<std::size_t>(
      std::llround(ratio * static_cast<double>(alive)));
  if (target == 0) {
    return 0;
  }
  switch (granularity) {
    case Granularity::kBlock:
      return prune_blocks(layer, target);
    case Granularity::kFine:
      return prune_fine(layer, target);
    case Granularity::kChannel:
      return prune_channels(layer, target);
  }
  return 0;
}

}  // namespace iprune::core
