#pragma once
// Within-layer pruning (the paper's third guideline): score weight blocks
// by their RMS [20] and remove the lowest-impact blocks until the layer's
// allocated ratio is met. Fine-grained and channel granularities are also
// implemented for the granularity ablation (they do NOT eliminate whole
// accelerator operations, which is exactly the paper's point).

#include "engine/lowering.hpp"

namespace iprune::core {

enum class Granularity {
  kBlock,    // one accelerator operation's weight block (iPrune default)
  kFine,     // individual weights (magnitude)
  kChannel,  // whole output-channel rows
};

/// Prune `ratio` of the layer's currently alive weights at the given
/// granularity by zeroing mask entries (and weights). Returns the number
/// of weight elements actually removed (block granularity can slightly
/// overshoot: whole blocks only).
std::size_t prune_layer(engine::PrunableLayer& layer, double ratio,
                        Granularity granularity);

/// RMS of one block's weights (the block-impact metric).
double block_rms(const engine::PrunableLayer& layer, std::size_t rt,
                 std::size_t kt);

}  // namespace iprune::core
