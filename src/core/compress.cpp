#include "core/compress.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace iprune::core {

namespace {

/// Leading singular triplet of W (residual) via power iteration.
void power_iteration(const std::vector<double>& w, std::size_t rows,
                     std::size_t cols, std::vector<double>& u,
                     std::vector<double>& v, double& sigma) {
  v.assign(cols, 1.0 / std::sqrt(static_cast<double>(cols)));
  u.assign(rows, 0.0);
  sigma = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    // u = W v
    for (std::size_t r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < cols; ++c) {
        acc += w[r * cols + c] * v[c];
      }
      u[r] = acc;
    }
    double u_norm = 0.0;
    for (const double x : u) {
      u_norm += x * x;
    }
    u_norm = std::sqrt(u_norm);
    if (u_norm < 1e-30) {
      sigma = 0.0;
      return;
    }
    for (double& x : u) {
      x /= u_norm;
    }
    // v = W^T u
    for (std::size_t c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += w[r * cols + c] * u[r];
      }
      v[c] = acc;
    }
    double v_norm = 0.0;
    for (const double x : v) {
      v_norm += x * x;
    }
    v_norm = std::sqrt(v_norm);
    if (v_norm < 1e-30) {
      sigma = 0.0;
      return;
    }
    const double new_sigma = v_norm;
    for (double& x : v) {
      x /= v_norm;
    }
    if (std::fabs(new_sigma - sigma) < 1e-10 * std::max(1.0, new_sigma)) {
      sigma = new_sigma;
      return;
    }
    sigma = new_sigma;
  }
}

}  // namespace

Decomposition decompose_low_rank(const nn::Tensor& weight,
                                 std::size_t rank) {
  if (weight.rank() != 2) {
    throw std::invalid_argument("decompose_low_rank: weight must be 2-D");
  }
  const std::size_t rows = weight.dim(0);
  const std::size_t cols = weight.dim(1);
  if (rank == 0 || rank > std::min(rows, cols)) {
    throw std::invalid_argument("decompose_low_rank: invalid rank " +
                                std::to_string(rank));
  }

  std::vector<double> residual(rows * cols);
  double total_sq = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = weight[i];
    total_sq += residual[i] * residual[i];
  }

  Decomposition d;
  d.u = nn::Tensor({rows, rank});
  d.v = nn::Tensor({rank, cols});

  std::vector<double> u, v;
  for (std::size_t k = 0; k < rank; ++k) {
    double sigma = 0.0;
    power_iteration(residual, rows, cols, u, v, sigma);
    const double sqrt_sigma = std::sqrt(std::max(sigma, 0.0));
    for (std::size_t r = 0; r < rows; ++r) {
      d.u.at(r, k) = static_cast<float>(u[r] * sqrt_sigma);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      d.v.at(k, c) = static_cast<float>(v[c] * sqrt_sigma);
    }
    // Deflate.
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        residual[r * cols + c] -= sigma * u[r] * v[c];
      }
    }
  }

  double residual_sq = 0.0;
  for (const double x : residual) {
    residual_sq += x * x;
  }
  d.relative_error =
      total_sq > 0.0 ? std::sqrt(residual_sq / total_sq) : 0.0;
  return d;
}

nn::Tensor reconstruct(const Decomposition& d) {
  const std::size_t rows = d.u.dim(0);
  const std::size_t rank = d.u.dim(1);
  const std::size_t cols = d.v.dim(1);
  nn::Tensor w({rows, cols});
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < rank; ++k) {
        acc += static_cast<double>(d.u.at(r, k)) * d.v.at(k, c);
      }
      w.at(r, c) = static_cast<float>(acc);
    }
  }
  return w;
}

DecompositionCost decomposition_cost(std::size_t out_features,
                                     std::size_t in_features,
                                     std::size_t rank,
                                     const engine::EngineConfig& config,
                                     const device::MemoryConfig& memory) {
  DecompositionCost cost;
  const engine::TilePlan original =
      engine::plan_gemm(out_features, 1, in_features, config, memory);
  const engine::BlockMask full_o(original.row_tiles(), original.k_tiles(),
                                 true);
  cost.original_acc_outputs =
      engine::count_accelerator_outputs(original, full_o);
  cost.original_weights = out_features * in_features;

  const engine::TilePlan first =
      engine::plan_gemm(rank, 1, in_features, config, memory);
  const engine::BlockMask full_1(first.row_tiles(), first.k_tiles(), true);
  const engine::TilePlan second =
      engine::plan_gemm(out_features, 1, rank, config, memory);
  const engine::BlockMask full_2(second.row_tiles(), second.k_tiles(),
                                 true);
  cost.decomposed_acc_outputs =
      engine::count_accelerator_outputs(first, full_1) +
      engine::count_accelerator_outputs(second, full_2);
  cost.decomposed_weights = rank * (in_features + out_features);
  return cost;
}

std::size_t choose_rank(const nn::Tensor& weight,
                        double max_relative_error) {
  const std::size_t limit = std::min(weight.dim(0), weight.dim(1));
  for (std::size_t rank = 1; rank <= limit; ++rank) {
    if (decompose_low_rank(weight, rank).relative_error <=
        max_relative_error) {
      return rank;
    }
  }
  return limit;
}

WeightSharingResult share_weights(nn::Tensor& weight, std::size_t clusters,
                                  util::Rng& rng, std::size_t iterations) {
  if (clusters == 0) {
    throw std::invalid_argument("share_weights: need at least one cluster");
  }
  std::vector<std::size_t> alive;
  alive.reserve(weight.numel());
  float lo = 0.0f, hi = 0.0f;
  for (std::size_t i = 0; i < weight.numel(); ++i) {
    if (weight[i] != 0.0f) {
      alive.push_back(i);
      lo = std::min(lo, weight[i]);
      hi = std::max(hi, weight[i]);
    }
  }

  WeightSharingResult result;
  result.dense_bytes = alive.size() * 2;
  if (alive.empty()) {
    return result;
  }
  clusters = std::min(clusters, alive.size());

  // Linear initialization over the value range (standard for weight
  // sharing: preserves large-magnitude clusters), tiny jitter for ties.
  result.codebook.resize(clusters);
  for (std::size_t k = 0; k < clusters; ++k) {
    const double t = clusters > 1
                         ? static_cast<double>(k) /
                               static_cast<double>(clusters - 1)
                         : 0.5;
    result.codebook[k] = static_cast<float>(
        lo + t * (hi - lo) + rng.uniform(-1e-6, 1e-6));
  }

  std::vector<std::size_t> assignment(alive.size(), 0);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const float v = weight[alive[i]];
      std::size_t best = 0;
      float best_dist = std::fabs(v - result.codebook[0]);
      for (std::size_t k = 1; k < clusters; ++k) {
        const float dist = std::fabs(v - result.codebook[k]);
        if (dist < best_dist) {
          best_dist = dist;
          best = k;
        }
      }
      assignment[i] = best;
    }
    // Update.
    std::vector<double> sums(clusters, 0.0);
    std::vector<std::size_t> counts(clusters, 0);
    for (std::size_t i = 0; i < alive.size(); ++i) {
      sums[assignment[i]] += weight[alive[i]];
      ++counts[assignment[i]];
    }
    for (std::size_t k = 0; k < clusters; ++k) {
      if (counts[k] > 0) {
        result.codebook[k] =
            static_cast<float>(sums[k] / static_cast<double>(counts[k]));
      }
    }
  }

  // Apply and measure.
  double sq_err = 0.0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const float before = weight[alive[i]];
    const float after = result.codebook[assignment[i]];
    weight[alive[i]] = after;
    sq_err += static_cast<double>(before - after) * (before - after);
  }
  result.mse = sq_err / static_cast<double>(alive.size());

  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < clusters) {
    ++bits;
  }
  result.shared_bytes =
      (alive.size() * bits + 7) / 8 + result.codebook.size() * 2;
  return result;
}

}  // namespace iprune::core
