#pragma once
// Extensions beyond the paper's core contribution (its §V explicitly
// flags these as future work): adapting two further model-compression
// techniques — low-rank matrix decomposition and weight sharing — to
// intermittent systems, using the same accelerator-output lens as iPrune.
//
// * Low-rank decomposition splits an FC weight W[out,in] into
//   U[out,r]·V[r,in]. On the device this becomes two chained
//   vector-matrix products, changing the accelerator-output count from
//   out*ceil(in/Bk) to r*ceil(in/Bk) + out*ceil(r/Bk) — a win whenever
//   the rank is small against both dimensions.
// * Weight sharing clusters surviving weights into a small codebook
//   (Deep-Compression style). It shrinks the *model size* (index bits vs
//   16-bit values) but leaves the accelerator-output count untouched —
//   an instructive contrast with iPrune's criterion, quantified by
//   bench_ablation_compression.

#include "engine/tile_plan.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace iprune::core {

struct Decomposition {
  nn::Tensor u;  // [out, rank]
  nn::Tensor v;  // [rank, in]
  /// Relative Frobenius reconstruction error ||W - UV|| / ||W||.
  double relative_error = 0.0;
};

/// Rank-`rank` approximation of a 2-D weight matrix via deterministic
/// power iteration with deflation. Throws if rank is 0 or exceeds
/// min(out, in).
Decomposition decompose_low_rank(const nn::Tensor& weight, std::size_t rank);

/// Reconstruct U*V (for evaluating the decomposed model's accuracy
/// without graph surgery: the chained pair computes exactly this matrix).
nn::Tensor reconstruct(const Decomposition& d);

/// Accelerator outputs of the original FC layer vs its decomposed pair,
/// under the engine's tile plans.
struct DecompositionCost {
  std::size_t original_acc_outputs = 0;
  std::size_t decomposed_acc_outputs = 0;
  std::size_t original_weights = 0;
  std::size_t decomposed_weights = 0;
};
DecompositionCost decomposition_cost(std::size_t out_features,
                                     std::size_t in_features,
                                     std::size_t rank,
                                     const engine::EngineConfig& config,
                                     const device::MemoryConfig& memory);

/// Smallest rank whose relative reconstruction error is below
/// `max_relative_error` (linear scan; ranks are small on TinyML layers).
std::size_t choose_rank(const nn::Tensor& weight, double max_relative_error);

// ---------------------------------------------------------------------

struct WeightSharingResult {
  /// Cluster centroids (the codebook).
  std::vector<float> codebook;
  /// Model bytes if weights are stored as codebook indices:
  /// ceil(log2(clusters)) bits per surviving weight + 16-bit codebook.
  std::size_t shared_bytes = 0;
  /// 16-bit dense baseline for the same surviving weights.
  std::size_t dense_bytes = 0;
  /// Mean squared quantization error introduced.
  double mse = 0.0;
};

/// K-means (1-D, deterministic given the rng) clustering of the nonzero
/// weights; the tensor is rewritten in place with each weight replaced by
/// its centroid. Masked (zero) weights are left untouched.
WeightSharingResult share_weights(nn::Tensor& weight, std::size_t clusters,
                                  util::Rng& rng,
                                  std::size_t iterations = 25);

}  // namespace iprune::core
