#include "core/criterion.hpp"

namespace iprune::core {

double estimate_layer_energy(const engine::TilePlan& plan,
                             const engine::BlockMask& mask,
                             const device::DeviceConfig& device) {
  const auto& dma = device.dma;
  const auto& lea = device.lea;
  const auto& rails = device.rails;

  auto read_us = [&](std::size_t bytes) { return dma.read_latency_us(bytes); };
  auto write_us = [&](std::size_t bytes) {
    return dma.write_latency_us(bytes);
  };

  double read_time = 0.0;
  double write_time = 0.0;
  double lea_time = 0.0;

  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::size_t alive = mask.alive_in_row(rt);
    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
        if (!mask.alive(rt, kt)) {
          continue;
        }
        const std::size_t bk_actual = plan.k_in_tile(kt);
        // Index locate (2 reads) + weight block + input tile.
        read_time += read_us(2) + read_us(2) +
                     read_us(rows_in * bk_actual * 2) +
                     static_cast<double>(bk_actual) * read_us(cols_in * 2);
        lea_time += lea.op_latency_us(rows_in * cols_in * bk_actual);
      }
      // Finalize: bias read + one OFM tile write (also for dead rows,
      // which are bias-filled).
      read_time += read_us(rows_in * 4);
      write_time += write_us(rows_in * cols_in * 2);
      (void)alive;
    }
  }

  const double total_us = read_time + write_time + lea_time;
  return (rails.base_active_w * total_us + rails.nvm_read_w * read_time +
          rails.nvm_write_w * write_time + rails.lea_active_w * lea_time) *
         1e-6;
}

std::vector<LayerStats> collect_layer_stats(
    const std::vector<engine::PrunableLayer>& layers,
    const device::DeviceConfig& device) {
  std::vector<LayerStats> stats;
  stats.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const engine::PrunableLayer& layer = layers[i];
    LayerStats s;
    s.index = i;
    s.name = layer.name;
    s.alive_weights = layer.alive_weights();
    s.total_weights = layer.total_weights();
    s.acc_outputs = layer.acc_outputs();
    {
      const engine::EngineConfig defaults;
      s.nvm_write_bytes = engine::count_nvm_write_bytes(
          layer.plan, layer.block_mask(), defaults.psum_bytes,
          defaults.counter_bytes);
    }
    s.energy_j =
        estimate_layer_energy(layer.plan, layer.block_mask(), device);
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace iprune::core
