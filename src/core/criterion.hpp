#pragma once
// iPrune's pruning criterion (paper §III-B): the per-layer accelerator
// output count, computed analytically from the model structure and engine
// configuration — never from power-dependent latency measurements. Also
// provides the analytic per-layer energy estimate that the ePrune baseline
// uses as its criterion.

#include <vector>

#include "device/config.hpp"
#include "engine/lowering.hpp"

namespace iprune::core {

struct LayerStats {
  std::size_t index = 0;  // position in the prunable-layer list
  std::string name;
  std::size_t alive_weights = 0;
  std::size_t total_weights = 0;
  std::size_t acc_outputs = 0;  // iPrune criterion
  std::size_t nvm_write_bytes = 0;  // wPrune ablation criterion
  double energy_j = 0.0;        // ePrune criterion (continuous-mode energy)
  double sensitivity = 0.0;     // filled in by sensitivity analysis
};

/// Analytic continuous-mode energy of one layer: tile-context reads, LEA
/// computation, and final OFM write-back, priced by the device config.
/// This mirrors the engine's kAccumulateInVm cost structure (energy-aware
/// pruning targets continuously-powered systems, paper §IV-A).
double estimate_layer_energy(const engine::TilePlan& plan,
                             const engine::BlockMask& mask,
                             const device::DeviceConfig& device);

/// Criterion + energy for every prunable layer (sensitivity left at 0).
std::vector<LayerStats> collect_layer_stats(
    const std::vector<engine::PrunableLayer>& layers,
    const device::DeviceConfig& device);

}  // namespace iprune::core
