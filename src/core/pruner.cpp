#include "core/pruner.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/log.hpp"
#include "util/table.hpp"

namespace iprune::core {

IterativePruner::IterativePruner(PruneConfig config,
                                 std::unique_ptr<RatioAllocator> allocator)
    : config_(config), allocator_(std::move(allocator)) {
  if (allocator_ == nullptr) {
    throw std::invalid_argument("IterativePruner: null allocator");
  }
}

PruneOutcome IterativePruner::run(nn::Graph& graph, const nn::Tensor& train_x,
                                  std::span<const int> train_y,
                                  const nn::Tensor& val_x,
                                  std::span<const int> val_y) {
  std::vector<engine::PrunableLayer> layers =
      prunable_layers(graph, config_.engine, config_.backend.device.memory);
  if (layers.empty()) {
    throw std::invalid_argument("IterativePruner: graph has no prunable "
                                "CONV/FC layers");
  }

  nn::Trainer trainer(graph);
  util::Rng rng(config_.seed);

  PruneOutcome outcome;
  outcome.baseline_accuracy = trainer.evaluate(val_x, val_y).accuracy;

  auto current_totals = [&](std::size_t& alive, std::size_t& acc_out,
                            std::size_t& macs) {
    alive = acc_out = macs = 0;
    for (const engine::PrunableLayer& layer : layers) {
      alive += layer.alive_weights();
      acc_out += layer.acc_outputs();
      macs += layer.macs();
    }
  };

  GraphSnapshot best = take_snapshot(graph);
  std::size_t best_alive = 0, best_acc_out = 0, best_macs = 0;
  current_totals(best_alive, best_acc_out, best_macs);
  double best_accuracy = outcome.baseline_accuracy;

  SensitivityConfig sens_cfg = config_.sensitivity;
  sens_cfg.granularity = config_.granularity;
  double gamma_hat = config_.gamma_hat;
  std::size_t consecutive_strikes = 0;
  bool recovery_only = false;  // brief-rally iteration: fine-tune, no prune

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    IterationRecord record;
    record.iteration = iter;

    if (!recovery_only) {
      // (1) Layer-wise criterion estimation.
      record.sensitivities =
          analyze_sensitivities(graph, layers, val_x, val_y, sens_cfg);
      std::vector<LayerStats> stats =
          collect_layer_stats(layers, config_.backend.device);
      for (std::size_t i = 0; i < stats.size(); ++i) {
        stats[i].sensitivity = record.sensitivities[i];
      }

      // (2) Overall ratio Γ for this iteration.
      record.gamma = allocator_->overall_ratio(stats, gamma_hat);
      std::size_t total_alive = 0;
      for (const LayerStats& s : stats) {
        total_alive += s.alive_weights;
      }
      if (record.gamma * static_cast<double>(total_alive) < 1.0) {
        util::log_debug("pruner: Γ too small to make progress, stopping");
        break;
      }

      // (3) Per-layer ratio allocation.
      record.layer_ratios = allocator_->allocate(stats, record.gamma, rng);

      // (4) Block-level pruning.
      for (std::size_t i = 0; i < layers.size(); ++i) {
        prune_layer(layers[i], record.layer_ratios[i], config_.granularity);
      }
    }
    {
      const std::size_t probe = std::min<std::size_t>(
          sens_cfg.max_samples, val_y.size());
      std::vector<std::size_t> idx(probe);
      for (std::size_t i = 0; i < probe; ++i) {
        idx[i] = i;
      }
      record.accuracy_after_prune =
          trainer.evaluate(nn::gather_rows(val_x, idx),
                           val_y.subspan(0, probe)).accuracy;
    }

    // (5) Fine-tune to recover.
    nn::TrainConfig ft = config_.finetune;
    ft.shuffle_seed = config_.finetune.shuffle_seed + iter + 1;
    trainer.train(train_x, train_y, ft);

    record.accuracy_after_finetune = trainer.evaluate(val_x, val_y).accuracy;
    std::size_t macs = 0;
    current_totals(record.alive_weights, record.acc_outputs, macs);

    const double drop =
        outcome.baseline_accuracy - record.accuracy_after_finetune;
    record.strike = drop > config_.epsilon;
    util::log_debug(
        "pruner[" + std::string(allocator_->name()) + "] iter " +
        std::to_string(iter) + ": Γ=" + util::Table::format(record.gamma, 3) +
        " acc=" + util::Table::format(record.accuracy_after_finetune, 4) +
        (record.strike ? " (strike)" : ""));
    outcome.history.push_back(record);

    if (record.strike) {
      ++outcome.strikes;
      if (++consecutive_strikes >= config_.strikes_allowed) {
        break;  // second chance exhausted
      }
      gamma_hat *= config_.gamma_backoff;  // rally with a gentler step
      if (drop > config_.catastrophic_factor *
                     std::max(config_.epsilon, 1e-6)) {
        restore_snapshot(graph, best);  // no rallying from a collapse
        recovery_only = false;
      } else {
        // Brief rally (paper §III-A): the loss looks recoverable, so the
        // next iteration prunes nothing and only fine-tunes.
        recovery_only = true;
      }
    } else {
      // Accuracy recovered: this is the new most compact viable state.
      consecutive_strikes = 0;
      recovery_only = false;
      best = take_snapshot(graph);
      best_accuracy = record.accuracy_after_finetune;
      current_totals(best_alive, best_acc_out, best_macs);
    }
  }

  restore_snapshot(graph, best);
  outcome.final_accuracy = best_accuracy;
  outcome.final_alive_weights = best_alive;
  outcome.final_acc_outputs = best_acc_out;
  outcome.final_macs = best_macs;
  return outcome;
}

}  // namespace iprune::core
