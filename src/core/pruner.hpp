#pragma once
// The iterative estimate-prune-retrain loop (paper §III-A, Fig. 3).
//
// Each iteration: (1) layer-wise criterion estimation — accelerator
// outputs, energy, and pruning sensitivity per layer; (2) overall ratio Γ
// by guideline 1; (3) per-layer ratios γ_i by the allocator (iPrune: SA
// search; baselines plug in here); (4) block-level pruning by guideline 3;
// (5) fine-tuning. The loop stops once the accuracy drop exceeds ε for
// the second time ("second chance") and rolls back to the most compact
// state whose accuracy had recovered to within ε.

#include <memory>

#include "core/ratio_search.hpp"
#include "engine/backend.hpp"
#include "core/sensitivity.hpp"
#include "core/snapshot.hpp"
#include "nn/trainer.hpp"

namespace iprune::core {

struct PruneConfig {
  /// Recoverable accuracy-loss threshold ε (paper default 1%).
  double epsilon = 0.01;
  /// Upper bound Γ̂ on the per-iteration overall ratio (paper default 40%).
  double gamma_hat = 0.40;
  std::size_t max_iterations = 10;
  /// The "second chance": stop after this many *consecutive* over-ε
  /// iterations (a successful rally resets the count).
  std::size_t strikes_allowed = 2;
  /// After a strike, scale the remaining iterations' upper bound Γ̂ by
  /// this factor: the "brief rally" gets a gentler step instead of
  /// repeating the aggressiveness that just failed.
  double gamma_backoff = 0.5;
  /// A strike whose drop exceeds this multiple of ε is catastrophic: the
  /// model cannot "rally" from it, so the loop rolls back to the last
  /// good state before retrying (mild overshoots continue in place, as
  /// the paper's brief-rally allowance describes).
  double catastrophic_factor = 5.0;
  Granularity granularity = Granularity::kBlock;
  SensitivityConfig sensitivity;
  /// Fine-tuning schedule applied after each pruning step.
  nn::TrainConfig finetune;
  std::uint64_t seed = 1234;
  engine::EngineConfig engine;
  /// Deployment target whose memory geometry shapes the tile plans and
  /// whose cost table prices the criterion (§III-A energy estimates).
  /// Swapping presets (msp430-fram / reram / stt-mram) re-prices the
  /// whole loop — bench_backend_matrix sweeps exactly this knob.
  engine::BackendConfig backend = engine::BackendConfig::msp430_fram();
};

struct IterationRecord {
  std::size_t iteration = 0;
  double gamma = 0.0;
  std::vector<double> layer_ratios;
  std::vector<double> sensitivities;
  double accuracy_after_prune = 0.0;  // on the sensitivity probe subset
  double accuracy_after_finetune = 0.0;  // on the full validation set
  std::size_t alive_weights = 0;
  std::size_t acc_outputs = 0;
  bool strike = false;
};

struct PruneOutcome {
  double baseline_accuracy = 0.0;
  double final_accuracy = 0.0;
  std::size_t final_alive_weights = 0;
  std::size_t final_acc_outputs = 0;
  std::size_t final_macs = 0;
  /// Total over-ε iterations seen (the stop rule uses the consecutive
  /// count; see PruneConfig::strikes_allowed).
  std::size_t strikes = 0;
  std::vector<IterationRecord> history;
};

class IterativePruner {
 public:
  IterativePruner(PruneConfig config,
                  std::unique_ptr<RatioAllocator> allocator);

  /// Prune `graph` in place (masks set, weights fine-tuned) and report the
  /// trajectory. Inputs are the training and validation splits.
  PruneOutcome run(nn::Graph& graph, const nn::Tensor& train_x,
                   std::span<const int> train_y, const nn::Tensor& val_x,
                   std::span<const int> val_y);

  [[nodiscard]] const RatioAllocator& allocator() const {
    return *allocator_;
  }

 private:
  PruneConfig config_;
  std::unique_ptr<RatioAllocator> allocator_;
};

}  // namespace iprune::core
