#include "core/ratio_search.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::core {

namespace {

double total_alive(const std::vector<LayerStats>& stats) {
  double total = 0.0;
  for (const LayerStats& s : stats) {
    total += static_cast<double>(s.alive_weights);
  }
  return total;
}

/// Budget used by a ratio vector: Σ γ_i k_i.
double budget_used(const std::vector<LayerStats>& stats,
                   const std::vector<double>& ratios) {
  double used = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    used += ratios[i] * static_cast<double>(stats[i].alive_weights);
  }
  return used;
}

}  // namespace

std::vector<double> scale_to_budget(const std::vector<LayerStats>& stats,
                                    const std::vector<double>& preference,
                                    double gamma, double max_layer_ratio) {
  assert(preference.size() == stats.size());
  const double budget = gamma * total_alive(stats);
  std::vector<double> ratios(stats.size(), 0.0);
  std::vector<bool> capped(stats.size(), false);

  // Water-filling: scale uncapped layers to meet the remaining budget,
  // cap overflowing layers, repeat.
  for (std::size_t round = 0; round < stats.size() + 1; ++round) {
    double remaining = budget;
    double mass = 0.0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (capped[i]) {
        remaining -=
            max_layer_ratio * static_cast<double>(stats[i].alive_weights);
      } else {
        mass += preference[i] * static_cast<double>(stats[i].alive_weights);
      }
    }
    if (mass <= 0.0 || remaining <= 0.0) {
      break;
    }
    const double scale = remaining / mass;
    bool newly_capped = false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (capped[i]) {
        ratios[i] = max_layer_ratio;
        continue;
      }
      ratios[i] = preference[i] * scale;
      if (ratios[i] > max_layer_ratio) {
        capped[i] = true;
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      break;
    }
  }
  for (double& r : ratios) {
    r = std::clamp(r, 0.0, max_layer_ratio);
  }
  return ratios;
}

double IPruneAllocator::overall_ratio(const std::vector<LayerStats>& stats,
                                      double gamma_hat) const {
  // Guideline 1: rank layers by sensitivity in decreasing order; the layer
  // with rank i (1-based, most sensitive first) maps to i * Γ̂ / n. The
  // overall ratio is the one mapped to the layer with the most accelerator
  // outputs — small when that layer is highly sensitive.
  if (stats.empty()) {
    return 0.0;
  }
  const std::size_t n = stats.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return stats[a].sensitivity > stats[b].sensitivity;
                   });
  std::size_t hottest = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (stats[i].acc_outputs > stats[hottest].acc_outputs) {
      hottest = i;
    }
  }
  for (std::size_t rank = 0; rank < n; ++rank) {
    if (order[rank] == hottest) {
      return static_cast<double>(rank + 1) * gamma_hat /
             static_cast<double>(n);
    }
  }
  return gamma_hat;  // unreachable
}

namespace {

struct ChainOutcome {
  std::vector<double> ratios;
  double energy = 0.0;
};

/// One simulated-annealing chain; consumes `rng` in the same draw order
/// the historical single-chain allocator used. With hooks, the chain can
/// be checkpointed mid-run and restored bit-identically (the RNG stream
/// position travels inside the checkpoint).
ChainOutcome anneal_chain(const AnnealingConfig& config,
                          const std::vector<LayerStats>& stats, double gamma,
                          util::Rng& rng,
                          const AnnealHooks* hooks = nullptr) {
  const std::size_t n = stats.size();
  const bool by_bytes =
      config.objective == AnnealingConfig::Objective::kNvmWriteBytes;
  auto objective_of = [&](const LayerStats& s) {
    return static_cast<double>(by_bytes ? s.nvm_write_bytes
                                        : s.acc_outputs);
  };
  double total_acc = 0.0;
  double max_sens = 0.0;
  for (const LayerStats& s : stats) {
    total_acc += objective_of(s);
    max_sens = std::max(max_sens, s.sensitivity);
  }
  const double budget = gamma * total_alive(stats);
  if (total_acc <= 0.0 || budget <= 0.0) {
    return {std::vector<double>(n, 0.0), 0.0};
  }

  auto energy_of = [&](const std::vector<double>& ratios) {
    // Estimated remaining accelerator outputs (the minimization objective)
    // plus a sensitivity-risk penalty on where the pruned mass lands. The
    // penalty grows superlinearly in γ: the sensitivity probe only
    // measured a small perturbation, so concentrating most of a layer's
    // weights into one iteration is charged disproportionately.
    double remaining = 0.0;
    double risk = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      remaining += objective_of(stats[i]) * (1.0 - ratios[i]);
      const double s_norm =
          std::max(config.sensitivity_floor,
                   max_sens > 0.0 ? stats[i].sensitivity / max_sens : 0.0);
      const double steep = ratios[i] / (1.05 - ratios[i]);
      risk += s_norm * steep * static_cast<double>(stats[i].alive_weights);
    }
    return remaining / total_acc + config.risk_weight * risk / budget;
  };

  // Start from the uniform allocation (γ_i = Γ for all layers), or from a
  // journaled checkpoint: restoring every chain field plus the RNG stream
  // position makes the resumed tail of the chain consume exactly the draws
  // the uninterrupted chain would have.
  std::vector<double> current;
  double current_energy = 0.0;
  std::vector<double> best;
  double best_energy = 0.0;
  double temperature = config.initial_temperature;
  std::size_t first_step = 0;
  if (hooks != nullptr && hooks->resume.has_value()) {
    const AnnealCheckpoint& from = *hooks->resume;
    current = from.current;
    current_energy = from.current_energy;
    best = from.best;
    best_energy = from.best_energy;
    temperature = from.temperature;
    first_step = static_cast<std::size_t>(from.step);
    rng = util::Rng::from_state(from.rng);
  } else {
    current = scale_to_budget(stats, std::vector<double>(n, 1.0), gamma,
                              config.max_layer_ratio);
    current_energy = energy_of(current);
    best = current;
    best_energy = current_energy;
  }

  auto checkpoint = [&](std::size_t completed) {
    if (hooks == nullptr || !hooks->on_checkpoint) {
      return;
    }
    if ((hooks->checkpoint_stride == 0 ||
         completed % hooks->checkpoint_stride != 0) &&
        completed != config.iterations) {
      return;
    }
    AnnealCheckpoint snap;
    snap.step = completed;
    snap.temperature = temperature;
    snap.current = current;
    snap.current_energy = current_energy;
    snap.best = best;
    snap.best_energy = best_energy;
    snap.rng = rng.state();
    hooks->on_checkpoint(snap);
  };

  for (std::size_t step = first_step; step < config.iterations; ++step) {
    // Move: transfer pruning mass between two random layers, preserving
    // the budget exactly.
    const auto i = static_cast<std::size_t>(rng.uniform_index(n));
    auto j = static_cast<std::size_t>(rng.uniform_index(n));
    if (n > 1) {
      while (j == i) {
        j = static_cast<std::size_t>(rng.uniform_index(n));
      }
    }
    const double ki = static_cast<double>(stats[i].alive_weights);
    const double kj = static_cast<double>(stats[j].alive_weights);
    if (ki == 0.0 || kj == 0.0) {
      checkpoint(step + 1);
      continue;
    }
    const double headroom_i =
        (config.max_layer_ratio - current[i]) * ki;  // mass i can take
    const double available_j = current[j] * kj;       // mass j can give
    const double max_transfer = std::min(headroom_i, available_j);
    if (max_transfer <= 0.0) {
      checkpoint(step + 1);
      continue;
    }
    const double transfer = rng.uniform(0.0, max_transfer);

    std::vector<double> candidate = current;
    candidate[i] += transfer / ki;
    candidate[j] -= transfer / kj;
    const double cand_energy = energy_of(candidate);
    const double delta = cand_energy - current_energy;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current = std::move(candidate);
      current_energy = cand_energy;
      if (current_energy < best_energy) {
        best = current;
        best_energy = current_energy;
      }
    }
    temperature *= config.cooling;
    checkpoint(step + 1);
  }

  (void)budget_used;  // kept for tests/debugging
  return {std::move(best), best_energy};
}

}  // namespace

std::vector<double> IPruneAllocator::allocate(
    const std::vector<LayerStats>& stats, double gamma,
    util::Rng& rng) const {
  if (stats.empty()) {
    return {};
  }
  if (config_.restarts <= 1) {
    return anneal_chain(config_, stats, gamma, rng, config_.hooks).ratios;
  }

  // Chain seeds are derived serially so the stream each chain consumes is
  // independent of how chains are scheduled across lanes.
  std::vector<util::Rng> chain_rngs;
  chain_rngs.reserve(config_.restarts);
  for (std::size_t r = 0; r < config_.restarts; ++r) {
    chain_rngs.push_back(rng.split());
  }
  const std::vector<ChainOutcome> outcomes = runtime::parallel_map(
      runtime::ThreadPool::resolve(config_.pool), config_.restarts,
      [&](std::size_t r) {
        return anneal_chain(config_, stats, gamma, chain_rngs[r]);
      });

  std::size_t winner = 0;
  for (std::size_t r = 1; r < outcomes.size(); ++r) {
    if (outcomes[r].energy < outcomes[winner].energy) {
      winner = r;
    }
  }
  return outcomes[winner].ratios;
}

}  // namespace iprune::core
