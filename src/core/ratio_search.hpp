#pragma once
// Per-layer pruning-ratio allocation (paper §III-C, second guideline).
//
// RatioAllocator is the strategy point that distinguishes iPrune from the
// baselines: given the layer statistics and the iteration's overall ratio
// Γ, produce per-layer ratios γ_i with Σ γ_i k_i = Γ K. iPrune searches
// with simulated annealing [11] to minimize the remaining accelerator
// outputs under a sensitivity-risk penalty; ePrune allocates
// proportionally to per-layer energy (src/baselines).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/criterion.hpp"
#include "util/rng.hpp"

namespace iprune::runtime {
class ThreadPool;
}

namespace iprune::core {

class RatioAllocator {
 public:
  virtual ~RatioAllocator() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// The iteration's overall pruning ratio Γ given the upper bound Γ̂.
  /// `stats` includes filled-in sensitivities.
  [[nodiscard]] virtual double overall_ratio(
      const std::vector<LayerStats>& stats, double gamma_hat) const = 0;

  /// Per-layer ratios γ_i (fractions of each layer's *alive* weights)
  /// satisfying Σ γ_i k_i ≈ Γ K within rounding.
  [[nodiscard]] virtual std::vector<double> allocate(
      const std::vector<LayerStats>& stats, double gamma,
      util::Rng& rng) const = 0;
};

/// Complete mid-chain annealer state. Captured after the step it names
/// (step == number of completed steps), so restoring it and running the
/// remaining iterations reproduces the uninterrupted chain bit-for-bit:
/// the RNG state is the exact xoshiro position after the last completed
/// draw, and every other field is the chain's full mutable state.
struct AnnealCheckpoint {
  std::uint64_t step = 0;
  double temperature = 0.0;
  std::vector<double> current;
  double current_energy = 0.0;
  std::vector<double> best;
  double best_energy = 0.0;
  util::RngState rng;
};

/// Optional checkpoint plumbing for the single-chain annealer (honored
/// when AnnealingConfig::restarts <= 1; multi-chain runs re-anneal from
/// scratch on restart, which is still deterministic, just not journaled).
struct AnnealHooks {
  /// Called every `checkpoint_stride` completed steps and once after the
  /// final step. 0 strides disables periodic calls (final call remains).
  std::function<void(const AnnealCheckpoint&)> on_checkpoint;
  std::size_t checkpoint_stride = 0;
  /// Restore the chain from here instead of the initial allocation. The
  /// caller's rng is fast-forwarded to the checkpoint's stream position.
  std::optional<AnnealCheckpoint> resume;
};

struct AnnealingConfig {
  /// What the annealer minimizes. The paper's criterion is the
  /// accelerator-output count; the write-bytes variant is an ablation that
  /// optimizes the NVM write traffic directly (the two differ because the
  /// final k-pass writes int16 instead of a full psum).
  enum class Objective { kAccOutputs, kNvmWriteBytes };
  Objective objective = Objective::kAccOutputs;

  std::size_t iterations = 4000;
  double initial_temperature = 1.0;
  double cooling = 0.998;
  /// Weight of the sensitivity-risk penalty against the accelerator-output
  /// objective (both normalized to [0,1]).
  double risk_weight = 3.0;
  /// Layers whose measured sensitivity is ~0 still carry this fraction of
  /// the maximum sensitivity as risk: the 10% probe says nothing about
  /// pruning a layer much harder than 10%.
  double sensitivity_floor = 0.10;
  /// Per-layer per-iteration ratio cap (never wipe out a layer at once).
  double max_layer_ratio = 0.35;
  /// Independent annealing chains run per allocation; the lowest-energy
  /// chain wins (ties break to the lowest chain index). restarts == 1
  /// draws from the caller's rng directly and reproduces the historical
  /// single-chain sequence bit-for-bit. With more restarts, chain seeds
  /// are derived serially via Rng::split() and the chains run on the
  /// pool, so the winner is identical for any lane count.
  std::size_t restarts = 1;
  /// Pool for multi-chain runs; nullptr resolves to ThreadPool::shared().
  runtime::ThreadPool* pool = nullptr;
  /// Checkpoint plumbing (not owned); nullptr = no journaling. Only the
  /// single-chain path (restarts <= 1) consults it.
  const AnnealHooks* hooks = nullptr;
};

/// iPrune's allocator (guidelines 1 and 2).
class IPruneAllocator final : public RatioAllocator {
 public:
  explicit IPruneAllocator(AnnealingConfig config = {}) : config_(config) {}

  [[nodiscard]] const char* name() const override {
    return config_.objective == AnnealingConfig::Objective::kAccOutputs
               ? "iPrune"
               : "wPrune";
  }
  [[nodiscard]] double overall_ratio(const std::vector<LayerStats>& stats,
                                     double gamma_hat) const override;
  [[nodiscard]] std::vector<double> allocate(
      const std::vector<LayerStats>& stats, double gamma,
      util::Rng& rng) const override;

  [[nodiscard]] const AnnealingConfig& annealing() const { return config_; }

 private:
  AnnealingConfig config_;
};

/// Scale a nonnegative preference vector into ratios meeting the budget
/// Σ γ_i k_i = Γ K, respecting a per-layer cap (shared by allocators).
std::vector<double> scale_to_budget(const std::vector<LayerStats>& stats,
                                    const std::vector<double>& preference,
                                    double gamma, double max_layer_ratio);

}  // namespace iprune::core
