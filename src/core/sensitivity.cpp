#include "core/sensitivity.hpp"

#include <algorithm>

#include "nn/trainer.hpp"

namespace iprune::core {

namespace {

nn::Tensor truncate_rows(const nn::Tensor& x, std::size_t count) {
  if (x.dim(0) <= count) {
    return x;
  }
  std::vector<std::size_t> idx(count);
  for (std::size_t i = 0; i < count; ++i) {
    idx[i] = i;
  }
  return nn::gather_rows(x, idx);
}

}  // namespace

double probe_layer_sensitivity(nn::Graph& graph,
                               engine::PrunableLayer& layer,
                               const nn::Tensor& val_x,
                               std::span<const int> val_y,
                               double baseline_accuracy,
                               const SensitivityConfig& config) {
  // Save only the probed layer (cheaper than a full snapshot).
  const nn::Tensor saved_weight = *layer.weight;
  const nn::Tensor saved_mask = *layer.mask;

  prune_layer(layer, config.probe_ratio, config.granularity);

  const std::size_t count = std::min<std::size_t>(
      config.max_samples, val_y.size());
  const nn::Tensor probe_x = truncate_rows(val_x, count);
  nn::Trainer trainer(graph);
  const nn::EvalResult result =
      trainer.evaluate(probe_x, val_y.subspan(0, count));

  *layer.weight = saved_weight;
  *layer.mask = saved_mask;
  return std::max(0.0, baseline_accuracy - result.accuracy);
}

std::vector<double> analyze_sensitivities(
    nn::Graph& graph, std::vector<engine::PrunableLayer>& layers,
    const nn::Tensor& val_x, std::span<const int> val_y,
    const SensitivityConfig& config) {
  const std::size_t count =
      std::min<std::size_t>(config.max_samples, val_y.size());
  const nn::Tensor probe_x = truncate_rows(val_x, count);
  nn::Trainer trainer(graph);
  const double baseline =
      trainer.evaluate(probe_x, val_y.subspan(0, count)).accuracy;

  std::vector<double> drops;
  drops.reserve(layers.size());
  for (engine::PrunableLayer& layer : layers) {
    drops.push_back(probe_layer_sensitivity(graph, layer, val_x, val_y,
                                            baseline, config));
  }
  return drops;
}

}  // namespace iprune::core
