#include "core/sensitivity.hpp"

#include <algorithm>

#include "nn/trainer.hpp"
#include "runtime/parallel.hpp"

namespace iprune::core {

namespace {

nn::Tensor truncate_rows(const nn::Tensor& x, std::size_t count) {
  if (x.dim(0) <= count) {
    return x;
  }
  std::vector<std::size_t> idx(count);
  for (std::size_t i = 0; i < count; ++i) {
    idx[i] = i;
  }
  return nn::gather_rows(x, idx);
}

}  // namespace

double probe_layer_sensitivity(const nn::Graph& graph,
                               engine::PrunableLayer& layer,
                               const nn::Tensor& val_x,
                               std::span<const int> val_y,
                               double baseline_accuracy,
                               const SensitivityConfig& config) {
  // Save only the probed layer (cheaper than a full snapshot); the guard
  // restores it even if the evaluation throws.
  ScopedLayerProbe guard(layer);

  prune_layer(layer, config.probe_ratio, config.granularity);

  const std::size_t count = std::min<std::size_t>(
      config.max_samples, val_y.size());
  const nn::Tensor probe_x = truncate_rows(val_x, count);
  const nn::EvalResult result =
      nn::evaluate_graph(graph, probe_x, val_y.subspan(0, count));
  return std::max(0.0, baseline_accuracy - result.accuracy);
}

std::vector<double> analyze_sensitivities(
    const nn::Graph& graph, std::vector<engine::PrunableLayer>& layers,
    const nn::Tensor& val_x, std::span<const int> val_y,
    const SensitivityConfig& config, runtime::ThreadPool* pool) {
  const std::size_t count =
      std::min<std::size_t>(config.max_samples, val_y.size());
  const nn::Tensor probe_x = truncate_rows(val_x, count);
  const std::span<const int> probe_y = val_y.subspan(0, count);
  const double baseline =
      nn::evaluate_graph(graph, probe_x, probe_y).accuracy;

  // Each probe prunes its own clone of the model, so probes are mutually
  // independent; drops are gathered by layer index, making the result
  // bit-identical to the serial in-place loop for any lane count.
  return runtime::parallel_map(
      runtime::ThreadPool::resolve(pool), layers.size(),
      [&](std::size_t i) {
        nn::Graph probe_graph = graph.clone();
        engine::PrunableLayer probe_layer =
            engine::rebind_prunable(layers[i], probe_graph);
        return probe_layer_sensitivity(probe_graph, probe_layer, probe_x,
                                       probe_y, baseline, config);
      });
}

}  // namespace iprune::core
