#pragma once
// Per-layer pruning sensitivity (paper §III-C, first guideline): how much
// validation accuracy drops when an extra `probe_ratio` of a layer's
// weights is pruned, everything else held fixed.

#include <span>

#include "core/block_pruner.hpp"
#include "nn/graph.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::core {

struct SensitivityConfig {
  double probe_ratio = 0.10;
  Granularity granularity = Granularity::kBlock;
  /// Cap on validation samples used per probe (speed knob).
  std::size_t max_samples = 256;
};

/// Saves a prunable layer's weight and mask on construction and restores
/// them on destruction, so a probe that throws mid-evaluation cannot leave
/// the model half-pruned.
class ScopedLayerProbe {
 public:
  explicit ScopedLayerProbe(engine::PrunableLayer& layer)
      : layer_(layer),
        saved_weight_(*layer.weight),
        saved_mask_(*layer.mask) {}
  ~ScopedLayerProbe() {
    *layer_.weight = saved_weight_;
    *layer_.mask = saved_mask_;
  }

  ScopedLayerProbe(const ScopedLayerProbe&) = delete;
  ScopedLayerProbe& operator=(const ScopedLayerProbe&) = delete;

 private:
  engine::PrunableLayer& layer_;
  nn::Tensor saved_weight_;
  nn::Tensor saved_mask_;
};

/// Accuracy drop (>= 0) for probing one layer; the layer is restored.
double probe_layer_sensitivity(const nn::Graph& graph,
                               engine::PrunableLayer& layer,
                               const nn::Tensor& val_x,
                               std::span<const int> val_y,
                               double baseline_accuracy,
                               const SensitivityConfig& config);

/// Probe every layer; returns drops in layer order. Probes run on the
/// pool (nullptr = the shared pool), each against its own clone of the
/// graph, so the drops are bit-identical for any lane count.
std::vector<double> analyze_sensitivities(
    const nn::Graph& graph, std::vector<engine::PrunableLayer>& layers,
    const nn::Tensor& val_x, std::span<const int> val_y,
    const SensitivityConfig& config, runtime::ThreadPool* pool = nullptr);

}  // namespace iprune::core
