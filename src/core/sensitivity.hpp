#pragma once
// Per-layer pruning sensitivity (paper §III-C, first guideline): how much
// validation accuracy drops when an extra `probe_ratio` of a layer's
// weights is pruned, everything else held fixed.

#include <span>

#include "core/block_pruner.hpp"
#include "nn/graph.hpp"

namespace iprune::core {

struct SensitivityConfig {
  double probe_ratio = 0.10;
  Granularity granularity = Granularity::kBlock;
  /// Cap on validation samples used per probe (speed knob).
  std::size_t max_samples = 256;
};

/// Accuracy drop (>= 0) for probing one layer; the layer is restored.
double probe_layer_sensitivity(nn::Graph& graph,
                               engine::PrunableLayer& layer,
                               const nn::Tensor& val_x,
                               std::span<const int> val_y,
                               double baseline_accuracy,
                               const SensitivityConfig& config);

/// Probe every layer; returns drops in layer order.
std::vector<double> analyze_sensitivities(
    nn::Graph& graph, std::vector<engine::PrunableLayer>& layers,
    const nn::Tensor& val_x, std::span<const int> val_y,
    const SensitivityConfig& config);

}  // namespace iprune::core
