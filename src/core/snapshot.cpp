#include "core/snapshot.hpp"

#include <stdexcept>

namespace iprune::core {

GraphSnapshot take_snapshot(nn::Graph& graph) {
  GraphSnapshot snap;
  for (const nn::ParamRef& p : graph.params()) {
    snap.values.push_back(*p.value);
    snap.masks.push_back(p.mask != nullptr ? *p.mask : nn::Tensor());
  }
  return snap;
}

void restore_snapshot(nn::Graph& graph, const GraphSnapshot& snapshot) {
  const auto params = graph.params();
  if (params.size() != snapshot.values.size()) {
    throw std::invalid_argument(
        "restore_snapshot: snapshot from a different graph");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    *params[i].value = snapshot.values[i];
    if (params[i].mask != nullptr) {
      *params[i].mask = snapshot.masks[i];
    }
  }
}

}  // namespace iprune::core
