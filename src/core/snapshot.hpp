#pragma once
// Parameter snapshots for Graph models: the iterative pruner rolls back to
// the most compact state whose accuracy recovered (paper §III-A), and the
// sensitivity probe restores the layer it perturbed.

#include <vector>

#include "nn/graph.hpp"

namespace iprune::core {

struct GraphSnapshot {
  std::vector<nn::Tensor> values;
  std::vector<nn::Tensor> masks;  // empty tensor where the param has none
};

GraphSnapshot take_snapshot(nn::Graph& graph);
void restore_snapshot(nn::Graph& graph, const GraphSnapshot& snapshot);

}  // namespace iprune::core
