#include "data/dataset.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace iprune::data {

nn::Shape Dataset::sample_shape() const {
  nn::Shape shape = inputs.shape();
  if (shape.empty()) {
    return shape;
  }
  shape.erase(shape.begin());
  return shape;
}

Split split_dataset(const Dataset& dataset, double train_fraction,
                    util::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: fraction must be in (0,1)");
  }
  const std::size_t count = dataset.size();
  const std::size_t train_count =
      static_cast<std::size_t>(train_fraction * static_cast<double>(count));
  const std::vector<std::size_t> order = rng.permutation(count);
  const std::size_t sample_elems = dataset.inputs.numel() / count;

  auto take = [&](std::size_t begin, std::size_t end) {
    Dataset part;
    part.num_classes = dataset.num_classes;
    nn::Shape shape = dataset.inputs.shape();
    shape[0] = end - begin;
    part.inputs = nn::Tensor(shape);
    part.labels.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t src = order[i];
      std::memcpy(part.inputs.data() + (i - begin) * sample_elems,
                  dataset.inputs.data() + src * sample_elems,
                  sample_elems * sizeof(float));
      part.labels[i - begin] = dataset.labels[src];
    }
    return part;
  };

  Split split;
  split.train = take(0, train_count);
  split.val = take(train_count, count);
  return split;
}

std::vector<std::size_t> class_histogram(const Dataset& dataset) {
  std::vector<std::size_t> hist(dataset.num_classes, 0);
  for (const int label : dataset.labels) {
    assert(label >= 0 && static_cast<std::size_t>(label) < hist.size());
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

}  // namespace iprune::data
