#pragma once
// Labeled dataset container plus train/validation splitting.

#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace iprune::data {

struct Dataset {
  nn::Tensor inputs;        // [N, ...sample shape]
  std::vector<int> labels;  // N class indices
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] nn::Shape sample_shape() const;
};

struct Split {
  Dataset train;
  Dataset val;
};

/// Shuffle and split; `train_fraction` in (0, 1).
Split split_dataset(const Dataset& dataset, double train_fraction,
                    util::Rng& rng);

/// Per-class sample counts (for balance checks in tests).
std::vector<std::size_t> class_histogram(const Dataset& dataset);

}  // namespace iprune::data
