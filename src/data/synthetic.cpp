#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>

namespace iprune::data {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// Class-conditional template parameters are drawn from a per-class RNG so
/// every class has a *fixed* signature; per-sample jitter comes from the
/// shared sample RNG.
struct BlobTemplate {
  double cx, cy, sigma;
  double rgb[3];
};

}  // namespace

Dataset make_image_dataset(const SyntheticConfig& config) {
  constexpr std::size_t kClasses = 10;
  constexpr std::size_t kChannels = 3;
  constexpr std::size_t kSide = 32;
  constexpr std::size_t kBlobs = 4;

  Dataset dataset;
  dataset.num_classes = kClasses;
  dataset.inputs = nn::Tensor({config.samples, kChannels, kSide, kSide});
  dataset.labels.resize(config.samples);

  // Fixed per-class signatures.
  std::vector<std::vector<BlobTemplate>> templates(kClasses);
  std::vector<double> grating_angle(kClasses);
  std::vector<double> grating_freq(kClasses);
  for (std::size_t c = 0; c < kClasses; ++c) {
    util::Rng class_rng(config.seed * 1000003 + c);
    templates[c].resize(kBlobs);
    for (auto& blob : templates[c]) {
      blob.cx = class_rng.uniform(6.0, 26.0);
      blob.cy = class_rng.uniform(6.0, 26.0);
      blob.sigma = class_rng.uniform(2.5, 5.5);
      for (double& channel : blob.rgb) {
        channel = class_rng.uniform(-1.0, 1.0);
      }
    }
    grating_angle[c] = class_rng.uniform(0.0, kTau);
    grating_freq[c] = class_rng.uniform(0.15, 0.45);
  }

  util::Rng rng(config.seed);
  for (std::size_t n = 0; n < config.samples; ++n) {
    const auto label = static_cast<std::size_t>(rng.uniform_index(kClasses));
    dataset.labels[n] =
        rng.bernoulli(config.label_noise)
            ? static_cast<int>(rng.uniform_index(kClasses))
            : static_cast<int>(label);
    float* sample =
        dataset.inputs.data() + n * kChannels * kSide * kSide;

    const double jitter_x = rng.uniform(-2.0, 2.0);
    const double jitter_y = rng.uniform(-2.0, 2.0);
    const double amp = rng.uniform(0.7, 1.3);
    const double phase = rng.uniform(0.0, kTau);
    const double cos_a = std::cos(grating_angle[label]);
    const double sin_a = std::sin(grating_angle[label]);

    for (std::size_t y = 0; y < kSide; ++y) {
      for (std::size_t x = 0; x < kSide; ++x) {
        const double grating =
            0.35 * std::sin(grating_freq[label] *
                                (cos_a * static_cast<double>(x) +
                                 sin_a * static_cast<double>(y)) * kTau /
                                4.0 +
                            phase);
        double value[3] = {grating, grating, grating};
        for (const BlobTemplate& blob : templates[label]) {
          const double dx = static_cast<double>(x) - (blob.cx + jitter_x);
          const double dy = static_cast<double>(y) - (blob.cy + jitter_y);
          const double g =
              amp * std::exp(-(dx * dx + dy * dy) /
                             (2.0 * blob.sigma * blob.sigma));
          for (std::size_t ch = 0; ch < kChannels; ++ch) {
            value[ch] += g * blob.rgb[ch];
          }
        }
        for (std::size_t ch = 0; ch < kChannels; ++ch) {
          sample[ch * kSide * kSide + y * kSide + x] = static_cast<float>(
              value[ch] + config.noise * rng.normal());
        }
      }
    }
  }
  return dataset;
}

Dataset make_har_dataset(const SyntheticConfig& config) {
  constexpr std::size_t kClasses = 6;
  constexpr std::size_t kAxes = 3;
  constexpr std::size_t kWindow = 128;

  Dataset dataset;
  dataset.num_classes = kClasses;
  dataset.inputs = nn::Tensor({config.samples, kAxes, 1, kWindow});
  dataset.labels.resize(config.samples);

  // Per-class activity signature: base frequency, amplitude, drift, and a
  // per-axis phase offset. Classes loosely model walk / run / sit / stand /
  // upstairs / downstairs.
  struct ActivitySig {
    double freq, amp, drift, harmonic;
    double axis_phase[kAxes];
  };
  std::vector<ActivitySig> sigs(kClasses);
  for (std::size_t c = 0; c < kClasses; ++c) {
    util::Rng class_rng(config.seed * 2000003 + c);
    sigs[c].freq = 0.01 + 0.015 * static_cast<double>(c) +
                   class_rng.uniform(0.0, 0.004);
    sigs[c].amp = (c == 2 || c == 3) ? class_rng.uniform(0.05, 0.15)
                                     : class_rng.uniform(0.6, 1.2);
    sigs[c].drift = (c == 3 || c == 4) ? class_rng.uniform(0.002, 0.006) : 0.0;
    sigs[c].harmonic = (c >= 4) ? class_rng.uniform(0.3, 0.6) : 0.0;
    for (double& p : sigs[c].axis_phase) {
      p = class_rng.uniform(0.0, kTau);
    }
  }

  util::Rng rng(config.seed + 1);
  for (std::size_t n = 0; n < config.samples; ++n) {
    const auto label = static_cast<std::size_t>(rng.uniform_index(kClasses));
    dataset.labels[n] =
        rng.bernoulli(config.label_noise)
            ? static_cast<int>(rng.uniform_index(kClasses))
            : static_cast<int>(label);
    const ActivitySig& sig = sigs[label];
    float* sample = dataset.inputs.data() + n * kAxes * kWindow;

    const double freq = sig.freq * rng.uniform(0.9, 1.1);
    const double amp = sig.amp * rng.uniform(0.85, 1.15);
    const double phase0 = rng.uniform(0.0, kTau);
    for (std::size_t axis = 0; axis < kAxes; ++axis) {
      float* series = sample + axis * kWindow;
      for (std::size_t t = 0; t < kWindow; ++t) {
        const double arg =
            kTau * freq * static_cast<double>(t) + sig.axis_phase[axis] +
            phase0;
        double v = amp * std::sin(arg) +
                   sig.harmonic * amp * std::sin(2.0 * arg) +
                   sig.drift * static_cast<double>(t);
        series[t] =
            static_cast<float>(v + config.noise * rng.normal());
      }
    }
  }
  return dataset;
}

Dataset make_speech_dataset(const SyntheticConfig& config) {
  constexpr std::size_t kClasses = 10;
  constexpr std::size_t kFrames = 49;  // time
  constexpr std::size_t kCoeffs = 10;  // MFCC-like bins

  Dataset dataset;
  dataset.num_classes = kClasses;
  dataset.inputs = nn::Tensor({config.samples, 1, kFrames, kCoeffs});
  dataset.labels.resize(config.samples);

  // Each keyword gets 2 "formant" ridges: a start bin, an end bin, and an
  // activation window in time. Samples jitter ridge positions and warp time.
  struct Ridge {
    double bin_start, bin_end;
    double t_start, t_end;
    double strength;
  };
  constexpr std::size_t kRidges = 2;
  std::vector<std::vector<Ridge>> ridges(kClasses);
  for (std::size_t c = 0; c < kClasses; ++c) {
    util::Rng class_rng(config.seed * 3000017 + c);
    ridges[c].resize(kRidges);
    for (auto& ridge : ridges[c]) {
      ridge.bin_start = class_rng.uniform(0.5, 8.5);
      ridge.bin_end = class_rng.uniform(0.5, 8.5);
      ridge.t_start = class_rng.uniform(0.0, 15.0);
      ridge.t_end = ridge.t_start + class_rng.uniform(15.0, 30.0);
      ridge.strength = class_rng.uniform(0.8, 1.4);
    }
  }

  util::Rng rng(config.seed + 2);
  for (std::size_t n = 0; n < config.samples; ++n) {
    const auto label = static_cast<std::size_t>(rng.uniform_index(kClasses));
    dataset.labels[n] =
        rng.bernoulli(config.label_noise)
            ? static_cast<int>(rng.uniform_index(kClasses))
            : static_cast<int>(label);
    float* sample = dataset.inputs.data() + n * kFrames * kCoeffs;

    const double time_warp = rng.uniform(0.9, 1.1);
    const double bin_shift = rng.uniform(-0.5, 0.5);
    const double gain = rng.uniform(0.8, 1.2);
    for (std::size_t t = 0; t < kFrames; ++t) {
      for (std::size_t b = 0; b < kCoeffs; ++b) {
        double v = 0.0;
        for (const Ridge& ridge : ridges[label]) {
          const double ts = ridge.t_start * time_warp;
          const double te = ridge.t_end * time_warp;
          if (static_cast<double>(t) < ts || static_cast<double>(t) > te) {
            continue;
          }
          const double progress =
              (static_cast<double>(t) - ts) / std::max(te - ts, 1.0);
          const double center = ridge.bin_start +
                                progress * (ridge.bin_end - ridge.bin_start) +
                                bin_shift;
          const double d = static_cast<double>(b) - center;
          v += gain * ridge.strength * std::exp(-d * d / 1.8);
        }
        sample[t * kCoeffs + b] =
            static_cast<float>(v + config.noise * rng.normal());
      }
    }
  }
  return dataset;
}

}  // namespace iprune::data
