#pragma once
// Synthetic stand-ins for the paper's three datasets (CIFAR-10,
// accelerometer HAR, Google Speech Commands).
//
// The real datasets are unavailable offline; these generators produce
// class-conditional structured signals with per-sample jitter and noise so
// that (a) the models learn well above chance, (b) pruning causes a real
// accuracy drop, and (c) fine-tuning recovers it — the properties the
// iterative prune-retrain loop and the ε-threshold logic depend on.
// See DESIGN.md §1 for the substitution rationale.

#include "data/dataset.hpp"

namespace iprune::data {

struct SyntheticConfig {
  std::size_t samples = 2000;
  std::uint64_t seed = 42;
  /// Additive Gaussian noise std-dev; larger = harder task.
  float noise = 0.25f;
  /// Fraction of labels replaced by a uniformly random class. Bounds the
  /// achievable accuracy at roughly 1 - label_noise*(C-1)/C, which lets a
  /// workload reproduce a paper-like accuracy level stably (pure feature
  /// noise has a chaotic learnable/unlearnable transition).
  float label_noise = 0.0f;
};

/// CIFAR-10 stand-in: [3, 32, 32] images, 10 classes. Each class is a fixed
/// constellation of colored Gaussian blobs + oriented gratings; samples
/// jitter positions, amplitudes and add noise.
Dataset make_image_dataset(const SyntheticConfig& config);

/// HAR stand-in: [3, 1, 128] tri-axial accelerometer windows, 6 activity
/// classes with distinct periodicity/amplitude/drift signatures.
Dataset make_har_dataset(const SyntheticConfig& config);

/// Speech-commands stand-in: [1, 49, 10] MFCC-like spectrograms, 10 keyword
/// classes with distinct time-frequency ridge trajectories.
Dataset make_speech_dataset(const SyntheticConfig& config);

}  // namespace iprune::data
