#pragma once
// Device model constants for the simulated TI MSP430FR5994 platform
// (paper Table I). Latency and energy figures are datasheet-plausible
// values following the microbenchmark methodology of Mendis et al. [13];
// every knob is configurable so the sensitivity of the reproduced results
// to these constants can be explored (bench_ablation_* binaries do so).

#include <cstddef>
#include <string>

namespace iprune::device {

struct MemoryConfig {
  /// Internal SRAM usable by the inference engine (8 KB on MSP430FR5994).
  std::size_t vm_bytes = 8 * 1024;
  /// External FRAM (Cypress CY15B104Q, 512 KB).
  std::size_t nvm_bytes = 512 * 1024;
};

// The latency helpers below are THE chargeable-event cost table: the
// stepping device model, the discrete-event scheduler, the batched fleet
// engine, and the host-side pruning criterion all price operations through
// them. The floating-point expression order is part of the contract —
// golden latency/energy figures depend on bit-identical arithmetic.

struct DmaConfig {
  /// Fixed per-command cost: DMA setup + NVM (SPI) invocation.
  double invocation_us = 2.0;
  /// Per-byte transfer latency over the SPI link (~2 MB/s).
  double read_us_per_byte = 0.5;
  double write_us_per_byte = 0.5;

  /// Latency of one DMA NVM -> VM command moving `bytes`.
  [[nodiscard]] double read_latency_us(std::size_t bytes) const {
    return invocation_us + read_us_per_byte * static_cast<double>(bytes);
  }
  /// Latency of one DMA VM -> NVM command moving `bytes`.
  [[nodiscard]] double write_latency_us(std::size_t bytes) const {
    return invocation_us + write_us_per_byte * static_cast<double>(bytes);
  }
};

struct LeaConfig {
  /// Per-MAC latency of the Low Energy Accelerator (16 MHz, ~2 cyc/MAC).
  double mac_us = 0.125;
  /// Fixed command issue latency per accelerator operation.
  double invoke_us = 1.0;

  /// Latency of one accelerator invocation performing `macs` MACs.
  [[nodiscard]] double op_latency_us(std::size_t macs) const {
    return invoke_us + mac_us * static_cast<double>(macs);
  }
};

struct CpuConfig {
  /// 16 MHz MCLK.
  double cycle_us = 0.0625;

  /// Latency of `cycles` CPU-executed cycles.
  [[nodiscard]] double work_latency_us(std::size_t cycles) const {
    return cycle_us * static_cast<double>(cycles);
  }
};

struct PowerRailConfig {
  /// Baseline draw while the device is on (clock tree, regulators), watts.
  double base_active_w = 4.0e-3;
  /// Additional draw while the LEA crunches.
  double lea_active_w = 4.0e-3;
  /// Additional draw during NVM/SPI reads.
  double nvm_read_w = 6.0e-3;
  /// Additional draw during NVM/SPI writes (FRAM writes cost more).
  double nvm_write_w = 10.0e-3;
  /// Additional draw for CPU-executed work (pooling, bookkeeping).
  double cpu_active_w = 2.0e-3;
};

struct DeviceConfig {
  MemoryConfig memory;
  DmaConfig dma;
  LeaConfig lea;
  CpuConfig cpu;
  PowerRailConfig rails;
  /// Boot/firmware re-init latency charged on every power resumption.
  double reboot_us = 1000.0;

  [[nodiscard]] static DeviceConfig msp430fr5994() { return {}; }
};

/// One-line description for bench headers.
std::string describe(const DeviceConfig& config);

}  // namespace iprune::device
