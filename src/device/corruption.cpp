#include "device/corruption.hpp"

#include <cmath>
#include <stdexcept>

#include "util/splitmix.hpp"

namespace iprune::device {

namespace {

double uniform01(std::uint64_t& state) {
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Bits until the next faulted bit (geometric, support {0, 1, ...}).
std::uint64_t geometric_gap(std::uint64_t& state, double ber) {
  const double u = uniform01(state);
  // log(1-u) / log(1-ber); ber is validated to (0, 1].
  if (ber >= 1.0) {
    return 0;
  }
  const double gap = std::floor(std::log1p(-u) / std::log1p(-ber));
  if (gap >= 1e18) {  // astronomically clean stretch; clamp defensively
    return 1ull << 60;
  }
  return static_cast<std::uint64_t>(gap);
}

}  // namespace

CorruptionModel::CorruptionModel(CorruptionConfig config)
    : config_(std::move(config)) {
  const auto check_ber = [](double ber, const char* name) {
    if (!(ber >= 0.0) || !(ber <= 1.0)) {
      throw std::invalid_argument(std::string("CorruptionModel: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_ber(config_.write_ber, "write_ber");
  check_ber(config_.read_ber, "read_ber");
  for (const StuckBit& cell : config_.stuck) {
    if (cell.bit > 7) {
      throw std::invalid_argument(
          "CorruptionModel: stuck bit index must be 0..7");
    }
  }
  reset();
}

void CorruptionModel::reset() {
  write_stream_ = make_stream(config_.seed * 2 + 0, config_.write_ber);
  read_stream_ = make_stream(config_.seed * 2 + 1, config_.read_ber);
  write_flips_ = 0;
  read_flips_ = 0;
  stuck_hits_ = 0;
}

CorruptionModel::FaultStream CorruptionModel::make_stream(std::uint64_t seed,
                                                          double ber) {
  FaultStream stream;
  stream.state = seed;
  stream.ber = ber;
  stream.armed = ber > 0.0;
  if (stream.armed) {
    stream.gap = geometric_gap(stream.state, ber);
  }
  return stream;
}

std::uint64_t CorruptionModel::apply_ber(FaultStream& stream, Address addr,
                                         std::span<std::uint8_t> bytes) {
  if (!stream.armed || bytes.empty()) {
    return 0;
  }
  std::uint64_t flips = 0;
  const std::uint64_t total_bits = bytes.size() * 8;
  std::uint64_t cursor = 0;
  while (stream.gap < total_bits - cursor) {
    cursor += stream.gap;
    const std::size_t byte = static_cast<std::size_t>(cursor / 8);
    const Address cell = addr + byte;
    if (cell >= config_.window_begin && cell < config_.window_end) {
      bytes[byte] = static_cast<std::uint8_t>(
          bytes[byte] ^ (1u << (cursor % 8)));
      ++flips;
    }
    ++cursor;  // the faulted bit is consumed
    stream.gap = geometric_gap(stream.state, stream.ber);
  }
  stream.gap -= total_bits - cursor;
  return flips;
}

void CorruptionModel::apply_stuck(Address addr,
                                  std::span<std::uint8_t> bytes) {
  if (config_.stuck.empty()) {
    return;
  }
  bool hit = false;
  for (const StuckBit& cell : config_.stuck) {
    if (cell.addr < addr || cell.addr >= addr + bytes.size()) {
      continue;
    }
    std::uint8_t& b = bytes[cell.addr - addr];
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << cell.bit);
    const std::uint8_t forced =
        cell.value ? static_cast<std::uint8_t>(b | mask)
                   : static_cast<std::uint8_t>(b & ~mask);
    hit = hit || forced != b;
    b = forced;
  }
  if (hit) {
    ++stuck_hits_;
  }
}

void CorruptionModel::corrupt_write(Address addr,
                                    std::span<std::uint8_t> bytes) {
  write_flips_ += apply_ber(write_stream_, addr, bytes);
  apply_stuck(addr, bytes);
}

void CorruptionModel::corrupt_read(Address addr,
                                   std::span<std::uint8_t> bytes) {
  read_flips_ += apply_ber(read_stream_, addr, bytes);
  apply_stuck(addr, bytes);
}

}  // namespace iprune::device
