#pragma once
// Deterministic NVM data-fault model.
//
// Real FRAM parts are not the perfect mirror the rest of the simulator
// assumes: the CY15B104Q datasheet specifies a non-zero soft-error rate,
// SPI transfers can flip bits in flight, and individual cells can stick.
// A CorruptionModel installed on device::Nvm perturbs the byte streams of
// every store and load:
//
//   write BER    each written bit flips with probability `write_ber`
//                (persistent: the flipped value is what lands in the cell)
//   read BER     each read bit flips with probability `read_ber`
//                (transient: the cell keeps its value, the reader sees
//                garbage — an SPI/soft-error read)
//   stuck-at     listed cells always store and return a forced bit value
//
// Faults are drawn from a seeded geometric skip (distance to the next bad
// bit), so a given seed yields the exact same fault positions independent
// of access chunking — replays are bit-reproducible. BER faults can be
// confined to an address window to target one NVM region (weights, the
// progress records) without perturbing everything else.
//
// Torn multi-byte writes — the power-failure half of the threat model —
// are not produced here: they come from the fault injector truncating an
// in-flight device::WriteBatch at the outage boundary (see
// Msp430Device::dma_commit and fault::OutageSchedule::torn).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace iprune::device {

using Address = std::size_t;

/// One stuck cell bit: reads and writes of `addr` always see bit `bit`
/// forced to `value`.
struct StuckBit {
  Address addr = 0;
  std::uint8_t bit = 0;  // 0 = LSB .. 7 = MSB
  bool value = false;
};

struct CorruptionConfig {
  std::uint64_t seed = 1;
  /// Per-bit flip probability on the write / read paths (0 disables).
  double write_ber = 0.0;
  double read_ber = 0.0;
  /// BER faults only strike addresses in [window_begin, window_end).
  /// Stuck bits are unaffected (their address is explicit).
  Address window_begin = 0;
  Address window_end = std::numeric_limits<Address>::max();
  std::vector<StuckBit> stuck;
};

class CorruptionModel {
 public:
  explicit CorruptionModel(CorruptionConfig config);

  /// Perturb `bytes` about to be stored at `addr` (flips + stuck cells).
  void corrupt_write(Address addr, std::span<std::uint8_t> bytes);
  /// Perturb `bytes` just loaded from `addr` (flips + stuck cells).
  void corrupt_read(Address addr, std::span<std::uint8_t> bytes);

  /// Rewind the fault streams to the seeded origin.
  void reset();

  [[nodiscard]] const CorruptionConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t write_flips() const { return write_flips_; }
  [[nodiscard]] std::uint64_t read_flips() const { return read_flips_; }
  /// Accesses that touched at least one stuck cell.
  [[nodiscard]] std::uint64_t stuck_hits() const { return stuck_hits_; }

 private:
  /// Geometric skip stream: bits remaining until the next fault.
  struct FaultStream {
    std::uint64_t state = 0;   // splitmix64 state
    std::uint64_t gap = 0;     // bits until the next flip
    double ber = 0.0;
    bool armed = false;
  };

  static FaultStream make_stream(std::uint64_t seed, double ber);
  /// Flip faulted bits of `bytes` (addresses inside the window only) and
  /// return the number of flips applied.
  std::uint64_t apply_ber(FaultStream& stream, Address addr,
                          std::span<std::uint8_t> bytes);
  void apply_stuck(Address addr, std::span<std::uint8_t> bytes);

  CorruptionConfig config_;
  FaultStream write_stream_;
  FaultStream read_stream_;
  std::uint64_t write_flips_ = 0;
  std::uint64_t read_flips_ = 0;
  std::uint64_t stuck_hits_ = 0;
};

}  // namespace iprune::device
