#include "device/crc16.hpp"

namespace iprune::device {

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> bytes,
                          std::uint16_t crc) {
  for (const std::uint8_t b : bytes) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(b)
                                            << 8));
    for (int bit = 0; bit < 8; ++bit) {
      if ((crc & 0x8000u) != 0) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021u);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

}  // namespace iprune::device
