#pragma once
// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF, no reflection, no
// final xor) — the checksum the MSP430 hardware CRC module computes, so a
// real port can delegate to the peripheral byte-for-byte. Used to seal the
// engine's persisted NVM state: progress commit records and the static
// weight/BSR/bias regions written at deployment.

#include <cstddef>
#include <cstdint>
#include <span>

namespace iprune::device {

inline constexpr std::uint16_t kCrc16Init = 0xFFFF;

/// One-shot CRC over `bytes`, continuing from `crc` (pass the previous
/// return value to checksum a region in chunks).
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> bytes,
                                        std::uint16_t crc = kCrc16Init);

/// Streaming wrapper mirroring the hardware module's feed-words-then-read
/// usage: update() any number of times, then value().
class Crc16 {
 public:
  void update(std::span<const std::uint8_t> bytes) {
    crc_ = crc16_ccitt(bytes, crc_);
  }
  void update(std::uint8_t byte) { update({&byte, 1}); }
  [[nodiscard]] std::uint16_t value() const { return crc_; }
  void reset() { crc_ = kCrc16Init; }

 private:
  std::uint16_t crc_ = kCrc16Init;
};

}  // namespace iprune::device
