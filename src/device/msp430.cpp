#include "device/msp430.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace iprune::device {

namespace {

/// An injected outage during reboot triggers another recharge + reboot
/// (back-to-back failures). A schedule that keeps failing the reboot
/// forever would otherwise hang the simulation; past this bound the run
/// is diagnosed instead.
constexpr std::size_t kMaxRebootRetries = 4096;

power::FaultPoint fault_point_of(CostTag tag) {
  switch (tag) {
    case CostTag::kNvmRead:
      return power::FaultPoint::kNvmRead;
    case CostTag::kNvmWrite:
      return power::FaultPoint::kNvmWrite;
    case CostTag::kLea:
      return power::FaultPoint::kLea;
    case CostTag::kCpu:
      return power::FaultPoint::kCpu;
    case CostTag::kReboot:
      return power::FaultPoint::kReboot;
    case CostTag::kTagCount:
      break;
  }
  return power::FaultPoint::kOther;
}

}  // namespace

std::string describe(const DeviceConfig& config) {
  std::ostringstream out;
  out << "MSP430FR5994-class device: VM " << config.memory.vm_bytes / 1024
      << " KB, NVM " << config.memory.nvm_bytes / 1024
      << " KB, DMA " << config.dma.invocation_us << " us + "
      << config.dma.read_us_per_byte << "/" << config.dma.write_us_per_byte
      << " us/B (r/w), LEA " << config.lea.mac_us << " us/MAC";
  return out.str();
}

Msp430Device::Msp430Device(DeviceConfig config,
                           std::unique_ptr<power::PowerSupply> supply,
                           power::BufferConfig buffer)
    : config_(config),
      nvm_(config.memory.nvm_bytes),
      power_(std::move(supply), buffer) {}

void Msp430Device::reset_stats() {
  stats_ = {};
  power_.reset_stats();
}

void Msp430Device::set_trace_sink(telemetry::TraceSink* sink) {
  // An active grant was planned under the previous tracing state; tracing
  // makes every event a decision point, so re-plan.
  sync_fault_events();
  sink_ = sink != nullptr ? sink : &telemetry::NullSink::instance();
  trace_on_ = sink_->enabled();
  power_.set_trace_sink(sink);
}

void Msp430Device::sync_fault_events() {
  flush_pending_events();
  grant_.events = 0;
}

void Msp430Device::flush_pending_events() {
  if (pending_events_ == 0) {
    return;
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->skip_quiet_events(pending_events_, pending_points_);
  }
  pending_events_ = 0;
  for (std::uint64_t& count : pending_points_) {
    count = 0;
  }
}

void Msp430Device::record_span(telemetry::EventClass cls, double t_us,
                               double dur_us, double attributed_us,
                               double energy_j, std::uint64_t bytes,
                               std::uint64_t macs) {
  if (!trace_on_) {
    return;
  }
  telemetry::Event event;
  event.cls = cls;
  event.phase = telemetry::EventPhase::kSpan;
  event.t_us = t_us;
  event.dur_us = dur_us;
  event.attributed_us = attributed_us;
  event.energy_j = energy_j;
  event.bytes = bytes;
  event.macs = macs;
  event.seq = vm_epoch_;
  sink_->record(event);
}

void Msp430Device::power_cycle() {
  // The reboot charge (and any back-to-back retry) consults the fault
  // hook through the exact path, consuming ordinals a partially-used
  // grant did not plan for — invalidate it. Pending skipped ordinals were
  // flushed by the caller before entering here.
  grant_.events = 0;
  ++vm_epoch_;
  ++stats_.power_failures;
  const double reboot_us = config_.reboot_us;
  const double reboot_j = config_.rails.base_active_w * reboot_us * 1e-6;
  std::size_t reboot_attempts = 0;
  while (true) {
    const double off_s = power_.recharge(clock_us_ * 1e-6);
    const double off_us = off_s * 1e6;
    clock_us_ += off_us;
    stats_.off_time_us += off_us;

    // Firmware reboot on resumption. Drawn from the freshly charged
    // buffer; by construction it is far smaller than the buffer, so only
    // an injected outage can interrupt it.
    if (power_.consume(clock_us_ * 1e-6, reboot_us * 1e-6, reboot_j,
                       power::FaultPoint::kReboot)) {
      break;
    }
    if (!power_.last_outage_injected()) {
      throw std::runtime_error(
          "Msp430Device: reboot exceeds the energy buffer; the configured "
          "reboot cost makes forward progress impossible");
    }
    // Back-to-back failure: the outage landed during the reboot itself.
    // The aborted attempt still spent its wall time; cycle again.
    clock_us_ += reboot_us;
    stats_.on_time_us += reboot_us;
    ++vm_epoch_;
    ++stats_.power_failures;
    record_span(telemetry::EventClass::kReboot, clock_us_ - reboot_us,
                reboot_us, 0.0, 0.0, 0, 0);
    if (++reboot_attempts > kMaxRebootRetries) {
      throw std::runtime_error(
          "Msp430Device: fault-injection schedule interrupted " +
          std::to_string(kMaxRebootRetries) +
          " consecutive reboots; the device cannot come back up under "
          "this schedule");
    }
  }
  clock_us_ += reboot_us;
  stats_.on_time_us += reboot_us;
  stats_.tag_time_us[static_cast<std::size_t>(CostTag::kReboot)] += reboot_us;
  stats_.energy_j += reboot_j;
  record_span(telemetry::EventClass::kReboot, clock_us_ - reboot_us,
              reboot_us, reboot_us, reboot_j, 0, 0);
  if (trace_on_) {
    telemetry::Event event;
    event.cls = telemetry::EventClass::kPowerOn;
    event.phase = telemetry::EventPhase::kInstant;
    event.t_us = clock_us_;
    event.seq = vm_epoch_;
    sink_->record(event);
  }
}

bool Msp430Device::charge(double latency_us, double extra_power_w,
                          CostTag tag) {
  const double share[static_cast<std::size_t>(CostTag::kTagCount)] = {
      tag == CostTag::kNvmRead ? latency_us : 0.0,
      tag == CostTag::kNvmWrite ? latency_us : 0.0,
      tag == CostTag::kLea ? latency_us : 0.0,
      tag == CostTag::kCpu ? latency_us : 0.0,
      tag == CostTag::kReboot ? latency_us : 0.0,
  };
  const double energy_j =
      (config_.rails.base_active_w + extra_power_w) * latency_us * 1e-6;
  return charge_split(latency_us, energy_j, share, fault_point_of(tag));
}

bool Msp430Device::charge_split(double latency_us, double energy_j,
                                const double* tag_share_us,
                                power::FaultPoint point) {
  const double usable = power_.buffer().usable_j();
  if (energy_j > usable) {
    throw std::runtime_error(
        "Msp430Device: a single operation needs more energy (" +
        std::to_string(energy_j) + " J) than the buffer stores (" +
        std::to_string(usable) +
        " J); inference cannot terminate — shrink the operation "
        "granularity or enlarge the capacitor");
  }
  if (sim_mode_ == power::SimMode::kScheduler) {
    if (grant_.events == 0 || clock_us_ >= grant_.end_us) {
      // Settle skipped ordinals first: the re-plan consults the hook's
      // quiet horizon, which must see the true event counters.
      flush_pending_events();
      grant_ = scheduler_.plan(clock_us_, power_.supply(), fault_hook_,
                               trace_on_);
    }
    if (grant_.events > 0 && clock_us_ < grant_.end_us) {
      return charge_fast(latency_us, energy_j, tag_share_us, point);
    }
    // No fast-forward window (tracing on, schedule may fire, or supply
    // guard band): fall through to the exact per-event path below.
  }
  if (power_.consume(clock_us_ * 1e-6, latency_us * 1e-6, energy_j, point)) {
    apply_staged(true);
    clock_us_ += latency_us;
    stats_.on_time_us += latency_us;
    stats_.energy_j += energy_j;
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(CostTag::kTagCount); ++t) {
      stats_.tag_time_us[t] += tag_share_us[t];
    }
    return true;
  }
  // Brown-out: the partially executed operation is lost. Charge the time
  // the device stayed up during the aborted attempt (approximated as the
  // full latency — the buffer window is tiny relative to any measurement),
  // then recharge and reboot.
  apply_staged(false);
  clock_us_ += latency_us;
  stats_.on_time_us += latency_us;
  power_cycle();
  return false;
}

bool Msp430Device::charge_fast(double latency_us, double energy_j,
                               const double* tag_share_us,
                               power::FaultPoint point) {
  // The grant guarantees: the hook answers false for this event (ordinal
  // settled later in bulk) and the harvest power is grant_.power_w for an
  // operation starting now. consume_quiet replays consume()'s arithmetic
  // exactly, so every stat below matches the stepping oracle bit for bit.
  --grant_.events;
  ++pending_events_;
  ++pending_points_[static_cast<std::size_t>(point)];
  if (power_.consume_quiet(latency_us * 1e-6, energy_j, grant_.power_w)) {
    apply_staged(true);
    clock_us_ += latency_us;
    stats_.on_time_us += latency_us;
    stats_.energy_j += energy_j;
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(CostTag::kTagCount); ++t) {
      stats_.tag_time_us[t] += tag_share_us[t];
    }
    return true;
  }
  // Organic brown-out inside the window (last_outage_injected is false,
  // so a staged batch drops entirely — same as the oracle). The failed
  // event consumed its skipped ordinal above; settle all of them before
  // the reboot's own hook-visible consume.
  apply_staged(false);
  clock_us_ += latency_us;
  stats_.on_time_us += latency_us;
  flush_pending_events();
  power_cycle();
  return false;
}

void Msp430Device::apply_staged(bool charge_ok) {
  if (staged_batch_ == nullptr) {
    return;
  }
  const WriteBatch& batch = *staged_batch_;
  std::size_t keep = 0;
  if (charge_ok) {
    keep = batch.total_bytes();
  } else if (power_.last_outage_injected() && fault_hook_ != nullptr &&
             batch.total_bytes() > 0) {
    keep = std::min(fault_hook_->torn_write_bytes(batch.total_bytes()),
                    batch.total_bytes() - 1);
  }
  last_staged_kept_ = keep;
  batch.for_prefix(keep,
                   [this](Address addr, std::span<const std::uint8_t> bytes) {
                     nvm_.write(addr, bytes);
                   });
}

bool Msp430Device::dma_read(std::size_t bytes) {
  ++stats_.dma_commands;
  stats_.nvm_bytes_read += bytes;
  const double latency = config_.dma.read_latency_us(bytes);
  const double t0 = clock_us_;
  const bool ok = charge(latency, config_.rails.nvm_read_w, CostTag::kNvmRead);
  // Aborted attempts carry zero attribution/energy, mirroring DeviceStats
  // (brown-out discards the attempt's accounting, not its wall time).
  record_span(telemetry::EventClass::kNvmRead, t0, latency,
              ok ? latency : 0.0,
              ok ? (config_.rails.base_active_w + config_.rails.nvm_read_w) *
                       latency * 1e-6
                 : 0.0,
              bytes, 0);
  return ok;
}

bool Msp430Device::dma_write(std::size_t bytes) {
  ++stats_.dma_commands;
  stats_.nvm_bytes_written += bytes;
  const double latency = config_.dma.write_latency_us(bytes);
  const double t0 = clock_us_;
  const bool ok =
      charge(latency, config_.rails.nvm_write_w, CostTag::kNvmWrite);
  record_span(telemetry::EventClass::kNvmWrite, t0, latency,
              ok ? latency : 0.0,
              ok ? (config_.rails.base_active_w + config_.rails.nvm_write_w) *
                       latency * 1e-6
                 : 0.0,
              bytes, 0);
  return ok;
}

bool Msp430Device::lea_op(std::size_t macs) {
  ++stats_.lea_invocations;
  stats_.macs += macs;
  const double latency = config_.lea.op_latency_us(macs);
  const double t0 = clock_us_;
  const bool ok = charge(latency, config_.rails.lea_active_w, CostTag::kLea);
  record_span(telemetry::EventClass::kLea, t0, latency, ok ? latency : 0.0,
              ok ? (config_.rails.base_active_w +
                    config_.rails.lea_active_w) * latency * 1e-6
                 : 0.0,
              0, macs);
  return ok;
}

bool Msp430Device::cpu_work(std::size_t cycles) {
  const double latency = config_.cpu.work_latency_us(cycles);
  const double t0 = clock_us_;
  const bool ok = charge(latency, config_.rails.cpu_active_w, CostTag::kCpu);
  record_span(telemetry::EventClass::kCpu, t0, latency, ok ? latency : 0.0,
              ok ? (config_.rails.base_active_w +
                    config_.rails.cpu_active_w) * latency * 1e-6
                 : 0.0,
              0, 0);
  return ok;
}

bool Msp430Device::dma_commit(const WriteBatch& batch,
                              std::size_t charge_bytes) {
  ++stats_.dma_commands;
  stats_.nvm_bytes_written += charge_bytes;
  const double latency = config_.dma.write_latency_us(charge_bytes);
  const double t0 = clock_us_;
  staged_batch_ = &batch;
  const bool ok =
      charge(latency, config_.rails.nvm_write_w, CostTag::kNvmWrite);
  staged_batch_ = nullptr;
  record_span(telemetry::EventClass::kNvmWrite, t0, latency,
              ok ? latency : 0.0,
              ok ? (config_.rails.base_active_w + config_.rails.nvm_write_w) *
                       latency * 1e-6
                 : 0.0,
              charge_bytes, 0);
  return ok;
}

bool Msp430Device::pipelined_job(std::size_t macs, std::size_t write_bytes,
                                 std::size_t cpu_cycles) {
  return pipelined_impl(nullptr, macs, write_bytes, cpu_cycles);
}

bool Msp430Device::pipelined_commit(const WriteBatch& batch, std::size_t macs,
                                    std::size_t charge_bytes,
                                    std::size_t cpu_cycles) {
  return pipelined_impl(&batch, macs, charge_bytes, cpu_cycles);
}

bool Msp430Device::pipelined_impl(const WriteBatch* batch, std::size_t macs,
                                  std::size_t write_bytes,
                                  std::size_t cpu_cycles) {
  double lea_us = 0.0;
  if (macs > 0) {
    ++stats_.lea_invocations;
    stats_.macs += macs;
    lea_us = config_.lea.op_latency_us(macs);
  }
  double write_us = 0.0;
  if (write_bytes > 0) {
    ++stats_.dma_commands;
    stats_.nvm_bytes_written += write_bytes;
    write_us = config_.dma.write_latency_us(write_bytes);
  }
  const double cpu_us = config_.cpu.work_latency_us(cpu_cycles);
  const double overlapped = std::max(lea_us, write_us);
  const double latency = overlapped + cpu_us;

  // Energy pays for every component in full (both units are busy while the
  // shorter one overlaps with the longer one).
  const double energy_j =
      config_.rails.base_active_w * latency * 1e-6 +
      config_.rails.lea_active_w * lea_us * 1e-6 +
      config_.rails.nvm_write_w * write_us * 1e-6 +
      config_.rails.cpu_active_w * cpu_us * 1e-6;

  // Exposed-time attribution: the dominant unit owns the overlap window.
  double share[static_cast<std::size_t>(CostTag::kTagCount)] = {};
  if (write_us >= lea_us) {
    share[static_cast<std::size_t>(CostTag::kNvmWrite)] = overlapped;
  } else {
    share[static_cast<std::size_t>(CostTag::kLea)] = overlapped;
  }
  share[static_cast<std::size_t>(CostTag::kCpu)] = cpu_us;
  const double t0 = clock_us_;
  // For the fault hook a pipelined job is an NVM-write boundary whenever
  // it commits bytes (the progress-preservation write); compute-only jobs
  // count as accelerator events.
  const power::FaultPoint point =
      write_bytes > 0 ? power::FaultPoint::kNvmWrite
                      : (macs > 0 ? power::FaultPoint::kLea
                                  : power::FaultPoint::kCpu);
  staged_batch_ = batch;
  const bool ok = charge_split(latency, energy_j, share, point);
  staged_batch_ = nullptr;
  if (trace_on_) {
    // One busy span per engaged unit. The LEA and NVM windows overlap on
    // the timeline (that is the pipelining); attribution and per-unit
    // energy (unit rail + base draw over the attributed window) sum back
    // to the operation's exposed latency and total energy.
    const double base_w = config_.rails.base_active_w;
    if (lea_us > 0.0) {
      const double attr =
          ok ? share[static_cast<std::size_t>(CostTag::kLea)] : 0.0;
      record_span(telemetry::EventClass::kLea, t0, lea_us, attr,
                  ok ? config_.rails.lea_active_w * lea_us * 1e-6 +
                           base_w * attr * 1e-6
                     : 0.0,
                  0, macs);
    }
    if (write_us > 0.0) {
      const double attr =
          ok ? share[static_cast<std::size_t>(CostTag::kNvmWrite)] : 0.0;
      record_span(telemetry::EventClass::kNvmWrite, t0, write_us, attr,
                  ok ? config_.rails.nvm_write_w * write_us * 1e-6 +
                           base_w * attr * 1e-6
                     : 0.0,
                  write_bytes, 0);
    }
    if (cpu_us > 0.0) {
      record_span(telemetry::EventClass::kCpu, t0 + overlapped, cpu_us,
                  ok ? cpu_us : 0.0,
                  ok ? (config_.rails.cpu_active_w + base_w) * cpu_us * 1e-6
                     : 0.0,
                  0, 0);
    }
  }
  return ok;
}

}  // namespace iprune::device
