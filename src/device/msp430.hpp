#pragma once
// Cycle-approximate MSP430FR5994 + LEA + external-FRAM device model.
//
// The engine (src/engine) drives inference through the primitives below;
// each primitive advances the simulated clock, draws energy through the
// PowerManager, and updates per-category latency statistics. When the
// energy buffer browns out mid-operation the primitive returns false: the
// device has lost VM contents (vm_epoch() changes), recharged, rebooted,
// and the caller must re-establish its VM state before retrying — exactly
// the progress-recovery contract of intermittent systems.

#include <memory>

#include "device/config.hpp"
#include "device/nvm.hpp"
#include "power/manager.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/sink.hpp"

namespace iprune::device {

enum class CostTag : std::size_t {
  kNvmRead = 0,
  kNvmWrite,
  kLea,
  kCpu,
  kReboot,
  kTagCount,
};

struct DeviceStats {
  double on_time_us = 0.0;
  double off_time_us = 0.0;
  double tag_time_us[static_cast<std::size_t>(CostTag::kTagCount)] = {};
  double energy_j = 0.0;
  std::size_t power_failures = 0;
  std::size_t nvm_bytes_read = 0;
  std::size_t nvm_bytes_written = 0;
  std::size_t dma_commands = 0;
  std::size_t lea_invocations = 0;
  std::size_t macs = 0;

  [[nodiscard]] double tag_us(CostTag tag) const {
    return tag_time_us[static_cast<std::size_t>(tag)];
  }
  [[nodiscard]] double total_time_us() const {
    return on_time_us + off_time_us;
  }
};

class Msp430Device {
 public:
  Msp430Device(DeviceConfig config,
               std::unique_ptr<power::PowerSupply> supply,
               power::BufferConfig buffer = {});

  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  [[nodiscard]] Nvm& nvm() { return nvm_; }
  [[nodiscard]] const Nvm& nvm() const { return nvm_; }

  /// Simulated wall-clock (microseconds since construction).
  [[nodiscard]] double now_us() const { return clock_us_; }

  /// Monotone counter bumped by every power failure; cached VM state from
  /// an older epoch is garbage and must be re-fetched.
  [[nodiscard]] std::uint64_t vm_epoch() const { return vm_epoch_; }

  [[nodiscard]] const DeviceStats& stats() const { return stats_; }
  void reset_stats();

  /// The device's power subsystem (read-only): energy-conservation ledger
  /// (harvested / consumed / wasted joules), buffer state, supply. Fleet
  /// aggregation reads harvest totals from here.
  [[nodiscard]] const power::PowerManager& power() const { return power_; }

  /// Route structured telemetry (per-operation spans, brown-outs,
  /// recharge/reboot) to `sink`; nullptr restores the null sink, under
  /// which every emission site costs a single predictable branch.
  /// Non-owning; the sink must outlive the device.
  void set_trace_sink(telemetry::TraceSink* sink);
  [[nodiscard]] telemetry::TraceSink& trace_sink() const { return *sink_; }
  /// Null-sink fast path for emission hooks: a cached flag (refreshed by
  /// set_trace_sink) so the per-operation gate is one member-bool test
  /// with no sink pointer chase.
  [[nodiscard]] bool trace_enabled() const { return trace_on_; }

  /// Install a deterministic outage-injection hook on the power manager
  /// (nullptr removes it). Every chargeable primitive below is one hook
  /// event, labelled with its FaultPoint; a firing hook forces the full
  /// brown-out + recharge + reboot path at that exact event. Injection
  /// during the reboot itself is survivable (back-to-back failures) and
  /// bounded by a retry watchdog. Non-owning; must outlive the device.
  void set_fault_hook(power::FaultHook* hook) {
    sync_fault_events();  // settle skipped ordinals with the old hook
    fault_hook_ = hook;
    power_.set_fault_hook(hook);
  }

  /// Select how the simulation advances time. kStepping (default) runs
  /// every chargeable event through the exact consume() path; kScheduler
  /// fast-forwards through hook-quiet constant-harvest windows planned by
  /// sim::DeviceScheduler — bit-identical results, fewer virtual calls.
  void set_sim_mode(power::SimMode mode) {
    if (mode == sim_mode_) {
      return;
    }
    sync_fault_events();
    sim_mode_ = mode;
  }
  [[nodiscard]] power::SimMode sim_mode() const { return sim_mode_; }

  /// Settle every fault-hook ordinal skipped inside the current charge
  /// grant and invalidate the grant. Must be called before reading the
  /// hook's counters externally (the fleet layer does, after a run); also
  /// invoked internally at every slow-path boundary (reboot, commit
  /// boundary, hook/sink swap, mode switch).
  void sync_fault_events();

  /// Engine notification: a commit/seal boundary was reached. In
  /// scheduler mode this is a decision point — skipped ordinals are
  /// settled and the grant is re-planned — so externally visible fault
  /// state is exact at every commit record.
  void on_commit_boundary() {
    if (sim_mode_ == power::SimMode::kScheduler) {
      sync_fault_events();
    }
  }

  /// Bytes of the most recent staged WriteBatch that actually landed in
  /// NVM (the whole batch on success, the torn prefix on an injected
  /// outage, 0 on an organic one). The batched fleet engine replays the
  /// leader's kept-prefix onto follower batches.
  [[nodiscard]] std::size_t last_staged_kept() const {
    return last_staged_kept_;
  }

  // --- primitives (return false on power failure during the operation) ---

  /// DMA transfer NVM -> VM.
  [[nodiscard]] bool dma_read(std::size_t bytes);
  /// DMA transfer VM -> NVM.
  [[nodiscard]] bool dma_write(std::size_t bytes);
  /// One LEA accelerator invocation performing `macs` multiply-accumulates.
  [[nodiscard]] bool lea_op(std::size_t macs);
  /// CPU-executed work.
  [[nodiscard]] bool cpu_work(std::size_t cycles);
  /// One intermittent-inference job: `macs` on the LEA pipelined with a
  /// `write_bytes` NVM write-back (progress preservation). The exposed
  /// latency is max(compute, write) + fixed CPU overhead; energy pays for
  /// both. Attribution: the dominant component owns the overlapped time
  /// (this is what makes Fig. 2's write-dominated breakdown visible).
  [[nodiscard]] bool pipelined_job(std::size_t macs, std::size_t write_bytes,
                                   std::size_t cpu_cycles);

  // --- staged commits (torn-write-aware NVM transfers) ---
  //
  // The plain primitives charge energy only; the caller performs its NVM
  // writes after a successful return, so an outage is all-or-nothing. The
  // commit variants below carry the byte-exact payload (a WriteBatch)
  // INTO the charge: on success the full batch lands in NVM, and on an
  // injected brown-out the fault hook picks how many leading bytes landed
  // before the supply collapsed (clamped to total-1) — a torn write. An
  // organic brown-out keeps the classic all-or-nothing model so energy
  // sweeps stay deterministic. `charge_bytes` is the byte count used for
  // latency/energy/stats (it can exceed the batch payload when part of
  // the transfer is VM-buffer traffic the batch does not persist).

  /// DMA VM -> NVM transfer of `batch`; accounting mirrors
  /// dma_write(charge_bytes) exactly.
  [[nodiscard]] bool dma_commit(const WriteBatch& batch,
                                std::size_t charge_bytes);
  /// pipelined_job(macs, charge_bytes, cpu_cycles) with the write payload
  /// staged as `batch`.
  [[nodiscard]] bool pipelined_commit(const WriteBatch& batch,
                                      std::size_t macs,
                                      std::size_t charge_bytes,
                                      std::size_t cpu_cycles);

 private:
  /// Charge one operation; on brown-out performs the full power-cycle
  /// (recharge + reboot) and returns false.
  [[nodiscard]] bool charge(double latency_us, double extra_power_w,
                            CostTag tag);
  [[nodiscard]] bool charge_split(double latency_us, double energy_j,
                                  const double* tag_share_us,
                                  power::FaultPoint point);
  /// Scheduler-mode fast path: charge one event inside the active grant
  /// (hook guaranteed quiet, harvest power cached) via consume_quiet.
  [[nodiscard]] bool charge_fast(double latency_us, double energy_j,
                                 const double* tag_share_us,
                                 power::FaultPoint point);
  /// Report the pending skipped ordinals to the fault hook in bulk.
  void flush_pending_events();
  [[nodiscard]] bool pipelined_impl(const WriteBatch* batch, std::size_t macs,
                                    std::size_t write_bytes,
                                    std::size_t cpu_cycles);
  /// Land the staged batch after a charge: everything on success, the
  /// hook-chosen torn prefix on an injected outage, nothing on an organic
  /// one. Must run before power_cycle() — the reboot's own charge resets
  /// PowerManager::last_outage_injected().
  void apply_staged(bool charge_ok);
  void power_cycle();

  /// Emit one unit-busy span starting at `t_us` (the operation's start).
  void record_span(telemetry::EventClass cls, double t_us, double dur_us,
                   double attributed_us, double energy_j,
                   std::uint64_t bytes, std::uint64_t macs);

  DeviceConfig config_;
  Nvm nvm_;
  power::PowerManager power_;
  DeviceStats stats_;
  double clock_us_ = 0.0;
  std::uint64_t vm_epoch_ = 0;
  telemetry::TraceSink* sink_ = &telemetry::NullSink::instance();
  bool trace_on_ = false;
  power::FaultHook* fault_hook_ = nullptr;
  const WriteBatch* staged_batch_ = nullptr;
  std::size_t last_staged_kept_ = 0;

  // --- discrete-event scheduler state (kScheduler mode only) ---
  power::SimMode sim_mode_ = power::SimMode::kStepping;
  sim::DeviceScheduler scheduler_;
  sim::ChargeGrant grant_;  // events == 0: no active fast-forward window
  /// Hook ordinals skipped inside the grant, not yet settled: total and
  /// per-FaultPoint breakdown (indexed by FaultPoint).
  std::uint64_t pending_events_ = 0;
  std::uint64_t pending_points_[static_cast<std::size_t>(
      power::FaultPoint::kPointCount)] = {};
};

}  // namespace iprune::device
