#include "device/nvm.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace iprune::device {

void WriteBatch::push_bytes(std::size_t addr,
                            std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  const std::size_t offset = data_.size();
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  // Coalesce with the previous part when contiguous in both the payload
  // and the address space — keeps torn prefixes byte-granular without
  // inflating the part list for chunked writes.
  if (!parts_.empty()) {
    Part& last = parts_.back();
    if (last.addr + last.len == addr && last.offset + last.len == offset) {
      last.len += bytes.size();
      return;
    }
  }
  parts_.push_back(Part{addr, offset, bytes.size()});
}

void WriteBatch::push_i16(std::size_t addr, std::int16_t value) {
  std::uint8_t raw[2];
  std::memcpy(raw, &value, 2);
  push_bytes(addr, raw);
}

void WriteBatch::push_i32(std::size_t addr, std::int32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  push_bytes(addr, raw);
}

void WriteBatch::push_u32(std::size_t addr, std::uint32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  push_bytes(addr, raw);
}

Nvm::Nvm(std::size_t capacity_bytes) : storage_(capacity_bytes, 0) {}

Address Nvm::allocate(std::size_t bytes) {
  // Round up to 2-byte alignment; guard the +1 against SIZE_MAX wrap so a
  // bogus huge request reports out-of-NVM instead of allocating 0 bytes.
  const std::size_t aligned =
      bytes > std::numeric_limits<std::size_t>::max() - 1
          ? bytes
          : ((bytes + 1) & ~std::size_t{1});
  if (aligned > storage_.size() - next_free_) {
    throw std::runtime_error(
        "Nvm::allocate: out of NVM (requested " + std::to_string(bytes) +
        " bytes, free " + std::to_string(free_bytes()) +
        ") — model does not fit the 512 KB FRAM budget");
  }
  const Address addr = next_free_;
  next_free_ += aligned;
  return addr;
}

void Nvm::reset() {
  std::memset(storage_.data(), 0, storage_.size());
  next_free_ = 0;
}

void Nvm::out_of_range(Address addr, std::size_t bytes) const {
  throw std::out_of_range("Nvm access out of range: addr=" +
                          std::to_string(addr) + " len=" +
                          std::to_string(bytes));
}

std::uint8_t Nvm::peek(Address addr) const {
  check(addr, 1);
  return storage_[addr];
}

}  // namespace iprune::device
