#include "device/nvm.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace iprune::device {

void WriteBatch::push_bytes(std::size_t addr,
                            std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  const std::size_t offset = data_.size();
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  // Coalesce with the previous part when contiguous in both the payload
  // and the address space — keeps torn prefixes byte-granular without
  // inflating the part list for chunked writes.
  if (!parts_.empty()) {
    Part& last = parts_.back();
    if (last.addr + last.len == addr && last.offset + last.len == offset) {
      last.len += bytes.size();
      return;
    }
  }
  parts_.push_back(Part{addr, offset, bytes.size()});
}

void WriteBatch::push_i16(std::size_t addr, std::int16_t value) {
  std::uint8_t raw[2];
  std::memcpy(raw, &value, 2);
  push_bytes(addr, raw);
}

void WriteBatch::push_i32(std::size_t addr, std::int32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  push_bytes(addr, raw);
}

void WriteBatch::push_u32(std::size_t addr, std::uint32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  push_bytes(addr, raw);
}

Nvm::Nvm(std::size_t capacity_bytes) : storage_(capacity_bytes, 0) {}

Address Nvm::allocate(std::size_t bytes) {
  // Round up to 2-byte alignment; guard the +1 against SIZE_MAX wrap so a
  // bogus huge request reports out-of-NVM instead of allocating 0 bytes.
  const std::size_t aligned =
      bytes > std::numeric_limits<std::size_t>::max() - 1
          ? bytes
          : ((bytes + 1) & ~std::size_t{1});
  if (aligned > storage_.size() - next_free_) {
    throw std::runtime_error(
        "Nvm::allocate: out of NVM (requested " + std::to_string(bytes) +
        " bytes, free " + std::to_string(free_bytes()) +
        ") — model does not fit the 512 KB FRAM budget");
  }
  const Address addr = next_free_;
  next_free_ += aligned;
  return addr;
}

void Nvm::reset() {
  std::memset(storage_.data(), 0, storage_.size());
  next_free_ = 0;
}

void Nvm::check(Address addr, std::size_t bytes) const {
  // Two-step comparison: `addr + bytes` can wrap std::size_t near
  // SIZE_MAX and sail past the bound.
  if (addr > storage_.size() || bytes > storage_.size() - addr) {
    throw std::out_of_range("Nvm access out of range: addr=" +
                            std::to_string(addr) + " len=" +
                            std::to_string(bytes));
  }
}

void Nvm::store(Address addr, std::span<const std::uint8_t> bytes) {
  check(addr, bytes.size());
  std::uint8_t* cell = storage_.data() + addr;
  std::memcpy(cell, bytes.data(), bytes.size());
  if (corruption_ != nullptr) {
    corruption_->corrupt_write(addr, {cell, bytes.size()});
  }
}

void Nvm::load(Address addr, std::span<std::uint8_t> bytes) const {
  check(addr, bytes.size());
  std::memcpy(bytes.data(), storage_.data() + addr, bytes.size());
  if (corruption_ != nullptr) {
    corruption_->corrupt_read(addr, bytes);
  }
}

void Nvm::write(Address addr, std::span<const std::uint8_t> bytes) {
  store(addr, bytes);
}

void Nvm::read(Address addr, std::span<std::uint8_t> bytes) const {
  load(addr, bytes);
}

void Nvm::write_i16(Address addr, std::int16_t value) {
  std::uint8_t raw[2];
  std::memcpy(raw, &value, 2);
  store(addr, raw);
}

std::int16_t Nvm::read_i16(Address addr) const {
  std::uint8_t raw[2];
  load(addr, raw);
  std::int16_t value = 0;
  std::memcpy(&value, raw, 2);
  return value;
}

void Nvm::write_i32(Address addr, std::int32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  store(addr, raw);
}

std::int32_t Nvm::read_i32(Address addr) const {
  std::uint8_t raw[4];
  load(addr, raw);
  std::int32_t value = 0;
  std::memcpy(&value, raw, 4);
  return value;
}

void Nvm::write_u32(Address addr, std::uint32_t value) {
  std::uint8_t raw[4];
  std::memcpy(raw, &value, 4);
  store(addr, raw);
}

std::uint32_t Nvm::read_u32(Address addr) const {
  std::uint8_t raw[4];
  load(addr, raw);
  std::uint32_t value = 0;
  std::memcpy(&value, raw, 4);
  return value;
}

std::uint8_t Nvm::peek(Address addr) const {
  check(addr, 1);
  return storage_[addr];
}

}  // namespace iprune::device
