#include "device/nvm.hpp"

#include <cstring>
#include <stdexcept>

namespace iprune::device {

Nvm::Nvm(std::size_t capacity_bytes) : storage_(capacity_bytes, 0) {}

Address Nvm::allocate(std::size_t bytes) {
  const std::size_t aligned = (bytes + 1) & ~std::size_t{1};
  if (next_free_ + aligned > storage_.size()) {
    throw std::runtime_error(
        "Nvm::allocate: out of NVM (requested " + std::to_string(bytes) +
        " bytes, free " + std::to_string(free_bytes()) +
        ") — model does not fit the 512 KB FRAM budget");
  }
  const Address addr = next_free_;
  next_free_ += aligned;
  return addr;
}

void Nvm::reset() {
  std::memset(storage_.data(), 0, storage_.size());
  next_free_ = 0;
}

void Nvm::check(Address addr, std::size_t bytes) const {
  if (addr + bytes > storage_.size()) {
    throw std::out_of_range("Nvm access out of range: addr=" +
                            std::to_string(addr) + " len=" +
                            std::to_string(bytes));
  }
}

void Nvm::write(Address addr, std::span<const std::uint8_t> bytes) {
  check(addr, bytes.size());
  std::memcpy(storage_.data() + addr, bytes.data(), bytes.size());
}

void Nvm::read(Address addr, std::span<std::uint8_t> bytes) const {
  check(addr, bytes.size());
  std::memcpy(bytes.data(), storage_.data() + addr, bytes.size());
}

void Nvm::write_i16(Address addr, std::int16_t value) {
  check(addr, 2);
  std::memcpy(storage_.data() + addr, &value, 2);
}

std::int16_t Nvm::read_i16(Address addr) const {
  check(addr, 2);
  std::int16_t value = 0;
  std::memcpy(&value, storage_.data() + addr, 2);
  return value;
}

void Nvm::write_i32(Address addr, std::int32_t value) {
  check(addr, 4);
  std::memcpy(storage_.data() + addr, &value, 4);
}

std::int32_t Nvm::read_i32(Address addr) const {
  check(addr, 4);
  std::int32_t value = 0;
  std::memcpy(&value, storage_.data() + addr, 4);
  return value;
}

void Nvm::write_u32(Address addr, std::uint32_t value) {
  check(addr, 4);
  std::memcpy(storage_.data() + addr, &value, 4);
}

std::uint32_t Nvm::read_u32(Address addr) const {
  check(addr, 4);
  std::uint32_t value = 0;
  std::memcpy(&value, storage_.data() + addr, 4);
  return value;
}

}  // namespace iprune::device
