#pragma once
// Byte-addressable non-volatile memory (external FRAM). Contents persist
// across simulated power failures. A bump allocator hands out regions to
// the deployment step; reads/writes are bounds-checked.
//
// Data integrity: an optional CorruptionModel (corruption.hpp) perturbs
// every store and load (seeded bit flips, stuck-at cells), and multi-part
// WriteBatch commits can be truncated mid-write by the fault injector to
// model a torn write at a power-failure boundary (Msp430Device applies
// the batch; Nvm only provides the staged representation).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "device/corruption.hpp"

namespace iprune::device {

/// Staged multi-part NVM write: the byte-exact payload of one atomic-ish
/// commit (data words + progress record), built by the engine *before*
/// the DMA charge so that a power failure during the transfer can land a
/// torn prefix instead of all-or-nothing. Parts apply in push order; the
/// tear offset is a byte count into the concatenated payload.
class WriteBatch {
 public:
  void clear() {
    parts_.clear();
    data_.clear();
  }
  [[nodiscard]] bool empty() const { return parts_.empty(); }
  [[nodiscard]] std::size_t total_bytes() const { return data_.size(); }
  [[nodiscard]] std::size_t parts() const { return parts_.size(); }

  void push_bytes(std::size_t addr, std::span<const std::uint8_t> bytes);
  void push_i16(std::size_t addr, std::int16_t value);
  void push_i32(std::size_t addr, std::int32_t value);
  void push_u32(std::size_t addr, std::uint32_t value);

  /// Visit `(addr, bytes)` for the first `keep_bytes` of the payload
  /// (parts in push order, the straddling part truncated).
  template <typename Fn>
  void for_prefix(std::size_t keep_bytes, Fn&& fn) const {
    for (const Part& part : parts_) {
      if (keep_bytes == 0) {
        return;
      }
      const std::size_t len = std::min(keep_bytes, part.len);
      fn(part.addr,
         std::span<const std::uint8_t>(data_.data() + part.offset, len));
      keep_bytes -= len;
    }
  }

 private:
  struct Part {
    std::size_t addr = 0;
    std::size_t offset = 0;
    std::size_t len = 0;
  };
  std::vector<Part> parts_;
  std::vector<std::uint8_t> data_;
};

using Address = std::size_t;

class Nvm {
 public:
  explicit Nvm(std::size_t capacity_bytes);

  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }
  [[nodiscard]] std::size_t allocated() const { return next_free_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return storage_.size() - next_free_;
  }

  /// Allocate a region (2-byte aligned, matching the 16-bit device).
  /// Throws std::bad_alloc-like std::runtime_error when out of space —
  /// mirrors the paper's hard 512 KB budget for model + engine state.
  Address allocate(std::size_t bytes);

  /// Reset the allocator and zero the contents (not a power event).
  void reset();

  void write(Address addr, std::span<const std::uint8_t> bytes) {
    store(addr, bytes);
  }
  void read(Address addr, std::span<std::uint8_t> bytes) const {
    load(addr, bytes);
  }

  // Typed helpers for the 16/32-bit values the engine traffics in.
  // Header-inline: every MAC of the engine's inner loops funnels through
  // read_i16, so the call overhead and the redundant raw[] staging copy
  // were measurable; corrupted memories still take the byte-span path so
  // the stateful fault streams see the identical read sequence.

  void write_i16(Address addr, std::int16_t value) {
    std::uint8_t raw[2];
    std::memcpy(raw, &value, 2);
    store(addr, raw);
  }
  [[nodiscard]] std::int16_t read_i16(Address addr) const {
    return read_scalar<std::int16_t>(addr);
  }
  void write_i32(Address addr, std::int32_t value) {
    std::uint8_t raw[4];
    std::memcpy(raw, &value, 4);
    store(addr, raw);
  }
  [[nodiscard]] std::int32_t read_i32(Address addr) const {
    return read_scalar<std::int32_t>(addr);
  }
  void write_u32(Address addr, std::uint32_t value) {
    std::uint8_t raw[4];
    std::memcpy(raw, &value, 4);
    store(addr, raw);
  }
  [[nodiscard]] std::uint32_t read_u32(Address addr) const {
    return read_scalar<std::uint32_t>(addr);
  }

  /// Install a data-fault model applied to every subsequent store/load
  /// (nullptr restores perfect memory). Non-owning; must outlive the Nvm.
  void set_corruption(CorruptionModel* model) { corruption_ = model; }
  [[nodiscard]] CorruptionModel* corruption() const { return corruption_; }

  /// Peek the raw cell contents, bypassing the corruption model's read
  /// path (test/diagnosis facility: "what actually landed?").
  [[nodiscard]] std::uint8_t peek(Address addr) const;

  /// Direct pointer to the backing store — the lockstep-cohort fast path.
  /// Callers take over the bounds discipline (deployment-issued addresses
  /// only) and must not hold it while a corruption model is installed:
  /// raw accesses bypass the fault stream. The storage never reallocates,
  /// so the pointer stays valid for the Nvm's lifetime.
  [[nodiscard]] std::uint8_t* raw_storage() { return storage_.data(); }
  [[nodiscard]] const std::uint8_t* raw_storage() const {
    return storage_.data();
  }

 private:
  void check(Address addr, std::size_t bytes) const {
    // Two-step comparison: `addr + bytes` can wrap std::size_t near
    // SIZE_MAX and sail past the bound.
    if (addr > storage_.size() || bytes > storage_.size() - addr) {
      out_of_range(addr, bytes);  // out-of-line cold throw path
    }
  }
  [[noreturn]] void out_of_range(Address addr, std::size_t bytes) const;

  void store(Address addr, std::span<const std::uint8_t> bytes) {
    check(addr, bytes.size());
    std::uint8_t* cell = storage_.data() + addr;
    std::memcpy(cell, bytes.data(), bytes.size());
    if (corruption_ != nullptr) {
      corruption_->corrupt_write(addr, {cell, bytes.size()});
    }
  }

  void load(Address addr, std::span<std::uint8_t> bytes) const {
    check(addr, bytes.size());
    std::memcpy(bytes.data(), storage_.data() + addr, bytes.size());
    if (corruption_ != nullptr) {
      corruption_->corrupt_read(addr, bytes);
    }
  }

  /// Typed load without the raw[] staging buffer when memory is perfect;
  /// the corruption path still reads through the byte span so fault
  /// streams advance exactly as before.
  template <typename T>
  [[nodiscard]] T read_scalar(Address addr) const {
    check(addr, sizeof(T));
    T value;
    if (corruption_ == nullptr) {
      std::memcpy(&value, storage_.data() + addr, sizeof(T));
      return value;
    }
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, storage_.data() + addr, sizeof(T));
    corruption_->corrupt_read(addr, raw);
    std::memcpy(&value, raw, sizeof(T));
    return value;
  }

  std::vector<std::uint8_t> storage_;
  std::size_t next_free_ = 0;
  CorruptionModel* corruption_ = nullptr;
};

}  // namespace iprune::device
