#pragma once
// Byte-addressable non-volatile memory (external FRAM). Contents persist
// across simulated power failures. A bump allocator hands out regions to
// the deployment step; reads/writes are bounds-checked.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace iprune::device {

using Address = std::size_t;

class Nvm {
 public:
  explicit Nvm(std::size_t capacity_bytes);

  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }
  [[nodiscard]] std::size_t allocated() const { return next_free_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return storage_.size() - next_free_;
  }

  /// Allocate a region (2-byte aligned, matching the 16-bit device).
  /// Throws std::bad_alloc-like std::runtime_error when out of space —
  /// mirrors the paper's hard 512 KB budget for model + engine state.
  Address allocate(std::size_t bytes);

  /// Reset the allocator and zero the contents (not a power event).
  void reset();

  void write(Address addr, std::span<const std::uint8_t> bytes);
  void read(Address addr, std::span<std::uint8_t> bytes) const;

  /// Typed helpers for the 16/32-bit values the engine traffics in.
  void write_i16(Address addr, std::int16_t value);
  [[nodiscard]] std::int16_t read_i16(Address addr) const;
  void write_i32(Address addr, std::int32_t value);
  [[nodiscard]] std::int32_t read_i32(Address addr) const;
  void write_u32(Address addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_u32(Address addr) const;

 private:
  void check(Address addr, std::size_t bytes) const;

  std::vector<std::uint8_t> storage_;
  std::size_t next_free_ = 0;
};

}  // namespace iprune::device
