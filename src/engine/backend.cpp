#include "engine/backend.hpp"

#include <stdexcept>

namespace iprune::engine {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kCycle:
      return "cycle";
    case BackendKind::kFunctional:
      return "functional";
    case BackendKind::kCustom:
      return "custom";
  }
  return "?";
}

BackendConfig BackendConfig::msp430_fram() {
  BackendConfig spec;
  spec.kind = BackendKind::kCycle;
  spec.preset = "msp430-fram";
  spec.device = device::DeviceConfig::msp430fr5994();
  return spec;
}

BackendConfig BackendConfig::functional() {
  BackendConfig spec;
  spec.kind = BackendKind::kFunctional;
  spec.preset = "functional";
  // Keep the oracle's memory geometry so lowering (tile plans, NVM
  // layout) — and therefore every computed value — matches bit-exactly.
  spec.device = device::DeviceConfig::msp430fr5994();
  return spec;
}

BackendConfig BackendConfig::reram() {
  BackendConfig spec;
  spec.kind = BackendKind::kCustom;
  spec.preset = "reram";
  spec.device = device::DeviceConfig::msp430fr5994();
  // ReRAM-class external NVM: fast low-energy reads, writes slower than
  // FRAM and with a pronounced energy asymmetry (SET/RESET pulses).
  spec.device.dma.read_us_per_byte = 0.1;
  spec.device.dma.write_us_per_byte = 1.0;
  spec.device.rails.nvm_read_w = 2.0e-3;
  spec.device.rails.nvm_write_w = 20.0e-3;
  return spec;
}

BackendConfig BackendConfig::stt_mram() {
  BackendConfig spec;
  spec.kind = BackendKind::kCustom;
  spec.preset = "stt-mram";
  spec.device = device::DeviceConfig::msp430fr5994();
  // STT-MRAM-class external NVM: near-symmetric fast access, moderate
  // write energy — compresses the read/write cost ratio toward 1.
  spec.device.dma.read_us_per_byte = 0.05;
  spec.device.dma.write_us_per_byte = 0.15;
  spec.device.rails.nvm_read_w = 4.0e-3;
  spec.device.rails.nvm_write_w = 8.0e-3;
  return spec;
}

std::string BackendConfig::describe() const { return preset; }

BackendConfig BackendConfig::parse(const std::string& text) {
  if (text == "msp430-fram") {
    return msp430_fram();
  }
  if (text == "functional") {
    return functional();
  }
  if (text == "reram") {
    return reram();
  }
  if (text == "stt-mram") {
    return stt_mram();
  }
  throw std::runtime_error("backend: unknown preset '" + text + "'");
}

namespace {

bool same_device(const device::DeviceConfig& a, const device::DeviceConfig& b) {
  return a.memory.vm_bytes == b.memory.vm_bytes &&
         a.memory.nvm_bytes == b.memory.nvm_bytes &&
         a.dma.invocation_us == b.dma.invocation_us &&
         a.dma.read_us_per_byte == b.dma.read_us_per_byte &&
         a.dma.write_us_per_byte == b.dma.write_us_per_byte &&
         a.lea.mac_us == b.lea.mac_us && a.lea.invoke_us == b.lea.invoke_us &&
         a.cpu.cycle_us == b.cpu.cycle_us &&
         a.rails.base_active_w == b.rails.base_active_w &&
         a.rails.lea_active_w == b.rails.lea_active_w &&
         a.rails.nvm_read_w == b.rails.nvm_read_w &&
         a.rails.nvm_write_w == b.rails.nvm_write_w &&
         a.rails.cpu_active_w == b.rails.cpu_active_w &&
         a.reboot_us == b.reboot_us;
}

}  // namespace

bool operator==(const BackendConfig& a, const BackendConfig& b) {
  return a.kind == b.kind && a.preset == b.preset &&
         same_device(a.device, b.device);
}

CycleBackend::CycleBackend(device::Msp430Device& device)
    : spec_(BackendConfig::msp430_fram()), device_(&device) {
  spec_.device = device.config();
}

CycleBackend::CycleBackend(BackendConfig spec,
                           std::unique_ptr<power::PowerSupply> supply,
                           power::BufferConfig buffer)
    : spec_(std::move(spec)),
      owned_(std::make_unique<device::Msp430Device>(
          spec_.device,
          supply != nullptr ? std::move(supply)
                            : power::SupplyPresets::continuous(),
          buffer)),
      device_(owned_.get()) {}

FunctionalBackend::FunctionalBackend(BackendConfig spec)
    : spec_(std::move(spec)), nvm_(spec_.device.memory.nvm_bytes) {}

void FunctionalBackend::land(const device::WriteBatch& batch) {
  batch.for_prefix(batch.total_bytes(),
                   [&](device::Address addr,
                       std::span<const std::uint8_t> bytes) {
                     nvm_.write(addr, bytes);
                   });
  last_staged_kept_ = batch.total_bytes();
}

bool FunctionalBackend::dma_commit(const device::WriteBatch& batch,
                                   std::size_t charge_bytes) {
  stats_.nvm_bytes_written += charge_bytes;
  ++stats_.dma_commands;
  land(batch);
  return true;
}

bool FunctionalBackend::pipelined_commit(const device::WriteBatch& batch,
                                         std::size_t macs,
                                         std::size_t charge_bytes,
                                         std::size_t /*cpu_cycles*/) {
  stats_.macs += macs;
  ++stats_.lea_invocations;
  stats_.nvm_bytes_written += charge_bytes;
  ++stats_.dma_commands;
  land(batch);
  return true;
}

std::unique_ptr<Backend> make_backend(const BackendConfig& spec,
                                      std::unique_ptr<power::PowerSupply> supply,
                                      power::BufferConfig buffer) {
  switch (spec.kind) {
    case BackendKind::kFunctional:
      return std::make_unique<FunctionalBackend>(spec);
    case BackendKind::kCustom:
      return std::make_unique<CustomBackend>(spec, std::move(supply), buffer);
    case BackendKind::kCycle:
      break;
  }
  return std::make_unique<CycleBackend>(spec, std::move(supply), buffer);
}

}  // namespace iprune::engine
