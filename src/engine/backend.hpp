#pragma once
// engine::Backend — the seam between the inference engine and the device
// model. The engine drives inference exclusively through the chargeable
// primitives below; a backend decides what each primitive costs (simulated
// time, energy, brown-out risk) and how staged NVM commits land.
//
// Three implementations:
//  - CycleBackend: the cycle-approximate MSP430FR5994 + FRAM oracle. A
//    thin forwarding shim over device::Msp430Device — behavior-preserving
//    by construction, pinned by golden digests (tests/engine/
//    backend_golden_test.cpp).
//  - FunctionalBackend: value semantics only. Every primitive succeeds
//    instantly (no clock, no energy ledger, no power failures); staged
//    commits land whole. Logits are bit-identical to the cycle backend
//    (tests/engine/backend_equivalence_test.cpp) at a fraction of the
//    cost — built for search inner loops and fleet scale.
//  - CustomBackend: the cycle executor with substituted VM/NVM cost
//    constants (ReRAM / STT-MRAM presets), turning the paper's cost-ratio
//    sensitivity claim into a first-class experiment axis.
//
// docs/backends.md has the interface contract, the equivalence
// guarantees, and a checklist for adding a backend.

#include <memory>
#include <string>

#include "device/config.hpp"
#include "device/msp430.hpp"
#include "device/nvm.hpp"
#include "power/energy_buffer.hpp"
#include "power/manager.hpp"
#include "power/supply.hpp"
#include "telemetry/sink.hpp"

namespace iprune::engine {

enum class BackendKind {
  kCycle,       // cycle-approximate MSP430+FRAM oracle
  kFunctional,  // values only: no timing, no energy, no outages
  kCustom,      // cycle executor with substituted memory-cost constants
};

[[nodiscard]] const char* to_string(BackendKind kind);

/// Declarative backend selection: a named preset plus the device cost
/// constants it stands for. This is what fleet specs, scenario JSON, and
/// the search cache key carry; make_backend() turns it into a live
/// Backend. describe()/parse() round-trip byte-exactly on the canonical
/// preset names.
struct BackendConfig {
  BackendKind kind = BackendKind::kCycle;
  /// Canonical preset token ("msp430-fram", "functional", "reram",
  /// "stt-mram"). parse() only accepts these; programmatic custom
  /// constants should keep a stable label here for cache keys and bench
  /// schema tags.
  std::string preset = "msp430-fram";
  /// Cost constants priced by cycle/custom backends. The functional
  /// backend uses only `device.memory` (NVM capacity / VM budget), so
  /// lowering — and therefore the computed values — match the oracle.
  device::DeviceConfig device;

  /// The paper's evaluation platform (DeviceConfig::msp430fr5994()).
  [[nodiscard]] static BackendConfig msp430_fram();
  /// No-cost functional execution (same memory layout as msp430-fram).
  [[nodiscard]] static BackendConfig functional();
  /// ReRAM-like external NVM: reads ~5x faster/cheaper than FRAM-over-SPI,
  /// writes ~2x slower and markedly more power-hungry.
  [[nodiscard]] static BackendConfig reram();
  /// STT-MRAM-like external NVM: near-SRAM reads, fast writes, moderate
  /// write energy — the "future hardware" end of the cost-ratio axis.
  [[nodiscard]] static BackendConfig stt_mram();

  /// Canonical token for specs and bench schema tags (the preset name).
  [[nodiscard]] std::string describe() const;
  /// Inverse of describe(). Throws std::runtime_error
  /// "backend: unknown preset '<text>'" for anything else.
  static BackendConfig parse(const std::string& text);

  friend bool operator==(const BackendConfig& a, const BackendConfig& b);
  friend bool operator!=(const BackendConfig& a, const BackendConfig& b) {
    return !(a == b);
  }
};

/// Device-model interface the engine executes against. Mirrors the
/// Msp430Device primitive set: every mutating primitive returns false
/// when a power failure interrupted it (the caller re-establishes VM
/// state and retries); backends without a power model always return true.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  /// The declarative config this backend was built from (preset label +
  /// cost constants) — cache keys and bench schema tags read this.
  [[nodiscard]] virtual const BackendConfig& spec() const = 0;
  [[nodiscard]] virtual const device::DeviceConfig& config() const = 0;
  [[nodiscard]] virtual device::Nvm& nvm() = 0;
  [[nodiscard]] virtual const device::Nvm& nvm() const = 0;

  /// Simulated wall-clock (us). Functional backends hold it at zero.
  [[nodiscard]] virtual double now_us() const = 0;
  /// Monotone power-failure counter; cached VM state from an older epoch
  /// must be re-fetched. Constant when the backend cannot lose power.
  [[nodiscard]] virtual std::uint64_t vm_epoch() const = 0;
  [[nodiscard]] virtual const device::DeviceStats& stats() const = 0;
  virtual void reset_stats() = 0;

  /// Power subsystem ledger, nullptr when the backend has no power model
  /// (fleet aggregation reports zero harvest for those).
  [[nodiscard]] virtual const power::PowerManager* power() const {
    return nullptr;
  }

  // --- telemetry / fault / sim-mode hooks (default: inert) ---
  virtual void set_trace_sink(telemetry::TraceSink* /*sink*/) {}
  [[nodiscard]] virtual bool trace_enabled() const { return false; }
  [[nodiscard]] virtual telemetry::TraceSink& trace_sink() const {
    return telemetry::NullSink::instance();
  }
  virtual void set_fault_hook(power::FaultHook* /*hook*/) {}
  virtual void set_sim_mode(power::SimMode /*mode*/) {}
  [[nodiscard]] virtual power::SimMode sim_mode() const {
    return power::SimMode::kStepping;
  }
  virtual void sync_fault_events() {}
  virtual void on_commit_boundary() {}

  /// Bytes of the most recent staged WriteBatch that landed in NVM.
  [[nodiscard]] virtual std::size_t last_staged_kept() const = 0;

  // --- chargeable primitives (false == power failure mid-operation) ---
  [[nodiscard]] virtual bool dma_read(std::size_t bytes) = 0;
  [[nodiscard]] virtual bool dma_write(std::size_t bytes) = 0;
  [[nodiscard]] virtual bool lea_op(std::size_t macs) = 0;
  [[nodiscard]] virtual bool cpu_work(std::size_t cycles) = 0;
  [[nodiscard]] virtual bool pipelined_job(std::size_t macs,
                                           std::size_t write_bytes,
                                           std::size_t cpu_cycles) = 0;
  [[nodiscard]] virtual bool dma_commit(const device::WriteBatch& batch,
                                        std::size_t charge_bytes) = 0;
  [[nodiscard]] virtual bool pipelined_commit(const device::WriteBatch& batch,
                                              std::size_t macs,
                                              std::size_t charge_bytes,
                                              std::size_t cpu_cycles) = 0;
};

/// The cycle-approximate oracle: forwards every primitive to an
/// Msp430Device. Constructible as a non-owning view over an existing
/// device (the engine's legacy constructor path, and how fleet code keeps
/// driving the device directly for batched cohorts) or as an owning
/// backend built from a supply + buffer.
class CycleBackend : public Backend {
 public:
  /// Non-owning view; `device` must outlive the backend.
  explicit CycleBackend(device::Msp430Device& device);
  /// Owning: builds the device from `spec.device` cost constants.
  CycleBackend(BackendConfig spec, std::unique_ptr<power::PowerSupply> supply,
               power::BufferConfig buffer = {});

  [[nodiscard]] BackendKind kind() const override { return BackendKind::kCycle; }
  [[nodiscard]] const BackendConfig& spec() const override { return spec_; }
  [[nodiscard]] const device::DeviceConfig& config() const override {
    return device_->config();
  }
  [[nodiscard]] device::Msp430Device& device() { return *device_; }
  [[nodiscard]] device::Nvm& nvm() override { return device_->nvm(); }
  [[nodiscard]] const device::Nvm& nvm() const override {
    return device_->nvm();
  }
  [[nodiscard]] double now_us() const override { return device_->now_us(); }
  [[nodiscard]] std::uint64_t vm_epoch() const override {
    return device_->vm_epoch();
  }
  [[nodiscard]] const device::DeviceStats& stats() const override {
    return device_->stats();
  }
  void reset_stats() override { device_->reset_stats(); }
  [[nodiscard]] const power::PowerManager* power() const override {
    return &device_->power();
  }

  void set_trace_sink(telemetry::TraceSink* sink) override {
    device_->set_trace_sink(sink);
  }
  [[nodiscard]] bool trace_enabled() const override {
    return device_->trace_enabled();
  }
  [[nodiscard]] telemetry::TraceSink& trace_sink() const override {
    return device_->trace_sink();
  }
  void set_fault_hook(power::FaultHook* hook) override {
    device_->set_fault_hook(hook);
  }
  void set_sim_mode(power::SimMode mode) override {
    device_->set_sim_mode(mode);
  }
  [[nodiscard]] power::SimMode sim_mode() const override {
    return device_->sim_mode();
  }
  void sync_fault_events() override { device_->sync_fault_events(); }
  void on_commit_boundary() override { device_->on_commit_boundary(); }
  [[nodiscard]] std::size_t last_staged_kept() const override {
    return device_->last_staged_kept();
  }

  [[nodiscard]] bool dma_read(std::size_t bytes) override {
    return device_->dma_read(bytes);
  }
  [[nodiscard]] bool dma_write(std::size_t bytes) override {
    return device_->dma_write(bytes);
  }
  [[nodiscard]] bool lea_op(std::size_t macs) override {
    return device_->lea_op(macs);
  }
  [[nodiscard]] bool cpu_work(std::size_t cycles) override {
    return device_->cpu_work(cycles);
  }
  [[nodiscard]] bool pipelined_job(std::size_t macs, std::size_t write_bytes,
                                   std::size_t cpu_cycles) override {
    return device_->pipelined_job(macs, write_bytes, cpu_cycles);
  }
  [[nodiscard]] bool dma_commit(const device::WriteBatch& batch,
                                std::size_t charge_bytes) override {
    return device_->dma_commit(batch, charge_bytes);
  }
  [[nodiscard]] bool pipelined_commit(const device::WriteBatch& batch,
                                      std::size_t macs,
                                      std::size_t charge_bytes,
                                      std::size_t cpu_cycles) override {
    return device_->pipelined_commit(batch, macs, charge_bytes, cpu_cycles);
  }

 private:
  BackendConfig spec_;
  std::unique_ptr<device::Msp430Device> owned_;
  device::Msp430Device* device_;  // == owned_.get() when owning
};

/// Cycle executor with substituted memory-technology cost constants.
/// Identical charge/brown-out semantics to CycleBackend — only the
/// DeviceConfig numbers (and the kind/preset label) differ.
class CustomBackend final : public CycleBackend {
 public:
  CustomBackend(BackendConfig spec, std::unique_ptr<power::PowerSupply> supply,
                power::BufferConfig buffer = {})
      : CycleBackend(std::move(spec), std::move(supply), buffer) {}
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kCustom;
  }
};

/// Values only. Owns a bare Nvm sized by `spec.device.memory`; every
/// primitive succeeds immediately, staged commits land whole (no torn
/// writes, no organic outages), the clock stays at zero, and stats count
/// only traffic (bytes / MACs / invocations) so callers can still reason
/// about work volume. vm_epoch() is constant: VM contents are never lost.
class FunctionalBackend final : public Backend {
 public:
  explicit FunctionalBackend(BackendConfig spec = BackendConfig::functional());

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kFunctional;
  }
  [[nodiscard]] const BackendConfig& spec() const override { return spec_; }
  [[nodiscard]] const device::DeviceConfig& config() const override {
    return spec_.device;
  }
  [[nodiscard]] device::Nvm& nvm() override { return nvm_; }
  [[nodiscard]] const device::Nvm& nvm() const override { return nvm_; }
  [[nodiscard]] double now_us() const override { return 0.0; }
  [[nodiscard]] std::uint64_t vm_epoch() const override { return 0; }
  [[nodiscard]] const device::DeviceStats& stats() const override {
    return stats_;
  }
  void reset_stats() override { stats_ = {}; }
  [[nodiscard]] std::size_t last_staged_kept() const override {
    return last_staged_kept_;
  }

  [[nodiscard]] bool dma_read(std::size_t bytes) override {
    stats_.nvm_bytes_read += bytes;
    ++stats_.dma_commands;
    return true;
  }
  [[nodiscard]] bool dma_write(std::size_t bytes) override {
    stats_.nvm_bytes_written += bytes;
    ++stats_.dma_commands;
    return true;
  }
  [[nodiscard]] bool lea_op(std::size_t macs) override {
    stats_.macs += macs;
    ++stats_.lea_invocations;
    return true;
  }
  [[nodiscard]] bool cpu_work(std::size_t /*cycles*/) override { return true; }
  [[nodiscard]] bool pipelined_job(std::size_t macs, std::size_t write_bytes,
                                   std::size_t /*cpu_cycles*/) override {
    stats_.macs += macs;
    ++stats_.lea_invocations;
    stats_.nvm_bytes_written += write_bytes;
    ++stats_.dma_commands;
    return true;
  }
  [[nodiscard]] bool dma_commit(const device::WriteBatch& batch,
                                std::size_t charge_bytes) override;
  [[nodiscard]] bool pipelined_commit(const device::WriteBatch& batch,
                                      std::size_t macs,
                                      std::size_t charge_bytes,
                                      std::size_t cpu_cycles) override;

 private:
  void land(const device::WriteBatch& batch);

  BackendConfig spec_;
  device::Nvm nvm_;
  device::DeviceStats stats_;
  std::size_t last_staged_kept_ = 0;
};

/// Build a live backend for `spec`. `supply`/`buffer` feed the power model
/// of cycle/custom backends and are ignored by the functional backend (a
/// null supply defaults to continuous power).
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    const BackendConfig& spec,
    std::unique_ptr<power::PowerSupply> supply = nullptr,
    power::BufferConfig buffer = {});

}  // namespace iprune::engine
