#include "engine/batched.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace iprune::engine {

namespace {

/// Identical to IntermittentEngine's guard — the cohort shares one
/// timeline, so the same wording keeps error artifacts bit-comparable
/// with stepping-mode runs.
constexpr std::size_t kMaxOpRetries = 100000;

[[noreturn]] void retry_overflow(const std::string& where) {
  throw std::runtime_error(
      "IntermittentEngine: " + where +
      " exceeded the retry budget — a single operation cannot complete "
      "within one power cycle (enlarge the capacitor or shrink tiles)");
}

std::int32_t shift_round_q15(std::int64_t acc) {
  return static_cast<std::int32_t>((acc + 16384) >> 15);
}

std::int16_t clamp_i16(long v) {
  if (v > 32767) {
    return 32767;
  }
  if (v < -32768) {
    return -32768;
  }
  return static_cast<std::int16_t>(v);
}

/// Bit-exact inline std::lround (round half away from zero) for the
/// magnitudes the engine produces (|x| far below 2^53, never NaN/inf).
/// lround is a libm call that GCC cannot expand at -O2 (no SSE rounding
/// mode matches half-away-from-zero), and the cohort's per-member value
/// work calls it once per output element — the single largest slice of
/// unsharable cost. trunc() is exact, so x - t is exact for |x| < 2^53
/// and the half-way comparison reproduces lround's result bit-for-bit,
/// including x = 0.49999999999999994 (where the classic x + 0.5 trick
/// rounds up and lround does not).
inline long fast_lround(double x) {
  const long t = static_cast<long>(x);  // truncation toward zero
  const double frac = x - static_cast<double>(t);
  if (frac >= 0.5) {
    return t + 1;
  }
  if (frac <= -0.5) {
    return t - 1;
  }
  return t;
}

std::int16_t requantize(std::int64_t psum, float multiplier, bool relu) {
  const long v = fast_lround(static_cast<double>(psum) *
                             static_cast<double>(multiplier));
  std::int16_t q = clamp_i16(v);
  if (relu && q < 0) {
    q = 0;
  }
  return q;
}

// Raw backing-store value access. Legal inside the lockstep envelope
// only: the ctor rejects corruption models, and value traffic is never
// charge-accounted (stepping mode reads values through Nvm helpers that
// are equally stat-less), so a plain memcpy is bit-identical.

inline std::int16_t raw_i16(const std::uint8_t* raw, std::size_t addr) {
  std::int16_t v;
  std::memcpy(&v, raw + addr, 2);
  return v;
}

inline std::int32_t raw_i32(const std::uint8_t* raw, std::size_t addr) {
  std::int32_t v;
  std::memcpy(&v, raw + addr, 4);
  return v;
}

inline void raw_write_i16(std::uint8_t* raw, std::size_t addr,
                          std::int16_t v) {
  std::memcpy(raw + addr, &v, 2);
}

/// Applies one member's copy of the leader's committed payload directly
/// to the member's NVM backing store, truncated at the leader's
/// surviving byte prefix. Fields must be emitted in exactly the order
/// the leader pushed them into its WriteBatch — the tear offset is a
/// byte count into that concatenated payload and may split a field.
class PrefixWriter {
 public:
  PrefixWriter(std::uint8_t* raw, std::size_t kept)
      : raw_(raw), kept_(kept) {}
  [[nodiscard]] bool done() const { return kept_ == 0; }
  void i16(std::size_t addr, std::int16_t v) { put(addr, &v, 2); }
  void i32(std::size_t addr, std::int32_t v) { put(addr, &v, 4); }
  void u32(std::size_t addr, std::uint32_t v) { put(addr, &v, 4); }

 private:
  void put(std::size_t addr, const void* src, std::size_t len) {
    const std::size_t bytes = std::min(len, kept_);
    std::memcpy(raw_ + addr, src, bytes);
    kept_ -= bytes;
  }
  std::uint8_t* raw_;
  std::size_t kept_;
};

/// Shared im2col address generator: the per-(k, column) index arithmetic
/// is member-invariant, so it is computed ONCE per tile and every member
/// reads its own NVM at the produced addresses. kPad marks zero padding
/// (no NVM traffic — matching TileGather in engine.cpp exactly).
constexpr std::size_t kPad = static_cast<std::size_t>(-1);

class BatchedGather {
 public:
  BatchedGather(const LoweredNode& ln, device::Address in_buf,
                std::size_t k0, std::size_t bk)
      : in_buf_(in_buf), k0_(k0) {
    if (ln.kind == LoweredKind::kGemmDense) {
      return;
    }
    geom_ = &ln.conv;
    const ConvGeometry& g = *geom_;
    const std::size_t kernel = g.kernel_h * g.kernel_w;
    rows_.resize(bk);
    for (std::size_t kk = 0; kk < bk; ++kk) {
      const std::size_t k = k0 + kk;
      const std::size_t cin = k / kernel;
      const std::size_t rem = k % kernel;
      rows_[kk] = KRow{
          cin * g.in_h * g.in_w,
          static_cast<std::ptrdiff_t>(rem / g.kernel_w) -
              static_cast<std::ptrdiff_t>(g.pad_h),
          static_cast<std::ptrdiff_t>(rem % g.kernel_w) -
              static_cast<std::ptrdiff_t>(g.pad_w)};
    }
  }

  /// Addresses of lowered rows [k0, k0+bk) at output column `s`.
  void fill_addrs(std::size_t s, std::size_t bk, std::size_t* addrs) const {
    if (geom_ == nullptr) {
      for (std::size_t kk = 0; kk < bk; ++kk) {
        addrs[kk] = in_buf_ + (k0_ + kk) * 2;
      }
      return;
    }
    const ConvGeometry& g = *geom_;
    const auto sy =
        static_cast<std::ptrdiff_t>((s / g.out_w) * g.stride);
    const auto sx =
        static_cast<std::ptrdiff_t>((s % g.out_w) * g.stride);
    for (std::size_t kk = 0; kk < bk; ++kk) {
      const KRow& row = rows_[kk];
      const std::ptrdiff_t iy = sy + row.off_y;
      const std::ptrdiff_t ix = sx + row.off_x;
      if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h) || ix < 0 ||
          ix >= static_cast<std::ptrdiff_t>(g.in_w)) {
        addrs[kk] = kPad;
        continue;
      }
      const std::size_t index = row.plane +
                                static_cast<std::size_t>(iy) * g.in_w +
                                static_cast<std::size_t>(ix);
      addrs[kk] = in_buf_ + index * 2;
    }
  }

 private:
  struct KRow {
    std::size_t plane;
    std::ptrdiff_t off_y;
    std::ptrdiff_t off_x;
  };

  device::Address in_buf_;
  std::size_t k0_ = 0;
  const ConvGeometry* geom_ = nullptr;
  std::vector<KRow> rows_;
};

/// k-tile dot product over precomputed gather addresses (conv path;
/// kPad rows are zero padding and contribute nothing).
inline std::int64_t dot_gather(const std::uint8_t* raw,
                               const std::size_t* addrs, std::size_t bk,
                               const std::int16_t* w) {
  std::int64_t acc = 0;
  for (std::size_t kk = 0; kk < bk; ++kk) {
    if (addrs[kk] != kPad) {
      acc += static_cast<std::int64_t>(raw_i16(raw, addrs[kk])) * w[kk];
    }
  }
  return acc;
}

/// Dense rows are contiguous: a straight pointer walk, no address list.
inline std::int64_t dot_dense(const std::uint8_t* raw, std::size_t base,
                              std::size_t bk, const std::int16_t* w) {
  std::int64_t acc = 0;
  for (std::size_t kk = 0; kk < bk; ++kk) {
    acc += static_cast<std::int64_t>(raw_i16(raw, base + kk * 2)) * w[kk];
  }
  return acc;
}

bool same_conv(const ConvGeometry& a, const ConvGeometry& b) {
  return a.in_c == b.in_c && a.in_h == b.in_h && a.in_w == b.in_w &&
         a.kernel_h == b.kernel_h && a.kernel_w == b.kernel_w &&
         a.stride == b.stride && a.pad_h == b.pad_h && a.pad_w == b.pad_w &&
         a.out_h == b.out_h && a.out_w == b.out_w;
}

bool same_plan(const TilePlan& a, const TilePlan& b) {
  return a.rows == b.rows && a.cols == b.cols && a.k == b.k &&
         a.br == b.br && a.bk == b.bk && a.bc == b.bc;
}

}  // namespace

bool BatchedEngine::lockstep_compatible(const DeployedModel& a,
                                        const DeployedModel& b) {
  const EngineConfig& ca = a.config();
  const EngineConfig& cb = b.config();
  if (ca.mode != cb.mode || ca.cpu_cycles_per_job != cb.cpu_cycles_per_job ||
      ca.psum_bytes != cb.psum_bytes ||
      ca.counter_bytes != cb.counter_bytes ||
      ca.copy_chunk_bytes != cb.copy_chunk_bytes ||
      ca.integrity.protect_progress != cb.integrity.protect_progress ||
      ca.integrity.seal_regions != cb.integrity.seal_regions ||
      ca.integrity.scrub_on_boot != cb.integrity.scrub_on_boot) {
    return false;
  }
  if (a.psum_addr() != b.psum_addr() || a.psum_stride() != b.psum_stride() ||
      a.psum_slots() != b.psum_slots() ||
      a.progress_addr() != b.progress_addr()) {
    return false;
  }
  const LoweredGraph& la = a.lowered();
  const LoweredGraph& lb = b.lowered();
  if (la.nodes.size() != lb.nodes.size() || la.output != lb.output) {
    return false;
  }
  for (std::size_t id = 0; id < la.nodes.size(); ++id) {
    const LoweredNode& na = la.nodes[id];
    const LoweredNode& nb = lb.nodes[id];
    if (na.kind != nb.kind || na.inputs != nb.inputs ||
        na.out_shape != nb.out_shape || na.out_elems != nb.out_elems ||
        na.relu_folded != nb.relu_folded || !same_plan(na.plan, nb.plan) ||
        !same_conv(na.conv, nb.conv) ||
        na.pool.window_h != nb.pool.window_h ||
        na.pool.window_w != nb.pool.window_w ||
        na.pool.stride != nb.pool.stride) {
      return false;
    }
    if (a.node(id).buffer != b.node(id).buffer) {
      return false;
    }
    const GemmDeployment* ga = a.node(id).gemm.get();
    const GemmDeployment* gb = b.node(id).gemm.get();
    if ((ga == nullptr) != (gb == nullptr)) {
      return false;
    }
    if (ga != nullptr &&
        (ga->bsr.row_ptr() != gb->bsr.row_ptr() ||
         ga->bsr.col_idx() != gb->bsr.col_idx() ||
         ga->bsr.block_elems() != gb->bsr.block_elems())) {
      return false;
    }
  }
  return true;
}

BatchedEngine::BatchedEngine(std::vector<BatchedMember> members)
    : members_(std::move(members)),
      leader_([&]() -> device::Msp430Device& {
        if (members_.empty() || members_[0].device == nullptr ||
            members_[0].model == nullptr) {
          throw std::invalid_argument(
              "BatchedEngine: cohort needs a non-null leader");
        }
        return *members_[0].device;
      }()),
      config_(members_[0].model->config()),
      progress_addr_(members_[0].model->progress_addr()) {
  const DeployedModel& lead = *members_[0].model;
  if (lead.protected_progress() || lead.sealed_regions() > 0 ||
      lead.psum_slots() != 1 || config_.integrity.scrub_on_boot) {
    throw std::invalid_argument(
        "BatchedEngine: integrity layer is outside the lockstep envelope");
  }
  for (const BatchedMember& m : members_) {
    if (m.model == nullptr || m.device == nullptr) {
      throw std::invalid_argument("BatchedEngine: null cohort member");
    }
    if (m.device->trace_enabled()) {
      throw std::invalid_argument(
          "BatchedEngine: telemetry tracing is outside the lockstep "
          "envelope");
    }
    if (m.device->nvm().corruption() != nullptr) {
      throw std::invalid_argument(
          "BatchedEngine: NVM corruption is outside the lockstep envelope");
    }
    if (!lockstep_compatible(lead, *m.model)) {
      throw std::invalid_argument(
          "BatchedEngine: member deployment is not lockstep-compatible "
          "with the leader");
    }
  }
  raws_.reserve(members_.size());
  for (const BatchedMember& m : members_) {
    raws_.push_back(m.device->nvm().raw_storage());
  }
  wblocks_.resize(members_.size());
  gds_.resize(members_.size());
}

void BatchedEngine::hoist_gemms(const LoweredNode& ln) {
  for (std::size_t m = 0; m < members_.size(); ++m) {
    gds_[m] = members_[m].model->node(ln.node).gemm.get();
  }
}

void BatchedEngine::stage_progress(device::WriteBatch& batch) const {
  batch.push_u32(progress_addr_, job_counter_ + 1);
}

void BatchedEngine::note_commit() {
  ++job_counter_;
  leader_.on_commit_boundary();
}

bool BatchedEngine::recover_progress() {
  if (!leader_.dma_read(8)) {  // progress indicator re-read
    return false;
  }
  const std::uint32_t persisted = leader_.nvm().read_u32(progress_addr_);
  if (persisted != job_counter_) {
    throw std::runtime_error(
        "IntermittentEngine: progress counter mismatch after recovery — "
        "NVM holds " + std::to_string(persisted) +
        " but the engine committed " + std::to_string(job_counter_) +
        " jobs (crash-consistency violation: a commit was torn, skipped "
        "or reordered)");
  }
  pending_recovery_ = false;
  return true;
}

bool BatchedEngine::charge_input_tile_reads(const LoweredNode& ln,
                                            std::size_t bk_actual,
                                            std::size_t bc_actual) {
  if (ln.kind == LoweredKind::kGemmDense) {
    return leader_.dma_read(bk_actual * 2);
  }
  for (std::size_t row = 0; row < bk_actual; ++row) {
    if (!leader_.dma_read(bc_actual * 2)) {
      return false;
    }
  }
  return true;
}

bool BatchedEngine::run_gemm(const LoweredNode& ln) {
  switch (config_.mode) {
    case PreservationMode::kImmediate:
      return run_gemm_immediate(ln);
    case PreservationMode::kTaskAtomic:
      return run_gemm_task(ln);
    case PreservationMode::kAccumulateInVm:
      return run_gemm_accumulate(ln);
  }
  return false;
}

bool BatchedEngine::run_gemm_immediate(const LoweredNode& ln) {
  const std::size_t n = members_.size();
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = members_[0].model->node(ln.inputs[0]).buffer;
  const device::Address out_buf = members_[0].model->node(ln.node).buffer;
  const device::Address psum_base = members_[0].model->psum_addr();
  hoist_gemms(ln);
  const GemmDeployment& lead_gd = *gds_[0];
  const bool relu = ln.relu_folded;
  const bool dense = ln.kind == LoweredKind::kGemmDense;

  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = lead_gd.bsr.row_begin(rt);
    const std::uint32_t end = lead_gd.bsr.row_end(rt);

    if (begin == end) {
      for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
        const std::size_t cols_in = plan.cols_in_tile(ct);
        const std::size_t jobs = rows_in * cols_in;
        std::size_t done = 0;
        std::size_t retries = 0;
        while (done < jobs) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " bias-fill");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!leader_.dma_read(rows_in * 4)) {
            pending_recovery_ = true;
            continue;
          }
          bool failed = false;
          for (std::size_t idx = done; idx < jobs; ++idx) {
            const std::size_t r_global = rt * plan.br + idx / cols_in;
            const std::size_t c_global = ct * plan.bc + idx % cols_in;
            const device::Address out =
                out_buf + (r_global * plan.cols + c_global) * 2;
            batch_.clear();
            batch_.push_i16(out, requantize(lead_gd.bias_q[r_global],
                                            lead_gd.multiplier, relu));
            stage_progress(batch_);
            const bool ok = leader_.pipelined_commit(
                batch_, 0, 2 + config_.counter_bytes,
                config_.cpu_cycles_per_job);
            if (const std::size_t kept = leader_.last_staged_kept();
                kept > 0) {
              for (std::size_t m = 1; m < n; ++m) {
                PrefixWriter pw(raws_[m], kept);
                pw.i16(out, requantize(gds_[m]->bias_q[r_global],
                                       gds_[m]->multiplier, relu));
                pw.u32(progress_addr_, job_counter_ + 1);
              }
            }
            if (!ok) {
              pending_recovery_ = true;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->acc_outputs;
            ++active_stats_->preserved_outputs;
            note_commit();
          }
          if (!failed) {
            break;
          }
        }
      }
      continue;
    }

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = lead_gd.bsr.col(slot);
        const bool first = slot == begin;
        const bool last = slot + 1 == end;
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        const std::size_t jobs = rows_in * cols_in;
        const std::size_t write_bytes =
            (last ? 2 : config_.psum_bytes) + config_.counter_bytes;
        for (std::size_t m = 0; m < n; ++m) {
          wblocks_[m] = gds_[m]->bsr.block(slot);
        }
        const std::size_t dense_base = in_buf + k0 * 2;
        if (!dense) {
          // Gather addresses depend only on the output column: one list
          // per column serves every row, member and retry of this tile.
          const BatchedGather gather(ln, in_buf, k0, bk_actual);
          tile_addrs_.resize(cols_in * bk_actual);
          for (std::size_t c = 0; c < cols_in; ++c) {
            gather.fill_addrs(ct * plan.bc + c, bk_actual,
                              tile_addrs_.data() + c * bk_actual);
          }
        }

        std::size_t done = 0;
        std::size_t retries = 0;
        while (done < jobs) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " op");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!leader_.dma_read(2) || !leader_.dma_read(2) ||
              !leader_.dma_read(rows_in * bk_actual * 2) ||
              !charge_input_tile_reads(ln, bk_actual, cols_in)) {
            pending_recovery_ = true;
            continue;
          }
          if (!first && !leader_.dma_read(rows_in * cols_in * 4)) {
            pending_recovery_ = true;
            continue;
          }
          if (last && !leader_.dma_read(rows_in * 4)) {
            pending_recovery_ = true;
            continue;
          }

          bool failed = false;
          for (std::size_t idx = done; idx < jobs; ++idx) {
            const std::size_t r = idx / cols_in;
            const std::size_t c = idx % cols_in;
            const std::size_t r_global = rt * plan.br + r;
            const std::size_t c_global = ct * plan.bc + c;
            const std::size_t* ja =
                dense ? nullptr : tile_addrs_.data() + c * bk_actual;
            const std::size_t psum_off =
                (r_global * plan.cols + c_global) * 4;
            const device::Address out =
                out_buf + (r_global * plan.cols + c_global) * 2;

            const auto value = [&](std::size_t m) -> std::int32_t {
              const std::uint8_t* raw = raws_[m];
              const std::int16_t* w = wblocks_[m] + r * plan.bk;
              const std::int64_t acc =
                  dense ? dot_dense(raw, dense_base, bk_actual, w)
                        : dot_gather(raw, ja, bk_actual, w);
              const std::int32_t contribution = shift_round_q15(acc);
              return first ? contribution
                           : raw_i32(raw, psum_base + psum_off) +
                                 contribution;
            };

            {
              const std::int32_t psum_new = value(0);
              batch_.clear();
              if (last) {
                batch_.push_i16(
                    out, requantize(static_cast<std::int64_t>(psum_new) +
                                        lead_gd.bias_q[r_global],
                                    lead_gd.multiplier, relu));
              } else {
                batch_.push_i32(psum_base + psum_off, psum_new);
              }
              stage_progress(batch_);
            }
            const bool ok = leader_.pipelined_commit(
                batch_, bk_actual, write_bytes, config_.cpu_cycles_per_job);
            if (const std::size_t kept = leader_.last_staged_kept();
                kept > 0) {
              for (std::size_t m = 1; m < n; ++m) {
                const std::int32_t psum_new = value(m);
                PrefixWriter pw(raws_[m], kept);
                if (last) {
                  pw.i16(out,
                         requantize(static_cast<std::int64_t>(psum_new) +
                                        gds_[m]->bias_q[r_global],
                                    gds_[m]->multiplier, relu));
                } else {
                  pw.i32(psum_base + psum_off, psum_new);
                }
                pw.u32(progress_addr_, job_counter_ + 1);
              }
            }
            if (!ok) {
              pending_recovery_ = true;
              ++active_stats_->reexecuted_jobs;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->acc_outputs;
            ++active_stats_->preserved_outputs;
            active_stats_->macs += bk_actual;
            note_commit();
          }
          if (!failed) {
            break;
          }
        }
      }
    }
  }
  return true;
}

bool BatchedEngine::run_gemm_task(const LoweredNode& ln) {
  const std::size_t n = members_.size();
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = members_[0].model->node(ln.inputs[0]).buffer;
  const device::Address out_buf = members_[0].model->node(ln.node).buffer;
  const device::Address psum_base = members_[0].model->psum_addr();
  hoist_gemms(ln);
  const GemmDeployment& lead_gd = *gds_[0];
  const bool relu = ln.relu_folded;
  const bool dense = ln.kind == LoweredKind::kGemmDense;

  tiles_.resize(plan.br * plan.bc);  // leader-only VM tile
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = lead_gd.bsr.row_begin(rt);
    const std::uint32_t end = lead_gd.bsr.row_end(rt);

    if (begin == end) {
      for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
        const std::size_t cols_in = plan.cols_in_tile(ct);
        const std::size_t jobs = rows_in * cols_in;
        const auto out_addr = [&](std::size_t idx) {
          const std::size_t r_global = rt * plan.br + idx / cols_in;
          const std::size_t c_global = ct * plan.bc + idx % cols_in;
          return out_buf + (r_global * plan.cols + c_global) * 2;
        };
        std::size_t retries = 0;
        while (true) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " bias-fill task");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!leader_.dma_read(rows_in * 4) ||
              !leader_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          batch_.clear();
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            const std::size_t r_global = rt * plan.br + idx / cols_in;
            batch_.push_i16(out_addr(idx),
                            requantize(lead_gd.bias_q[r_global],
                                       lead_gd.multiplier, relu));
          }
          stage_progress(batch_);
          const bool ok =
              leader_.dma_commit(batch_, jobs * 2 + config_.counter_bytes);
          if (const std::size_t kept = leader_.last_staged_kept();
              kept > 0) {
            for (std::size_t m = 1; m < n; ++m) {
              PrefixWriter pw(raws_[m], kept);
              for (std::size_t idx = 0; idx < jobs && !pw.done(); ++idx) {
                const std::size_t r_global = rt * plan.br + idx / cols_in;
                pw.i16(out_addr(idx),
                       requantize(gds_[m]->bias_q[r_global],
                                  gds_[m]->multiplier, relu));
              }
              pw.u32(progress_addr_, job_counter_ + 1);
            }
          }
          if (!ok) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          note_commit();
          active_stats_->acc_outputs += jobs;
          active_stats_->preserved_outputs += jobs;
          break;
        }
      }
      continue;
    }

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      const std::size_t jobs = rows_in * cols_in;
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = lead_gd.bsr.col(slot);
        const bool first = slot == begin;
        const bool last = slot + 1 == end;
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        for (std::size_t m = 0; m < n; ++m) {
          wblocks_[m] = gds_[m]->bsr.block(slot);
        }
        const std::size_t dense_base = in_buf + k0 * 2;
        if (!dense) {
          const BatchedGather gather(ln, in_buf, k0, bk_actual);
          tile_addrs_.resize(cols_in * bk_actual);
          for (std::size_t c = 0; c < cols_in; ++c) {
            gather.fill_addrs(ct * plan.bc + c, bk_actual,
                              tile_addrs_.data() + c * bk_actual);
          }
        }

        // One member's tile value for job `idx` (psums read from the
        // member's NVM, untouched until this slot's commit applies).
        const auto value = [&](std::size_t m,
                               std::size_t idx) -> std::int32_t {
          const std::size_t r = idx / cols_in;
          const std::size_t c = idx % cols_in;
          const std::uint8_t* raw = raws_[m];
          const std::int16_t* w = wblocks_[m] + r * plan.bk;
          const std::int64_t acc =
              dense ? dot_dense(raw, dense_base, bk_actual, w)
                    : dot_gather(raw, tile_addrs_.data() + c * bk_actual,
                                 bk_actual, w);
          const std::int32_t contribution = shift_round_q15(acc);
          if (first) {
            return contribution;
          }
          const std::size_t r_global = rt * plan.br + r;
          const std::size_t c_global = ct * plan.bc + c;
          return raw_i32(raw,
                         psum_base + (r_global * plan.cols + c_global) * 4) +
                 contribution;
        };

        std::size_t retries = 0;
        while (true) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " task");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!leader_.dma_read(2) || !leader_.dma_read(2) ||
              !leader_.dma_read(rows_in * bk_actual * 2) ||
              !charge_input_tile_reads(ln, bk_actual, cols_in) ||
              (!first && !leader_.dma_read(rows_in * cols_in * 4)) ||
              (last && !leader_.dma_read(rows_in * 4))) {
            pending_recovery_ = true;
            continue;
          }

          bool failed = false;
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            tiles_[idx] = value(0, idx);
            if (!leader_.lea_op(bk_actual)) {
              failed = true;
              active_stats_->reexecuted_jobs += idx + 1;
              break;
            }
          }
          if (failed ||
              !leader_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
            pending_recovery_ = true;
            continue;
          }

          const std::size_t bytes =
              jobs * (last ? 2 : config_.psum_bytes) + config_.counter_bytes;
          batch_.clear();
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            const std::size_t r_global = rt * plan.br + idx / cols_in;
            const std::size_t c_global = ct * plan.bc + idx % cols_in;
            if (last) {
              batch_.push_i16(
                  out_buf + (r_global * plan.cols + c_global) * 2,
                  requantize(static_cast<std::int64_t>(tiles_[idx]) +
                                 lead_gd.bias_q[r_global],
                             lead_gd.multiplier, relu));
            } else {
              batch_.push_i32(
                  psum_base + (r_global * plan.cols + c_global) * 4,
                  tiles_[idx]);
            }
          }
          stage_progress(batch_);
          const bool ok = leader_.dma_commit(batch_, bytes);
          if (const std::size_t kept = leader_.last_staged_kept();
              kept > 0) {
            for (std::size_t m = 1; m < n; ++m) {
              PrefixWriter pw(raws_[m], kept);
              for (std::size_t idx = 0; idx < jobs && !pw.done(); ++idx) {
                const std::size_t r_global = rt * plan.br + idx / cols_in;
                const std::size_t c_global = ct * plan.bc + idx % cols_in;
                const std::int32_t v = value(m, idx);
                if (last) {
                  pw.i16(out_buf + (r_global * plan.cols + c_global) * 2,
                         requantize(static_cast<std::int64_t>(v) +
                                        gds_[m]->bias_q[r_global],
                                    gds_[m]->multiplier, relu));
                } else {
                  pw.i32(psum_base + (r_global * plan.cols + c_global) * 4,
                         v);
                }
              }
              pw.u32(progress_addr_, job_counter_ + 1);
            }
          }
          if (!ok) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          note_commit();
          active_stats_->acc_outputs += jobs;
          active_stats_->preserved_outputs += jobs;
          active_stats_->macs += jobs * bk_actual;
          break;
        }
      }
    }
  }
  return true;
}

bool BatchedEngine::run_gemm_accumulate(const LoweredNode& ln) {
  const std::size_t n = members_.size();
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = members_[0].model->node(ln.inputs[0]).buffer;
  const device::Address out_buf = members_[0].model->node(ln.node).buffer;
  hoist_gemms(ln);
  const GemmDeployment& lead_gd = *gds_[0];
  const bool relu = ln.relu_folded;
  const bool dense = ln.kind == LoweredKind::kGemmDense;

  tiles_.resize(n * plan.br * plan.bc);
  const std::size_t tile_stride = plan.br * plan.bc;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = lead_gd.bsr.row_begin(rt);
    const std::uint32_t end = lead_gd.bsr.row_end(rt);

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      const std::size_t jobs = rows_in * cols_in;
      std::fill(tiles_.begin(), tiles_.end(), 0);

      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = lead_gd.bsr.col(slot);
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        for (std::size_t m = 0; m < n; ++m) {
          wblocks_[m] = gds_[m]->bsr.block(slot);
        }
        const std::size_t dense_base = in_buf + k0 * 2;
        if (!dense) {
          const BatchedGather gather(ln, in_buf, k0, bk_actual);
          tile_addrs_.resize(cols_in * bk_actual);
          for (std::size_t c = 0; c < cols_in; ++c) {
            gather.fill_addrs(ct * plan.bc + c, bk_actual,
                              tile_addrs_.data() + c * bk_actual);
          }
        }

        if (!leader_.dma_read(2) || !leader_.dma_read(2) ||
            !leader_.dma_read(rows_in * bk_actual * 2) ||
            !charge_input_tile_reads(ln, bk_actual, cols_in)) {
          return false;
        }
        if (!leader_.lea_op(jobs * bk_actual)) {
          return false;
        }
        for (std::size_t r = 0; r < rows_in; ++r) {
          for (std::size_t c = 0; c < cols_in; ++c) {
            const std::size_t* ja =
                dense ? nullptr : tile_addrs_.data() + c * bk_actual;
            for (std::size_t m = 0; m < n; ++m) {
              const std::uint8_t* raw = raws_[m];
              const std::int16_t* w = wblocks_[m] + r * plan.bk;
              const std::int64_t acc =
                  dense ? dot_dense(raw, dense_base, bk_actual, w)
                        : dot_gather(raw, ja, bk_actual, w);
              tiles_[m * tile_stride + r * cols_in + c] +=
                  shift_round_q15(acc);
            }
          }
        }
        active_stats_->macs += jobs * bk_actual;
      }

      if (!leader_.dma_read(rows_in * 4) ||
          !leader_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
        return false;
      }
      if (!leader_.dma_write(jobs * 2)) {
        return false;
      }
      for (std::size_t m = 0; m < n; ++m) {
        const GemmDeployment& gd = *gds_[m];
        std::uint8_t* raw = raws_[m];
        for (std::size_t r = 0; r < rows_in; ++r) {
          for (std::size_t c = 0; c < cols_in; ++c) {
            const std::size_t r_global = rt * plan.br + r;
            const std::size_t c_global = ct * plan.bc + c;
            raw_write_i16(
                raw, out_buf + (r_global * plan.cols + c_global) * 2,
                requantize(static_cast<std::int64_t>(
                               tiles_[m * tile_stride + r * cols_in + c]) +
                               gd.bias_q[r_global],
                           gd.multiplier, relu));
          }
        }
      }
      active_stats_->acc_outputs += jobs;
      active_stats_->preserved_outputs += jobs;
    }
  }
  return true;
}

bool BatchedEngine::run_pool(const LoweredNode& ln) {
  const std::size_t n = members_.size();
  const LoweredNode& in_node = members_[0].model->lowered().at(ln.inputs[0]);
  const device::Address in_buf = members_[0].model->node(ln.inputs[0]).buffer;
  const device::Address out_buf = members_[0].model->node(ln.node).buffer;

  const std::size_t channels = ln.out_shape[0];
  const std::size_t out_h = ln.out_shape[1];
  const std::size_t out_w = ln.out_shape[2];
  const std::size_t in_h = in_node.out_shape[1];
  const std::size_t in_w = in_node.out_shape[2];
  const nn::PoolSpec& p = ln.pool;
  const bool is_max = ln.kind == LoweredKind::kMaxPool;
  const auto area = static_cast<std::int32_t>(p.window_h * p.window_w);
  const std::size_t cycles_per_job = p.window_h * p.window_w * 2;
  const bool immediate = config_.mode == PreservationMode::kImmediate;
  const bool task_atomic = config_.mode == PreservationMode::kTaskAtomic;

  const auto compute = [&](const std::uint8_t* raw, std::size_t c,
                           std::size_t oy, std::size_t ox) -> std::int16_t {
    std::int32_t best = -32768;
    std::int32_t sum = 0;
    for (std::size_t wy = 0; wy < p.window_h; ++wy) {
      for (std::size_t wx = 0; wx < p.window_w; ++wx) {
        const std::size_t iy = oy * p.stride + wy;
        const std::size_t ix = ox * p.stride + wx;
        const std::int16_t v =
            raw_i16(raw, in_buf + ((c * in_h + iy) * in_w + ix) * 2);
        best = std::max<std::int32_t>(best, v);
        sum += v;
      }
    }
    if (is_max) {
      return static_cast<std::int16_t>(best);
    }
    const std::int32_t avg =
        (sum >= 0 ? sum + area / 2 : sum - area / 2) / area;
    return clamp_i16(avg);
  };

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      const auto out_addr = [&](std::size_t ox) {
        return out_buf + ((c * out_h + oy) * out_w + ox) * 2;
      };
      std::size_t done = 0;
      std::size_t retries = 0;
      while (done < out_w) {
        if (++retries > kMaxOpRetries) {
          retry_overflow(ln.name + " pool row");
        }
        if ((immediate || task_atomic) && pending_recovery_ &&
            !recover_progress()) {
          continue;
        }
        bool fetch_failed = false;
        for (std::size_t wy = 0; wy < p.window_h; ++wy) {
          if (!leader_.dma_read(in_w * 2)) {
            fetch_failed = true;
            break;
          }
        }
        if (fetch_failed) {
          if (!immediate && !task_atomic) {
            return false;
          }
          pending_recovery_ = true;
          continue;
        }

        if (immediate) {
          bool failed = false;
          for (std::size_t ox = done; ox < out_w; ++ox) {
            batch_.clear();
            batch_.push_i16(out_addr(ox), compute(raws_[0], c, oy, ox));
            stage_progress(batch_);
            const bool ok = leader_.pipelined_commit(
                batch_, 0, 2 + config_.counter_bytes, cycles_per_job);
            if (const std::size_t kept = leader_.last_staged_kept();
                kept > 0) {
              for (std::size_t m = 1; m < n; ++m) {
                PrefixWriter pw(raws_[m], kept);
                pw.i16(out_addr(ox), compute(raws_[m], c, oy, ox));
                pw.u32(progress_addr_, job_counter_ + 1);
              }
            }
            if (!ok) {
              pending_recovery_ = true;
              ++active_stats_->reexecuted_jobs;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->preserved_outputs;
            note_commit();
          }
          if (!failed) {
            break;
          }
        } else if (task_atomic) {
          if (!leader_.cpu_work(out_w * cycles_per_job)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += out_w;
            continue;
          }
          batch_.clear();
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            batch_.push_i16(out_addr(ox), compute(raws_[0], c, oy, ox));
          }
          stage_progress(batch_);
          const bool ok =
              leader_.dma_commit(batch_, out_w * 2 + config_.counter_bytes);
          if (const std::size_t kept = leader_.last_staged_kept();
              kept > 0) {
            for (std::size_t m = 1; m < n; ++m) {
              PrefixWriter pw(raws_[m], kept);
              for (std::size_t ox = 0; ox < out_w && !pw.done(); ++ox) {
                pw.i16(out_addr(ox), compute(raws_[m], c, oy, ox));
              }
              pw.u32(progress_addr_, job_counter_ + 1);
            }
          }
          if (!ok) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += out_w;
            continue;
          }
          done = out_w;
          active_stats_->preserved_outputs += out_w;
          note_commit();
        } else {
          if (!leader_.cpu_work(out_w * cycles_per_job) ||
              !leader_.dma_write(out_w * 2)) {
            return false;
          }
          for (std::size_t m = 0; m < n; ++m) {
            std::uint8_t* raw = raws_[m];
            for (std::size_t ox = 0; ox < out_w; ++ox) {
              raw_write_i16(raw, out_addr(ox), compute(raw, c, oy, ox));
            }
          }
          done = out_w;
          active_stats_->preserved_outputs += out_w;
        }
      }
    }
  }
  return true;
}

bool BatchedEngine::run_copy(const LoweredNode& ln) {
  const std::size_t n = members_.size();
  const device::Address out_buf = members_[0].model->node(ln.node).buffer;
  const bool immediate = config_.mode != PreservationMode::kAccumulateInVm;
  const bool relu = ln.kind == LoweredKind::kCopyRelu;
  const std::size_t chunk_elems = config_.copy_chunk_bytes / 2;

  std::size_t out_offset = 0;
  for (const nn::NodeId input : ln.inputs) {
    const device::Address in_addr = members_[0].model->node(input).buffer;
    const std::size_t elems =
        members_[0].model->lowered().at(input).out_elems;

    // Per-member requantization ratio (scales differ across members).
    const auto ratio_of = [&](std::size_t m) {
      const NodeDeployment& in_nd = members_[m].model->node(input);
      const NodeDeployment& nd = members_[m].model->node(ln.node);
      return static_cast<double>(in_nd.scale) /
             static_cast<double>(nd.scale);
    };
    const auto copy_q = [&](const std::uint8_t* raw, double ratio,
                            std::size_t elem) -> std::int16_t {
      const std::int16_t v = raw_i16(raw, in_addr + elem * 2);
      if (relu) {
        return v > 0 ? v : 0;  // same scale, exact
      }
      return clamp_i16(fast_lround(static_cast<double>(v) * ratio));
    };

    for (std::size_t begin = 0; begin < elems; begin += chunk_elems) {
      const std::size_t count = std::min(chunk_elems, elems - begin);
      std::size_t retries = 0;
      bool committed = false;
      while (!committed) {
        if (++retries > kMaxOpRetries) {
          retry_overflow(ln.name + " copy chunk");
        }
        if (immediate && pending_recovery_ && !recover_progress()) {
          continue;
        }
        if (!leader_.dma_read(count * 2)) {
          if (!immediate) {
            return false;
          }
          pending_recovery_ = true;
          continue;
        }
        const std::size_t write_bytes =
            count * 2 + (immediate ? config_.counter_bytes : 0);
        const double lead_ratio = ratio_of(0);
        batch_.clear();
        for (std::size_t i = 0; i < count; ++i) {
          batch_.push_i16(out_buf + (out_offset + begin + i) * 2,
                          copy_q(raws_[0], lead_ratio, begin + i));
        }
        if (immediate) {
          stage_progress(batch_);
        }
        const bool ok =
            leader_.pipelined_commit(batch_, 0, write_bytes, count * 3);
        if (const std::size_t kept = leader_.last_staged_kept(); kept > 0) {
          for (std::size_t m = 1; m < n; ++m) {
            const double ratio = ratio_of(m);
            PrefixWriter pw(raws_[m], kept);
            for (std::size_t i = 0; i < count && !pw.done(); ++i) {
              pw.i16(out_buf + (out_offset + begin + i) * 2,
                     copy_q(raws_[m], ratio, begin + i));
            }
            if (immediate) {
              pw.u32(progress_addr_, job_counter_ + 1);
            }
          }
        }
        if (!ok) {
          if (!immediate) {
            return false;
          }
          pending_recovery_ = true;
          continue;
        }
        ++active_stats_->preserved_outputs;
        if (immediate) {
          note_commit();
        }
        committed = true;
      }
    }
    out_offset += elems;
  }
  return true;
}

std::vector<std::int16_t> BatchedEngine::quantize_input(
    std::span<const float> sample, float input_scale) {
  std::vector<std::int16_t> q(sample.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = clamp_i16(fast_lround(sample[i] / input_scale));
  }
  return q;
}

std::vector<InferenceResult> BatchedEngine::run(
    std::span<const nn::Tensor> samples) {
  if (samples.size() != members_.size()) {
    throw std::invalid_argument(
        "BatchedEngine::run: need one sample per cohort member");
  }
  std::vector<std::vector<std::int16_t>> quantized;
  quantized.reserve(samples.size());
  std::vector<std::span<const std::int16_t>> inputs;
  inputs.reserve(samples.size());
  for (std::size_t m = 0; m < samples.size(); ++m) {
    quantized.push_back(
        quantize_input({samples[m].data(), samples[m].numel()},
                       members_[m].model->input_scale()));
    inputs.emplace_back(quantized.back());
  }
  return run_quantized(inputs);
}

std::vector<InferenceResult> BatchedEngine::run_quantized(
    std::span<const std::span<const std::int16_t>> inputs) {
  const std::size_t n = members_.size();
  if (inputs.size() != n) {
    throw std::invalid_argument(
        "BatchedEngine::run: need one sample per cohort member");
  }
  const LoweredGraph& lowered = members_[0].model->lowered();
  const LoweredNode& input_node = lowered.at(0);
  for (const std::span<const std::int16_t>& input : inputs) {
    if (input.size() != input_node.out_elems) {
      throw std::invalid_argument("IntermittentEngine::run: sample size " +
                                  std::to_string(input.size()) +
                                  " != model input " +
                                  std::to_string(input_node.out_elems));
    }
  }

  std::vector<InferenceResult> results(n);
  InferenceStats shared;
  active_stats_ = &shared;
  const device::DeviceStats before = leader_.stats();
  std::vector<NodeLatency> per_node;

  bool finished = false;
  std::size_t attempts = 0;
  while (!finished) {
    ++attempts;
    job_counter_ = 0;
    pending_recovery_ = false;

    const device::Address in_buf = members_[0].model->node(0).buffer;
    std::size_t retries = 0;
    bool loaded = false;
    while (!loaded) {
      if (++retries > kMaxOpRetries) {
        retry_overflow("input load");
      }
      // The payload is one contiguous ascending run of i16s, so a single
      // part stages the identical byte sequence (tear offsets land on
      // the same cells) and followers apply their prefix as one memcpy.
      const std::size_t payload = input_node.out_elems * 2;
      batch_.clear();
      batch_.push_bytes(
          in_buf,
          {reinterpret_cast<const std::uint8_t*>(inputs[0].data()),
           payload});
      bool ok = leader_.dma_commit(batch_, payload);
      if (const std::size_t kept = leader_.last_staged_kept(); kept > 0) {
        const std::size_t bytes = std::min(kept, payload);
        for (std::size_t m = 1; m < n; ++m) {
          std::memcpy(raws_[m] + in_buf,
                      reinterpret_cast<const std::uint8_t*>(
                          inputs[m].data()),
                      bytes);
        }
      }
      if (!ok) {
        continue;
      }
      batch_.clear();
      batch_.push_u32(progress_addr_, 0);
      ok = leader_.dma_commit(batch_, 8);  // matches classic progress reset
      if (const std::size_t kept = leader_.last_staged_kept(); kept > 0) {
        for (std::size_t m = 1; m < n; ++m) {
          PrefixWriter pw(raws_[m], kept);
          pw.u32(progress_addr_, 0);
        }
      }
      if (!ok) {
        continue;
      }
      loaded = true;
    }

    bool interrupted = false;
    per_node.clear();
    for (nn::NodeId id = 1; id < lowered.nodes.size() && !interrupted; ++id) {
      const LoweredNode& ln = lowered.nodes[id];
      const double node_start_us = leader_.now_us();
      bool ok = true;
      switch (ln.kind) {
        case LoweredKind::kGemmConv:
        case LoweredKind::kGemmDense:
          ok = run_gemm(ln);
          break;
        case LoweredKind::kMaxPool:
        case LoweredKind::kAvgPool:
          ok = run_pool(ln);
          break;
        case LoweredKind::kCopyConcat:
        case LoweredKind::kCopyRelu:
          ok = run_copy(ln);
          break;
        case LoweredKind::kAlias:
          break;
      }
      if (ln.kind != LoweredKind::kAlias) {
        per_node.push_back(
            {id, ln.name, (leader_.now_us() - node_start_us) * 1e-6});
      }
      if (!ok) {
        interrupted = true;
      }
    }
    if (interrupted) {
      if (shared.restarts >= max_restarts) {
        shared.completed = false;
        break;
      }
      ++shared.restarts;
    } else {
      finished = true;
    }
  }

  const device::DeviceStats after = leader_.stats();
  shared.on_s = (after.on_time_us - before.on_time_us) * 1e-6;
  shared.off_s = (after.off_time_us - before.off_time_us) * 1e-6;
  shared.latency_s = shared.on_s + shared.off_s;
  shared.nvm_read_s = (after.tag_us(device::CostTag::kNvmRead) -
                       before.tag_us(device::CostTag::kNvmRead)) * 1e-6;
  shared.nvm_write_s = (after.tag_us(device::CostTag::kNvmWrite) -
                        before.tag_us(device::CostTag::kNvmWrite)) * 1e-6;
  shared.lea_s = (after.tag_us(device::CostTag::kLea) -
                  before.tag_us(device::CostTag::kLea)) * 1e-6;
  shared.cpu_s = (after.tag_us(device::CostTag::kCpu) -
                  before.tag_us(device::CostTag::kCpu)) * 1e-6;
  shared.reboot_s = (after.tag_us(device::CostTag::kReboot) -
                     before.tag_us(device::CostTag::kReboot)) * 1e-6;
  shared.energy_j = after.energy_j - before.energy_j;
  shared.power_failures = after.power_failures - before.power_failures;
  shared.nvm_bytes_read = after.nvm_bytes_read - before.nvm_bytes_read;
  shared.nvm_bytes_written =
      after.nvm_bytes_written - before.nvm_bytes_written;
  active_stats_ = nullptr;

  for (std::size_t m = 0; m < n; ++m) {
    results[m].stats = shared;
    results[m].per_node = per_node;
    if (shared.completed) {
      const LoweredNode& out_node = lowered.at(lowered.output);
      const NodeDeployment& out_nd = members_[m].model->node(lowered.output);
      const std::uint8_t* raw = raws_[m];
      results[m].logits.resize(out_node.out_elems);
      for (std::size_t i = 0; i < out_node.out_elems; ++i) {
        results[m].logits[i] =
            static_cast<float>(raw_i16(raw, out_nd.buffer + i * 2)) *
            out_nd.scale;
      }
    }
  }
  return results;
}

}  // namespace iprune::engine
