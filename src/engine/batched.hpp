#pragma once
// Batched lockstep execution of a cohort of identical-architecture
// devices (structure-of-arrays fleet mode).
//
// Within a fleet group, devices share everything *structural* — lowered
// plans, BSR sparsity pattern, NVM layout, supply profile, outage
// schedule, preservation mode — and differ only in data values (weights,
// biases, quantization scales, input samples). Since the engine's control
// flow never branches on data values, every member of such a cohort
// traverses the exact same sequence of chargeable events with the exact
// same latencies, energies and fault ordinals. BatchedEngine exploits
// that: member 0 (the leader) runs the real device timeline — every
// charge, brown-out, recharge and fault-hook event — while the followers
// perform only the per-member value work (their own NVM reads, MACs,
// requantization, commit payloads). One leader event advances the whole
// cohort.
//
// Follower value work is the scalability limit (it cannot be shared), so
// it takes the raw path: value reads/writes go straight at the NVM
// backing store (legal inside the envelope — no corruption model, no
// charge accounting on value traffic), and followers stage nothing.
// After the leader's commit resolves, each follower computes its payload
// and memcpys only the leader's surviving byte prefix into place; when a
// commit lands zero bytes the follower skips the job entirely (the retry
// recomputes it).
//
// Correctness contract: each member's logits are bit-identical to what
// its own standalone stepping-mode run would produce, and the leader's
// timeline/stats are bit-identical to any member's (they are member-
// invariant by construction). Torn commits replay exactly: the leader's
// kept-prefix byte count truncates every follower's payload at the same
// offset, mid-field tears included.
//
// Eligibility (enforced by the ctor): no NVM corruption (integrity layer
// unarmed, psum_slots == 1), no per-device re-seeded random schedules,
// telemetry off. The fleet layer falls back to per-device simulation for
// anything else, and verifies lockstep_compatible() per member first.

#include <span>
#include <vector>

#include "engine/engine.hpp"

namespace iprune::engine {

/// One cohort member. Non-owning; both must outlive the engine. The
/// device of member 0 is the cohort's timeline; follower devices are only
/// used for their NVM images (their clocks stay parked after deployment).
struct BatchedMember {
  DeployedModel* model = nullptr;
  device::Msp430Device* device = nullptr;
};

class BatchedEngine {
 public:
  /// Throws std::invalid_argument when the cohort is empty, a member is
  /// null, a member is not lockstep-compatible with the leader, or the
  /// configuration is outside the lockstep envelope (integrity layer
  /// armed, tracing enabled).
  explicit BatchedEngine(std::vector<BatchedMember> members);

  /// Run one inference per member, in lockstep (samples[m] feeds member
  /// m). Returns one InferenceResult per member: logits are per-member,
  /// stats/per_node are the (member-invariant) leader timeline.
  std::vector<InferenceResult> run(std::span<const nn::Tensor> samples);

  /// Same, but with pre-quantized input payloads (one per member, each
  /// quantize_input() of the member's sample). The fleet layer quantizes
  /// every member's sample stream once up front — re-slicing the batch
  /// tensor and re-quantizing floats every round was pure per-member
  /// overhead (the payload is invariant across engine restarts anyway).
  std::vector<InferenceResult> run_quantized(
      std::span<const std::span<const std::int16_t>> inputs);

  /// The engine's input quantization, exactly as stepping mode performs
  /// it per inference: clamp_i16(lround(sample[i] / input_scale)).
  [[nodiscard]] static std::vector<std::int16_t> quantize_input(
      std::span<const float> sample, float input_scale);

  /// Structural equality of two deployments: identical lowered graphs,
  /// tile plans, BSR sparsity patterns, NVM layout addresses and engine
  /// configuration. Data values (weights, biases, scales) may differ.
  [[nodiscard]] static bool lockstep_compatible(const DeployedModel& a,
                                                const DeployedModel& b);

  std::size_t max_restarts = 64;

 private:
  // Batched node executors; mirror IntermittentEngine's control flow
  // exactly (see engine.cpp). Return false only when kAccumulateInVm
  // execution was interrupted by a power failure.
  bool run_gemm(const LoweredNode& ln);
  bool run_gemm_immediate(const LoweredNode& ln);
  bool run_gemm_task(const LoweredNode& ln);
  bool run_gemm_accumulate(const LoweredNode& ln);
  bool run_pool(const LoweredNode& ln);
  bool run_copy(const LoweredNode& ln);

  [[nodiscard]] bool charge_input_tile_reads(const LoweredNode& ln,
                                             std::size_t bk_actual,
                                             std::size_t bc_actual);

  /// Hoist the per-member GemmDeployment pointers for one node into
  /// gds_ (pointer chases out of the per-job loops).
  void hoist_gemms(const LoweredNode& ln);

  /// Classic (unprotected) progress machinery — the only kind inside the
  /// lockstep envelope.
  void stage_progress(device::WriteBatch& batch) const;
  void note_commit();
  [[nodiscard]] bool recover_progress();

  std::vector<BatchedMember> members_;
  device::Msp430Device& leader_;   // members_[0].device
  const EngineConfig& config_;     // leader model's config
  device::Address progress_addr_;  // identical across members (verified)
  device::WriteBatch batch_;       // leader's staging buffer (tearing)

  std::uint32_t job_counter_ = 0;
  bool pending_recovery_ = false;
  InferenceStats* active_stats_ = nullptr;

  // Reused value-work scratch (member dimension = cohort size).
  std::vector<std::uint8_t*> raws_;            // NVM backing store/member
  std::vector<std::size_t> addrs_;             // gather addresses per k
  std::vector<std::size_t> tile_addrs_;        // gather addresses per job*k
  std::vector<const std::int16_t*> wblocks_;   // per-member weight block
  std::vector<const GemmDeployment*> gds_;     // per-member gemm (hoisted)
  std::vector<std::int32_t> tiles_;            // per-member VM tile
};

}  // namespace iprune::engine
