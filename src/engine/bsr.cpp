#include "engine/bsr.hpp"

#include <cassert>
#include <stdexcept>

namespace iprune::engine {

BsrMatrix BsrMatrix::build(const nn::QTensor& dense, const BlockMask& mask,
                           const TilePlan& plan) {
  if (dense.shape.size() != 2 || dense.shape[0] != plan.rows ||
      dense.shape[1] != plan.k) {
    throw std::invalid_argument("BsrMatrix::build: shape mismatch");
  }
  BsrMatrix bsr;
  bsr.block_elems_ = plan.br * plan.bk;
  bsr.row_ptr_.reserve(plan.row_tiles() + 1);
  bsr.row_ptr_.push_back(0);
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
      if (!mask.alive(rt, kt)) {
        continue;
      }
      bsr.col_idx_.push_back(static_cast<std::uint32_t>(kt));
      const std::size_t base = bsr.values_.size();
      bsr.values_.resize(base + bsr.block_elems_, 0);
      const std::size_t r0 = rt * plan.br;
      const std::size_t k0 = kt * plan.bk;
      for (std::size_t r = 0; r < plan.rows_in_tile(rt); ++r) {
        for (std::size_t kk = 0; kk < plan.k_in_tile(kt); ++kk) {
          bsr.values_[base + r * plan.bk + kk] =
              dense.data[(r0 + r) * plan.k + (k0 + kk)];
        }
      }
    }
    bsr.row_ptr_.push_back(static_cast<std::uint32_t>(bsr.col_idx_.size()));
  }
  return bsr;
}

std::size_t BsrMatrix::device_bytes() const {
  return values_.size() * sizeof(std::int16_t) +
         col_idx_.size() * sizeof(std::uint16_t) +
         row_ptr_.size() * sizeof(std::uint16_t);
}

nn::QTensor BsrMatrix::to_dense(const TilePlan& plan, float scale) const {
  nn::QTensor dense;
  dense.shape = {plan.rows, plan.k};
  dense.scale = scale;
  dense.data.assign(plan.rows * plan.k, 0);
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    for (std::uint32_t slot = row_begin(rt); slot < row_end(rt); ++slot) {
      const std::size_t kt = col(slot);
      const std::int16_t* blk = block(slot);
      const std::size_t r0 = rt * plan.br;
      const std::size_t k0 = kt * plan.bk;
      for (std::size_t r = 0; r < plan.rows_in_tile(rt); ++r) {
        for (std::size_t kk = 0; kk < plan.k_in_tile(kt); ++kk) {
          dense.data[(r0 + r) * plan.k + (k0 + kk)] = blk[r * plan.bk + kk];
        }
      }
    }
  }
  return dense;
}

}  // namespace iprune::engine
