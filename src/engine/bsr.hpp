#pragma once
// Block Compressed Sparse Row storage for pruned weight matrices
// (paper §III-D). Three arrays: blockwise nonzero values, per-block column
// indices, and row pointers; the two index arrays cost "two extra NVM
// reads to locate any nonzero weight block" at run time, which the engine
// charges per accelerator operation.

#include <cstdint>
#include <vector>

#include "engine/tile_plan.hpp"
#include "nn/quantize.hpp"

namespace iprune::engine {

class BsrMatrix {
 public:
  /// Build from a dense quantized weight matrix [rows, k] and the layer's
  /// block mask. Edge blocks are zero-padded to the uniform br*bk extent
  /// (as the device stores them, for constant-stride addressing).
  static BsrMatrix build(const nn::QTensor& dense, const BlockMask& mask,
                         const TilePlan& plan);

  [[nodiscard]] std::size_t nnz_blocks() const { return col_idx_.size(); }
  [[nodiscard]] std::size_t block_elems() const { return block_elems_; }

  /// Half-open range of block slots for a row tile.
  [[nodiscard]] std::uint32_t row_begin(std::size_t rt) const {
    return row_ptr_[rt];
  }
  [[nodiscard]] std::uint32_t row_end(std::size_t rt) const {
    return row_ptr_[rt + 1];
  }
  /// k-tile index of a block slot.
  [[nodiscard]] std::uint32_t col(std::size_t slot) const {
    return col_idx_[slot];
  }
  /// Values of one block (br*bk int16, row-major by block row).
  [[nodiscard]] const std::int16_t* block(std::size_t slot) const {
    return values_.data() + slot * block_elems_;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<std::int16_t>& values() const {
    return values_;
  }

  /// Bytes this matrix occupies on the device: int16 block values plus
  /// uint16 col indices plus uint16 row pointers.
  [[nodiscard]] std::size_t device_bytes() const;

  /// Reconstruct the dense [rows, k] int16 matrix (for tests).
  [[nodiscard]] nn::QTensor to_dense(const TilePlan& plan,
                                     float scale) const;

 private:
  std::size_t block_elems_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<std::int16_t> values_;
};

}  // namespace iprune::engine
