#pragma once
// HAWAII+ engine configuration.
//
// The engine lowers CONV layers to tiled GEMM (Anderson et al. [2]) and FC
// layers to tiled vector-matrix products. One *accelerator operation*
// computes a (block_rows x max_k_per_op) weight block against a spatial
// tile; each *job* inside an op produces one accelerator output (a partial
// or final output feature), immediately preserved to NVM together with the
// job counter (HAWAII [10]).

#include <cstddef>

namespace iprune::engine {

enum class PreservationMode {
  /// HAWAII-style intermittent-safe execution: every accelerator output is
  /// written back to NVM with a progress indicator as soon as produced.
  /// Recovery re-executes only the interrupted job.
  kImmediate,
  /// SONIC/TAILS-style intermittent-safe execution: one accelerator
  /// operation is the atomic task. Its outputs are double-buffered in VM
  /// and committed to NVM in a single batch together with the progress
  /// indicator (loop indices). Fewer indicator writes per output, but a
  /// power failure re-executes the entire interrupted task.
  kTaskAtomic,
  /// Conventional continuously-powered flow: outputs accumulate in VM and
  /// only completed OFM tiles are written back (Fig. 2(a) baseline). NOT
  /// safe under power failures.
  kAccumulateInVm,
};

/// NVM data-integrity layer (docs/nvm_integrity.md). All off by default:
/// a zero-corruption run with integrity disabled is byte-identical to the
/// classic engine, and enabling it only adds the CRC words themselves.
struct IntegrityConfig {
  /// Replace the raw u32 job counter with CRC-sealed double-buffered
  /// commit records (6 bytes per commit instead of 4) and double-buffer
  /// the NVM partial sums so a torn commit never destroys the value the
  /// recovery re-execution reads.
  bool protect_progress = false;
  /// Per-region CRC16 over every static region written at deployment
  /// (BSR values / column indices / row pointers / biases), stored in an
  /// NVM checksum table.
  bool seal_regions = false;
  /// Verify every sealed region's CRC at the start of run() (charged NVM
  /// reads); a mismatch throws engine::IntegrityError.
  bool scrub_on_boot = false;
};

struct EngineConfig {
  PreservationMode mode = PreservationMode::kImmediate;

  IntegrityConfig integrity;

  /// Reduction depth a single LEA command accumulates per staged output
  /// (the modeled accelerator's command depth); determines Bk and thereby
  /// the accelerator-output count of each layer.
  std::size_t max_k_per_op = 12;

  /// Output features per weight block (Br). Together with Bk this fixes
  /// the pruning granularity: one block = one accelerator operation's
  /// weights (the paper's third guideline).
  std::size_t block_rows = 4;

  /// Cap on the spatial tile width (Bc); the actual value is shrunk until
  /// the tile set fits VM.
  std::size_t max_cols_per_tile = 32;

  /// Bytes of one NVM-resident partial sum (int32).
  std::size_t psum_bytes = 4;
  /// Bytes of the progress indicator paired with each preserved output.
  std::size_t counter_bytes = 4;
  /// VM set aside for stack / engine bookkeeping.
  std::size_t vm_reserve_bytes = 512;
  /// CPU bookkeeping cycles charged per job (indexing, loop control).
  std::size_t cpu_cycles_per_job = 8;
  /// Bytes copied per concat/copy job.
  std::size_t copy_chunk_bytes = 128;

  /// Fold a ReLU that directly follows a CONV/FC into that layer's jobs.
  bool fold_relu = true;
};

}  // namespace iprune::engine
