#include "engine/deploy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "device/crc16.hpp"
#include "engine/backend.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace iprune::engine {

namespace {

const nn::Tensor& layer_weight(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).weight();
  }
  return static_cast<nn::Dense&>(*ln.layer).weight();
}

const nn::Tensor& layer_mask(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).weight_mask();
  }
  return static_cast<nn::Dense&>(*ln.layer).weight_mask();
}

const nn::Tensor& layer_bias(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).bias();
  }
  return static_cast<nn::Dense&>(*ln.layer).bias();
}

/// Host byte image of an integer array as the engine lays it out in NVM
/// (element-wise memcpy of the narrowed value, matching write_i16/_i32).
template <typename Narrow, typename Wide>
std::vector<std::uint8_t> pack_array(const std::vector<Wide>& values) {
  std::vector<std::uint8_t> bytes(values.size() * sizeof(Narrow));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Narrow v = static_cast<Narrow>(values[i]);
    std::memcpy(bytes.data() + i * sizeof(Narrow), &v, sizeof(Narrow));
  }
  return bytes;
}

}  // namespace

DeployedModel::DeployedModel(nn::Graph& graph, const EngineConfig& config,
                             device::Msp430Device& device,
                             const nn::Tensor& calibration_batch)
    : DeployedModel(graph, config, device.config().memory, device.nvm(),
                    calibration_batch) {}

DeployedModel::DeployedModel(nn::Graph& graph, const EngineConfig& config,
                             Backend& backend,
                             const nn::Tensor& calibration_batch)
    : DeployedModel(graph, config, backend.config().memory, backend.nvm(),
                    calibration_batch) {}

DeployedModel::DeployedModel(nn::Graph& graph, const EngineConfig& config,
                             const device::MemoryConfig& memory,
                             device::Nvm& nvm,
                             const nn::Tensor& calibration_batch)
    : config_(config) {
  // The protected progress indicator is a 6-byte CRC-sealed record; every
  // engine charge formula picks the widening up through counter_bytes.
  if (config_.integrity.protect_progress) {
    config_.counter_bytes = kProgressRecordBytes;
  }
  lowered_ = lower_graph(graph, config_, memory);
  const CalibrationTable calib =
      calibrate(graph, lowered_, calibration_batch);

  nodes_.resize(lowered_.nodes.size());

  const std::size_t progress_bytes =
      config_.integrity.protect_progress ? kProgressRegionBytes : 8;
  progress_addr_ = nvm.allocate(progress_bytes);
  record("progress", progress_addr_, progress_bytes);

  std::size_t max_psum_bytes = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    NodeDeployment& nd = nodes_[id];
    nd.scale = calib.scale(id);

    // Activation buffer: aliases reuse their input's buffer.
    if (ln.kind == LoweredKind::kAlias && id != 0) {
      nd.buffer = nodes_[ln.inputs[0]].buffer;
    } else {
      nd.buffer = nvm.allocate(ln.out_elems * 2);
      record(ln.name + ".ofm", nd.buffer, ln.out_elems * 2);
    }

    if (!ln.is_gemm()) {
      continue;
    }

    // Quantize the (masked) weights and pack them into BSR.
    auto gd = std::make_unique<GemmDeployment>();
    nn::Tensor masked = layer_weight(ln);
    masked.hadamard(layer_mask(ln));
    const nn::QTensor wq = nn::quantize_q15(masked);
    gd->weight_scale = wq.scale;
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    gd->bsr = BsrMatrix::build(wq, bmask, ln.plan);

    // Bias in the psum domain; requantization multiplier to the output
    // scale (see engine.cpp for the fixed-point pipeline).
    const float s_in = nodes_[ln.inputs[0]].scale;
    const float psum_unit = s_in * gd->weight_scale * 32768.0f;
    const nn::Tensor& bias = layer_bias(ln);
    gd->bias_q.resize(bias.numel());
    for (std::size_t i = 0; i < bias.numel(); ++i) {
      gd->bias_q[i] =
          static_cast<std::int32_t>(std::lround(bias[i] / psum_unit));
    }
    gd->multiplier = psum_unit / nd.scale;

    // Write the arrays into NVM (sealing each region when configured).
    {
      std::vector<std::uint8_t> bytes(gd->bsr.values().size() *
                                      sizeof(std::int16_t));
      std::memcpy(bytes.data(), gd->bsr.values().data(), bytes.size());
      gd->values_addr = write_region(ln.name + ".bsr_values", nvm, bytes);
    }
    gd->colidx_addr = write_region(
        ln.name + ".bsr_colidx", nvm,
        pack_array<std::int16_t>(gd->bsr.col_idx()));
    gd->rowptr_addr = write_region(
        ln.name + ".bsr_rowptr", nvm,
        pack_array<std::int16_t>(gd->bsr.row_ptr()));
    gd->bias_addr = write_region(ln.name + ".bias", nvm,
                                 pack_array<std::int32_t>(gd->bias_q));

    max_psum_bytes = std::max(
        max_psum_bytes, ln.plan.rows * ln.plan.cols * config_.psum_bytes);
    nd.gemm = std::move(gd);
  }

  // Protected progress double-buffers the NVM partial sums: a torn commit
  // corrupts at most the slot being written, never the slot the recovery
  // re-execution reads its inputs from.
  psum_slots_ = config_.integrity.protect_progress ? 2 : 1;
  psum_stride_ = max_psum_bytes;
  if (max_psum_bytes > 0) {
    psum_addr_ = nvm.allocate(max_psum_bytes * psum_slots_);
    record("psum_scratch", psum_addr_, max_psum_bytes * psum_slots_);
  }

  // The checksum table itself goes last: 2 bytes (LE) per sealed region,
  // in regions() order.
  if (sealed_count_ > 0) {
    crc_table_addr_ = nvm.allocate(sealed_count_ * 2);
    record("crc_table", crc_table_addr_, sealed_count_ * 2);
    std::size_t k = 0;
    for (const Region& r : regions_) {
      if (!r.sealed) {
        continue;
      }
      const std::uint8_t entry[2] = {
          static_cast<std::uint8_t>(r.crc),
          static_cast<std::uint8_t>(r.crc >> 8)};
      nvm.write(crc_table_addr_ + k * 2, entry);
      ++k;
    }
  }
}

device::Address DeployedModel::write_region(
    const std::string& label, device::Nvm& nvm,
    std::span<const std::uint8_t> bytes) {
  const device::Address addr = nvm.allocate(bytes.size());
  nvm.write(addr, bytes);
  record(label, addr, bytes.size());
  if (config_.integrity.seal_regions) {
    regions_.back().sealed = true;
    // CRC of the *intended* contents (like a toolchain sealing the image
    // it burns) — deploy-time write corruption is therefore scrubbed too.
    regions_.back().crc = device::crc16_ccitt(bytes);
    ++sealed_count_;
  }
  return addr;
}

std::uint32_t DeployedModel::read_progress(const device::Nvm& nvm) const {
  if (!config_.integrity.protect_progress) {
    std::uint8_t raw[4];
    for (std::size_t i = 0; i < 4; ++i) {
      raw[i] = nvm.peek(progress_addr_ + i);
    }
    std::uint32_t value = 0;
    std::memcpy(&value, raw, 4);
    return value;
  }
  std::optional<std::uint32_t> newest;
  for (std::size_t slot = 0; slot < 2; ++slot) {
    std::array<std::uint8_t, kProgressRecordBytes> record{};
    for (std::size_t i = 0; i < kProgressRecordBytes; ++i) {
      record[i] = nvm.peek(progress_addr_ + slot * kProgressSlotStride + i);
    }
    const std::optional<std::uint32_t> counter =
        decode_progress_record(record);
    if (counter && (!newest || *counter > *newest)) {
      newest = counter;
    }
  }
  if (!newest) {
    throw IntegrityError("both progress records are corrupt");
  }
  return *newest;
}

std::vector<std::string> DeployedModel::scrub_errors(
    const device::Nvm& nvm) const {
  std::vector<std::string> bad;
  std::size_t k = 0;
  std::vector<std::uint8_t> bytes;
  for (const Region& r : regions_) {
    if (!r.sealed) {
      continue;
    }
    bytes.resize(r.bytes);
    for (std::size_t i = 0; i < r.bytes; ++i) {
      bytes[i] = nvm.peek(r.begin + i);
    }
    const std::uint16_t crc = device::crc16_ccitt(bytes);
    const std::uint16_t stored = static_cast<std::uint16_t>(
        nvm.peek(crc_table_addr_ + k * 2) |
        (nvm.peek(crc_table_addr_ + k * 2 + 1) << 8));
    if (crc != stored) {
      bad.push_back(r.label);
    }
    ++k;
  }
  return bad;
}

void DeployedModel::record(std::string label, device::Address begin,
                           std::size_t bytes) {
  regions_.push_back({std::move(label), begin, bytes});
}

std::string DeployedModel::validate_layout(const device::Nvm& nvm) const {
  std::vector<Region> sorted = regions_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Region& a, const Region& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Region& r = sorted[i];
    if (r.begin + r.bytes > nvm.capacity()) {
      return r.label + " exceeds NVM capacity";
    }
    if (i > 0) {
      const Region& prev = sorted[i - 1];
      if (prev.begin + prev.bytes > r.begin) {
        return prev.label + " overlaps " + r.label;
      }
    }
  }
  return {};
}

std::size_t DeployedModel::model_bytes() const {
  std::size_t total = 0;
  for (const NodeDeployment& nd : nodes_) {
    if (nd.gemm != nullptr) {
      total += nd.gemm->device_bytes();
    }
  }
  return total;
}

std::size_t DeployedModel::total_macs() const {
  std::size_t total = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    if (!ln.is_gemm()) {
      continue;
    }
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    total += count_macs(ln.plan, bmask);
  }
  return total;
}

std::size_t DeployedModel::total_acc_outputs() const {
  std::size_t total = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    if (!ln.is_gemm()) {
      continue;
    }
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    total += count_accelerator_outputs(ln.plan, bmask);
  }
  return total;
}

}  // namespace iprune::engine
