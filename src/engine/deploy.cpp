#include "engine/deploy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace iprune::engine {

namespace {

const nn::Tensor& layer_weight(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).weight();
  }
  return static_cast<nn::Dense&>(*ln.layer).weight();
}

const nn::Tensor& layer_mask(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).weight_mask();
  }
  return static_cast<nn::Dense&>(*ln.layer).weight_mask();
}

const nn::Tensor& layer_bias(const LoweredNode& ln) {
  if (ln.kind == LoweredKind::kGemmConv) {
    return static_cast<nn::Conv2d&>(*ln.layer).bias();
  }
  return static_cast<nn::Dense&>(*ln.layer).bias();
}

}  // namespace

DeployedModel::DeployedModel(nn::Graph& graph, const EngineConfig& config,
                             device::Msp430Device& device,
                             const nn::Tensor& calibration_batch)
    : config_(config) {
  lowered_ = lower_graph(graph, config, device.config().memory);
  const CalibrationTable calib =
      calibrate(graph, lowered_, calibration_batch);

  device::Nvm& nvm = device.nvm();
  nodes_.resize(lowered_.nodes.size());

  progress_addr_ = nvm.allocate(8);
  record("progress", progress_addr_, 8);

  std::size_t max_psum_bytes = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    NodeDeployment& nd = nodes_[id];
    nd.scale = calib.scale(id);

    // Activation buffer: aliases reuse their input's buffer.
    if (ln.kind == LoweredKind::kAlias && id != 0) {
      nd.buffer = nodes_[ln.inputs[0]].buffer;
    } else {
      nd.buffer = nvm.allocate(ln.out_elems * 2);
      record(ln.name + ".ofm", nd.buffer, ln.out_elems * 2);
    }

    if (!ln.is_gemm()) {
      continue;
    }

    // Quantize the (masked) weights and pack them into BSR.
    auto gd = std::make_unique<GemmDeployment>();
    nn::Tensor masked = layer_weight(ln);
    masked.hadamard(layer_mask(ln));
    const nn::QTensor wq = nn::quantize_q15(masked);
    gd->weight_scale = wq.scale;
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    gd->bsr = BsrMatrix::build(wq, bmask, ln.plan);

    // Bias in the psum domain; requantization multiplier to the output
    // scale (see engine.cpp for the fixed-point pipeline).
    const float s_in = nodes_[ln.inputs[0]].scale;
    const float psum_unit = s_in * gd->weight_scale * 32768.0f;
    const nn::Tensor& bias = layer_bias(ln);
    gd->bias_q.resize(bias.numel());
    for (std::size_t i = 0; i < bias.numel(); ++i) {
      gd->bias_q[i] =
          static_cast<std::int32_t>(std::lround(bias[i] / psum_unit));
    }
    gd->multiplier = psum_unit / nd.scale;

    // Write the arrays into NVM.
    gd->values_addr =
        nvm.allocate(gd->bsr.values().size() * sizeof(std::int16_t));
    record(ln.name + ".bsr_values", gd->values_addr,
           gd->bsr.values().size() * sizeof(std::int16_t));
    for (std::size_t i = 0; i < gd->bsr.values().size(); ++i) {
      nvm.write_i16(gd->values_addr + i * 2, gd->bsr.values()[i]);
    }
    gd->colidx_addr =
        nvm.allocate(gd->bsr.col_idx().size() * sizeof(std::uint16_t));
    record(ln.name + ".bsr_colidx", gd->colidx_addr,
           gd->bsr.col_idx().size() * sizeof(std::uint16_t));
    for (std::size_t i = 0; i < gd->bsr.col_idx().size(); ++i) {
      nvm.write_i16(gd->colidx_addr + i * 2,
                    static_cast<std::int16_t>(gd->bsr.col_idx()[i]));
    }
    gd->rowptr_addr =
        nvm.allocate(gd->bsr.row_ptr().size() * sizeof(std::uint16_t));
    record(ln.name + ".bsr_rowptr", gd->rowptr_addr,
           gd->bsr.row_ptr().size() * sizeof(std::uint16_t));
    for (std::size_t i = 0; i < gd->bsr.row_ptr().size(); ++i) {
      nvm.write_i16(gd->rowptr_addr + i * 2,
                    static_cast<std::int16_t>(gd->bsr.row_ptr()[i]));
    }
    gd->bias_addr = nvm.allocate(gd->bias_q.size() * sizeof(std::int32_t));
    record(ln.name + ".bias", gd->bias_addr,
           gd->bias_q.size() * sizeof(std::int32_t));
    for (std::size_t i = 0; i < gd->bias_q.size(); ++i) {
      nvm.write_i32(gd->bias_addr + i * 4, gd->bias_q[i]);
    }

    max_psum_bytes = std::max(
        max_psum_bytes, ln.plan.rows * ln.plan.cols * config_.psum_bytes);
    nd.gemm = std::move(gd);
  }

  if (max_psum_bytes > 0) {
    psum_addr_ = nvm.allocate(max_psum_bytes);
    record("psum_scratch", psum_addr_, max_psum_bytes);
  }
}

void DeployedModel::record(std::string label, device::Address begin,
                           std::size_t bytes) {
  regions_.push_back({std::move(label), begin, bytes});
}

std::string DeployedModel::validate_layout(const device::Nvm& nvm) const {
  std::vector<Region> sorted = regions_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Region& a, const Region& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Region& r = sorted[i];
    if (r.begin + r.bytes > nvm.capacity()) {
      return r.label + " exceeds NVM capacity";
    }
    if (i > 0) {
      const Region& prev = sorted[i - 1];
      if (prev.begin + prev.bytes > r.begin) {
        return prev.label + " overlaps " + r.label;
      }
    }
  }
  return {};
}

std::size_t DeployedModel::model_bytes() const {
  std::size_t total = 0;
  for (const NodeDeployment& nd : nodes_) {
    if (nd.gemm != nullptr) {
      total += nd.gemm->device_bytes();
    }
  }
  return total;
}

std::size_t DeployedModel::total_macs() const {
  std::size_t total = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    if (!ln.is_gemm()) {
      continue;
    }
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    total += count_macs(ln.plan, bmask);
  }
  return total;
}

std::size_t DeployedModel::total_acc_outputs() const {
  std::size_t total = 0;
  for (nn::NodeId id = 0; id < lowered_.nodes.size(); ++id) {
    const LoweredNode& ln = lowered_.nodes[id];
    if (!ln.is_gemm()) {
      continue;
    }
    const BlockMask bmask = BlockMask::from_dense(layer_mask(ln), ln.plan);
    total += count_accelerator_outputs(ln.plan, bmask);
  }
  return total;
}

}  // namespace iprune::engine
