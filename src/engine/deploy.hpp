#pragma once
// Deployment: quantize a trained Graph, pack weights into BSR, and lay the
// whole model (weights, indices, biases, activation buffers, partial-sum
// scratch, progress region) out in the device's NVM — everything the
// engine needs to execute inference entirely from device memory.

#include <memory>
#include <vector>

#include "device/msp430.hpp"
#include "engine/bsr.hpp"
#include "engine/lowering.hpp"

namespace iprune::engine {

struct GemmDeployment {
  BsrMatrix bsr;
  float weight_scale = 1.0f;
  /// Bias in psum domain: bias_q ~= bias_f / (s_in * s_w * 2^15).
  std::vector<std::int32_t> bias_q;
  /// Requantization multiplier: (s_in * s_w * 2^15) / s_out.
  float multiplier = 1.0f;
  device::Address values_addr = 0;
  device::Address colidx_addr = 0;
  device::Address rowptr_addr = 0;
  device::Address bias_addr = 0;

  [[nodiscard]] std::size_t device_bytes() const {
    return bsr.device_bytes() + bias_q.size() * sizeof(std::int32_t);
  }
};

struct NodeDeployment {
  device::Address buffer = 0;  // int16 activation buffer (aliased for kAlias)
  float scale = 1.0f;
  std::unique_ptr<GemmDeployment> gemm;  // GEMM nodes only
};

class DeployedModel {
 public:
  /// Lowers, calibrates (on `calibration_batch`), quantizes, and writes
  /// the model into `device`'s NVM. The graph must already be trained (and
  /// pruned, if applicable); masks define the BSR sparsity.
  DeployedModel(nn::Graph& graph, const EngineConfig& config,
                device::Msp430Device& device,
                const nn::Tensor& calibration_batch);

  DeployedModel(const DeployedModel&) = delete;
  DeployedModel& operator=(const DeployedModel&) = delete;

  [[nodiscard]] const LoweredGraph& lowered() const { return lowered_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const NodeDeployment& node(nn::NodeId id) const {
    return nodes_[id];
  }
  [[nodiscard]] device::Address psum_addr() const { return psum_addr_; }
  [[nodiscard]] device::Address progress_addr() const {
    return progress_addr_;
  }

  /// Paper "Model Size": BSR weight blocks + index arrays + biases.
  [[nodiscard]] std::size_t model_bytes() const;
  /// Paper "MACs" / "Acc. Outputs" under the deployed masks.
  [[nodiscard]] std::size_t total_macs() const;
  [[nodiscard]] std::size_t total_acc_outputs() const;

  [[nodiscard]] float input_scale() const { return nodes_[0].scale; }
  [[nodiscard]] float output_scale() const {
    return nodes_[lowered_.output].scale;
  }

  /// One allocated NVM region (for layout inspection / validation).
  struct Region {
    std::string label;
    device::Address begin = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] const std::vector<Region>& regions() const {
    return regions_;
  }

  /// Debug facility: verify every allocated region is in bounds and that
  /// no two regions overlap. Returns an empty string when the layout is
  /// valid, otherwise a description of the first problem found.
  [[nodiscard]] std::string validate_layout(
      const device::Nvm& nvm) const;

 private:
  void record(std::string label, device::Address begin, std::size_t bytes);

  EngineConfig config_;
  LoweredGraph lowered_;
  std::vector<NodeDeployment> nodes_;
  std::vector<Region> regions_;
  device::Address psum_addr_ = 0;
  device::Address progress_addr_ = 0;
};

}  // namespace iprune::engine
