#pragma once
// Deployment: quantize a trained Graph, pack weights into BSR, and lay the
// whole model (weights, indices, biases, activation buffers, partial-sum
// scratch, progress region) out in the device's NVM — everything the
// engine needs to execute inference entirely from device memory.

#include <memory>
#include <span>
#include <vector>

#include "device/msp430.hpp"
#include "engine/bsr.hpp"
#include "engine/integrity.hpp"
#include "engine/lowering.hpp"

namespace iprune::engine {

struct GemmDeployment {
  BsrMatrix bsr;
  float weight_scale = 1.0f;
  /// Bias in psum domain: bias_q ~= bias_f / (s_in * s_w * 2^15).
  std::vector<std::int32_t> bias_q;
  /// Requantization multiplier: (s_in * s_w * 2^15) / s_out.
  float multiplier = 1.0f;
  device::Address values_addr = 0;
  device::Address colidx_addr = 0;
  device::Address rowptr_addr = 0;
  device::Address bias_addr = 0;

  [[nodiscard]] std::size_t device_bytes() const {
    return bsr.device_bytes() + bias_q.size() * sizeof(std::int32_t);
  }
};

struct NodeDeployment {
  device::Address buffer = 0;  // int16 activation buffer (aliased for kAlias)
  float scale = 1.0f;
  std::unique_ptr<GemmDeployment> gemm;  // GEMM nodes only
};

class DeployedModel {
 public:
  /// Lowers, calibrates (on `calibration_batch`), quantizes, and writes
  /// the model into `device`'s NVM. The graph must already be trained (and
  /// pruned, if applicable); masks define the BSR sparsity.
  DeployedModel(nn::Graph& graph, const EngineConfig& config,
                device::Msp430Device& device,
                const nn::Tensor& calibration_batch);
  /// Same, deploying into a backend's NVM (lowering reads the backend's
  /// memory geometry, so tile plans match the device it will run on).
  DeployedModel(nn::Graph& graph, const EngineConfig& config,
                class Backend& backend, const nn::Tensor& calibration_batch);
  /// Core form: lower against `memory` and write into `nvm`.
  DeployedModel(nn::Graph& graph, const EngineConfig& config,
                const device::MemoryConfig& memory, device::Nvm& nvm,
                const nn::Tensor& calibration_batch);

  DeployedModel(const DeployedModel&) = delete;
  DeployedModel& operator=(const DeployedModel&) = delete;

  [[nodiscard]] const LoweredGraph& lowered() const { return lowered_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const NodeDeployment& node(nn::NodeId id) const {
    return nodes_[id];
  }
  [[nodiscard]] device::Address psum_addr() const { return psum_addr_; }
  [[nodiscard]] device::Address progress_addr() const {
    return progress_addr_;
  }

  /// Paper "Model Size": BSR weight blocks + index arrays + biases.
  [[nodiscard]] std::size_t model_bytes() const;
  /// Paper "MACs" / "Acc. Outputs" under the deployed masks.
  [[nodiscard]] std::size_t total_macs() const;
  [[nodiscard]] std::size_t total_acc_outputs() const;

  [[nodiscard]] float input_scale() const { return nodes_[0].scale; }
  [[nodiscard]] float output_scale() const {
    return nodes_[lowered_.output].scale;
  }

  /// One allocated NVM region (for layout inspection / validation).
  /// Static regions are `sealed` when IntegrityConfig::seal_regions is on:
  /// `crc` is the CRC16 of the intended contents, also stored in the NVM
  /// checksum table (k-th sealed region, in regions() order, at
  /// crc_table_addr() + 2k).
  struct Region {
    std::string label;
    device::Address begin = 0;
    std::size_t bytes = 0;
    bool sealed = false;
    std::uint16_t crc = 0;
  };
  [[nodiscard]] const std::vector<Region>& regions() const {
    return regions_;
  }
  [[nodiscard]] std::size_t sealed_regions() const { return sealed_count_; }
  [[nodiscard]] device::Address crc_table_addr() const {
    return crc_table_addr_;
  }

  /// CRC-sealed double-buffered progress records instead of a raw u32?
  [[nodiscard]] bool protected_progress() const {
    return config_.integrity.protect_progress;
  }
  /// NVM partial-sum buffering: 2 slots under protected progress (a torn
  /// commit must not destroy the psum the recovery re-execution reads),
  /// 1 otherwise. Slot s of a k-block chain lives at
  /// psum_addr() + (s % psum_slots()) * psum_stride().
  [[nodiscard]] std::size_t psum_slots() const { return psum_slots_; }
  [[nodiscard]] std::size_t psum_stride() const { return psum_stride_; }

  /// Decode the persisted progress indicator without charging the device
  /// (host-side inspection; bypasses any corruption model's read path).
  /// Protected: newest valid record, throwing IntegrityError when both
  /// slots are corrupt. Unprotected: the raw u32.
  [[nodiscard]] std::uint32_t read_progress(const device::Nvm& nvm) const;

  /// Host-side scrub: labels of sealed regions whose NVM contents no
  /// longer match the checksum table (empty = clean). Uncharged; the
  /// engine's boot scrub is the charged equivalent.
  [[nodiscard]] std::vector<std::string> scrub_errors(
      const device::Nvm& nvm) const;

  /// Debug facility: verify every allocated region is in bounds and that
  /// no two regions overlap. Returns an empty string when the layout is
  /// valid, otherwise a description of the first problem found.
  [[nodiscard]] std::string validate_layout(
      const device::Nvm& nvm) const;

 private:
  void record(std::string label, device::Address begin, std::size_t bytes);
  /// Allocate + write one static region; seals it (CRC of `bytes`) when
  /// IntegrityConfig::seal_regions is on.
  device::Address write_region(const std::string& label,
                               device::Nvm& nvm,
                               std::span<const std::uint8_t> bytes);

  EngineConfig config_;
  LoweredGraph lowered_;
  std::vector<NodeDeployment> nodes_;
  std::vector<Region> regions_;
  device::Address psum_addr_ = 0;
  device::Address progress_addr_ = 0;
  device::Address crc_table_addr_ = 0;
  std::size_t sealed_count_ = 0;
  std::size_t psum_slots_ = 1;
  std::size_t psum_stride_ = 0;
};

}  // namespace iprune::engine
