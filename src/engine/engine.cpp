#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "device/crc16.hpp"
#include "util/scratch_pool.hpp"

namespace iprune::engine {

namespace {

/// Per-op retry safety net: with sane configs every retry makes progress
/// (the recharged buffer dwarfs one fetch+job); this guard turns a
/// misconfiguration into a diagnosis instead of a hang.
constexpr std::size_t kMaxOpRetries = 100000;

[[noreturn]] void retry_overflow(const std::string& where) {
  throw std::runtime_error(
      "IntermittentEngine: " + where +
      " exceeded the retry budget — a single operation cannot complete "
      "within one power cycle (enlarge the capacitor or shrink tiles)");
}

/// Q15 rounding shift: psum domain value of an accumulated Q30 product.
std::int32_t shift_round_q15(std::int64_t acc) {
  return static_cast<std::int32_t>((acc + 16384) >> 15);
}

std::int16_t clamp_i16(long v) {
  if (v > 32767) {
    return 32767;
  }
  if (v < -32768) {
    return -32768;
  }
  return static_cast<std::int16_t>(v);
}

/// Hoisted im2col gather geometry for one k-tile of a node. The naive
/// gather recomputed the full div/mod decomposition of (k, s) for every
/// MAC; here the per-k part (input plane + kernel offsets) is tabulated
/// once per BSR block and the per-column part (oy, ox) once per output
/// element. Only pure index arithmetic moves: each read() still issues
/// the same Nvm::read_i16 at the same address in the same order as the
/// naive per-element gather did, which the stateful CorruptionModel
/// fault streams depend on.
class TileGather {
 public:
  TileGather(const LoweredNode& ln, device::Nvm& nvm, device::Address in_buf,
             std::size_t k0, std::size_t bk)
      : nvm_(nvm), in_buf_(in_buf), k0_(k0) {
    if (ln.kind == LoweredKind::kGemmDense) {
      return;
    }
    geom_ = &ln.conv;
    const ConvGeometry& g = *geom_;
    const std::size_t kernel = g.kernel_h * g.kernel_w;
    rows_ = util::ScratchPool::local().acquire<KRow>(bk);
    for (std::size_t kk = 0; kk < bk; ++kk) {
      const std::size_t k = k0 + kk;
      const std::size_t cin = k / kernel;
      const std::size_t rem = k % kernel;
      rows_[kk] = KRow{
          cin * g.in_h * g.in_w,
          static_cast<std::ptrdiff_t>(rem / g.kernel_w) -
              static_cast<std::ptrdiff_t>(g.pad_h),
          static_cast<std::ptrdiff_t>(rem % g.kernel_w) -
              static_cast<std::ptrdiff_t>(g.pad_w)};
    }
  }

  /// Fix the output column for subsequent read() calls.
  void set_column(std::size_t s) {
    if (geom_ == nullptr) {
      return;
    }
    sy_ = static_cast<std::ptrdiff_t>((s / geom_->out_w) * geom_->stride);
    sx_ = static_cast<std::ptrdiff_t>((s % geom_->out_w) * geom_->stride);
  }

  /// Input element for lowered row k0 + kk at the column set above.
  std::int16_t read(std::size_t kk) const {
    if (geom_ == nullptr) {
      return nvm_.read_i16(in_buf_ + (k0_ + kk) * 2);
    }
    const KRow& row = rows_[kk];
    const std::ptrdiff_t iy = sy_ + row.off_y;
    const std::ptrdiff_t ix = sx_ + row.off_x;
    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(geom_->in_h) || ix < 0 ||
        ix >= static_cast<std::ptrdiff_t>(geom_->in_w)) {
      return 0;  // zero padding, no NVM traffic (same as the naive gather)
    }
    const std::size_t index = row.plane +
                              static_cast<std::size_t>(iy) * geom_->in_w +
                              static_cast<std::size_t>(ix);
    return nvm_.read_i16(in_buf_ + index * 2);
  }

 private:
  struct KRow {
    std::size_t plane;     // cin * in_h * in_w
    std::ptrdiff_t off_y;  // khi - pad_h
    std::ptrdiff_t off_x;  // kwi - pad_w
  };

  device::Nvm& nvm_;
  device::Address in_buf_;
  std::size_t k0_ = 0;
  const ConvGeometry* geom_ = nullptr;
  util::Scratch<KRow> rows_;
  std::ptrdiff_t sy_ = 0;
  std::ptrdiff_t sx_ = 0;
};

}  // namespace

IntermittentEngine::IntermittentEngine(DeployedModel& model,
                                       Backend& backend)
    : model_(model), backend_(backend), config_(model.config()) {}

IntermittentEngine::IntermittentEngine(DeployedModel& model,
                                       device::Msp430Device& device)
    : model_(model),
      owned_backend_(std::make_unique<CycleBackend>(device)),
      backend_(*owned_backend_),
      config_(model.config()) {}

std::int16_t IntermittentEngine::requantize(std::int64_t psum,
                                            float multiplier, bool relu) {
  const long v = std::lround(static_cast<double>(psum) *
                             static_cast<double>(multiplier));
  std::int16_t q = clamp_i16(v);
  if (relu && q < 0) {
    q = 0;
  }
  return q;
}

device::Address IntermittentEngine::psum_slot_addr(std::size_t chain_slot,
                                                   std::size_t offset) const {
  const std::size_t parity = chain_slot % model_.psum_slots();
  return model_.psum_addr() + parity * model_.psum_stride() + offset;
}

void IntermittentEngine::stage_progress(device::WriteBatch& batch) const {
  const std::uint32_t next = job_counter_ + 1;
  if (model_.protected_progress()) {
    batch.push_bytes(
        model_.progress_addr() + progress_slot(next) * kProgressSlotStride,
        encode_progress_record(next));
  } else {
    batch.push_u32(model_.progress_addr(), next);
  }
}

void IntermittentEngine::note_commit() {
  ++job_counter_;
  // Commit records are externally visible progress: in scheduler mode the
  // device settles skipped fault ordinals and re-plans its window here.
  backend_.on_commit_boundary();
  if (probe_ != nullptr) {
    probe_->on_commit(job_counter_);
  }
  if (backend_.trace_enabled()) {
    telemetry::TraceSink& sink = backend_.trace_sink();
    telemetry::Event event;
    event.cls = telemetry::EventClass::kProgressCommit;
    event.phase = telemetry::EventPhase::kInstant;
    event.t_us = backend_.now_us();
    event.bytes = config_.counter_bytes;
    event.seq = job_counter_;
    sink.record(event);
  }
}

void IntermittentEngine::emit_integrity_event(const std::string& name,
                                              std::uint64_t seq) {
  if (!backend_.trace_enabled()) {
    return;
  }
  telemetry::TraceSink& sink = backend_.trace_sink();
  telemetry::Event event;
  event.cls = telemetry::EventClass::kIntegrity;
  event.phase = telemetry::EventPhase::kInstant;
  event.t_us = backend_.now_us();
  event.name = name;
  event.seq = seq;
  sink.record(event);
}

bool IntermittentEngine::recover_progress() {
  if (!model_.protected_progress()) {
    if (!backend_.dma_read(8)) {  // progress indicator re-read
      return false;
    }
    const std::uint32_t persisted =
        backend_.nvm().read_u32(model_.progress_addr());
    if (persisted != job_counter_) {
      throw std::runtime_error(
          "IntermittentEngine: progress counter mismatch after recovery — "
          "NVM holds " + std::to_string(persisted) +
          " but the engine committed " + std::to_string(job_counter_) +
          " jobs (crash-consistency violation: a commit was torn, skipped "
          "or reordered)");
    }
    if (probe_ != nullptr) {
      probe_->on_recovery(persisted, backend_.vm_epoch());
    }
    pending_recovery_ = false;
    return true;
  }

  // Protected path: re-read both commit records, decoding each against
  // its CRC. One bounded re-read clears transient read faults (a stuck or
  // torn record stays invalid the second time too).
  const auto read_slots = [this](std::optional<std::uint32_t>* slots) {
    std::uint8_t raw[kProgressRecordBytes];
    for (std::size_t s = 0; s < 2; ++s) {
      backend_.nvm().read(
          model_.progress_addr() + s * kProgressSlotStride, raw);
      slots[s] = decode_progress_record(raw);
    }
  };
  if (!backend_.dma_read(2 * kProgressRecordBytes)) {
    return false;
  }
  std::optional<std::uint32_t> slots[2];
  read_slots(slots);
  if (!slots[0] || !slots[1]) {
    if (!backend_.dma_read(2 * kProgressRecordBytes)) {
      return false;
    }
    read_slots(slots);
  }
  if (!slots[0] && !slots[1]) {
    throw IntegrityError(
        "both progress records are corrupt after a power failure — the "
        "resume point is unrecoverable (job counter was " +
        std::to_string(job_counter_) + ")");
  }
  const std::uint32_t newest =
      std::max(slots[0].value_or(0), slots[1].value_or(0));
  // Only two cleanly decoded records that BOTH lag the engine's count
  // prove a lost commit (true consistency violation). With a corrupt
  // slot, the stale-looking survivor just means the newest record is the
  // unreadable one — fall through to the rollback path instead.
  if (slots[0] && slots[1] && newest < job_counter_) {
    throw std::runtime_error(
        "IntermittentEngine: progress counter mismatch after recovery — "
        "NVM holds " + std::to_string(newest) +
        " but the engine committed " + std::to_string(job_counter_) +
        " jobs (crash-consistency violation: a commit was torn, skipped "
        "or reordered)");
  }
  // An invalid slot is the in-flight record the outage tore; newest >
  // job_counter_ is the rarer tear whose garbage happened to pass the
  // CRC. Either way the older record is the true resume point — roll
  // back to job_counter_ and let re-execution overwrite the bad slot.
  if (!slots[0] || !slots[1] || newest > job_counter_) {
    ++active_stats_->integrity_rollbacks;
    emit_integrity_event("progress_rollback", job_counter_);
  }
  if (probe_ != nullptr) {
    probe_->on_recovery(job_counter_, backend_.vm_epoch());
  }
  pending_recovery_ = false;
  return true;
}

bool IntermittentEngine::scrub_regions() {
  std::size_t k = 0;
  std::vector<std::uint8_t> bytes;
  for (const DeployedModel::Region& r : model_.regions()) {
    if (!r.sealed) {
      continue;
    }
    if (!backend_.dma_read(r.bytes + 2)) {  // region + its checksum word
      return false;
    }
    bytes.resize(r.bytes);
    backend_.nvm().read(r.begin, bytes);
    const std::uint16_t crc = device::crc16_ccitt(bytes);
    std::uint8_t entry[2];
    backend_.nvm().read(model_.crc_table_addr() + k * 2, entry);
    const std::uint16_t stored =
        static_cast<std::uint16_t>(entry[0] | (entry[1] << 8));
    if (crc != stored) {
      ++active_stats_->scrub_failures;
      emit_integrity_event("scrub_fail:" + r.label, k);
      throw IntegrityError(
          "boot scrub: region '" + r.label + "' fails its CRC (stored " +
          std::to_string(stored) + ", computed " + std::to_string(crc) +
          ") — deployed model state is corrupt");
    }
    ++k;
  }
  return true;
}

void IntermittentEngine::emit_scope(telemetry::EventClass cls,
                                    telemetry::EventPhase phase,
                                    const std::string& name,
                                    std::uint64_t seq) {
  if (!backend_.trace_enabled()) {
    return;
  }
  telemetry::TraceSink& sink = backend_.trace_sink();
  telemetry::Event event;
  event.cls = cls;
  event.phase = phase;
  event.t_us = backend_.now_us();
  event.name = name;
  event.seq = seq;
  sink.record(event);
}

bool IntermittentEngine::charge_input_tile_reads(const LoweredNode& ln,
                                                 std::size_t bk_actual,
                                                 std::size_t bc_actual) {
  if (ln.kind == LoweredKind::kGemmDense) {
    return backend_.dma_read(bk_actual * 2);
  }
  // Conv gather: one strided DMA command per tile row (each row of the
  // im2col tile maps to a constant-stride walk of the input buffer).
  for (std::size_t row = 0; row < bk_actual; ++row) {
    if (!backend_.dma_read(bc_actual * 2)) {
      return false;
    }
  }
  return true;
}

bool IntermittentEngine::run_gemm(const LoweredNode& ln) {
  switch (config_.mode) {
    case PreservationMode::kImmediate:
      return run_gemm_immediate(ln);
    case PreservationMode::kTaskAtomic:
      return run_gemm_task(ln);
    case PreservationMode::kAccumulateInVm:
      return run_gemm_accumulate(ln);
  }
  return false;
}

bool IntermittentEngine::run_gemm_task(const LoweredNode& ln) {
  // SONIC/TAILS-style: one accelerator operation is an atomic task. All
  // of its outputs are computed into a VM double buffer and committed to
  // NVM in one batch together with the progress indicator (loop indices);
  // a power failure anywhere inside the task re-executes the whole task.
  const NodeDeployment& nd = model_.node(ln.node);
  const GemmDeployment& gd = *nd.gemm;
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = model_.node(ln.inputs[0]).buffer;
  const device::Address out_buf = nd.buffer;
  device::Nvm& nvm = backend_.nvm();
  const bool relu = ln.relu_folded;

  auto tile =
      util::ScratchPool::local().acquire<std::int32_t>(plan.br * plan.bc);
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = gd.bsr.row_begin(rt);
    const std::uint32_t end = gd.bsr.row_end(rt);

    if (begin == end) {
      // Bias-fill: one task per output tile.
      for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
        const std::size_t cols_in = plan.cols_in_tile(ct);
        const std::size_t jobs = rows_in * cols_in;
        emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kBegin,
                   ln.name, rt * plan.col_tiles() + ct);
        std::size_t retries = 0;
        while (true) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " bias-fill task");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!backend_.dma_read(rows_in * 4) ||
              !backend_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          batch_.clear();
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            const std::size_t r_global = rt * plan.br + idx / cols_in;
            const std::size_t c_global = ct * plan.bc + idx % cols_in;
            batch_.push_i16(out_buf + (r_global * plan.cols + c_global) * 2,
                            requantize(gd.bias_q[r_global], gd.multiplier,
                                       relu));
          }
          stage_progress(batch_);
          if (!backend_.dma_commit(batch_,
                                  jobs * 2 + config_.counter_bytes)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          note_commit();
          active_stats_->acc_outputs += jobs;
          active_stats_->preserved_outputs += jobs;
          break;
        }
        emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kEnd,
                   ln.name, rt * plan.col_tiles() + ct);
      }
      continue;
    }

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      const std::size_t jobs = rows_in * cols_in;
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kBegin,
                 ln.name, rt * plan.col_tiles() + ct);
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = gd.bsr.col(slot);
        const bool first = slot == begin;
        const bool last = slot + 1 == end;
        const std::size_t ls = slot - begin;  // k-chain slot (psum parity)
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        const std::int16_t* w_block = gd.bsr.block(slot);
        TileGather gather(ln, nvm, in_buf, k0, bk_actual);

        std::size_t retries = 0;
        while (true) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " task");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!backend_.dma_read(2) || !backend_.dma_read(2) ||
              !backend_.dma_read(rows_in * bk_actual * 2) ||
              !charge_input_tile_reads(ln, bk_actual, cols_in) ||
              (!first && !backend_.dma_read(rows_in * cols_in * 4)) ||
              (last && !backend_.dma_read(rows_in * 4))) {
            pending_recovery_ = true;
            continue;
          }

          // Compute every job of the task into the VM double buffer.
          bool failed = false;
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            const std::size_t r = idx / cols_in;
            const std::size_t c = idx % cols_in;
            const std::size_t r_global = rt * plan.br + r;
            const std::size_t c_global = ct * plan.bc + c;
            gather.set_column(c_global);
            std::int64_t acc = 0;
            for (std::size_t kk = 0; kk < bk_actual; ++kk) {
              acc += static_cast<std::int64_t>(gather.read(kk)) *
                     w_block[r * plan.bk + kk];
            }
            const std::int32_t contribution = shift_round_q15(acc);
            const std::size_t psum_off =
                (r_global * plan.cols + c_global) * 4;
            tile[idx] =
                first ? contribution
                      : nvm.read_i32(psum_slot_addr(ls - 1, psum_off)) +
                            contribution;
            if (!backend_.lea_op(bk_actual)) {
              failed = true;
              active_stats_->reexecuted_jobs += idx + 1;
              break;
            }
          }
          if (failed ||
              !backend_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
            pending_recovery_ = true;
            continue;
          }

          // Single batched commit: all outputs + the loop-index indicator
          // (staged so an injected outage can tear it mid-transfer).
          const std::size_t bytes =
              jobs * (last ? 2 : config_.psum_bytes) + config_.counter_bytes;
          batch_.clear();
          for (std::size_t idx = 0; idx < jobs; ++idx) {
            const std::size_t r = idx / cols_in;
            const std::size_t c = idx % cols_in;
            const std::size_t r_global = rt * plan.br + r;
            const std::size_t c_global = ct * plan.bc + c;
            if (last) {
              batch_.push_i16(
                  out_buf + (r_global * plan.cols + c_global) * 2,
                  requantize(static_cast<std::int64_t>(tile[idx]) +
                                 gd.bias_q[r_global],
                             gd.multiplier, relu));
            } else {
              batch_.push_i32(
                  psum_slot_addr(ls, (r_global * plan.cols + c_global) * 4),
                  tile[idx]);
            }
          }
          stage_progress(batch_);
          if (!backend_.dma_commit(batch_, bytes)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += jobs;
            continue;
          }
          note_commit();
          active_stats_->acc_outputs += jobs;
          active_stats_->preserved_outputs += jobs;
          active_stats_->macs += jobs * bk_actual;
          break;
        }
      }
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kEnd,
                 ln.name, rt * plan.col_tiles() + ct);
    }
  }
  return true;
}

bool IntermittentEngine::run_gemm_immediate(const LoweredNode& ln) {
  const NodeDeployment& nd = model_.node(ln.node);
  const GemmDeployment& gd = *nd.gemm;
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = model_.node(ln.inputs[0]).buffer;
  const device::Address out_buf = nd.buffer;
  device::Nvm& nvm = backend_.nvm();
  const bool relu = ln.relu_folded;

  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = gd.bsr.row_begin(rt);
    const std::uint32_t end = gd.bsr.row_end(rt);

    if (begin == end) {
      // All blocks of this row tile were pruned: bias-fill the outputs.
      for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
        const std::size_t cols_in = plan.cols_in_tile(ct);
        const std::size_t jobs = rows_in * cols_in;
        emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kBegin,
                   ln.name, rt * plan.col_tiles() + ct);
        std::size_t done = 0;
        std::size_t retries = 0;
        while (done < jobs) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " bias-fill");
          }
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          if (!backend_.dma_read(rows_in * 4)) {  // bias tile
            pending_recovery_ = true;
            continue;
          }
          bool failed = false;
          for (std::size_t idx = done; idx < jobs; ++idx) {
            const std::size_t r_global = rt * plan.br + idx / cols_in;
            const std::size_t c_global = ct * plan.bc + idx % cols_in;
            const std::int16_t out_q = requantize(
                gd.bias_q[r_global], gd.multiplier, relu);
            batch_.clear();
            batch_.push_i16(out_buf + (r_global * plan.cols + c_global) * 2,
                            out_q);
            stage_progress(batch_);
            if (!backend_.pipelined_commit(batch_, 0,
                                          2 + config_.counter_bytes,
                                          config_.cpu_cycles_per_job)) {
              pending_recovery_ = true;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->acc_outputs;
            ++active_stats_->preserved_outputs;
            note_commit();
          }
          if (!failed) {
            break;
          }
        }
        emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kEnd,
                   ln.name, rt * plan.col_tiles() + ct);
      }
      continue;
    }

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kBegin,
                 ln.name, rt * plan.col_tiles() + ct);
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = gd.bsr.col(slot);
        const bool first = slot == begin;
        const bool last = slot + 1 == end;
        const std::size_t ls = slot - begin;  // k-chain slot (psum parity)
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        const std::int16_t* w_block = gd.bsr.block(slot);
        const std::size_t jobs = rows_in * cols_in;
        TileGather gather(ln, nvm, in_buf, k0, bk_actual);

        std::size_t done = 0;
        std::size_t retries = 0;
        while (done < jobs) {
          if (++retries > kMaxOpRetries) {
            retry_overflow(ln.name + " op");
          }
          // --- context fetch (charged; repeated after power failures) ---
          if (pending_recovery_ && !recover_progress()) {
            continue;
          }
          // Two extra NVM reads to locate the nonzero block (BSR row
          // pointer + column index; paper §III-D).
          if (!backend_.dma_read(2) || !backend_.dma_read(2) ||
              !backend_.dma_read(rows_in * bk_actual * 2) ||
              !charge_input_tile_reads(ln, bk_actual, cols_in)) {
            pending_recovery_ = true;
            continue;
          }
          if (!first && !backend_.dma_read(rows_in * cols_in * 4)) {
            pending_recovery_ = true;
            continue;
          }
          if (last && !backend_.dma_read(rows_in * 4)) {  // bias tile
            pending_recovery_ = true;
            continue;
          }

          // --- jobs: one accelerator output each ---
          bool failed = false;
          for (std::size_t idx = done; idx < jobs; ++idx) {
            const std::size_t r = idx / cols_in;
            const std::size_t c = idx % cols_in;
            const std::size_t r_global = rt * plan.br + r;
            const std::size_t c_global = ct * plan.bc + c;

            gather.set_column(c_global);
            std::int64_t acc = 0;
            for (std::size_t kk = 0; kk < bk_actual; ++kk) {
              acc += static_cast<std::int64_t>(gather.read(kk)) *
                     w_block[r * plan.bk + kk];
            }
            const std::int32_t contribution = shift_round_q15(acc);
            const std::size_t psum_off =
                (r_global * plan.cols + c_global) * 4;
            const std::int32_t psum_new =
                first ? contribution
                      : nvm.read_i32(psum_slot_addr(ls - 1, psum_off)) +
                            contribution;

            const std::size_t write_bytes =
                (last ? 2 : config_.psum_bytes) + config_.counter_bytes;
            batch_.clear();
            if (last) {
              batch_.push_i16(
                  out_buf + (r_global * plan.cols + c_global) * 2,
                  requantize(static_cast<std::int64_t>(psum_new) +
                                 gd.bias_q[r_global],
                             gd.multiplier, relu));
            } else {
              batch_.push_i32(psum_slot_addr(ls, psum_off), psum_new);
            }
            stage_progress(batch_);
            if (!backend_.pipelined_commit(batch_, bk_actual, write_bytes,
                                          config_.cpu_cycles_per_job)) {
              pending_recovery_ = true;
              ++active_stats_->reexecuted_jobs;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->acc_outputs;
            ++active_stats_->preserved_outputs;
            active_stats_->macs += bk_actual;
            note_commit();
          }
          if (!failed) {
            break;
          }
        }
      }
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kEnd,
                 ln.name, rt * plan.col_tiles() + ct);
    }
  }
  return true;
}

bool IntermittentEngine::run_gemm_accumulate(const LoweredNode& ln) {
  const NodeDeployment& nd = model_.node(ln.node);
  const GemmDeployment& gd = *nd.gemm;
  const TilePlan& plan = ln.plan;
  const device::Address in_buf = model_.node(ln.inputs[0]).buffer;
  const device::Address out_buf = nd.buffer;
  device::Nvm& nvm = backend_.nvm();
  const bool relu = ln.relu_folded;

  auto psum_tile =
      util::ScratchPool::local().acquire<std::int32_t>(plan.br * plan.bc);
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t rows_in = plan.rows_in_tile(rt);
    const std::uint32_t begin = gd.bsr.row_begin(rt);
    const std::uint32_t end = gd.bsr.row_end(rt);

    for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
      const std::size_t cols_in = plan.cols_in_tile(ct);
      const std::size_t jobs = rows_in * cols_in;
      psum_tile.fill(0);
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kBegin,
                 ln.name, rt * plan.col_tiles() + ct);

      for (std::uint32_t slot = begin; slot < end; ++slot) {
        const std::size_t kt = gd.bsr.col(slot);
        const std::size_t k0 = kt * plan.bk;
        const std::size_t bk_actual = plan.k_in_tile(kt);
        const std::int16_t* w_block = gd.bsr.block(slot);
        TileGather gather(ln, nvm, in_buf, k0, bk_actual);

        if (!backend_.dma_read(2) || !backend_.dma_read(2) ||
            !backend_.dma_read(rows_in * bk_actual * 2) ||
            !charge_input_tile_reads(ln, bk_actual, cols_in)) {
          return false;
        }
        if (!backend_.lea_op(jobs * bk_actual)) {
          return false;
        }
        for (std::size_t r = 0; r < rows_in; ++r) {
          for (std::size_t c = 0; c < cols_in; ++c) {
            gather.set_column(ct * plan.bc + c);
            std::int64_t acc = 0;
            for (std::size_t kk = 0; kk < bk_actual; ++kk) {
              acc += static_cast<std::int64_t>(gather.read(kk)) *
                     w_block[r * plan.bk + kk];
            }
            psum_tile[r * cols_in + c] += shift_round_q15(acc);
          }
        }
        active_stats_->macs += jobs * bk_actual;
      }

      // Finalize the OFM tile: bias + requantize + single DMA write-back.
      if (!backend_.dma_read(rows_in * 4) ||
          !backend_.cpu_work(jobs * config_.cpu_cycles_per_job)) {
        return false;
      }
      if (!backend_.dma_write(jobs * 2)) {
        return false;
      }
      for (std::size_t r = 0; r < rows_in; ++r) {
        for (std::size_t c = 0; c < cols_in; ++c) {
          const std::size_t r_global = rt * plan.br + r;
          const std::size_t c_global = ct * plan.bc + c;
          const std::int16_t out_q = requantize(
              static_cast<std::int64_t>(psum_tile[r * cols_in + c]) +
                  gd.bias_q[r_global],
              gd.multiplier, relu);
          nvm.write_i16(out_buf + (r_global * plan.cols + c_global) * 2,
                        out_q);
        }
      }
      active_stats_->acc_outputs += jobs;
      active_stats_->preserved_outputs += jobs;
      emit_scope(telemetry::EventClass::kTile, telemetry::EventPhase::kEnd,
                 ln.name, rt * plan.col_tiles() + ct);
    }
  }
  return true;
}

bool IntermittentEngine::run_pool(const LoweredNode& ln) {
  const NodeDeployment& nd = model_.node(ln.node);
  const LoweredNode& in_node = model_.lowered().at(ln.inputs[0]);
  const device::Address in_buf = model_.node(ln.inputs[0]).buffer;
  const device::Address out_buf = nd.buffer;
  device::Nvm& nvm = backend_.nvm();

  const std::size_t channels = ln.out_shape[0];
  const std::size_t out_h = ln.out_shape[1];
  const std::size_t out_w = ln.out_shape[2];
  const std::size_t in_h = in_node.out_shape[1];
  const std::size_t in_w = in_node.out_shape[2];
  const nn::PoolSpec& p = ln.pool;
  const bool is_max = ln.kind == LoweredKind::kMaxPool;
  const auto area =
      static_cast<std::int32_t>(p.window_h * p.window_w);
  const std::size_t cycles_per_job = p.window_h * p.window_w * 2;
  const bool immediate = config_.mode == PreservationMode::kImmediate;
  const bool task_atomic = config_.mode == PreservationMode::kTaskAtomic;

  auto compute = [&](std::size_t c, std::size_t oy,
                     std::size_t ox) -> std::int16_t {
    std::int32_t best = -32768;
    std::int32_t sum = 0;
    for (std::size_t wy = 0; wy < p.window_h; ++wy) {
      for (std::size_t wx = 0; wx < p.window_w; ++wx) {
        const std::size_t iy = oy * p.stride + wy;
        const std::size_t ix = ox * p.stride + wx;
        const std::int16_t v =
            nvm.read_i16(in_buf + ((c * in_h + iy) * in_w + ix) * 2);
        best = std::max<std::int32_t>(best, v);
        sum += v;
      }
    }
    if (is_max) {
      return static_cast<std::int16_t>(best);
    }
    const std::int32_t avg =
        (sum >= 0 ? sum + area / 2 : sum - area / 2) / area;
    return clamp_i16(avg);
  };

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      std::size_t done = 0;
      std::size_t retries = 0;
      while (done < out_w) {
        if (++retries > kMaxOpRetries) {
          retry_overflow(ln.name + " pool row");
        }
        if ((immediate || task_atomic) && pending_recovery_ &&
            !recover_progress()) {
          continue;
        }
        // Fetch the input window rows for this output row.
        bool fetch_failed = false;
        for (std::size_t wy = 0; wy < p.window_h; ++wy) {
          if (!backend_.dma_read(in_w * 2)) {
            fetch_failed = true;
            break;
          }
        }
        if (fetch_failed) {
          if (!immediate && !task_atomic) {
            return false;  // kAccumulateInVm restarts the inference
          }
          pending_recovery_ = true;
          continue;
        }

        if (immediate) {
          bool failed = false;
          for (std::size_t ox = done; ox < out_w; ++ox) {
            const std::int16_t out_q = compute(c, oy, ox);
            batch_.clear();
            batch_.push_i16(out_buf + ((c * out_h + oy) * out_w + ox) * 2,
                            out_q);
            stage_progress(batch_);
            if (!backend_.pipelined_commit(batch_, 0,
                                          2 + config_.counter_bytes,
                                          cycles_per_job)) {
              pending_recovery_ = true;
              ++active_stats_->reexecuted_jobs;
              failed = true;
              break;
            }
            ++done;
            ++active_stats_->preserved_outputs;
            note_commit();
          }
          if (!failed) {
            break;
          }
        } else if (task_atomic) {
          // One output row is the atomic task: compute in VM, commit the
          // row and the indicator in a single batched write.
          if (!backend_.cpu_work(out_w * cycles_per_job)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += out_w;
            continue;
          }
          batch_.clear();
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            batch_.push_i16(out_buf + ((c * out_h + oy) * out_w + ox) * 2,
                            compute(c, oy, ox));
          }
          stage_progress(batch_);
          if (!backend_.dma_commit(batch_,
                                  out_w * 2 + config_.counter_bytes)) {
            pending_recovery_ = true;
            active_stats_->reexecuted_jobs += out_w;
            continue;
          }
          done = out_w;
          active_stats_->preserved_outputs += out_w;
          note_commit();
        } else {
          if (!backend_.cpu_work(out_w * cycles_per_job) ||
              !backend_.dma_write(out_w * 2)) {
            return false;
          }
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            nvm.write_i16(out_buf + ((c * out_h + oy) * out_w + ox) * 2,
                          compute(c, oy, ox));
          }
          done = out_w;
          active_stats_->preserved_outputs += out_w;
        }
      }
    }
  }
  return true;
}

bool IntermittentEngine::run_copy(const LoweredNode& ln) {
  const NodeDeployment& nd = model_.node(ln.node);
  const device::Address out_buf = nd.buffer;
  device::Nvm& nvm = backend_.nvm();
  const bool immediate =
      config_.mode != PreservationMode::kAccumulateInVm;
  const bool relu = ln.kind == LoweredKind::kCopyRelu;
  const std::size_t chunk_elems = config_.copy_chunk_bytes / 2;

  std::size_t out_offset = 0;
  for (const nn::NodeId input : ln.inputs) {
    const NodeDeployment& in_nd = model_.node(input);
    const std::size_t elems = model_.lowered().at(input).out_elems;
    const double ratio = static_cast<double>(in_nd.scale) /
                         static_cast<double>(nd.scale);

    for (std::size_t begin = 0; begin < elems; begin += chunk_elems) {
      const std::size_t count = std::min(chunk_elems, elems - begin);
      std::size_t retries = 0;
      bool committed = false;
      while (!committed) {
        if (++retries > kMaxOpRetries) {
          retry_overflow(ln.name + " copy chunk");
        }
        if (immediate && pending_recovery_ && !recover_progress()) {
          continue;
        }
        if (!backend_.dma_read(count * 2)) {
          if (!immediate) {
            return false;
          }
          pending_recovery_ = true;
          continue;
        }
        const std::size_t write_bytes =
            count * 2 + (immediate ? config_.counter_bytes : 0);
        batch_.clear();
        for (std::size_t i = 0; i < count; ++i) {
          const std::int16_t v = nvm.read_i16(in_nd.buffer + (begin + i) * 2);
          std::int16_t out_q;
          if (relu) {
            out_q = v > 0 ? v : 0;  // same scale, exact
          } else {
            out_q = clamp_i16(
                std::lround(static_cast<double>(v) * ratio));
          }
          batch_.push_i16(out_buf + (out_offset + begin + i) * 2, out_q);
        }
        if (immediate) {
          stage_progress(batch_);
        }
        if (!backend_.pipelined_commit(batch_, 0, write_bytes, count * 3)) {
          if (!immediate) {
            return false;
          }
          pending_recovery_ = true;
          continue;
        }
        ++active_stats_->preserved_outputs;
        if (immediate) {
          note_commit();
        }
        committed = true;
      }
    }
    out_offset += elems;
  }
  return true;
}

InferenceResult IntermittentEngine::run(const nn::Tensor& sample) {
  const LoweredGraph& lowered = model_.lowered();
  const LoweredNode& input_node = lowered.at(0);
  if (sample.numel() != input_node.out_elems) {
    throw std::invalid_argument("IntermittentEngine::run: sample size " +
                                std::to_string(sample.numel()) +
                                " != model input " +
                                std::to_string(input_node.out_elems));
  }

  InferenceResult result;
  active_stats_ = &result.stats;
  const device::DeviceStats before = backend_.stats();
  device::Nvm& nvm = backend_.nvm();
  const float in_scale = model_.input_scale();

  emit_scope(telemetry::EventClass::kInference, telemetry::EventPhase::kBegin,
             "inference", 0);

  // Boot scrub: verify every sealed static region against the checksum
  // table before touching the model (throws IntegrityError on mismatch).
  if (config_.integrity.scrub_on_boot && model_.sealed_regions() > 0) {
    std::size_t scrub_retries = 0;
    while (!scrub_regions()) {
      if (++scrub_retries > kMaxOpRetries) {
        retry_overflow("boot scrub");
      }
    }
  }

  bool finished = false;
  std::size_t attempts = 0;
  while (!finished) {
    if (probe_ != nullptr) {
      probe_->on_attempt(attempts);
    }
    ++attempts;
    job_counter_ = 0;
    pending_recovery_ = false;

    // Load + quantize the input sample into its NVM buffer, and reset the
    // progress region. Idempotent, so a mid-write failure just retries
    // (a torn prefix is simply overwritten by the retry).
    const device::Address in_buf = model_.node(0).buffer;
    std::size_t retries = 0;
    bool loaded = false;
    while (!loaded) {
      if (++retries > kMaxOpRetries) {
        retry_overflow("input load");
      }
      batch_.clear();
      for (std::size_t i = 0; i < sample.numel(); ++i) {
        batch_.push_i16(in_buf + i * 2,
                        clamp_i16(std::lround(sample[i] / in_scale)));
      }
      if (!backend_.dma_commit(batch_, sample.numel() * 2)) {
        continue;
      }
      batch_.clear();
      std::size_t init_charge = 8;  // matches the classic progress reset
      if (model_.protected_progress()) {
        const auto record = encode_progress_record(0);
        batch_.push_bytes(model_.progress_addr(), record);
        batch_.push_bytes(
            model_.progress_addr() + kProgressSlotStride, record);
        init_charge = 2 * kProgressRecordBytes;
      } else {
        batch_.push_u32(model_.progress_addr(), 0);
      }
      if (!backend_.dma_commit(batch_, init_charge)) {
        continue;
      }
      loaded = true;
    }

    bool interrupted = false;
    result.per_node.clear();
    for (nn::NodeId id = 1; id < lowered.nodes.size() && !interrupted; ++id) {
      const LoweredNode& ln = lowered.nodes[id];
      const double node_start_us = backend_.now_us();
      if (ln.kind != LoweredKind::kAlias) {
        emit_scope(telemetry::EventClass::kLayer,
                   telemetry::EventPhase::kBegin, ln.name, id);
      }
      bool ok = true;
      switch (ln.kind) {
        case LoweredKind::kGemmConv:
        case LoweredKind::kGemmDense:
          ok = run_gemm(ln);
          break;
        case LoweredKind::kMaxPool:
        case LoweredKind::kAvgPool:
          ok = run_pool(ln);
          break;
        case LoweredKind::kCopyConcat:
        case LoweredKind::kCopyRelu:
          ok = run_copy(ln);
          break;
        case LoweredKind::kAlias:
          break;
      }
      if (ln.kind != LoweredKind::kAlias) {
        emit_scope(telemetry::EventClass::kLayer, telemetry::EventPhase::kEnd,
                   ln.name, id);
        result.per_node.push_back(
            {id, ln.name, (backend_.now_us() - node_start_us) * 1e-6});
      }
      if (!ok) {
        // Only kAccumulateInVm reports failure: restart from scratch.
        interrupted = true;
      }
    }
    if (interrupted) {
      if (result.stats.restarts >= max_restarts) {
        // Give up: the restart budget is spent. restarts stays exactly at
        // max_restarts — the aborted attempt is not another restart.
        result.stats.completed = false;
        break;
      }
      ++result.stats.restarts;
    } else {
      finished = true;
    }
  }
  emit_scope(telemetry::EventClass::kInference, telemetry::EventPhase::kEnd,
             "inference", attempts);

  // Read back the (dequantized) output activations.
  if (result.stats.completed) {
    const LoweredNode& out_node = lowered.at(lowered.output);
    const NodeDeployment& out_nd = model_.node(lowered.output);
    result.logits.resize(out_node.out_elems);
    for (std::size_t i = 0; i < out_node.out_elems; ++i) {
      result.logits[i] = static_cast<float>(
                             nvm.read_i16(out_nd.buffer + i * 2)) *
                         out_nd.scale;
    }
  }

  const device::DeviceStats after = backend_.stats();
  InferenceStats& s = result.stats;
  s.on_s = (after.on_time_us - before.on_time_us) * 1e-6;
  s.off_s = (after.off_time_us - before.off_time_us) * 1e-6;
  s.latency_s = s.on_s + s.off_s;
  s.nvm_read_s =
      (after.tag_us(device::CostTag::kNvmRead) -
       before.tag_us(device::CostTag::kNvmRead)) * 1e-6;
  s.nvm_write_s =
      (after.tag_us(device::CostTag::kNvmWrite) -
       before.tag_us(device::CostTag::kNvmWrite)) * 1e-6;
  s.lea_s = (after.tag_us(device::CostTag::kLea) -
             before.tag_us(device::CostTag::kLea)) * 1e-6;
  s.cpu_s = (after.tag_us(device::CostTag::kCpu) -
             before.tag_us(device::CostTag::kCpu)) * 1e-6;
  s.reboot_s = (after.tag_us(device::CostTag::kReboot) -
                before.tag_us(device::CostTag::kReboot)) * 1e-6;
  s.energy_j = after.energy_j - before.energy_j;
  s.power_failures = after.power_failures - before.power_failures;
  s.nvm_bytes_read = after.nvm_bytes_read - before.nvm_bytes_read;
  s.nvm_bytes_written = after.nvm_bytes_written - before.nvm_bytes_written;
  active_stats_ = nullptr;
  return result;
}

}  // namespace iprune::engine
