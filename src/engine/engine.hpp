#pragma once
// HAWAII+ intermittent inference engine.
//
// Executes a DeployedModel on the simulated device. In kImmediate mode
// every accelerator output is written back to NVM paired with the job
// counter (progress preservation); after a power failure the engine
// re-reads the progress indicator, re-fetches the interrupted operation's
// tile context, and re-executes only the interrupted job (progress
// recovery). In kAccumulateInVm mode outputs accumulate in VM and a power
// failure restarts the entire inference — the conventional flow that is
// only viable under continuous power.

#include "engine/backend.hpp"
#include "engine/deploy.hpp"
#include "engine/probe.hpp"
#include "telemetry/sink.hpp"

namespace iprune::engine {

struct InferenceStats {
  double latency_s = 0.0;
  double on_s = 0.0;
  double off_s = 0.0;
  double nvm_read_s = 0.0;
  double nvm_write_s = 0.0;
  double lea_s = 0.0;
  double cpu_s = 0.0;
  double reboot_s = 0.0;
  double energy_j = 0.0;
  std::size_t power_failures = 0;
  std::size_t acc_outputs = 0;       // committed GEMM jobs
  std::size_t preserved_outputs = 0; // all committed jobs (GEMM+pool+copy)
  std::size_t nvm_bytes_read = 0;
  std::size_t nvm_bytes_written = 0;
  std::size_t macs = 0;
  std::size_t restarts = 0;  // kAccumulateInVm only
  /// Jobs whose computation was lost to a power failure and re-executed
  /// (kImmediate loses at most the interrupted job; kTaskAtomic loses the
  /// whole interrupted task).
  std::size_t reexecuted_jobs = 0;
  /// Recoveries that found a torn or corrupt progress record and rolled
  /// back to the older valid one (protect_progress only).
  std::size_t integrity_rollbacks = 0;
  /// Sealed regions that failed the boot scrub (the first failure throws
  /// IntegrityError, so this is 0 or 1 per run).
  std::size_t scrub_failures = 0;
  bool completed = true;
};

/// Per-node wall-clock share of one inference (on-time + off-time spent
/// while the node was executing).
struct NodeLatency {
  nn::NodeId node = 0;
  std::string name;
  double latency_s = 0.0;
};

struct InferenceResult {
  std::vector<float> logits;  // dequantized output activations
  InferenceStats stats;
  std::vector<NodeLatency> per_node;  // execution order, non-alias nodes
};

class IntermittentEngine {
 public:
  /// Execute against any backend (the model must have been deployed into
  /// the same backend's NVM).
  IntermittentEngine(DeployedModel& model, Backend& backend);
  /// Convenience: wraps `device` in an engine-owned CycleBackend view —
  /// the historical constructor, unchanged semantics.
  IntermittentEngine(DeployedModel& model, device::Msp430Device& device);

  /// Run one end-to-end inference for a single sample (per-sample shape,
  /// no batch dimension). In kAccumulateInVm mode the inference restarts
  /// from scratch after each power failure, up to `max_restarts`; if it
  /// still cannot finish, stats.completed is false (nontermination) with
  /// stats.restarts == max_restarts exactly.
  InferenceResult run(const nn::Tensor& sample);

  /// Observe progress commits / recoveries (nullptr disables). Non-owning;
  /// the probe must outlive any run() it observes.
  void set_probe(StateProbe* probe) { probe_ = probe; }

  std::size_t max_restarts = 64;

 private:
  // Node executors; return false only when kAccumulateInVm execution was
  // interrupted by a power failure (kImmediate mode self-recovers).
  bool run_gemm(const LoweredNode& ln);
  bool run_pool(const LoweredNode& ln);
  bool run_copy(const LoweredNode& ln);

  // GEMM helpers.
  bool run_gemm_immediate(const LoweredNode& ln);
  bool run_gemm_task(const LoweredNode& ln);
  bool run_gemm_accumulate(const LoweredNode& ln);

  /// Charge the DMA reads that bring one op's input tile into VM.
  [[nodiscard]] bool charge_input_tile_reads(const LoweredNode& ln,
                                             std::size_t bk_actual,
                                             std::size_t bc_actual);

  /// Requantize a finished psum to the layer's int16 output.
  [[nodiscard]] static std::int16_t requantize(std::int64_t psum,
                                               float multiplier, bool relu);

  /// NVM address of partial sum `offset` for k-chain slot `chain_slot`
  /// (double-buffered by slot parity under protected progress).
  [[nodiscard]] device::Address psum_slot_addr(std::size_t chain_slot,
                                               std::size_t offset) const;

  /// Append the next commit's progress indicator to `batch` — the raw u32,
  /// or the CRC-sealed record into the alternating slot when protected.
  /// Always the batch's LAST part, so a torn write can lose the record but
  /// never land a record whose data didn't.
  void stage_progress(device::WriteBatch& batch) const;
  /// VM-side bookkeeping after a successful commit: bump the counter,
  /// notify the probe, emit the telemetry instant.
  void note_commit();

  /// Post-failure recovery: charge the progress-indicator re-read, then
  /// verify the persisted counter matches the engine's own job count — the
  /// core crash-consistency assertion (a mismatch means a commit was torn
  /// or reordered). Under protected progress a torn/corrupt record instead
  /// rolls back to the newest valid one (counted in integrity_rollbacks);
  /// both records corrupt throws IntegrityError. Returns false if the
  /// re-read itself browned out.
  [[nodiscard]] bool recover_progress();

  /// Boot scrub: charge a full read of every sealed region plus its
  /// checksum word and verify the CRC. Throws IntegrityError on the first
  /// mismatch. Returns false if a read browned out (caller retries).
  [[nodiscard]] bool scrub_regions();

  void emit_integrity_event(const std::string& name, std::uint64_t seq);

  /// Emit a scoped telemetry event (inference/layer/tile begin-end)
  /// stamped with the current simulated time. No-op under the null sink.
  void emit_scope(telemetry::EventClass cls, telemetry::EventPhase phase,
                  const std::string& name, std::uint64_t seq);

  DeployedModel& model_;
  std::unique_ptr<Backend> owned_backend_;  // legacy Msp430Device ctor only
  Backend& backend_;
  const EngineConfig& config_;
  device::WriteBatch batch_;  // staging buffer reused across commits
  std::uint32_t job_counter_ = 0;
  bool pending_recovery_ = false;
  InferenceStats* active_stats_ = nullptr;
  StateProbe* probe_ = nullptr;
};

}  // namespace iprune::engine
