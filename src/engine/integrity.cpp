#include "engine/integrity.hpp"

#include "device/crc16.hpp"

namespace iprune::engine {

std::array<std::uint8_t, kProgressRecordBytes> encode_progress_record(
    std::uint32_t counter) {
  std::array<std::uint8_t, kProgressRecordBytes> record{};
  record[0] = static_cast<std::uint8_t>(counter);
  record[1] = static_cast<std::uint8_t>(counter >> 8);
  record[2] = static_cast<std::uint8_t>(counter >> 16);
  record[3] = static_cast<std::uint8_t>(counter >> 24);
  const std::uint16_t crc =
      device::crc16_ccitt(std::span<const std::uint8_t>(record.data(), 4));
  // CRC appended MSB-first: crc16_ccitt over all 6 bytes is then 0, the
  // classic transmit-residue property.
  record[4] = static_cast<std::uint8_t>(crc >> 8);
  record[5] = static_cast<std::uint8_t>(crc);
  return record;
}

std::optional<std::uint32_t> decode_progress_record(
    std::span<const std::uint8_t> record) {
  if (record.size() != kProgressRecordBytes) {
    return std::nullopt;
  }
  const std::uint16_t crc =
      device::crc16_ccitt(std::span<const std::uint8_t>(record.data(), 4));
  const std::uint16_t stored = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(record[4]) << 8) | record[5]);
  if (crc != stored) {
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(record[0]) |
         (static_cast<std::uint32_t>(record[1]) << 8) |
         (static_cast<std::uint32_t>(record[2]) << 16) |
         (static_cast<std::uint32_t>(record[3]) << 24);
}

}  // namespace iprune::engine
