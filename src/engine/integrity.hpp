#pragma once
// CRC-sealed progress commit records (docs/nvm_integrity.md).
//
// With IntegrityConfig::protect_progress the engine's progress indicator
// is no longer a bare u32: each commit writes a 6-byte record
//   { u32 counter (LE), u16 crc16-ccitt over the counter bytes (BE) }
// into one of two slots (slot = counter % 2, 8-byte stride), so the
// previous record survives any torn or bit-flipped write of the current
// one. Recovery decodes both slots and resumes from the newest valid
// record; both slots corrupt is unrecoverable and throws IntegrityError.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace iprune::engine {

/// Detected-but-unrecoverable NVM corruption: both progress records
/// invalid, or a sealed weight/index/bias region failing its boot scrub.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what)
      : std::runtime_error("IntegrityError: " + what) {}
};

inline constexpr std::size_t kProgressRecordBytes = 6;
inline constexpr std::size_t kProgressSlotStride = 8;
/// Both slots, 2-byte-aligned stride each.
inline constexpr std::size_t kProgressRegionBytes = 16;

/// Slot the record for `counter` is written to (the other slot keeps the
/// previous commit).
[[nodiscard]] inline std::size_t progress_slot(std::uint32_t counter) {
  return counter % 2;
}

[[nodiscard]] std::array<std::uint8_t, kProgressRecordBytes>
encode_progress_record(std::uint32_t counter);

/// The record's counter if its CRC validates, std::nullopt otherwise.
[[nodiscard]] std::optional<std::uint32_t> decode_progress_record(
    std::span<const std::uint8_t> record);

}  // namespace iprune::engine
