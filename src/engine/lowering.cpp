#include "engine/lowering.hpp"

#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/concat.hpp"

namespace iprune::engine {

namespace {

ConvGeometry conv_geometry(const nn::Conv2d& conv, const nn::Shape& in_shape,
                           const nn::Shape& out_shape) {
  ConvGeometry g;
  g.in_c = in_shape[0];
  g.in_h = in_shape[1];
  g.in_w = in_shape[2];
  g.kernel_h = conv.spec().kernel_h;
  g.kernel_w = conv.spec().kernel_w;
  g.stride = conv.spec().stride;
  g.pad_h = conv.spec().pad_h;
  g.pad_w = conv.spec().pad_w;
  g.out_h = out_shape[1];
  g.out_w = out_shape[2];
  return g;
}

}  // namespace

LoweredGraph lower_graph(nn::Graph& graph, const EngineConfig& config,
                         const device::MemoryConfig& memory) {
  LoweredGraph lowered;
  lowered.nodes.resize(graph.node_count());
  lowered.output = graph.output();

  // Node 0: the input placeholder, an alias over the input buffer.
  lowered.nodes[0].node = 0;
  lowered.nodes[0].name = "input";
  lowered.nodes[0].kind = LoweredKind::kAlias;
  lowered.nodes[0].out_shape = graph.input_shape();
  lowered.nodes[0].out_elems = nn::shape_numel(graph.input_shape());

  for (nn::NodeId id = 1; id < graph.node_count(); ++id) {
    LoweredNode& ln = lowered.nodes[id];
    nn::Layer& layer = graph.layer(id);
    ln.node = id;
    ln.name = layer.name();
    ln.inputs = graph.node_inputs(id);
    ln.out_shape = graph.node_shape(id);
    ln.out_elems = nn::shape_numel(ln.out_shape);
    ln.layer = &layer;

    switch (layer.kind()) {
      case nn::LayerKind::kConv2d: {
        auto& conv = static_cast<nn::Conv2d&>(layer);
        ln.kind = LoweredKind::kGemmConv;
        const nn::Shape& in_shape = graph.node_shape(ln.inputs[0]);
        ln.conv = conv_geometry(conv, in_shape, ln.out_shape);
        ln.plan = plan_gemm(conv.spec().out_channels,
                            ln.conv.out_h * ln.conv.out_w, conv.lowered_k(),
                            config, memory);
        break;
      }
      case nn::LayerKind::kDense: {
        auto& dense = static_cast<nn::Dense&>(layer);
        ln.kind = LoweredKind::kGemmDense;
        ln.plan = plan_gemm(dense.out_features(), 1, dense.in_features(),
                            config, memory);
        break;
      }
      case nn::LayerKind::kMaxPool: {
        ln.kind = LoweredKind::kMaxPool;
        ln.pool = static_cast<nn::MaxPool2d&>(layer).spec();
        break;
      }
      case nn::LayerKind::kAvgPool: {
        ln.kind = LoweredKind::kAvgPool;
        ln.pool = static_cast<nn::AvgPool2d&>(layer).spec();
        break;
      }
      case nn::LayerKind::kRelu: {
        // Fold into the producing GEMM node when allowed and the producer
        // feeds only this ReLU (otherwise the raw value is observable).
        LoweredNode& producer = lowered.nodes[ln.inputs[0]];
        const bool can_fold = config.fold_relu && producer.is_gemm() &&
                              !producer.relu_folded &&
                              graph.consumers(ln.inputs[0]).size() == 1;
        if (can_fold) {
          producer.relu_folded = true;
          ln.kind = LoweredKind::kAlias;
        } else {
          ln.kind = LoweredKind::kCopyRelu;
        }
        break;
      }
      case nn::LayerKind::kFlatten: {
        ln.kind = LoweredKind::kAlias;
        break;
      }
      case nn::LayerKind::kConcat: {
        ln.kind = LoweredKind::kCopyConcat;
        break;
      }
      case nn::LayerKind::kInput:
        throw std::logic_error("lower_graph: unexpected input layer");
    }
  }
  return lowered;
}

CalibrationTable calibrate(nn::Graph& graph, const LoweredGraph& lowered,
                           const nn::Tensor& calibration_batch) {
  CalibrationTable table;
  const std::vector<nn::Tensor> activations =
      graph.forward_nodes(calibration_batch, /*training=*/false);
  table.node_scale.resize(activations.size(), 1.0f);
  for (nn::NodeId id = 0; id < activations.size(); ++id) {
    const float abs_max = activations[id].abs_max();
    table.node_scale[id] = abs_max > 0.0f ? abs_max / 32767.0f : 1.0f;
  }
  // Scale-preserving nodes take their input's scale so the engine's
  // max/copy arithmetic is exact (max-pool of quantized == quantized max).
  for (nn::NodeId id = 1; id < lowered.nodes.size(); ++id) {
    const LoweredNode& ln = lowered.nodes[id];
    switch (ln.kind) {
      case LoweredKind::kMaxPool:
      case LoweredKind::kAvgPool:
      case LoweredKind::kAlias:
      case LoweredKind::kCopyRelu:
        table.node_scale[id] = table.node_scale[ln.inputs[0]];
        break;
      default:
        break;
    }
  }
  return table;
}

std::vector<PrunableLayer> prunable_layers(
    nn::Graph& graph, const EngineConfig& config,
    const device::MemoryConfig& memory) {
  const LoweredGraph lowered = lower_graph(graph, config, memory);
  std::vector<PrunableLayer> result;
  for (const LoweredNode& ln : lowered.nodes) {
    if (!ln.is_gemm()) {
      continue;
    }
    PrunableLayer p;
    p.node = ln.node;
    p.name = ln.name;
    p.is_conv = ln.kind == LoweredKind::kGemmConv;
    p.plan = ln.plan;
    if (p.is_conv) {
      auto& conv = static_cast<nn::Conv2d&>(*ln.layer);
      p.weight = &conv.weight();
      p.mask = &conv.weight_mask();
    } else {
      auto& dense = static_cast<nn::Dense&>(*ln.layer);
      p.weight = &dense.weight();
      p.mask = &dense.weight_mask();
    }
    result.push_back(p);
  }
  return result;
}

PrunableLayer rebind_prunable(const PrunableLayer& layer, nn::Graph& graph) {
  PrunableLayer rebound = layer;
  nn::Layer& node_layer = graph.layer(layer.node);
  if (layer.is_conv) {
    auto& conv = static_cast<nn::Conv2d&>(node_layer);
    rebound.weight = &conv.weight();
    rebound.mask = &conv.weight_mask();
  } else {
    auto& dense = static_cast<nn::Dense&>(node_layer);
    rebound.weight = &dense.weight();
    rebound.mask = &dense.weight_mask();
  }
  return rebound;
}

}  // namespace iprune::engine
