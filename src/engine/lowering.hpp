#pragma once
// Lowering a training-side Graph into the engine's execution plan, plus
// quantization calibration and the layer summaries shared by the iPrune
// criterion (src/core), the deployment step, and the Table II bench.

#include <string>
#include <vector>

#include "engine/tile_plan.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/graph.hpp"
#include "nn/pool.hpp"

namespace iprune::engine {

enum class LoweredKind {
  kGemmConv,   // CONV lowered to tiled GEMM [2]
  kGemmDense,  // FC lowered to tiled vector-matrix product
  kMaxPool,
  kAvgPool,
  kCopyConcat,  // concatenation materialized by requantizing DMA copies
  kCopyRelu,    // standalone (unfolded) ReLU as a transform copy
  kAlias,       // flatten / folded ReLU: buffer reinterpretation, no jobs
};

struct ConvGeometry {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kernel_h = 0, kernel_w = 0;
  std::size_t stride = 1, pad_h = 0, pad_w = 0;
  std::size_t out_h = 0, out_w = 0;
};

struct LoweredNode {
  nn::NodeId node = 0;
  std::string name;
  LoweredKind kind = LoweredKind::kAlias;
  std::vector<nn::NodeId> inputs;  // graph node ids of the consumed buffers
  nn::Shape out_shape;             // per-sample
  std::size_t out_elems = 0;

  // GEMM kinds only.
  TilePlan plan;
  bool relu_folded = false;
  ConvGeometry conv;               // valid for kGemmConv
  nn::Layer* layer = nullptr;      // source layer (weights / mask access)

  // Pool kinds only.
  nn::PoolSpec pool;

  [[nodiscard]] bool is_gemm() const {
    return kind == LoweredKind::kGemmConv || kind == LoweredKind::kGemmDense;
  }
};

struct LoweredGraph {
  std::vector<LoweredNode> nodes;  // one per graph node (index = node id)
  nn::NodeId output = 0;

  [[nodiscard]] const LoweredNode& at(nn::NodeId id) const {
    return nodes[id];
  }
};

/// Analyze the graph and produce the execution plan. Throws when a layer
/// cannot be tiled into the configured VM.
LoweredGraph lower_graph(nn::Graph& graph, const EngineConfig& config,
                         const device::MemoryConfig& memory);

/// Per-node activation quantization scales, derived from a float forward
/// pass over a calibration batch. Pools, aliases and copies inherit their
/// input's scale; GEMM outputs and concats get calibrated scales.
struct CalibrationTable {
  std::vector<float> node_scale;  // index = node id
  [[nodiscard]] float scale(nn::NodeId id) const { return node_scale[id]; }
};

CalibrationTable calibrate(nn::Graph& graph, const LoweredGraph& lowered,
                           const nn::Tensor& calibration_batch);

/// One prunable (CONV/FC) layer's identity and tile plan, for the pruning
/// framework. `weight`/`mask` point into the live Graph.
struct PrunableLayer {
  nn::NodeId node = 0;
  std::string name;
  bool is_conv = false;
  nn::Tensor* weight = nullptr;
  nn::Tensor* mask = nullptr;
  TilePlan plan;

  [[nodiscard]] BlockMask block_mask() const {
    return BlockMask::from_dense(*mask, plan);
  }
  [[nodiscard]] std::size_t acc_outputs() const {
    return count_accelerator_outputs(plan, block_mask());
  }
  [[nodiscard]] std::size_t macs() const {
    return count_macs(plan, block_mask());
  }
  /// Weights surviving the mask.
  [[nodiscard]] std::size_t alive_weights() const {
    return mask->count_nonzero();
  }
  [[nodiscard]] std::size_t total_weights() const { return mask->numel(); }
};

std::vector<PrunableLayer> prunable_layers(nn::Graph& graph,
                                           const EngineConfig& config,
                                           const device::MemoryConfig& memory);

/// Re-point a PrunableLayer's weight/mask at the same node of `graph`,
/// which must be a structural copy (Graph::clone()) of the graph the layer
/// was lowered from. The tile plan carries over unchanged because cloning
/// preserves every layer's shapes. Lets parallel searches probe clones
/// without re-running the full lowering pass.
PrunableLayer rebind_prunable(const PrunableLayer& layer, nn::Graph& graph);

}  // namespace iprune::engine
