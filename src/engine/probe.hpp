#pragma once
// Observer interface over the engine's crash-consistency state machine.
//
// The fault-injection checker (src/fault) needs to see the engine's
// progress counters as they are committed and recovered, without the
// engine knowing anything about schedules or golden runs. A StateProbe
// receives one callback per attempt start, per persisted job commit, and
// per post-failure progress re-read; all callbacks are no-ops by default
// and the engine runs probe-free (nullptr) at zero cost.

#include <cstddef>
#include <cstdint>

namespace iprune::engine {

class StateProbe {
 public:
  virtual ~StateProbe() = default;

  /// A fresh inference attempt begins (attempt 0 is the first; later
  /// attempts only occur in kAccumulateInVm restart-from-scratch mode).
  virtual void on_attempt(std::size_t attempt) { (void)attempt; }

  /// The job counter was persisted to NVM (one call per committed job in
  /// kImmediate, one per committed task in kTaskAtomic).
  virtual void on_commit(std::uint32_t job_counter) { (void)job_counter; }

  /// Recovery after a power failure re-read the persisted progress
  /// counter. The engine has already asserted it matches its own count;
  /// `vm_epoch` identifies the power cycle the device resumed into.
  virtual void on_recovery(std::uint32_t persisted_counter,
                           std::uint64_t vm_epoch) {
    (void)persisted_counter;
    (void)vm_epoch;
  }
};

}  // namespace iprune::engine
