#include "engine/tile_plan.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace iprune::engine {

std::size_t TilePlan::vm_bytes_needed(PreservationMode mode) const {
  const std::size_t weight_block = 2 * br * bk;
  const std::size_t input_tile = 2 * bk * bc;
  // Immediate mode stages one op's psum tile; VM-accumulation mode holds
  // the psum tile across all k-passes of an output tile (same footprint,
  // different lifetime).
  const std::size_t psum_tile = 4 * br * bc;
  (void)mode;
  return weight_block + input_tile + psum_tile;
}

TilePlan plan_gemm(std::size_t rows, std::size_t cols, std::size_t k,
                   const EngineConfig& engine,
                   const device::MemoryConfig& memory) {
  if (rows == 0 || cols == 0 || k == 0) {
    throw std::invalid_argument("plan_gemm: degenerate layer dimensions");
  }
  TilePlan plan;
  plan.rows = rows;
  plan.cols = cols;
  plan.k = k;
  plan.bk = std::min(k, engine.max_k_per_op);
  plan.br = std::min(rows, engine.block_rows);

  const std::size_t budget = memory.vm_bytes - engine.vm_reserve_bytes;
  std::size_t bc = std::min(cols, engine.max_cols_per_tile);
  while (bc > 1) {
    plan.bc = bc;
    if (plan.vm_bytes_needed(engine.mode) <= budget) {
      return plan;
    }
    bc /= 2;
  }
  plan.bc = 1;
  if (plan.vm_bytes_needed(engine.mode) > budget) {
    throw std::runtime_error(
        "plan_gemm: minimal tile does not fit VM; shrink block_rows or "
        "max_k_per_op");
  }
  return plan;
}

BlockMask::BlockMask(std::size_t row_tiles, std::size_t k_tiles, bool alive)
    : row_tiles_(row_tiles),
      k_tiles_(k_tiles),
      alive_(row_tiles * k_tiles, alive ? 1 : 0) {}

BlockMask BlockMask::from_dense(const nn::Tensor& mask, const TilePlan& plan) {
  assert(mask.rank() == 2 && mask.dim(0) == plan.rows &&
         mask.dim(1) == plan.k);
  BlockMask result(plan.row_tiles(), plan.k_tiles(), false);
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
      bool any_alive = false;
      const std::size_t r0 = rt * plan.br;
      const std::size_t k0 = kt * plan.bk;
      for (std::size_t r = r0; r < r0 + plan.rows_in_tile(rt) && !any_alive;
           ++r) {
        for (std::size_t kk = k0; kk < k0 + plan.k_in_tile(kt); ++kk) {
          if (mask.at(r, kk) != 0.0f) {
            any_alive = true;
            break;
          }
        }
      }
      result.set(rt, kt, any_alive);
    }
  }
  return result;
}

std::size_t BlockMask::alive_count() const {
  std::size_t count = 0;
  for (const std::uint8_t v : alive_) {
    count += v;
  }
  return count;
}

std::size_t BlockMask::alive_in_row(std::size_t rt) const {
  std::size_t count = 0;
  for (std::size_t kt = 0; kt < k_tiles_; ++kt) {
    count += alive(rt, kt) ? 1 : 0;
  }
  return count;
}

std::size_t count_accelerator_outputs(const TilePlan& plan,
                                      const BlockMask& mask) {
  assert(mask.row_tiles() == plan.row_tiles() &&
         mask.k_tiles() == plan.k_tiles());
  std::size_t outputs = 0;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t alive = mask.alive_in_row(rt);
    const std::size_t rows = plan.rows_in_tile(rt);
    if (alive == 0) {
      // Bias-fill pass: each output still written (and preserved) once.
      outputs += rows * plan.cols;
    } else {
      outputs += alive * rows * plan.cols;
    }
  }
  return outputs;
}

std::size_t count_nvm_write_bytes(const TilePlan& plan,
                                  const BlockMask& mask,
                                  std::size_t psum_bytes,
                                  std::size_t counter_bytes) {
  std::size_t bytes = 0;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    const std::size_t alive = mask.alive_in_row(rt);
    const std::size_t rows = plan.rows_in_tile(rt);
    if (alive == 0) {
      bytes += rows * plan.cols * (2 + counter_bytes);  // bias fill
    } else {
      // alive-1 partial passes write psums; the last pass writes int16.
      bytes += rows * plan.cols *
               ((alive - 1) * (psum_bytes + counter_bytes) +
                (2 + counter_bytes));
    }
  }
  return bytes;
}

std::size_t count_macs(const TilePlan& plan, const BlockMask& mask) {
  std::size_t macs = 0;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
      if (mask.alive(rt, kt)) {
        macs += plan.block_weights(rt, kt) * plan.cols;
      }
    }
  }
  return macs;
}

}  // namespace iprune::engine
