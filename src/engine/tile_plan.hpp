#pragma once
// Tile geometry for one lowered GEMM layer, plus the block-mask view of a
// layer's pruning state. This is the single source of truth for the
// accelerator-output arithmetic: the iPrune criterion (src/core) and the
// executing engine both use it, and a test pins them to each other.

#include <cstdint>
#include <vector>

#include "device/config.hpp"
#include "engine/config.hpp"
#include "nn/tensor.hpp"

namespace iprune::engine {

struct TilePlan {
  std::size_t rows = 0;  // R: output features
  std::size_t cols = 0;  // S: spatial positions (1 for FC)
  std::size_t k = 0;     // reduction depth

  std::size_t br = 0;  // block rows per accelerator op
  std::size_t bk = 0;  // reduction depth per accelerator op
  std::size_t bc = 0;  // spatial positions per tile

  [[nodiscard]] std::size_t row_tiles() const { return ceil_div(rows, br); }
  [[nodiscard]] std::size_t k_tiles() const { return ceil_div(k, bk); }
  [[nodiscard]] std::size_t col_tiles() const { return ceil_div(cols, bc); }

  [[nodiscard]] std::size_t rows_in_tile(std::size_t rt) const {
    return extent(rows, br, rt);
  }
  [[nodiscard]] std::size_t k_in_tile(std::size_t kt) const {
    return extent(k, bk, kt);
  }
  [[nodiscard]] std::size_t cols_in_tile(std::size_t ct) const {
    return extent(cols, bc, ct);
  }

  /// Weight elements in one block (zero-padded blocks at the edges store
  /// their true extent only).
  [[nodiscard]] std::size_t block_weights(std::size_t rt,
                                          std::size_t kt) const {
    return rows_in_tile(rt) * k_in_tile(kt);
  }

  /// VM footprint of the working set (weight block + input tile + psum
  /// tile) for the given preservation mode.
  [[nodiscard]] std::size_t vm_bytes_needed(PreservationMode mode) const;

  static std::size_t ceil_div(std::size_t a, std::size_t b) {
    return (a + b - 1) / b;
  }
  static std::size_t extent(std::size_t total, std::size_t tile,
                            std::size_t index) {
    const std::size_t begin = index * tile;
    return std::min(tile, total - begin);
  }
};

/// Select Bk/Br/Bc for a layer so the working set fits VM (HAWAII+'s
/// "tile size selection to fully utilize the VM"). Throws when even the
/// minimal tile cannot fit.
TilePlan plan_gemm(std::size_t rows, std::size_t cols, std::size_t k,
                   const EngineConfig& engine,
                   const device::MemoryConfig& memory);

/// Per-layer pruning state at accelerator-op granularity: one flag per
/// (row-tile, k-tile) weight block.
class BlockMask {
 public:
  BlockMask(std::size_t row_tiles, std::size_t k_tiles, bool alive = true);

  /// Derive from an elementwise 0/1 mask of shape [rows, k]: a block is
  /// alive iff any of its weights survives.
  static BlockMask from_dense(const nn::Tensor& mask, const TilePlan& plan);

  [[nodiscard]] std::size_t row_tiles() const { return row_tiles_; }
  [[nodiscard]] std::size_t k_tiles() const { return k_tiles_; }

  [[nodiscard]] bool alive(std::size_t rt, std::size_t kt) const {
    return alive_[rt * k_tiles_ + kt] != 0;
  }
  void set(std::size_t rt, std::size_t kt, bool value) {
    alive_[rt * k_tiles_ + kt] = value ? 1 : 0;
  }

  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t alive_in_row(std::size_t rt) const;

 private:
  std::size_t row_tiles_;
  std::size_t k_tiles_;
  std::vector<std::uint8_t> alive_;
};

/// Accelerator outputs of a layer under the given block mask: one output
/// per (alive block row, spatial position, k-pass), plus bias-fill outputs
/// for rows whose blocks are all dead (they still need their OFM written).
std::size_t count_accelerator_outputs(const TilePlan& plan,
                                      const BlockMask& mask);

/// MACs actually executed under the mask.
std::size_t count_macs(const TilePlan& plan, const BlockMask& mask);

/// NVM bytes written per inference by this layer under kImmediate
/// preservation: psum_bytes per partial-pass output, 2 bytes per
/// final-pass output, counter_bytes per preserved output. Closely related
/// to (but not proportional to) the accelerator-output count, because the
/// final pass writes fewer bytes — the distinction the criterion ablation
/// probes.
std::size_t count_nvm_write_bytes(const TilePlan& plan,
                                  const BlockMask& mask,
                                  std::size_t psum_bytes,
                                  std::size_t counter_bytes);

}  // namespace iprune::engine
