#include "fault/checker.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/integrity.hpp"
#include "engine/lowering.hpp"
#include "engine/probe.hpp"
#include "fault/injector.hpp"
#include "runtime/parallel.hpp"

namespace iprune::fault {

namespace {

using engine::PreservationMode;

/// Records the commit/recovery stream and flags the first counter
/// violation (non-contiguous commit or recovery that re-read a stale
/// counter). The engine independently throws on recovery mismatch; the
/// monitor catches ordering bugs the engine cannot see from inside.
class CommitMonitor final : public engine::StateProbe {
 public:
  void on_commit(std::uint32_t job_counter) override {
    if (job_counter != last_commit_ + 1 && violation_.empty()) {
      violation_ = "commit counter jumped from " +
                   std::to_string(last_commit_) + " to " +
                   std::to_string(job_counter) +
                   " (commits must be strictly +1 monotonic)";
    }
    last_commit_ = job_counter;
  }

  void on_recovery(std::uint32_t persisted_counter,
                   std::uint64_t /*vm_epoch*/) override {
    ++recoveries_;
    if (persisted_counter != last_commit_ && violation_.empty()) {
      violation_ = "recovery re-read counter " +
                   std::to_string(persisted_counter) + " but " +
                   std::to_string(last_commit_) + " jobs were committed";
    }
  }

  [[nodiscard]] const std::string& violation() const { return violation_; }
  [[nodiscard]] std::uint32_t last_commit() const { return last_commit_; }
  [[nodiscard]] std::size_t recoveries() const { return recoveries_; }

 private:
  std::uint32_t last_commit_ = 0;
  std::size_t recoveries_ = 0;
  std::string violation_;
};

}  // namespace

const char* preservation_mode_name(PreservationMode mode) {
  switch (mode) {
    case PreservationMode::kImmediate:
      return "immediate";
    case PreservationMode::kTaskAtomic:
      return "task";
    case PreservationMode::kAccumulateInVm:
      return "accumulate";
  }
  return "?";
}

PreservationMode parse_preservation_mode(const std::string& name) {
  if (name == "immediate") {
    return PreservationMode::kImmediate;
  }
  if (name == "task") {
    return PreservationMode::kTaskAtomic;
  }
  if (name == "accumulate") {
    return PreservationMode::kAccumulateInVm;
  }
  throw std::invalid_argument("unknown preservation mode '" + name + "'");
}

std::string ScheduleOutcome::repro() const {
  return std::string("mode=") + preservation_mode_name(mode) +
         ";schedule=" + schedule.describe();
}

std::string ScheduleOutcome::to_string() const {
  std::string out = repro();
  if (passed) {
    out += " :: ok";
  } else {
    out += " :: FAIL: " + failure;
  }
  out += " (outages=" + std::to_string(injected_outages) +
         " failures=" + std::to_string(power_failures) +
         " reexecuted=" + std::to_string(reexecuted_jobs) +
         " last_commit=" + std::to_string(last_committed_job) + ")";
  return out;
}

std::size_t CheckReport::failed() const {
  std::size_t count = 0;
  for (const ScheduleOutcome& o : outcomes) {
    if (!o.passed) {
      ++count;
    }
  }
  return count;
}

const ScheduleOutcome* CheckReport::first_failure() const {
  for (const ScheduleOutcome& o : outcomes) {
    if (!o.passed) {
      return &o;
    }
  }
  return nullptr;
}

struct ConsistencyChecker::RunArtifacts {
  engine::InferenceResult result;
  bool threw = false;
  std::string error;
  std::uint64_t injected = 0;
  std::uint64_t total_events = 0;
  std::uint64_t write_events = 0;
  std::vector<std::uint64_t> outage_events;
  std::string commit_violation;
  std::uint32_t last_commit = 0;
  std::string layout_error;
  std::uint32_t persisted_counter = 0;
};

ConsistencyChecker::ConsistencyChecker(const nn::Graph& graph,
                                       nn::Tensor calibration,
                                       CheckerConfig config)
    : graph_(graph.clone()),
      calibration_(std::move(calibration)),
      config_(config) {
  // Jobs per atomic task: a kTaskAtomic failure re-executes at most one
  // task — (block rows x spatial tile) outputs for a GEMM, one output row
  // for a pool, one chunk for a copy.
  nn::Graph probe = graph_.clone();
  engine::EngineConfig ecfg = config_.engine;
  ecfg.mode = PreservationMode::kTaskAtomic;
  const engine::LoweredGraph lowered =
      engine::lower_graph(probe, ecfg, config_.device.memory);
  for (const engine::LoweredNode& ln : lowered.nodes) {
    std::size_t jobs = 1;
    if (ln.is_gemm()) {
      jobs = std::min(ln.plan.br, ln.plan.rows) *
             std::min(ln.plan.bc, ln.plan.cols);
    } else if (ln.kind == engine::LoweredKind::kMaxPool ||
               ln.kind == engine::LoweredKind::kAvgPool) {
      jobs = ln.out_shape.back();
    }
    max_task_jobs_ = std::max(max_task_jobs_, jobs);
  }
}

ConsistencyChecker::RunArtifacts ConsistencyChecker::execute(
    const nn::Tensor& sample, const OutageSchedule& schedule,
    PreservationMode mode, std::uint64_t event_budget) const {
  RunArtifacts art;
  nn::Graph graph = graph_.clone();
  device::Msp430Device device(
      config_.device,
      std::make_unique<power::ConstantSupply>(config_.supply_w),
      config_.buffer);
  engine::EngineConfig ecfg = config_.engine;
  ecfg.mode = mode;
  engine::DeployedModel model(graph, ecfg, device, calibration_);
  FaultInjector injector(schedule);
  injector.set_event_budget(event_budget);
  device.set_fault_hook(&injector);
  engine::IntermittentEngine eng(model, device);
  eng.max_restarts = config_.max_restarts;
  CommitMonitor monitor;
  eng.set_probe(&monitor);

  try {
    art.result = eng.run(sample);
  } catch (const std::exception& e) {
    art.threw = true;
    art.error = e.what();
  }
  device.set_fault_hook(nullptr);

  art.injected = injector.injected();
  art.total_events = injector.total_events();
  art.write_events = injector.write_events();
  art.outage_events = injector.outage_events();
  art.commit_violation = monitor.violation();
  art.last_commit = monitor.last_commit();
  art.layout_error = model.validate_layout(device.nvm());
  try {
    art.persisted_counter = model.read_progress(device.nvm());
  } catch (const engine::IntegrityError&) {
    // Both protected records corrupt — only reachable when the run itself
    // already failed; leave the counter at 0 and let the run's own verdict
    // (exception / divergence) carry the failure.
    art.persisted_counter = 0;
  }
  return art;
}

std::vector<float> ConsistencyChecker::golden(const nn::Tensor& sample) const {
  RunArtifacts art = execute(sample, OutageSchedule::none(),
                             PreservationMode::kAccumulateInVm,
                             FaultInjector::kNoBudget);
  if (art.threw || !art.result.stats.completed) {
    throw std::runtime_error(
        "ConsistencyChecker: golden run failed under continuous power" +
        (art.error.empty() ? std::string() : ": " + art.error));
  }
  return art.result.logits;
}

ScheduleOutcome ConsistencyChecker::check_against(
    const nn::Tensor& sample, const std::vector<float>& golden_logits,
    const OutageSchedule& schedule, PreservationMode mode,
    std::uint64_t event_budget) const {
  RunArtifacts art = execute(sample, schedule, mode, event_budget);

  ScheduleOutcome o;
  o.schedule = schedule;
  o.mode = mode;
  o.completed = !art.threw && art.result.stats.completed;
  o.injected_outages = art.injected;
  o.total_events = art.total_events;
  o.power_failures = art.result.stats.power_failures;
  o.reexecuted_jobs = art.result.stats.reexecuted_jobs;
  o.last_committed_job = art.last_commit;
  o.outage_events = art.outage_events;

  const bool preserving = mode != PreservationMode::kAccumulateInVm;

  // Invariants, most fundamental first; the first violation is the verdict.
  if (art.threw) {
    o.failure = "exception: " + art.error;
    return o;
  }
  if (!o.completed) {
    o.failure = "did not complete within " +
                std::to_string(config_.max_restarts) + " restarts";
    return o;
  }
  if (preserving && !art.commit_violation.empty()) {
    o.failure = art.commit_violation;
    return o;
  }
  if (art.result.logits.size() != golden_logits.size()) {
    o.failure = "logit count " + std::to_string(art.result.logits.size()) +
                " != golden " + std::to_string(golden_logits.size());
    o.first_divergence = 0;
    return o;
  }
  for (std::size_t i = 0; i < golden_logits.size(); ++i) {
    if (art.result.logits[i] != golden_logits[i]) {
      o.first_divergence = static_cast<std::int64_t>(i);
      o.failure = "logit " + std::to_string(i) + " diverged: got " +
                  std::to_string(art.result.logits[i]) + ", golden " +
                  std::to_string(golden_logits[i]);
      return o;
    }
  }
  if (preserving) {
    const std::size_t bound =
        mode == PreservationMode::kImmediate
            ? o.power_failures
            : o.power_failures * max_task_jobs_;
    if (o.reexecuted_jobs > bound) {
      o.failure = "re-executed " + std::to_string(o.reexecuted_jobs) +
                  " jobs > bound " + std::to_string(bound) + " (" +
                  std::to_string(o.power_failures) + " failures, mode " +
                  preservation_mode_name(mode) + ")";
      return o;
    }
    if (art.persisted_counter != art.last_commit) {
      o.failure = "persisted counter " +
                  std::to_string(art.persisted_counter) +
                  " != committed jobs " + std::to_string(art.last_commit);
      return o;
    }
    // In kImmediate every preserved output is its own commit; kTaskAtomic
    // commits once per task, so only the persisted-counter check applies.
    if (mode == PreservationMode::kImmediate &&
        art.last_commit != art.result.stats.preserved_outputs) {
      o.failure = "committed jobs " + std::to_string(art.last_commit) +
                  " != preserved outputs " +
                  std::to_string(art.result.stats.preserved_outputs);
      return o;
    }
  }
  if (!art.layout_error.empty()) {
    o.failure = "NVM layout invalid after run: " + art.layout_error;
    return o;
  }
  o.passed = true;
  return o;
}

std::uint64_t ConsistencyChecker::resolve_budget(
    const nn::Tensor& sample, PreservationMode mode) const {
  if (config_.event_budget != 0) {
    return config_.event_budget;
  }
  return count_events(sample, mode) * 256 + 65536;
}

ScheduleOutcome ConsistencyChecker::check(const nn::Tensor& sample,
                                          const OutageSchedule& schedule,
                                          PreservationMode mode) const {
  return check_against(sample, golden(sample), schedule, mode,
                       resolve_budget(sample, mode));
}

CheckReport ConsistencyChecker::check_schedules(
    const nn::Tensor& sample, const std::vector<OutageSchedule>& schedules,
    PreservationMode mode, runtime::ThreadPool* pool) const {
  const std::vector<float> golden_logits = golden(sample);
  const std::uint64_t budget = resolve_budget(sample, mode);
  CheckReport report;
  report.outcomes = runtime::parallel_map(
      runtime::ThreadPool::resolve(pool), schedules.size(),
      [&](std::size_t index) {
        return check_against(sample, golden_logits, schedules[index], mode,
                             budget);
      });
  return report;
}

std::uint64_t ConsistencyChecker::count_events(const nn::Tensor& sample,
                                               PreservationMode mode) const {
  return execute(sample, OutageSchedule::none(), mode,
                 FaultInjector::kNoBudget)
      .total_events;
}

std::uint64_t ConsistencyChecker::count_write_boundaries(
    const nn::Tensor& sample, PreservationMode mode) const {
  return execute(sample, OutageSchedule::none(), mode,
                 FaultInjector::kNoBudget)
      .write_events;
}

std::vector<OutageSchedule> ConsistencyChecker::exhaustive_write_schedules(
    const nn::Tensor& sample, PreservationMode mode) const {
  const std::uint64_t boundaries = count_write_boundaries(sample, mode);
  std::vector<OutageSchedule> schedules;
  schedules.reserve(boundaries);
  for (std::uint64_t k = 0; k < boundaries; ++k) {
    schedules.push_back(OutageSchedule::at_write(k));
  }
  return schedules;
}

ScheduleOutcome ConsistencyChecker::shrink(const nn::Tensor& sample,
                                           const ScheduleOutcome& failed)
    const {
  const std::vector<float> golden_logits = golden(sample);
  const std::uint64_t budget = resolve_budget(sample, failed.mode);
  const auto try_events = [&](const std::vector<std::uint64_t>& events) {
    return check_against(sample, golden_logits,
                         OutageSchedule::at_events(events), failed.mode,
                         budget);
  };

  // The realized outage ordinals replayed as a fixed schedule reproduce
  // the run exactly (deterministic simulation); if they somehow don't, the
  // original outcome is already the best repro we have.
  std::vector<std::uint64_t> events = failed.outage_events;
  ScheduleOutcome best = try_events(events);
  if (best.passed) {
    return failed;
  }

  // ddmin: drop chunks while the failure persists, halving the chunk size
  // whenever a full scan removes nothing.
  std::size_t chunk = (events.size() + 1) / 2;
  while (chunk >= 1 && events.size() > 1) {
    bool reduced = false;
    for (std::size_t start = 0; start < events.size(); start += chunk) {
      std::vector<std::uint64_t> candidate;
      candidate.reserve(events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i < start || i >= start + chunk) {
          candidate.push_back(events[i]);
        }
      }
      if (candidate.empty()) {
        continue;
      }
      ScheduleOutcome o = try_events(candidate);
      if (!o.passed) {
        events = std::move(candidate);
        best = std::move(o);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) {
        break;
      }
      chunk = (chunk + 1) / 2;
    } else {
      chunk = std::min(chunk, (events.size() + 1) / 2);
    }
  }
  return best;
}

}  // namespace iprune::fault
