#pragma once
// Differential crash-consistency checker.
//
// The checker runs one model under continuous power (the conventional
// accumulate-in-VM flow) to obtain golden logits, then replays the same
// model under a forced-outage schedule in an intermittent-safe
// preservation mode and asserts the full crash-consistency contract:
//
//   1. the run completes (progress is made despite every injected outage);
//   2. logits are bit-identical to the golden run;
//   3. progress commits are strictly monotonic (+1 per commit, no torn or
//      reordered counter writes) and every post-failure recovery re-reads
//      the exact persisted counter (the engine throws otherwise);
//   4. re-execution is bounded: kImmediate loses at most one job per power
//      failure, kTaskAtomic at most one task's worth of jobs;
//   5. the NVM layout is still valid afterwards and the persisted counter
//      equals the number of committed jobs.
//
// Any violation yields a ScheduleOutcome carrying a one-line repro
// (mode + schedule + failing indices); shrink() reduces a failing schedule
// to a minimal kFixed ordinal list via ddmin over the realized outages.
// Every run uses a fresh device and a fresh Graph clone, so batches of
// schedules check in parallel over runtime::parallel_map with
// deterministic, index-ordered results.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fault/schedule.hpp"
#include "nn/graph.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::fault {

/// "immediate" | "task" | "accumulate".
const char* preservation_mode_name(engine::PreservationMode mode);
/// Inverse of preservation_mode_name; throws std::invalid_argument.
engine::PreservationMode parse_preservation_mode(const std::string& name);

struct CheckerConfig {
  device::DeviceConfig device = device::DeviceConfig::msp430fr5994();
  power::BufferConfig buffer;
  engine::EngineConfig engine;  // .mode is overridden per check
  /// Supply power for every run (continuous by default: all outages are
  /// injected, none organic, so reexecution bounds are exact).
  double supply_w = power::SupplyPresets::kContinuousW;
  std::size_t max_restarts = 64;
  /// Chargeable-event watchdog; 0 = auto (clean-run events x 256 + 65536).
  /// A run exceeding the budget is reported as a nontermination failure
  /// instead of looping forever.
  std::uint64_t event_budget = 0;
};

/// Verdict of one (schedule, mode) replay against the golden run.
struct ScheduleOutcome {
  OutageSchedule schedule;
  engine::PreservationMode mode = engine::PreservationMode::kImmediate;
  bool passed = false;
  bool completed = false;
  std::string failure;  // empty when passed; first violated invariant
  std::uint64_t injected_outages = 0;
  std::uint64_t total_events = 0;
  std::size_t power_failures = 0;
  std::size_t reexecuted_jobs = 0;
  /// First logit index differing from golden (-1 = none).
  std::int64_t first_divergence = -1;
  /// Job counter at the last observed commit (the failing job index of a
  /// divergent run is at most this + 1).
  std::uint32_t last_committed_job = 0;
  /// Realized outage ordinals — replaying them as a kFixed schedule
  /// reproduces this run exactly (the shrink basis).
  std::vector<std::uint64_t> outage_events;

  /// One-line replay token, e.g. "mode=immediate;schedule=fixed:3,17".
  /// `fault_check --repro '<token>'` re-runs it.
  [[nodiscard]] std::string repro() const;
  /// Human-readable verdict (repro + failure + counters).
  [[nodiscard]] std::string to_string() const;
};

struct CheckReport {
  std::vector<ScheduleOutcome> outcomes;

  [[nodiscard]] std::size_t failed() const;
  /// First failing outcome in schedule order, nullptr when all passed.
  [[nodiscard]] const ScheduleOutcome* first_failure() const;
};

class ConsistencyChecker {
 public:
  /// Snapshots `graph` (deep clone) and the calibration batch; every run
  /// deploys a fresh clone onto a fresh device, so the checker never
  /// mutates caller state and check_schedules() parallelizes safely.
  ConsistencyChecker(const nn::Graph& graph, nn::Tensor calibration,
                     CheckerConfig config = {});

  /// Golden logits: accumulate-in-VM under continuous power, no injection.
  [[nodiscard]] std::vector<float> golden(const nn::Tensor& sample) const;

  /// Check one schedule under one preservation mode.
  [[nodiscard]] ScheduleOutcome check(const nn::Tensor& sample,
                                      const OutageSchedule& schedule,
                                      engine::PreservationMode mode) const;

  /// Check a batch of schedules (golden run computed once, replays fanned
  /// out over the pool, results in schedule order regardless of lanes).
  [[nodiscard]] CheckReport check_schedules(
      const nn::Tensor& sample, const std::vector<OutageSchedule>& schedules,
      engine::PreservationMode mode,
      runtime::ThreadPool* pool = nullptr) const;

  /// Chargeable events / NVM-write boundaries of one clean (no-injection)
  /// inference in `mode` — the domain of exhaustive sweeps.
  [[nodiscard]] std::uint64_t count_events(
      const nn::Tensor& sample, engine::PreservationMode mode) const;
  [[nodiscard]] std::uint64_t count_write_boundaries(
      const nn::Tensor& sample, engine::PreservationMode mode) const;

  /// One kAtWrite schedule per NVM-write boundary of a clean run in
  /// `mode` — "fail at every preserved-output commit k" in kImmediate.
  [[nodiscard]] std::vector<OutageSchedule> exhaustive_write_schedules(
      const nn::Tensor& sample, engine::PreservationMode mode) const;

  /// Minimize a failing schedule: replay its realized outage ordinals as a
  /// kFixed schedule, then ddmin the ordinal list down to a subset that
  /// still fails. Returns the reduced failing outcome.
  [[nodiscard]] ScheduleOutcome shrink(const nn::Tensor& sample,
                                       const ScheduleOutcome& failed) const;

  /// Upper bound on jobs lost by one mid-task failure in kTaskAtomic
  /// (max over lowered nodes of jobs per atomic task).
  [[nodiscard]] std::size_t max_task_jobs() const { return max_task_jobs_; }

  [[nodiscard]] const CheckerConfig& config() const { return config_; }

 private:
  struct RunArtifacts;

  /// Deploy a fresh clone and run `sample` once with the given injector
  /// state. Engine/injector exceptions are captured, not propagated.
  RunArtifacts execute(const nn::Tensor& sample,
                       const OutageSchedule& schedule,
                       engine::PreservationMode mode,
                       std::uint64_t event_budget) const;

  ScheduleOutcome check_against(const nn::Tensor& sample,
                                const std::vector<float>& golden_logits,
                                const OutageSchedule& schedule,
                                engine::PreservationMode mode,
                                std::uint64_t event_budget) const;

  [[nodiscard]] std::uint64_t resolve_budget(const nn::Tensor& sample,
                                             engine::PreservationMode mode)
      const;

  nn::Graph graph_;
  nn::Tensor calibration_;
  CheckerConfig config_;
  std::size_t max_task_jobs_ = 1;
};

}  // namespace iprune::fault
