#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace iprune::fault {

FaultInjector::FaultInjector(OutageSchedule schedule)
    : schedule_(std::move(schedule)), rng_(schedule_.seed) {}

void FaultInjector::reset() {
  rng_ = util::Rng(schedule_.seed);
  events_ = 0;
  point_events_.fill(0);
  outages_.clear();
}

bool FaultInjector::should_fail(power::FaultPoint point) {
  if (events_ >= event_budget_) {
    throw std::runtime_error(
        "FaultInjector: event budget exhausted after " +
        std::to_string(events_) +
        " chargeable events (schedule \"" + schedule_.describe() +
        "\" appears to prevent forward progress)");
  }
  const std::uint64_t ordinal = events_++;
  const std::uint64_t write_ordinal =
      point_events_[static_cast<std::size_t>(point)]++;
  if (outages_.size() >= schedule_.max_outages) {
    return false;
  }
  const bool fail = decide(point, ordinal, write_ordinal);
  if (fail) {
    outages_.push_back(ordinal);
  }
  return fail;
}

std::size_t FaultInjector::torn_write_bytes(std::size_t total_bytes) {
  switch (schedule_.torn) {
    case TornMode::kDropAll:
      return 0;
    case TornMode::kKeep:
      return static_cast<std::size_t>(
          std::min<std::uint64_t>(schedule_.torn_keep, total_bytes));
    case TornMode::kRandom:
      return total_bytes == 0 ? 0 : rng_.uniform_index(total_bytes);
  }
  return 0;
}

bool FaultInjector::decide(power::FaultPoint point, std::uint64_t ordinal,
                           std::uint64_t write_ordinal) {
  switch (schedule_.mode) {
    case ScheduleMode::kNone:
      return false;
    case ScheduleMode::kFixed:
      return std::binary_search(schedule_.fixed_events.begin(),
                                schedule_.fixed_events.end(), ordinal);
    case ScheduleMode::kEveryNth:
      return (ordinal + 1) % schedule_.every_n == 0;
    case ScheduleMode::kRandom:
      return rng_.bernoulli(schedule_.probability);
    case ScheduleMode::kAtWrite:
      return point == power::FaultPoint::kNvmWrite &&
             write_ordinal == schedule_.write_index;
  }
  return false;
}

}  // namespace iprune::fault
