#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace iprune::fault {

FaultInjector::FaultInjector(OutageSchedule schedule)
    : schedule_(std::move(schedule)), rng_(schedule_.seed) {}

void FaultInjector::reset() {
  rng_ = util::Rng(schedule_.seed);
  events_ = 0;
  point_events_.fill(0);
  outages_.clear();
}

bool FaultInjector::should_fail(power::FaultPoint point) {
  if (events_ >= event_budget_) {
    throw std::runtime_error(
        "FaultInjector: event budget exhausted after " +
        std::to_string(events_) +
        " chargeable events (schedule \"" + schedule_.describe() +
        "\" appears to prevent forward progress)");
  }
  const std::uint64_t ordinal = events_++;
  const std::uint64_t write_ordinal =
      point_events_[static_cast<std::size_t>(point)]++;
  if (outages_.size() >= schedule_.max_outages) {
    return false;
  }
  const bool fail = decide(point, ordinal, write_ordinal);
  if (fail) {
    outages_.push_back(ordinal);
  }
  return fail;
}

std::size_t FaultInjector::torn_write_bytes(std::size_t total_bytes) {
  switch (schedule_.torn) {
    case TornMode::kDropAll:
      return 0;
    case TornMode::kKeep:
      return static_cast<std::size_t>(
          std::min<std::uint64_t>(schedule_.torn_keep, total_bytes));
    case TornMode::kRandom:
      return total_bytes == 0 ? 0 : rng_.uniform_index(total_bytes);
  }
  return 0;
}

std::uint64_t FaultInjector::quiet_events() const {
  const std::uint64_t budget_left =
      event_budget_ == kNoBudget
          ? kNoBudget
          : (events_ >= event_budget_ ? 0 : event_budget_ - events_);

  std::uint64_t schedule_quiet = 0;
  if (outages_.size() >= schedule_.max_outages) {
    // The schedule already fired its maximum; every future event is quiet.
    schedule_quiet = kNoBudget;
  } else {
    switch (schedule_.mode) {
      case ScheduleMode::kNone:
        schedule_quiet = kNoBudget;
        break;
      case ScheduleMode::kFixed: {
        // Next scheduled ordinal >= events_ (the list is sorted unique).
        const auto it = std::lower_bound(schedule_.fixed_events.begin(),
                                         schedule_.fixed_events.end(),
                                         events_);
        schedule_quiet = it == schedule_.fixed_events.end()
                             ? kNoBudget
                             : *it - events_;
        break;
      }
      case ScheduleMode::kEveryNth: {
        // Next firing ordinal o >= events_ with (o + 1) % n == 0.
        const std::uint64_t n = schedule_.every_n;
        const std::uint64_t next = (events_ + 1 + (n - 1)) / n * n - 1;
        schedule_quiet = next - events_;
        break;
      }
      case ScheduleMode::kRandom:
        schedule_quiet = 0;  // every event consumes an RNG draw
        break;
      case ScheduleMode::kAtWrite: {
        const std::uint64_t writes =
            point_events_[static_cast<std::size_t>(
                power::FaultPoint::kNvmWrite)];
        // Once the target write ordinal is behind us the schedule can
        // never fire again; otherwise any upcoming event could be the
        // write that triggers it.
        schedule_quiet = writes > schedule_.write_index ? kNoBudget : 0;
        break;
      }
    }
  }
  return std::min(schedule_quiet, budget_left);
}

void FaultInjector::skip_quiet_events(std::uint64_t count,
                                      const std::uint64_t* per_point) {
  events_ += count;
  if (per_point != nullptr) {
    for (std::size_t p = 0; p < point_events_.size(); ++p) {
      point_events_[p] += per_point[p];
    }
  }
}

bool FaultInjector::decide(power::FaultPoint point, std::uint64_t ordinal,
                           std::uint64_t write_ordinal) {
  switch (schedule_.mode) {
    case ScheduleMode::kNone:
      return false;
    case ScheduleMode::kFixed:
      return std::binary_search(schedule_.fixed_events.begin(),
                                schedule_.fixed_events.end(), ordinal);
    case ScheduleMode::kEveryNth:
      return (ordinal + 1) % schedule_.every_n == 0;
    case ScheduleMode::kRandom:
      return rng_.bernoulli(schedule_.probability);
    case ScheduleMode::kAtWrite:
      return point == power::FaultPoint::kNvmWrite &&
             write_ordinal == schedule_.write_index;
  }
  return false;
}

}  // namespace iprune::fault
