#pragma once
// Deterministic outage injector: the bridge between an OutageSchedule and
// the PowerManager's fault hook.
//
// Every PowerManager::consume call is one chargeable event; the injector
// assigns it the next global ordinal (starting at 0), bumps the per-point
// counters, and answers whether the schedule forces an outage there. The
// decision is a pure function of the event-stream prefix, so an identical
// simulation replays identically — which is what lets the consistency
// checker turn any failing schedule into a kFixed repro from the realized
// outage ordinals.

#include <array>
#include <cstdint>
#include <vector>

#include "fault/schedule.hpp"
#include "power/fault_hook.hpp"
#include "util/rng.hpp"

namespace iprune::fault {

class FaultInjector final : public power::FaultHook {
 public:
  static constexpr std::uint64_t kNoBudget =
      std::numeric_limits<std::uint64_t>::max();

  explicit FaultInjector(OutageSchedule schedule);

  /// FaultHook: called once per chargeable event, in simulation order.
  /// Throws std::runtime_error if the event budget is exhausted (the
  /// nontermination watchdog for schedules denser than one inference).
  bool should_fail(power::FaultPoint point) override;

  /// FaultHook: torn-write prefix for the staged NVM commit interrupted
  /// by the outage just injected, per the schedule's TornMode. kRandom
  /// draws from the schedule RNG stream (after the outage decision), so
  /// replays with the same seed tear at the same offsets.
  std::size_t torn_write_bytes(std::size_t total_bytes) override;

  /// FaultHook: how many upcoming consecutive events are guaranteed quiet
  /// (no injection, no budget exhaustion) regardless of their FaultPoint.
  /// Pure: does not advance any counter. The bound is the distance to the
  /// schedule's next possible firing, clamped to the remaining event
  /// budget — so a granted window can never skip past the watchdog.
  /// kRandom schedules answer 0 (every event consumes an RNG draw).
  [[nodiscard]] std::uint64_t quiet_events() const override;

  /// FaultHook: settle `count` events skipped inside a quiet window,
  /// advancing the global and per-point ordinals exactly as `count`
  /// should_fail calls returning false would have.
  void skip_quiet_events(std::uint64_t count,
                         const std::uint64_t* per_point) override;

  /// Rewind to the pre-run state (counters, RNG stream, realized outages)
  /// so one injector can drive several runs of the same schedule.
  void reset();

  /// Abort the run (std::runtime_error from should_fail) once more than
  /// `budget` events have been observed. kNoBudget disables the watchdog.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

  [[nodiscard]] const OutageSchedule& schedule() const { return schedule_; }
  /// Total chargeable events observed so far.
  [[nodiscard]] std::uint64_t total_events() const { return events_; }
  /// Events observed at one fault point (e.g. NVM-write boundaries).
  [[nodiscard]] std::uint64_t events_at(power::FaultPoint point) const {
    return point_events_[static_cast<std::size_t>(point)];
  }
  [[nodiscard]] std::uint64_t write_events() const {
    return events_at(power::FaultPoint::kNvmWrite);
  }
  /// Outages actually forced so far.
  [[nodiscard]] std::uint64_t injected() const { return outages_.size(); }
  /// Global ordinals of every forced outage, in order — replaying them as
  /// OutageSchedule::at_events reproduces this run exactly.
  [[nodiscard]] const std::vector<std::uint64_t>& outage_events() const {
    return outages_;
  }

 private:
  [[nodiscard]] bool decide(power::FaultPoint point, std::uint64_t ordinal,
                            std::uint64_t write_ordinal);

  OutageSchedule schedule_;
  util::Rng rng_;
  std::uint64_t events_ = 0;
  std::array<std::uint64_t,
             static_cast<std::size_t>(power::FaultPoint::kPointCount)>
      point_events_{};
  std::vector<std::uint64_t> outages_;
  std::uint64_t event_budget_ = kNoBudget;
};

}  // namespace iprune::fault
