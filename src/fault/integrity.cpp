#include "fault/integrity.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "device/corruption.hpp"
#include "engine/deploy.hpp"
#include "engine/engine.hpp"
#include "engine/integrity.hpp"
#include "fault/injector.hpp"
#include "power/supply.hpp"
#include "runtime/parallel.hpp"

namespace iprune::fault {

namespace {

using engine::PreservationMode;

/// Resolve a scenario region spec against the deployed layout: exact
/// label match first, otherwise the first region whose label ends with
/// the spec (so ".bsr_values" targets the first weights region without
/// hard-coding layer names).
const engine::DeployedModel::Region& find_region(
    const engine::DeployedModel& model, const std::string& spec) {
  for (const auto& r : model.regions()) {
    if (r.label == spec) {
      return r;
    }
  }
  for (const auto& r : model.regions()) {
    if (r.label.size() >= spec.size() &&
        r.label.compare(r.label.size() - spec.size(), spec.size(), spec) ==
            0) {
      return r;
    }
  }
  throw std::invalid_argument(
      "integrity scenario: no deployed region matches '" + spec + "'");
}

}  // namespace

const char* integrity_verdict_name(IntegrityVerdict verdict) {
  switch (verdict) {
    case IntegrityVerdict::kConsistent:
      return "consistent";
    case IntegrityVerdict::kRecovered:
      return "recovered";
    case IntegrityVerdict::kDetected:
      return "detected";
    case IntegrityVerdict::kSilent:
      return "SILENT";
    case IntegrityVerdict::kCrashed:
      return "CRASHED";
  }
  return "?";
}

std::string ScenarioOutcome::to_string() const {
  std::string out = label + " mode=" + preservation_mode_name(mode) +
                    (protect ? " protected" : " unprotected") +
                    " :: " + integrity_verdict_name(verdict);
  if (!detail.empty()) {
    out += ": " + detail;
  }
  out += " (failures=" + std::to_string(power_failures) +
         " rollbacks=" + std::to_string(integrity_rollbacks) +
         " scrub_fail=" + std::to_string(scrub_failures) +
         " flips=" + std::to_string(write_flips) + "w/" +
         std::to_string(read_flips) + "r stuck=" +
         std::to_string(stuck_hits) + ")";
  return out;
}

std::size_t IntegrityReport::count(IntegrityVerdict verdict) const {
  std::size_t n = 0;
  for (const ScenarioOutcome& o : outcomes) {
    if (o.verdict == verdict) {
      ++n;
    }
  }
  return n;
}

const ScenarioOutcome* IntegrityReport::first(
    IntegrityVerdict verdict) const {
  for (const ScenarioOutcome& o : outcomes) {
    if (o.verdict == verdict) {
      return &o;
    }
  }
  return nullptr;
}

int IntegrityReport::exit_code() const {
  bool contained = false;
  for (const ScenarioOutcome& o : outcomes) {
    switch (o.verdict) {
      case IntegrityVerdict::kSilent:
      case IntegrityVerdict::kCrashed:
        return 2;
      case IntegrityVerdict::kRecovered:
      case IntegrityVerdict::kDetected:
        contained = true;
        break;
      case IntegrityVerdict::kConsistent:
        break;
    }
  }
  return contained ? 1 : 0;
}

IntegrityChecker::IntegrityChecker(const nn::Graph& graph,
                                   nn::Tensor calibration,
                                   CheckerConfig config)
    : graph_(graph.clone()),
      calibration_(std::move(calibration)),
      config_(config) {}

namespace {

struct RunOut {
  engine::InferenceResult result;
  bool threw_integrity = false;
  bool threw_other = false;
  std::string error;
  std::uint64_t total_events = 0;
  std::uint64_t write_events = 0;
  std::uint64_t write_flips = 0;
  std::uint64_t read_flips = 0;
  std::uint64_t stuck_hits = 0;
};

}  // namespace

/// One full replay. The corruption model is installed *before*
/// deployment so deploy-time write faults land in sealed regions exactly
/// like field corruption would (the seal covers intended content).
/// Region specs are resolved against an uncorrupted probe deployment —
/// the layout is deterministic for a given (graph, config).
static RunOut run_scenario(const nn::Graph& graph_src,
                           const nn::Tensor& calibration,
                           const CheckerConfig& cfg,
                           const nn::Tensor& sample,
                           const CorruptionScenario& scenario,
                           PreservationMode mode, bool protect,
                           std::uint64_t event_budget) {
  engine::EngineConfig ecfg = cfg.engine;
  ecfg.mode = mode;
  ecfg.integrity.protect_progress = protect;
  ecfg.integrity.seal_regions = protect;
  ecfg.integrity.scrub_on_boot = protect;

  device::CorruptionConfig ccfg;
  ccfg.seed = scenario.seed;
  ccfg.write_ber = scenario.write_ber;
  ccfg.read_ber = scenario.read_ber;
  if (!scenario.window_region.empty() || !scenario.stuck.empty()) {
    nn::Graph probe_graph = graph_src.clone();
    device::Msp430Device probe(
        cfg.device, std::make_unique<power::ConstantSupply>(cfg.supply_w),
        cfg.buffer);
    engine::DeployedModel layout(probe_graph, ecfg, probe, calibration);
    if (!scenario.window_region.empty()) {
      const auto& r = find_region(layout, scenario.window_region);
      ccfg.window_begin = r.begin;
      ccfg.window_end = r.begin + r.bytes;
    }
    for (const StuckSpec& s : scenario.stuck) {
      const auto& r = find_region(layout, s.region);
      if (s.offset >= r.bytes) {
        throw std::invalid_argument("integrity scenario: stuck offset " +
                                    std::to_string(s.offset) +
                                    " outside region '" + r.label + "'");
      }
      ccfg.stuck.push_back({r.begin + s.offset, s.bit, s.value});
    }
  }

  RunOut out;
  nn::Graph graph = graph_src.clone();
  device::Msp430Device device(
      cfg.device, std::make_unique<power::ConstantSupply>(cfg.supply_w),
      cfg.buffer);
  device::CorruptionModel corruption(ccfg);
  if (scenario.has_corruption()) {
    device.nvm().set_corruption(&corruption);
  }
  FaultInjector injector(scenario.schedule);
  injector.set_event_budget(event_budget);
  device.set_fault_hook(&injector);
  try {
    engine::DeployedModel model(graph, ecfg, device, calibration);
    engine::IntermittentEngine eng(model, device);
    eng.max_restarts = cfg.max_restarts;
    out.result = eng.run(sample);
  } catch (const engine::IntegrityError& e) {
    out.threw_integrity = true;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.threw_other = true;
    out.error = e.what();
  }
  device.set_fault_hook(nullptr);
  device.nvm().set_corruption(nullptr);
  out.total_events = injector.total_events();
  out.write_events = injector.write_events();
  out.write_flips = corruption.write_flips();
  out.read_flips = corruption.read_flips();
  out.stuck_hits = corruption.stuck_hits();
  return out;
}

std::vector<float> IntegrityChecker::golden(const nn::Tensor& sample) const {
  CorruptionScenario clean;
  RunOut out = run_scenario(graph_, calibration_, config_, sample, clean,
                            PreservationMode::kAccumulateInVm,
                            /*protect=*/false, FaultInjector::kNoBudget);
  if (out.threw_integrity || out.threw_other ||
      !out.result.stats.completed) {
    throw std::runtime_error(
        "IntegrityChecker: golden run failed under continuous power" +
        (out.error.empty() ? std::string() : ": " + out.error));
  }
  return out.result.logits;
}

ScenarioOutcome IntegrityChecker::check_against(
    const nn::Tensor& sample, const std::vector<float>& golden_logits,
    const CorruptionScenario& scenario, PreservationMode mode, bool protect,
    std::uint64_t event_budget) const {
  RunOut run = run_scenario(graph_, calibration_, config_, sample, scenario,
                            mode, protect, event_budget);

  ScenarioOutcome o;
  o.label = scenario.label;
  o.mode = mode;
  o.protect = protect;
  o.power_failures = run.result.stats.power_failures;
  o.integrity_rollbacks = run.result.stats.integrity_rollbacks;
  o.scrub_failures = run.result.stats.scrub_failures;
  o.write_flips = run.write_flips;
  o.read_flips = run.read_flips;
  o.stuck_hits = run.stuck_hits;

  if (run.threw_integrity) {
    o.verdict = IntegrityVerdict::kDetected;
    o.detail = run.error;
    return o;
  }
  if (run.threw_other) {
    o.verdict = IntegrityVerdict::kCrashed;
    o.detail = run.error;
    return o;
  }
  if (!run.result.stats.completed) {
    o.verdict = IntegrityVerdict::kCrashed;
    o.detail = "did not complete within " +
               std::to_string(config_.max_restarts) + " restarts";
    return o;
  }
  if (run.result.logits.size() != golden_logits.size()) {
    o.verdict = IntegrityVerdict::kSilent;
    o.detail = "logit count " + std::to_string(run.result.logits.size()) +
               " != golden " + std::to_string(golden_logits.size());
    return o;
  }
  for (std::size_t i = 0; i < golden_logits.size(); ++i) {
    if (run.result.logits[i] != golden_logits[i]) {
      o.verdict = IntegrityVerdict::kSilent;
      o.detail = "logit " + std::to_string(i) + " diverged: got " +
                 std::to_string(run.result.logits[i]) + ", golden " +
                 std::to_string(golden_logits[i]);
      return o;
    }
  }
  o.verdict = o.integrity_rollbacks > 0 ? IntegrityVerdict::kRecovered
                                        : IntegrityVerdict::kConsistent;
  return o;
}

std::uint64_t IntegrityChecker::resolve_budget(const nn::Tensor& sample,
                                               PreservationMode mode,
                                               bool protect) const {
  if (config_.event_budget != 0) {
    return config_.event_budget;
  }
  CorruptionScenario clean;
  const RunOut out =
      run_scenario(graph_, calibration_, config_, sample, clean, mode,
                   protect, FaultInjector::kNoBudget);
  return out.total_events * 256 + 65536;
}

ScenarioOutcome IntegrityChecker::check(const nn::Tensor& sample,
                                        const CorruptionScenario& scenario,
                                        PreservationMode mode,
                                        bool protect) const {
  return check_against(sample, golden(sample), scenario, mode, protect,
                       resolve_budget(sample, mode, protect));
}

IntegrityReport IntegrityChecker::check_scenarios(
    const nn::Tensor& sample,
    const std::vector<CorruptionScenario>& scenarios,
    PreservationMode mode, bool protect, runtime::ThreadPool* pool) const {
  const std::vector<float> golden_logits = golden(sample);
  const std::uint64_t budget = resolve_budget(sample, mode, protect);
  IntegrityReport report;
  report.outcomes = runtime::parallel_map(
      runtime::ThreadPool::resolve(pool), scenarios.size(),
      [&](std::size_t index) {
        return check_against(sample, golden_logits, scenarios[index], mode,
                             protect, budget);
      });
  return report;
}

std::uint64_t IntegrityChecker::count_write_boundaries(
    const nn::Tensor& sample, PreservationMode mode, bool protect) const {
  CorruptionScenario clean;
  return run_scenario(graph_, calibration_, config_, sample, clean, mode,
                      protect, FaultInjector::kNoBudget)
      .write_events;
}

std::vector<CorruptionScenario> IntegrityChecker::torn_commit_sweep(
    std::uint64_t boundaries, std::uint64_t stride,
    const std::vector<std::uint64_t>& keeps) {
  if (stride == 0) {
    stride = 1;
  }
  std::vector<CorruptionScenario> scenarios;
  for (std::uint64_t k = 0; k < boundaries; k += stride) {
    for (const std::uint64_t keep : keeps) {
      CorruptionScenario s;
      s.label = "torn@" + std::to_string(k) + ";keep=" + std::to_string(keep);
      s.schedule = OutageSchedule::at_write(k).with_torn_keep(keep);
      scenarios.push_back(std::move(s));
    }
    CorruptionScenario r;
    r.label = "torn@" + std::to_string(k) + ";rand";
    r.schedule = OutageSchedule::at_write(k).with_torn_random();
    scenarios.push_back(std::move(r));
  }
  return scenarios;
}

}  // namespace iprune::fault
