#pragma once
// Differential NVM data-integrity checker.
//
// The ConsistencyChecker (checker.hpp) proves crash consistency under
// clean power failures — every interrupted write simply vanishes. This
// checker closes the remaining gap in the threat model: writes that are
// *torn* at the outage boundary (a prefix of the in-flight WriteBatch
// lands), bit flips on the NVM store/load paths, and stuck-at cells.
//
// Each CorruptionScenario names a fault load (an OutageSchedule with a
// torn-write spec, bit-error rates, stuck cells — addresses given as
// region labels resolved against the deployed layout). check() replays
// the scenario twice conceptually: the caller picks whether the NVM
// integrity layer (CRC-sealed progress records, sealed static regions,
// boot scrub) is armed, and the outcome is classified:
//
//   kConsistent  completed, logits bit-identical to golden, no recovery
//   kRecovered   completed bit-identical, but only because the integrity
//                layer rolled back a torn/corrupt progress record
//   kDetected    fail-stop: the run threw IntegrityError (boot scrub or
//                double-corrupt progress records) — corruption was caught
//                before producing wrong output
//   kSilent      completed with logits diverging from golden — silent
//                data corruption escaped
//   kCrashed     any other failure (consistency exception, nontermination)
//
// IntegrityReport::exit_code() maps a batch to the fault_check --corrupt
// CLI contract: 0 = every scenario consistent, 1 = corruption occurred
// but was always detected/recovered, 2 = at least one silent escape or
// unrecovered crash.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/checker.hpp"
#include "fault/schedule.hpp"
#include "nn/graph.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::fault {

enum class IntegrityVerdict : std::uint8_t {
  kConsistent,
  kRecovered,
  kDetected,
  kSilent,
  kCrashed,
};

const char* integrity_verdict_name(IntegrityVerdict verdict);

/// One stuck cell, addressed relative to a deployed NVM region.
struct StuckSpec {
  std::string region;  // label (exact, or unique suffix like ".bsr_values")
  std::size_t offset = 0;
  std::uint8_t bit = 0;
  bool value = false;
};

struct CorruptionScenario {
  std::string label;
  /// Outage schedule; its torn-write spec decides how much of the batch
  /// in flight at each injected outage lands (see OutageSchedule::torn).
  OutageSchedule schedule = OutageSchedule::none();
  std::uint64_t seed = 1;
  double write_ber = 0.0;
  double read_ber = 0.0;
  /// Confine BER faults to one region ("" = whole NVM). Same label
  /// resolution as StuckSpec::region.
  std::string window_region;
  std::vector<StuckSpec> stuck;

  [[nodiscard]] bool has_corruption() const {
    return write_ber > 0.0 || read_ber > 0.0 || !stuck.empty();
  }
};

struct ScenarioOutcome {
  std::string label;
  engine::PreservationMode mode = engine::PreservationMode::kImmediate;
  bool protect = false;
  IntegrityVerdict verdict = IntegrityVerdict::kCrashed;
  std::string detail;  // exception text / first divergence
  std::size_t power_failures = 0;
  std::size_t integrity_rollbacks = 0;
  std::size_t scrub_failures = 0;
  std::uint64_t write_flips = 0;
  std::uint64_t read_flips = 0;
  std::uint64_t stuck_hits = 0;

  [[nodiscard]] std::string to_string() const;
};

struct IntegrityReport {
  std::vector<ScenarioOutcome> outcomes;

  [[nodiscard]] std::size_t count(IntegrityVerdict verdict) const;
  /// First outcome with the given verdict, nullptr when none.
  [[nodiscard]] const ScenarioOutcome* first(IntegrityVerdict verdict) const;
  /// 0 = all consistent; 1 = corruption detected and contained
  /// (recovered or fail-stopped) in every scenario; 2 = silent escape
  /// or unrecovered crash.
  [[nodiscard]] int exit_code() const;
};

class IntegrityChecker {
 public:
  /// Snapshots the graph and calibration batch like ConsistencyChecker;
  /// `config.engine.integrity` is overridden per check (all-on when
  /// `protect`, all-off otherwise).
  IntegrityChecker(const nn::Graph& graph, nn::Tensor calibration,
                   CheckerConfig config = {});

  /// Golden logits: accumulate-in-VM, continuous power, no corruption.
  [[nodiscard]] std::vector<float> golden(const nn::Tensor& sample) const;

  [[nodiscard]] ScenarioOutcome check(const nn::Tensor& sample,
                                      const CorruptionScenario& scenario,
                                      engine::PreservationMode mode,
                                      bool protect) const;

  /// Batch check (golden computed once, scenarios fanned out over the
  /// pool, results in scenario order).
  [[nodiscard]] IntegrityReport check_scenarios(
      const nn::Tensor& sample,
      const std::vector<CorruptionScenario>& scenarios,
      engine::PreservationMode mode, bool protect,
      runtime::ThreadPool* pool = nullptr) const;

  /// NVM-write boundaries of one clean run in `mode` with the integrity
  /// layer armed/disarmed (the domains differ: protection adds commits'
  /// record bytes but no extra boundaries).
  [[nodiscard]] std::uint64_t count_write_boundaries(
      const nn::Tensor& sample, engine::PreservationMode mode,
      bool protect) const;

  /// Torn-commit sweep: for every `stride`-th write boundary k, one
  /// scenario tearing the batch at each keep length in `keeps` plus one
  /// schedule-seeded random tear. No BER / stuck faults — pure
  /// outage-boundary torn writes.
  [[nodiscard]] static std::vector<CorruptionScenario> torn_commit_sweep(
      std::uint64_t boundaries, std::uint64_t stride,
      const std::vector<std::uint64_t>& keeps);

  [[nodiscard]] const CheckerConfig& config() const { return config_; }

 private:
  ScenarioOutcome check_against(const nn::Tensor& sample,
                                const std::vector<float>& golden_logits,
                                const CorruptionScenario& scenario,
                                engine::PreservationMode mode, bool protect,
                                std::uint64_t event_budget) const;

  [[nodiscard]] std::uint64_t resolve_budget(const nn::Tensor& sample,
                                             engine::PreservationMode mode,
                                             bool protect) const;

  nn::Graph graph_;
  nn::Tensor calibration_;
  CheckerConfig config_;
};

}  // namespace iprune::fault
