#include "fault/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace iprune::fault {

namespace {

[[noreturn]] void parse_error(const std::string& text,
                              const std::string& why) {
  throw std::invalid_argument("OutageSchedule::parse: " + why + " in \"" +
                              text + "\"");
}

std::uint64_t parse_u64(const std::string& text, const std::string& token) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  // stoull alone accepts leading whitespace and a wrapping '-' ("-5"
  // parses as 2^64-5); require a leading digit.
  if (token.empty() || token[0] < '0' || token[0] > '9') {
    parse_error(text, "expected integer, got '" + token + "'");
  }
  // The specific diagnostics must be raised outside this try: parse_error
  // itself throws std::invalid_argument and would otherwise be swallowed
  // by the catch below and re-reported as the generic message.
  try {
    value = std::stoull(token, &used);
  } catch (const std::invalid_argument&) {
    parse_error(text, "expected integer, got '" + token + "'");
  } catch (const std::out_of_range&) {
    parse_error(text, "integer out of range: '" + token + "'");
  }
  if (used != token.size()) {
    parse_error(text, "trailing characters after integer '" + token + "'");
  }
  return value;
}

double parse_probability(const std::string& text, const std::string& token) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &used);
  } catch (const std::invalid_argument&) {
    parse_error(text, "expected probability, got '" + token + "'");
  } catch (const std::out_of_range&) {
    parse_error(text, "probability must be in [0, 1], got '" + token + "'");
  }
  if (used != token.size() || !(value >= 0.0) || !(value <= 1.0)) {
    parse_error(text, "probability must be in [0, 1], got '" + token + "'");
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::string format_probability(double p) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

}  // namespace

const char* schedule_mode_name(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kNone:
      return "none";
    case ScheduleMode::kFixed:
      return "fixed";
    case ScheduleMode::kEveryNth:
      return "every";
    case ScheduleMode::kRandom:
      return "random";
    case ScheduleMode::kAtWrite:
      return "write";
  }
  return "?";
}

const char* torn_mode_name(TornMode mode) {
  switch (mode) {
    case TornMode::kDropAll:
      return "drop";
    case TornMode::kKeep:
      return "keep";
    case TornMode::kRandom:
      return "rand";
  }
  return "?";
}

OutageSchedule OutageSchedule::none() { return {}; }

OutageSchedule OutageSchedule::at_events(std::vector<std::uint64_t> events) {
  OutageSchedule s;
  s.mode = ScheduleMode::kFixed;
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  s.fixed_events = std::move(events);
  return s;
}

OutageSchedule OutageSchedule::every_nth(std::uint64_t n,
                                         std::uint64_t max_outages) {
  if (n == 0) {
    throw std::invalid_argument("OutageSchedule::every_nth: n must be >= 1");
  }
  OutageSchedule s;
  s.mode = ScheduleMode::kEveryNth;
  s.every_n = n;
  s.max_outages = max_outages;
  return s;
}

OutageSchedule OutageSchedule::random(std::uint64_t seed, double probability,
                                      std::uint64_t max_outages) {
  if (!(probability >= 0.0) || !(probability <= 1.0)) {
    throw std::invalid_argument(
        "OutageSchedule::random: probability must be in [0, 1]");
  }
  OutageSchedule s;
  s.mode = ScheduleMode::kRandom;
  s.seed = seed;
  s.probability = probability;
  s.max_outages = max_outages;
  return s;
}

OutageSchedule OutageSchedule::at_write(std::uint64_t k) {
  OutageSchedule s;
  s.mode = ScheduleMode::kAtWrite;
  s.write_index = k;
  return s;
}

OutageSchedule OutageSchedule::with_torn_keep(std::uint64_t keep_bytes) const {
  OutageSchedule s = *this;
  s.torn = TornMode::kKeep;
  s.torn_keep = keep_bytes;
  return s;
}

OutageSchedule OutageSchedule::with_torn_random() const {
  OutageSchedule s = *this;
  s.torn = TornMode::kRandom;
  s.torn_keep = 0;
  return s;
}

std::string OutageSchedule::describe() const {
  std::string out;
  switch (mode) {
    case ScheduleMode::kNone:
      return "none";
    case ScheduleMode::kFixed: {
      out = "fixed:";
      for (std::size_t i = 0; i < fixed_events.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += std::to_string(fixed_events[i]);
      }
      break;
    }
    case ScheduleMode::kEveryNth:
      out = "every:" + std::to_string(every_n);
      break;
    case ScheduleMode::kRandom:
      out = "random:seed=" + std::to_string(seed) +
            ";p=" + format_probability(probability);
      break;
    case ScheduleMode::kAtWrite:
      out = "write:" + std::to_string(write_index);
      break;
  }
  switch (torn) {
    case TornMode::kDropAll:
      break;  // the default is left implicit
    case TornMode::kKeep:
      out += ";torn=keep:" + std::to_string(torn_keep);
      break;
    case TornMode::kRandom:
      out += ";torn=rand";
      break;
  }
  if (max_outages != kUnlimited) {
    out += ";max=" + std::to_string(max_outages);
  }
  return out;
}

OutageSchedule OutageSchedule::parse(const std::string& text) {
  if (text == "none") {
    return none();
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    parse_error(text, "missing ':' after mode");
  }
  const std::string head = text.substr(0, colon);
  std::vector<std::string> fields = split(text.substr(colon + 1), ';');

  // A trailing "max=N" field applies to every mode.
  std::uint64_t max_outages = kUnlimited;
  if (!fields.empty() && fields.back().rfind("max=", 0) == 0) {
    max_outages = parse_u64(text, fields.back().substr(4));
    fields.pop_back();
  }

  // An optional "torn=..." field (now trailing, after max was stripped).
  TornMode torn = TornMode::kDropAll;
  std::uint64_t torn_keep = 0;
  if (!fields.empty() && fields.back().rfind("torn=", 0) == 0) {
    const std::string spec = fields.back().substr(5);
    if (spec == "rand") {
      torn = TornMode::kRandom;
    } else if (spec.rfind("keep:", 0) == 0) {
      torn = TornMode::kKeep;
      torn_keep = parse_u64(text, spec.substr(5));
    } else if (spec == "drop") {
      torn = TornMode::kDropAll;
    } else {
      parse_error(text, "torn takes drop | keep:<bytes> | rand, got '" +
                            spec + "'");
    }
    fields.pop_back();
  }

  OutageSchedule s;
  if (head == "fixed") {
    if (fields.size() != 1) {
      parse_error(text, "fixed takes one comma-separated event list");
    }
    std::vector<std::uint64_t> events;
    if (!fields[0].empty()) {
      for (const std::string& token : split(fields[0], ',')) {
        events.push_back(parse_u64(text, token));
      }
    }
    s = at_events(std::move(events));
  } else if (head == "every") {
    if (fields.size() != 1) {
      parse_error(text, "every takes a single period");
    }
    const std::uint64_t period = parse_u64(text, fields[0]);
    if (period == 0) {
      // Raised here, not left to every_nth(): every parse failure carries
      // the canonical "OutageSchedule::parse: ... in \"<text>\"" shape.
      parse_error(text, "period must be >= 1");
    }
    s = every_nth(period);
  } else if (head == "random") {
    if (fields.size() != 2 || fields[0].rfind("seed=", 0) != 0 ||
        fields[1].rfind("p=", 0) != 0) {
      parse_error(text, "random takes seed=<u64>;p=<prob>");
    }
    s = random(parse_u64(text, fields[0].substr(5)),
               parse_probability(text, fields[1].substr(2)));
  } else if (head == "write") {
    if (fields.size() != 1) {
      parse_error(text, "write takes a single write ordinal");
    }
    s = at_write(parse_u64(text, fields[0]));
  } else {
    parse_error(text, "unknown mode '" + head + "'");
  }
  s.max_outages = max_outages;
  s.torn = torn;
  s.torn_keep = torn_keep;
  return s;
}

}  // namespace iprune::fault
