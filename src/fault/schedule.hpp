#pragma once
// Deterministic outage schedules for power-failure fault injection.
//
// A schedule decides, as a pure function of the chargeable-event stream
// (every device primitive is one event, ordinals start at 0), where forced
// outages land:
//   kFixed      fail at an explicit sorted list of global event ordinals
//   kEveryNth   fail every nth event (1-based: events n-1, 2n-1, ...)
//   kRandom     fail each event with probability p, seeded (xoshiro)
//   kAtWrite    fail at exactly the kth NVM-write boundary (exhaustive
//               sweeps instantiate one schedule per k)
// Every schedule round-trips through describe()/parse(), which is how the
// consistency checker prints a minimized repro and how `fault_check
// --repro` replays one.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace iprune::fault {

enum class ScheduleMode : std::uint8_t {
  kNone = 0,
  kFixed,
  kEveryNth,
  kRandom,
  kAtWrite,
};

const char* schedule_mode_name(ScheduleMode mode);

/// What an injected outage does to the NVM commit it interrupts.
enum class TornMode : std::uint8_t {
  kDropAll = 0,  // all-or-nothing: the in-flight commit is fully lost
  kKeep,         // the first `torn_keep` bytes land (clamped to total-1)
  kRandom,       // a seeded uniform prefix of [0, total) bytes lands
};

const char* torn_mode_name(TornMode mode);

struct OutageSchedule {
  static constexpr std::uint64_t kUnlimited =
      std::numeric_limits<std::uint64_t>::max();

  ScheduleMode mode = ScheduleMode::kNone;
  /// kFixed: global event ordinals, kept sorted + deduplicated.
  std::vector<std::uint64_t> fixed_events;
  /// kEveryNth: period (>= 1).
  std::uint64_t every_n = 0;
  /// kRandom: RNG seed and per-event outage probability.
  std::uint64_t seed = 0;
  double probability = 0.0;
  /// kAtWrite: 0-based ordinal among NVM-write events.
  std::uint64_t write_index = 0;
  /// Stop injecting after this many forced outages (all modes).
  std::uint64_t max_outages = kUnlimited;
  /// Torn-write behaviour at injected outages (composes with any mode).
  /// kRandom draws from the schedule RNG stream, so the same seed yields
  /// the same tear offsets on replay.
  TornMode torn = TornMode::kDropAll;
  /// kKeep: how many leading bytes of the interrupted commit land.
  std::uint64_t torn_keep = 0;

  static OutageSchedule none();
  static OutageSchedule at_events(std::vector<std::uint64_t> events);
  static OutageSchedule every_nth(std::uint64_t n,
                                  std::uint64_t max_outages = kUnlimited);
  static OutageSchedule random(std::uint64_t seed, double probability,
                               std::uint64_t max_outages = kUnlimited);
  static OutageSchedule at_write(std::uint64_t k);

  /// Fluent torn-write modifiers: `at_write(k).with_torn_keep(2)`.
  [[nodiscard]] OutageSchedule with_torn_keep(std::uint64_t keep_bytes) const;
  [[nodiscard]] OutageSchedule with_torn_random() const;

  /// Canonical one-line repro form, e.g.
  ///   "none" | "fixed:3,17,99" | "every:50;max=3"
  ///   "random:seed=42;p=0.01;max=8" | "write:17"
  /// An optional ";torn=keep:<k>" / ";torn=rand" field (before any
  /// ";max=") selects the torn-write behaviour; absent means drop-all.
  [[nodiscard]] std::string describe() const;

  /// Inverse of describe(). Throws std::invalid_argument on malformed
  /// input (the error names the offending fragment).
  static OutageSchedule parse(const std::string& text);

  bool operator==(const OutageSchedule& other) const = default;
};

}  // namespace iprune::fault
