#include "fault/testbed.hpp"

#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace iprune::fault {

nn::Graph make_tiny_graph(util::Rng& rng) {
  nn::Graph g({1, 5, 5});
  auto conv1 = g.add(std::make_unique<nn::Conv2d>(
                         "conv1",
                         nn::Conv2dSpec{.in_channels = 1, .out_channels = 2,
                                        .kernel_h = 3, .kernel_w = 3,
                                        .pad_h = 1, .pad_w = 1},
                         rng),
                     {g.input()});
  auto relu1 = g.add(std::make_unique<nn::Relu>("relu1"), {conv1});
  auto conv2 = g.add(std::make_unique<nn::Conv2d>(
                         "conv2",
                         nn::Conv2dSpec{.in_channels = 2, .out_channels = 3,
                                        .kernel_h = 3, .kernel_w = 3},
                         rng),
                     {relu1});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {conv2});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 3 * 3 * 3, 4, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

nn::Graph make_multipath_graph(util::Rng& rng) {
  nn::Graph g({2, 6, 6});
  auto conv1 = g.add(std::make_unique<nn::Conv2d>(
                         "conv1",
                         nn::Conv2dSpec{.in_channels = 2, .out_channels = 4,
                                        .kernel_h = 3, .kernel_w = 3,
                                        .pad_h = 1, .pad_w = 1},
                         rng),
                     {g.input()});
  auto relu1 = g.add(std::make_unique<nn::Relu>("relu1"), {conv1});
  auto pool = g.add(std::make_unique<nn::MaxPool2d>("pool",
                                                    nn::PoolSpec{2, 2, 2}),
                    {relu1});
  auto b1 = g.add(std::make_unique<nn::Conv2d>(
                      "branch1x1",
                      nn::Conv2dSpec{.in_channels = 4, .out_channels = 3,
                                     .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {pool});
  auto b1r = g.add(std::make_unique<nn::Relu>("branch1x1_relu"), {b1});
  auto b3 = g.add(std::make_unique<nn::Conv2d>(
                      "branch3x3",
                      nn::Conv2dSpec{.in_channels = 4, .out_channels = 3,
                                     .kernel_h = 3, .kernel_w = 3,
                                     .pad_h = 1, .pad_w = 1},
                      rng),
                  {pool});
  auto b3r = g.add(std::make_unique<nn::Relu>("branch3x3_relu"), {b3});
  auto cat = g.add(std::make_unique<nn::Concat>("concat"), {b1r, b3r});
  auto avg = g.add(std::make_unique<nn::AvgPool2d>("avg",
                                                   nn::PoolSpec{3, 3, 3}),
                   {cat});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {avg});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 6, 4, rng), {flat});
  g.set_output(fc);
  return g;
}

nn::Tensor make_batch(util::Rng& rng, const nn::Graph& graph,
                      std::size_t count) {
  nn::Shape shape = graph.input_shape();
  shape.insert(shape.begin(), count);
  nn::Tensor batch(shape);
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return batch;
}

nn::Tensor slice_sample(const nn::Tensor& batch, std::size_t index) {
  nn::Shape shape = batch.shape();
  shape.erase(shape.begin());
  nn::Tensor sample(shape);
  const std::size_t elems = sample.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    sample[i] = batch[index * elems + i];
  }
  return sample;
}

}  // namespace iprune::fault
