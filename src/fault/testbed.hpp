#pragma once
// Small deterministic models for the fault-injection harness.
//
// The consistency checker replays full inferences hundreds of times
// (exhaustive write-boundary sweeps, property-test schedule batches), so
// the models here are deliberately tiny while still exercising every
// lowered node kind the engine has. Both the tests and the fault_check
// CLI build their workloads from this one place so a repro printed by one
// is replayable by the other.

#include "nn/graph.hpp"
#include "util/rng.hpp"

namespace iprune::fault {

/// Two stacked convolutions + classifier head: input {1,5,5} -> conv(3x3,
/// pad 1) -> relu (folded) -> conv(3x3) -> flatten -> dense(4). Roughly a
/// hundred preserved outputs per inference — small enough to fail at every
/// single write boundary in an exhaustive sweep.
nn::Graph make_tiny_graph(util::Rng& rng);

/// Multi-path model covering every lowered node kind (conv, pool, concat
/// copy, standalone relu, flatten alias, dense), sized for property-test
/// batches of hundreds of replays.
nn::Graph make_multipath_graph(util::Rng& rng);

/// Normal(0, 0.5) input batch shaped for `graph`'s input.
nn::Tensor make_batch(util::Rng& rng, const nn::Graph& graph,
                      std::size_t count);

/// Per-sample slice (drops the batch dimension) of a make_batch() tensor.
nn::Tensor slice_sample(const nn::Tensor& batch, std::size_t index);

}  // namespace iprune::fault
