#include "fleet/batched_sim.hpp"

#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "device/config.hpp"
#include "engine/batched.hpp"
#include "engine/integrity.hpp"
#include "fault/testbed.hpp"
#include "util/hash.hpp"

namespace iprune::fleet {

namespace {

constexpr std::size_t kCalibrationSamples = 8;

nn::Graph build_graph(ModelKind model, util::Rng& rng) {
  switch (model) {
    case ModelKind::kTiny:
      return fault::make_tiny_graph(rng);
    case ModelKind::kMultipath:
      return fault::make_multipath_graph(rng);
  }
  throw std::logic_error("fleet: bad model kind");
}

/// One cohort member's stack. Mirrors DeviceSim's construction recipe
/// exactly (same draw order, same configuration) — the lockstep results
/// must be bit-identical to a standalone run of the same DeviceSpec.
struct MemberStack {
  util::Rng rng;
  nn::Graph graph;
  nn::Tensor samples;
  std::unique_ptr<device::Msp430Device> device;
  std::unique_ptr<engine::DeployedModel> model;

  explicit MemberStack(const DeviceSpec& spec)
      : rng(spec.model_seed), graph(build_graph(spec.model, rng)) {
    const nn::Tensor calibration =
        fault::make_batch(rng, graph, kCalibrationSamples);
    samples = fault::make_batch(rng, graph, spec.inferences);
    device = std::make_unique<device::Msp430Device>(spec.backend.device,
                                                    spec.power.make());
    // Same as DeviceSim under sim!=stepping: the scheduler path carries
    // even the deployment writes (bit-identical, fewer virtual calls).
    device->set_sim_mode(power::SimMode::kScheduler);
    engine::EngineConfig config;
    config.mode = spec.mode;  // eligibility guarantees write/read_ber == 0
    model = std::make_unique<engine::DeployedModel>(graph, config, *device,
                                                    calibration);
  }
};

std::vector<DeviceResult> run_standalone(std::span<const DeviceSpec> specs) {
  std::vector<DeviceResult> results;
  results.reserve(specs.size());
  for (const DeviceSpec& spec : specs) {
    results.push_back(run_device(spec));
  }
  return results;
}

}  // namespace

bool batched_eligible(const DeviceSpec& spec) {
  // integrity=on arms the CRC/scrub layer on a clean device, which is
  // outside the lockstep envelope (MemberStack deploys without it) — such
  // devices fall back to the standalone per-device path. The functional
  // backend has no device timeline at all (batching is a timeline
  // optimization), so only cycle-class backends qualify.
  return spec.schedule.mode != fault::ScheduleMode::kRandom &&
         spec.write_ber == 0.0 && spec.read_ber == 0.0 && !spec.telemetry &&
         spec.integrity != IntegrityMode::kOn &&
         spec.backend.kind != engine::BackendKind::kFunctional;
}

std::vector<DeviceResult> run_cohort(std::span<const DeviceSpec> specs) {
  if (specs.size() < 2) {
    return run_standalone(specs);
  }

  std::vector<MemberStack> stacks;
  stacks.reserve(specs.size());
  for (const DeviceSpec& spec : specs) {
    stacks.emplace_back(spec);
  }
  for (std::size_t m = 1; m < stacks.size(); ++m) {
    if (!engine::BatchedEngine::lockstep_compatible(*stacks[0].model,
                                                    *stacks[m].model)) {
      return run_standalone(specs);
    }
  }

  // Injector on the leader only — installed after deployment (same as
  // DeviceSim), and its counters are member-invariant by construction.
  const DeviceSpec& lead_spec = specs[0];
  fault::FaultInjector injector(lead_spec.schedule);
  injector.set_event_budget(lead_spec.event_budget != 0
                                ? lead_spec.event_budget
                                : fault::FaultInjector::kNoBudget);
  stacks[0].device->set_fault_hook(&injector);

  std::vector<engine::BatchedMember> members;
  members.reserve(stacks.size());
  for (MemberStack& stack : stacks) {
    members.push_back({stack.model.get(), stack.device.get()});
  }

  std::vector<DeviceResult> results(specs.size());
  for (std::size_t m = 0; m < specs.size(); ++m) {
    results[m].index = specs[m].index;
    results[m].group = specs[m].group;
  }

  device::Msp430Device& leader = *stacks[0].device;
  std::unique_ptr<engine::BatchedEngine> engine;
  try {
    engine = std::make_unique<engine::BatchedEngine>(std::move(members));
  } catch (const std::invalid_argument&) {
    // Outside the lockstep envelope after all — simulate standalone.
    leader.set_fault_hook(nullptr);
    return run_standalone(specs);
  }

  try {
    const double deadline_us = lead_spec.deadline_s * 1e6;
    // Quantize every member's sample stream once. The engine's input
    // staging consumes i16 payloads; re-slicing the batch tensor and
    // re-quantizing floats every round was pure per-member overhead
    // (quantize_input reproduces stepping mode's rounding bit-exactly).
    const std::size_t rounds = lead_spec.inferences;
    const std::size_t stride =
        rounds > 0 ? stacks[0].samples.numel() / rounds : 0;
    std::vector<std::vector<std::int16_t>> quantized;
    quantized.reserve(specs.size() * rounds);
    for (std::size_t m = 0; m < specs.size(); ++m) {
      const float scale = stacks[m].model->input_scale();
      const float* base = stacks[m].samples.data();
      for (std::size_t i = 0; i < rounds; ++i) {
        quantized.push_back(engine::BatchedEngine::quantize_input(
            {base + i * stride, stride}, scale));
      }
    }
    std::vector<std::span<const std::int16_t>> inputs(specs.size());
    std::size_t next = 0;
    bool done = false;
    while (!done) {
      // Deadline / step logic mirrors DeviceSim::step — the timeline is
      // member-invariant, so every outcome flag is cohort-wide.
      if (lead_spec.deadline_s > 0.0 && leader.now_us() >= deadline_us) {
        for (DeviceResult& r : results) {
          r.deadline_missed = true;
        }
        break;
      }
      for (std::size_t m = 0; m < specs.size(); ++m) {
        inputs[m] = quantized[m * rounds + next];
      }
      std::vector<engine::InferenceResult> inferences =
          engine->run_quantized(inputs);
      for (std::size_t m = 0; m < specs.size(); ++m) {
        results[m].reexecuted_jobs += inferences[m].stats.reexecuted_jobs;
        results[m].integrity_rollbacks +=
            inferences[m].stats.integrity_rollbacks;
      }
      if (!inferences[0].stats.completed) {
        for (DeviceResult& r : results) {
          r.failed = true;
          r.error = "inference exceeded the engine restart budget";
        }
        done = true;
      } else if (lead_spec.deadline_s > 0.0 &&
                 leader.now_us() > deadline_us) {
        for (DeviceResult& r : results) {
          r.deadline_missed = true;
        }
        done = true;
      } else {
        for (std::size_t m = 0; m < specs.size(); ++m) {
          DeviceResult& r = results[m];
          ++r.inferences_done;
          r.latency_us.record(inferences[m].stats.latency_s * 1e6);
          util::Fnv1a digest;
          digest.fold_u64(r.logits_checksum);
          digest.fold_f32(inferences[m].logits.data(),
                          inferences[m].logits.size());
          r.logits_checksum = digest.value();
          r.last_logits = std::move(inferences[m].logits);
        }
        if (++next == lead_spec.inferences) {
          for (DeviceResult& r : results) {
            r.completed = true;
          }
          done = true;
        }
      }
    }
  } catch (const engine::IntegrityError& e) {
    for (DeviceResult& r : results) {
      r.failed = true;
      r.error = e.what();
      r.verdict = IntegrityVerdict::kCompromised;
    }
  } catch (const std::exception& e) {
    // Same demotion as DeviceSim::step: watchdog, dead supply, restart
    // budget, crash-consistency — cohort-wide by timeline invariance.
    for (DeviceResult& r : results) {
      r.failed = true;
      r.error = e.what();
      if (r.error.find("crash-consistency") != std::string::npos) {
        r.verdict = IntegrityVerdict::kCompromised;
      }
    }
  }

  // Harvest the (member-invariant) timeline from the leader. Detaching
  // the hook settles any skipped ordinals first.
  leader.set_fault_hook(nullptr);
  const device::DeviceStats& ds = leader.stats();
  const power::PowerStats& ps = leader.power().stats();
  for (DeviceResult& r : results) {
    r.sim_s = leader.now_us() / 1e6;
    r.on_s = ds.on_time_us / 1e6;
    r.off_s = ds.off_time_us / 1e6;
    r.consumed_j = ps.consumed_j;
    r.harvested_j = ps.harvested_j;
    r.wasted_j = ps.wasted_j;
    r.power_failures = ps.power_failures;
    r.injected_outages = ps.injected_failures;
    r.events = injector.total_events();
    r.nvm_bytes_read = ds.nvm_bytes_read;
    r.nvm_bytes_written = ds.nvm_bytes_written;
    r.macs = ds.macs;
    if (r.verdict != IntegrityVerdict::kCompromised &&
        r.integrity_rollbacks > 0) {
      r.verdict = IntegrityVerdict::kRecovered;
    }
  }
  return results;
}

}  // namespace iprune::fleet
