#pragma once
// Lockstep simulation of a cohort of devices from one fleet group.
//
// Eligible cohorts (same group, deterministic group-wide outage schedule,
// perfect NVM, telemetry off) share a member-invariant timeline: the
// engine's control flow never branches on data values, so every member
// performs the same chargeable events at the same instants with the same
// fault ordinals. run_cohort() builds all member stacks, then advances
// them through engine::BatchedEngine — member 0's device carries the real
// charge timeline, the followers do only value work. Results are
// bit-identical to simulating each member standalone (the fleet batched
// differential test pins this); anything that falls outside the lockstep
// envelope silently falls back to per-device simulation.

#include <span>
#include <vector>

#include "fleet/device_sim.hpp"
#include "fleet/spec.hpp"

namespace iprune::fleet {

/// Cap on cohort width: bounds peak memory (one NVM image per member is
/// live) and keeps the value-work inner loop cache-resident.
inline constexpr std::size_t kMaxCohort = 64;

/// True when `spec` can share a lockstep timeline with its group peers.
/// Random schedules are re-seeded per device (timelines diverge), any
/// bit-error rate arms the per-device corruption stream, and telemetry
/// records per-device traces — all outside the envelope.
[[nodiscard]] bool batched_eligible(const DeviceSpec& spec);

/// Simulate `specs` (>= 2 consecutive devices of one group) in lockstep.
/// Returns one DeviceResult per spec, in order. Falls back to standalone
/// run_device() per member when the cohort turns out not to be
/// lockstep-compatible after deployment.
[[nodiscard]] std::vector<DeviceResult> run_cohort(
    std::span<const DeviceSpec> specs);

}  // namespace iprune::fleet
