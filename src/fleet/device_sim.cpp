#include "fleet/device_sim.hpp"

#include <exception>
#include <utility>

#include "device/config.hpp"
#include "engine/integrity.hpp"
#include "fault/testbed.hpp"
#include "util/hash.hpp"

namespace iprune::fleet {

namespace {

constexpr std::size_t kCalibrationSamples = 8;

nn::Graph build_graph(ModelKind model, util::Rng& rng) {
  switch (model) {
    case ModelKind::kTiny:
      return fault::make_tiny_graph(rng);
    case ModelKind::kMultipath:
      return fault::make_multipath_graph(rng);
  }
  throw std::logic_error("fleet: bad model kind");
}

}  // namespace

DeviceSim::DeviceSim(const DeviceSpec& spec)
    : spec_(spec),
      rng_(spec.model_seed),
      graph_(build_graph(spec.model, rng_)) {
  result_.index = spec_.index;
  result_.group = spec_.group;

  // Draw order matters (calibration before samples): it is part of the
  // reproducibility contract with the differential test.
  const nn::Tensor calibration =
      fault::make_batch(rng_, graph_, kCalibrationSamples);
  samples_ = fault::make_batch(rng_, graph_, spec_.inferences);

  backend_ = engine::make_backend(spec_.backend, spec_.power.make());
  if (spec_.sim != SimKind::kStepping) {
    // Scheduler mode is set before deployment so even the deployment
    // writes ride the event-driven path (bit-identical either way). The
    // functional backend has no event stream — set_sim_mode is a no-op
    // there, so scheduler and stepping are trivially identical.
    backend_->set_sim_mode(power::SimMode::kScheduler);
  }

  engine::EngineConfig config;
  config.mode = spec_.mode;
  const bool corrupted = spec_.write_ber > 0.0 || spec_.read_ber > 0.0;
  // kAuto arms the integrity layer exactly when corruption is injected;
  // kOn forces it on clean devices too (overhead measurement), kOff runs
  // corrupted devices as the unprotected baseline (silent divergence is
  // the expected — and deterministic — outcome).
  const bool protect =
      spec_.integrity == IntegrityMode::kOn ||
      (spec_.integrity == IntegrityMode::kAuto && corrupted);
  if (protect) {
    config.integrity.protect_progress = true;
    config.integrity.seal_regions = true;
    config.integrity.scrub_on_boot = true;
  }
  model_ =
      std::make_unique<engine::DeployedModel>(graph_, config, *backend_,
                                              calibration);

  if (corrupted) {
    device::CorruptionConfig cc;
    cc.seed = spec_.stream_seed;
    cc.write_ber = spec_.write_ber;
    cc.read_ber = spec_.read_ber;
    corruption_ = std::make_unique<device::CorruptionModel>(cc);
    backend_->nvm().set_corruption(corruption_.get());
  }

  // Always install an injector — a kNone schedule injects nothing but
  // still counts chargeable events (the fleet throughput metric) and
  // arms the nontermination watchdog.
  injector_ = std::make_unique<fault::FaultInjector>(spec_.schedule);
  injector_->set_event_budget(spec_.event_budget != 0
                                  ? spec_.event_budget
                                  : fault::FaultInjector::kNoBudget);
  backend_->set_fault_hook(injector_.get());

  if (spec_.telemetry) {
    sink_ = std::make_unique<telemetry::RegistrySink>();
    backend_->set_trace_sink(sink_.get());
  }

  engine_ = std::make_unique<engine::IntermittentEngine>(*model_, *backend_);
}

bool DeviceSim::step() {
  if (done_) {
    return false;
  }
  const double deadline_us = spec_.deadline_s * 1e6;
  if (spec_.deadline_s > 0.0 && backend_->now_us() >= deadline_us) {
    result_.deadline_missed = true;
    done_ = true;
    return false;
  }
  try {
    const nn::Tensor sample = fault::slice_sample(samples_, next_);
    engine::InferenceResult inference = engine_->run(sample);
    result_.reexecuted_jobs += inference.stats.reexecuted_jobs;
    result_.integrity_rollbacks += inference.stats.integrity_rollbacks;
    if (!inference.stats.completed) {
      result_.failed = true;
      result_.error = "inference exceeded the engine restart budget";
      done_ = true;
    } else if (spec_.deadline_s > 0.0 && backend_->now_us() > deadline_us) {
      // Finished, but past the deadline: the inference does not count.
      result_.deadline_missed = true;
      done_ = true;
    } else {
      ++result_.inferences_done;
      result_.latency_us.record(inference.stats.latency_s * 1e6);
      util::Fnv1a digest;
      digest.fold_u64(result_.logits_checksum);
      digest.fold_f32(inference.logits.data(), inference.logits.size());
      result_.logits_checksum = digest.value();
      result_.last_logits = std::move(inference.logits);
      if (++next_ == spec_.inferences) {
        result_.completed = true;
        done_ = true;
      }
    }
  } catch (const engine::IntegrityError& e) {
    // Detected-but-unrecoverable corruption: the device cannot be trusted.
    result_.failed = true;
    result_.error = e.what();
    result_.verdict = IntegrityVerdict::kCompromised;
    done_ = true;
  } catch (const std::exception& e) {
    // The event-budget watchdog, dead-supply recharge, restart budget —
    // all demote to a failed device instead of aborting the fleet. An
    // unprotected progress counter that lost a committed record surfaces
    // as a crash-consistency violation: also an integrity compromise.
    result_.failed = true;
    result_.error = e.what();
    if (result_.error.find("crash-consistency") != std::string::npos) {
      result_.verdict = IntegrityVerdict::kCompromised;
    }
    done_ = true;
  }
  return !done_;
}

DeviceResult DeviceSim::finish() {
  backend_->set_fault_hook(nullptr);
  backend_->set_trace_sink(nullptr);
  backend_->nvm().set_corruption(nullptr);

  const device::DeviceStats& ds = backend_->stats();
  result_.sim_s = backend_->now_us() / 1e6;
  result_.on_s = ds.on_time_us / 1e6;
  result_.off_s = ds.off_time_us / 1e6;
  if (const power::PowerManager* pm = backend_->power(); pm != nullptr) {
    const power::PowerStats& ps = pm->stats();
    result_.consumed_j = ps.consumed_j;
    result_.harvested_j = ps.harvested_j;
    result_.wasted_j = ps.wasted_j;
    result_.power_failures = ps.power_failures;
    result_.injected_outages = ps.injected_failures;
  }
  result_.events = injector_->total_events();
  result_.nvm_bytes_read = ds.nvm_bytes_read;
  result_.nvm_bytes_written = ds.nvm_bytes_written;
  result_.macs = ds.macs;
  if (result_.verdict != IntegrityVerdict::kCompromised &&
      result_.integrity_rollbacks > 0) {
    result_.verdict = IntegrityVerdict::kRecovered;
  }
  if (sink_ != nullptr) {
    result_.registry = sink_->take_registry();
  }
  done_ = true;
  return std::move(result_);
}

DeviceResult run_device(const DeviceSpec& spec) {
  DeviceSim sim(spec);
  while (sim.step()) {
  }
  return sim.finish();
}

}  // namespace iprune::fleet
