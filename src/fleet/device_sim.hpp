#pragma once
// One simulated fleet member: the full device stack (graph, deployment,
// power, fault injector, optional corruption + telemetry) built from a
// resolved DeviceSpec, stepped one inference at a time.
//
// The construction recipe here is the *reference* standalone stack — the
// fleet differential test rebuilds it by hand from the same DeviceSpec
// and requires bit-identical logits and telemetry. Keep the two in sync:
// any change to seeding, construction order, or engine configuration is
// an observable behaviour change for every fleet spec.

#include <memory>
#include <string>
#include <vector>

#include "device/corruption.hpp"
#include "device/msp430.hpp"
#include "engine/backend.hpp"
#include "engine/engine.hpp"
#include "fault/injector.hpp"
#include "fleet/result.hpp"
#include "fleet/spec.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"

namespace iprune::fleet {

/// Final outcome + aggregates of one device's simulation. Everything the
/// orchestrator folds fleet-wide, in plain-data form so results survive
/// the (deliberately short-lived) device stack.
struct DeviceResult {
  std::size_t index = 0;
  std::string group;

  bool completed = false;        // all requested inferences finished
  bool deadline_missed = false;  // ran out of simulated time
  bool failed = false;           // engine error / integrity / watchdog
  std::string error;
  /// NVM-integrity outcome: consistent, recovered (rollbacks happened but
  /// every inference finished on verified state), or compromised (the
  /// integrity layer gave up, or a crash-consistency violation surfaced).
  IntegrityVerdict verdict = IntegrityVerdict::kConsistent;

  std::size_t inferences_done = 0;
  double sim_s = 0.0;  // simulated wall-clock at shutdown
  double on_s = 0.0;
  double off_s = 0.0;
  double consumed_j = 0.0;
  double harvested_j = 0.0;
  double wasted_j = 0.0;
  std::size_t power_failures = 0;
  std::size_t injected_outages = 0;
  std::uint64_t events = 0;  // chargeable events (fleet "device steps")
  std::size_t nvm_bytes_read = 0;
  std::size_t nvm_bytes_written = 0;
  std::size_t macs = 0;
  std::size_t reexecuted_jobs = 0;
  std::size_t integrity_rollbacks = 0;

  /// Per-inference end-to-end latency in microseconds.
  telemetry::Histogram latency_us;
  /// FNV-1a over the logit bytes of every completed inference, in order.
  std::uint64_t logits_checksum = 0;
  std::vector<float> last_logits;
  /// Per-device telemetry aggregates (FleetSpec::telemetry only).
  telemetry::MetricsRegistry registry;
};

class DeviceSim {
 public:
  /// Builds the full stack. Deterministic given the spec: the model and
  /// samples come from Rng(model_seed); corruption (if any) is seeded
  /// from stream_seed and installed AFTER deployment, so bit faults
  /// strike runtime NVM traffic, not the deployment image itself — any
  /// non-zero rate arms the engine's full integrity layer.
  explicit DeviceSim(const DeviceSpec& spec);

  /// Run the next inference. Returns true while the device remains
  /// active; engine failures and deadline exhaustion end the device (the
  /// outcome lands in the result, never escapes as an exception).
  bool step();

  [[nodiscard]] bool active() const { return !done_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Detach hooks, harvest final device/power stats, and surrender the
  /// result. The sim is spent afterwards.
  [[nodiscard]] DeviceResult finish();

 private:
  DeviceSpec spec_;
  DeviceResult result_;
  util::Rng rng_;
  nn::Graph graph_;
  nn::Tensor samples_;
  /// Built by engine::make_backend from spec.backend: a CycleBackend-owned
  /// Msp430Device for cycle/custom groups, a bare-Nvm FunctionalBackend
  /// for functional groups (no power model — harvest/outage stats stay 0).
  std::unique_ptr<engine::Backend> backend_;
  std::unique_ptr<engine::DeployedModel> model_;
  std::unique_ptr<device::CorruptionModel> corruption_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<telemetry::RegistrySink> sink_;
  std::unique_ptr<engine::IntermittentEngine> engine_;
  std::size_t next_ = 0;
  bool done_ = false;
};

/// Convenience: construct, run to completion, finish.
DeviceResult run_device(const DeviceSpec& spec);

}  // namespace iprune::fleet
