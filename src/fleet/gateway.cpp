#include "fleet/gateway.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/atomic_write.hpp"
#include "util/csv.hpp"

namespace iprune::fleet {

namespace {

std::string format_g17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string format_hex(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

std::string status_of(const DeviceResult& r) {
  if (r.failed) {
    return "failed";
  }
  if (r.completed) {
    return "completed";
  }
  if (r.deadline_missed) {
    return "deadline_missed";
  }
  return "incomplete";
}

std::vector<std::string> summary_row(const std::string& scope,
                                     const GroupStats& g,
                                     const std::string& checksum) {
  return {scope,
          g.name,
          std::to_string(g.devices),
          std::to_string(g.completed),
          std::to_string(g.deadline_missed),
          std::to_string(g.failed),
          std::to_string(g.compromised),
          std::to_string(g.inferences),
          std::to_string(g.power_failures),
          std::to_string(g.injected_outages),
          std::to_string(g.events),
          format_g17(g.harvested_j),
          format_g17(g.consumed_j),
          format_g17(g.wasted_j),
          format_g17(g.on_s),
          format_g17(g.off_s),
          format_g17(g.max_sim_s),
          format_g17(g.latency_us.quantile(0.5)),
          format_g17(g.latency_us.quantile(0.95)),
          format_g17(g.latency_us.max()),
          checksum};
}

}  // namespace

CsvGateway::CsvGateway(std::string dir) : dir_(std::move(dir)) {}

std::string CsvGateway::devices_path() const {
  return dir_ + "/fleet_devices.csv";
}

std::string CsvGateway::summary_path() const {
  return dir_ + "/fleet_summary.csv";
}

void CsvGateway::on_device(const DeviceResult& r) {
  device_rows_.push_back({std::to_string(r.index),
                          r.group,
                          status_of(r),
                          integrity_verdict_name(r.verdict),
                          r.error,
                          std::to_string(r.inferences_done),
                          format_g17(r.sim_s),
                          format_g17(r.on_s),
                          format_g17(r.off_s),
                          format_g17(r.consumed_j),
                          format_g17(r.harvested_j),
                          format_g17(r.wasted_j),
                          std::to_string(r.power_failures),
                          std::to_string(r.injected_outages),
                          std::to_string(r.events),
                          std::to_string(r.nvm_bytes_read),
                          std::to_string(r.nvm_bytes_written),
                          std::to_string(r.macs),
                          std::to_string(r.reexecuted_jobs),
                          std::to_string(r.integrity_rollbacks),
                          format_g17(r.latency_us.quantile(0.5)),
                          format_g17(r.latency_us.max()),
                          format_hex(r.logits_checksum)});
}

void CsvGateway::on_fleet(const FleetResult& result) {
  std::filesystem::create_directories(dir_);

  util::CsvWriter devices({"index", "group", "status", "verdict", "error",
                           "inferences",
                           "sim_s", "on_s", "off_s", "consumed_j",
                           "harvested_j", "wasted_j", "power_failures",
                           "injected_outages", "events", "nvm_bytes_read",
                           "nvm_bytes_written", "macs", "reexecuted_jobs",
                           "integrity_rollbacks", "latency_p50_us",
                           "latency_max_us", "logits_checksum"});
  for (const auto& row : device_rows_) {
    devices.row(row);
  }
  if (!devices.save(devices_path())) {
    throw std::runtime_error("fleet: cannot write " + devices_path());
  }

  util::CsvWriter summary({"scope", "name", "devices", "completed",
                           "deadline_missed", "failed", "compromised",
                           "inferences",
                           "power_failures", "injected_outages", "events",
                           "harvested_j", "consumed_j", "wasted_j", "on_s",
                           "off_s", "max_sim_s", "latency_p50_us",
                           "latency_p95_us", "latency_max_us", "checksum"});
  summary.row(summary_row("fleet", result.total,
                          format_hex(result.checksum)));
  for (const GroupStats& group : result.groups) {
    summary.row(summary_row("group", group, ""));
  }
  if (!summary.save(summary_path())) {
    throw std::runtime_error("fleet: cannot write " + summary_path());
  }
}

std::string CsvGateway::describe() const { return "csv:" + dir_; }

PrometheusGateway::PrometheusGateway(std::string path)
    : path_(std::move(path)) {}

std::string PrometheusGateway::render(const FleetResult& result) {
  std::string out;
  out.reserve(8192);
  const auto gauge = [&out](const char* name, const char* help,
                            const std::string& value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += value;
    out += '\n';
  };
  const GroupStats& t = result.total;
  gauge("iprune_fleet_devices", "Devices simulated.",
        std::to_string(t.devices));
  gauge("iprune_fleet_devices_completed",
        "Devices that finished every requested inference.",
        std::to_string(t.completed));
  gauge("iprune_fleet_devices_deadline_missed",
        "Devices that ran out of simulated time.",
        std::to_string(t.deadline_missed));
  gauge("iprune_fleet_devices_failed",
        "Devices ended by an engine/integrity/watchdog error.",
        std::to_string(t.failed));
  gauge("iprune_fleet_devices_compromised",
        "Devices whose NVM integrity verdict is compromised.",
        std::to_string(t.compromised));
  gauge("iprune_fleet_inferences_total", "Completed inferences.",
        std::to_string(t.inferences));
  gauge("iprune_fleet_outages_total",
        "Power failures (organic + injected).",
        std::to_string(t.power_failures));
  gauge("iprune_fleet_injected_outages_total",
        "Power failures forced by fault schedules.",
        std::to_string(t.injected_outages));
  gauge("iprune_fleet_device_events_total",
        "Chargeable device events (simulated device steps).",
        std::to_string(t.events));
  gauge("iprune_fleet_harvested_joules", "Energy harvested.",
        format_g17(t.harvested_j));
  gauge("iprune_fleet_consumed_joules", "Energy consumed.",
        format_g17(t.consumed_j));
  gauge("iprune_fleet_wasted_joules",
        "Harvest wasted (buffer overflow, recharge overshoot, injected "
        "outages).",
        format_g17(t.wasted_j));
  gauge("iprune_fleet_on_seconds", "Summed device on-time.",
        format_g17(t.on_s));
  gauge("iprune_fleet_off_seconds", "Summed device off-time.",
        format_g17(t.off_s));

  const auto per_group = [&out, &result](const char* name, const char* help,
                                         auto field) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    for (const GroupStats& group : result.groups) {
      out += name;
      out += "{group=\"";
      out += group.name;
      out += "\"} ";
      out += std::to_string(field(group));
      out += '\n';
    }
  };
  per_group("iprune_fleet_group_devices", "Devices per group.",
            [](const GroupStats& g) { return g.devices; });
  per_group("iprune_fleet_group_completed", "Completed devices per group.",
            [](const GroupStats& g) { return g.completed; });
  per_group("iprune_fleet_group_deadline_missed",
            "Deadline-missed devices per group.",
            [](const GroupStats& g) { return g.deadline_missed; });
  per_group("iprune_fleet_group_failed", "Failed devices per group.",
            [](const GroupStats& g) { return g.failed; });
  per_group("iprune_fleet_group_outages", "Power failures per group.",
            [](const GroupStats& g) { return g.power_failures; });

  // End-to-end inference latency. Native unit is microseconds and the
  // bucket bounds are exact powers of two, so `le` values print as
  // integers — cumulative counts per the exposition format.
  out +=
      "# HELP iprune_fleet_inference_latency_us End-to-end inference "
      "latency (simulated microseconds).\n"
      "# TYPE iprune_fleet_inference_latency_us histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    cumulative += t.latency_us.bucket(b);
    char line[96];
    std::snprintf(line, sizeof(line),
                  "iprune_fleet_inference_latency_us_bucket{le=\"%.0f\"} "
                  "%" PRIu64 "\n",
                  telemetry::Histogram::bucket_upper_bound(b), cumulative);
    out += line;
  }
  out += "iprune_fleet_inference_latency_us_bucket{le=\"+Inf\"} " +
         std::to_string(t.latency_us.count()) + "\n";
  out += "iprune_fleet_inference_latency_us_sum " +
         format_g17(t.latency_us.sum()) + "\n";
  out += "iprune_fleet_inference_latency_us_count " +
         std::to_string(t.latency_us.count()) + "\n";
  return out;
}

void PrometheusGateway::on_fleet(const FleetResult& result) {
  const std::filesystem::path path(path_);
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  util::atomic_write_or_throw(path_, render(result), "fleet");
}

std::string PrometheusGateway::describe() const { return "prom:" + path_; }

void MultiGateway::add(MetricsGateway* gateway) {
  if (gateway != nullptr) {
    children_.push_back(gateway);
  }
}

void MultiGateway::add_owned(std::unique_ptr<MetricsGateway> gateway) {
  if (gateway != nullptr) {
    children_.push_back(gateway.get());
    owned_.push_back(std::move(gateway));
  }
}

void MultiGateway::on_device(const DeviceResult& result) {
  for (MetricsGateway* child : children_) {
    child->on_device(result);
  }
}

void MultiGateway::on_fleet(const FleetResult& result) {
  for (MetricsGateway* child : children_) {
    child->on_fleet(result);
  }
}

std::string MultiGateway::describe() const {
  std::string out = "multi[";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += children_[i]->describe();
  }
  return out + "]";
}

}  // namespace iprune::fleet
