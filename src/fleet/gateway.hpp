#pragma once
// MetricsGateway: pluggable export of fleet telemetry.
//
// The orchestrator streams every DeviceResult (in device-index order,
// after its batch completes) and finally the aggregated FleetResult into
// a gateway. Gateways only observe — they cannot perturb the simulation —
// so any sink combination yields the same FleetResult, and the gateway
// outputs themselves are deterministic byte-for-byte for a fixed spec
// (the CI determinism check compares them across lane counts).
//
// Sinks:
//   NullGateway        discard everything (the default)
//   CsvGateway         fleet_devices.csv (row per device) +
//                      fleet_summary.csv (fleet + per-group rows)
//   PrometheusGateway  fleet_metrics.prom, Prometheus text exposition
//                      format v0.0.4 — drop it in a node_exporter textfile
//                      collector directory to scrape a fleet run
//   MultiGateway       fan out to several sinks

#include <memory>
#include <string>
#include <vector>

#include "fleet/device_sim.hpp"
#include "fleet/result.hpp"

namespace iprune::fleet {

class MetricsGateway {
 public:
  virtual ~MetricsGateway() = default;

  /// One finished device, streamed in device-index order.
  virtual void on_device(const DeviceResult& result) = 0;
  /// The final fleet aggregate; called exactly once, after every
  /// on_device. File-backed gateways write their outputs here.
  virtual void on_fleet(const FleetResult& result) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

class NullGateway final : public MetricsGateway {
 public:
  void on_device(const DeviceResult&) override {}
  void on_fleet(const FleetResult&) override {}
  [[nodiscard]] std::string describe() const override { return "null"; }
};

/// Writes `<dir>/fleet_devices.csv` and `<dir>/fleet_summary.csv`.
/// Doubles are emitted as shortest-round-trip (%.17g) so equal results
/// produce byte-equal files.
class CsvGateway final : public MetricsGateway {
 public:
  explicit CsvGateway(std::string dir);

  void on_device(const DeviceResult& result) override;
  /// Throws std::runtime_error if either file cannot be written.
  void on_fleet(const FleetResult& result) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::string devices_path() const;
  [[nodiscard]] std::string summary_path() const;

 private:
  std::string dir_;
  std::vector<std::vector<std::string>> device_rows_;
};

/// Writes `<path>` in Prometheus text exposition format: fleet gauges and
/// counters (device outcomes, outage totals, harvested/consumed/wasted
/// joules), per-group outcome counters, and the end-to-end inference
/// latency histogram with cumulative `le` buckets.
class PrometheusGateway final : public MetricsGateway {
 public:
  explicit PrometheusGateway(std::string path);

  void on_device(const DeviceResult&) override {}
  /// Throws std::runtime_error if the file cannot be written.
  void on_fleet(const FleetResult& result) override;
  [[nodiscard]] std::string describe() const override;

  /// The exposition text for one FleetResult (what on_fleet writes).
  static std::string render(const FleetResult& result);

 private:
  std::string path_;
};

/// Fans every callback out to each child, in order. Non-owning children
/// must outlive the gateway; owned children may be added too.
class MultiGateway final : public MetricsGateway {
 public:
  void add(MetricsGateway* gateway);
  void add_owned(std::unique_ptr<MetricsGateway> gateway);

  void on_device(const DeviceResult& result) override;
  void on_fleet(const FleetResult& result) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<MetricsGateway*> children_;
  std::vector<std::unique_ptr<MetricsGateway>> owned_;
};

}  // namespace iprune::fleet
