#include "fleet/orchestrator.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "fleet/batched_sim.hpp"
#include "fleet/device_sim.hpp"
#include "runtime/parallel.hpp"
#include "util/hash.hpp"

namespace iprune::fleet {

namespace {

void fold(GroupStats& into, const DeviceResult& r) {
  ++into.devices;
  into.completed += r.completed ? 1 : 0;
  into.deadline_missed += r.deadline_missed ? 1 : 0;
  into.failed += r.failed ? 1 : 0;
  into.compromised += r.verdict == IntegrityVerdict::kCompromised ? 1 : 0;
  into.inferences += r.inferences_done;
  into.power_failures += r.power_failures;
  into.injected_outages += r.injected_outages;
  into.events += r.events;
  into.harvested_j += r.harvested_j;
  into.consumed_j += r.consumed_j;
  into.wasted_j += r.wasted_j;
  into.on_s += r.on_s;
  into.off_s += r.off_s;
  into.max_sim_s = std::max(into.max_sim_s, r.sim_s);
  into.latency_us.merge(r.latency_us);
}

}  // namespace

FleetOrchestrator::FleetOrchestrator(FleetSpec spec)
    : spec_(std::move(spec)) {}

FleetResult FleetOrchestrator::run(runtime::ThreadPool* pool,
                                   MetricsGateway* gateway) const {
  const std::vector<DeviceSpec> devices = spec_.resolve();
  runtime::ThreadPool& lanes = runtime::ThreadPool::resolve(pool);
  NullGateway null;
  MetricsGateway& sink = gateway != nullptr ? *gateway : null;

  FleetResult result;
  result.total.name = "fleet";
  result.groups.reserve(spec_.groups.size());
  for (const DeviceGroup& group : spec_.groups) {
    GroupStats stats;
    stats.name = group.name;
    result.groups.push_back(std::move(stats));
  }
  const auto group_slot = [this](const std::string& name) {
    for (std::size_t i = 0; i < spec_.groups.size(); ++i) {
      if (spec_.groups[i].name == name) {
        return i;
      }
    }
    throw std::logic_error("fleet: unknown group '" + name + "'");
  };

  util::Fnv1a digest;
  const std::size_t batch = std::max<std::size_t>(spec_.batch, 1);
  for (std::size_t begin = 0; begin < devices.size(); begin += batch) {
    const std::size_t count = std::min(batch, devices.size() - begin);
    // Partition the window into work units: under sim=batched, runs of
    // consecutive same-group lockstep-eligible devices form cohorts (one
    // leader timeline advances all members); everything else stays a
    // single-device unit. Units keep index order, so the fold and the
    // fleet digest are identical across sim kinds and lane counts.
    struct WorkUnit {
      std::size_t begin;
      std::size_t count;
    };
    std::vector<WorkUnit> units;
    units.reserve(count);
    if (spec_.sim == SimKind::kBatched) {
      std::size_t i = begin;
      const std::size_t end = begin + count;
      while (i < end) {
        std::size_t j = i + 1;
        if (batched_eligible(devices[i])) {
          while (j < end && j - i < kMaxCohort &&
                 devices[j].group == devices[i].group &&
                 batched_eligible(devices[j])) {
            ++j;
          }
        }
        units.push_back({i, j - i});
        i = j;
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        units.push_back({begin + i, 1});
      }
    }
    // One whole unit per loop index: the stacks live only inside their
    // lane's body, results gather by unit then flatten in index order.
    std::vector<std::vector<DeviceResult>> unit_results =
        runtime::parallel_map(lanes, units.size(), [&](std::size_t u) {
          const WorkUnit& unit = units[u];
          if (unit.count >= 2) {
            return run_cohort(
                std::span(devices.data() + unit.begin, unit.count));
          }
          std::vector<DeviceResult> one;
          one.push_back(run_device(devices[unit.begin]));
          return one;
        });
    std::vector<DeviceResult> results;
    results.reserve(count);
    for (std::vector<DeviceResult>& chunk : unit_results) {
      for (DeviceResult& r : chunk) {
        results.push_back(std::move(r));
      }
    }
    for (DeviceResult& r : results) {
      fold(result.total, r);
      fold(result.groups[group_slot(r.group)], r);
      if (spec_.telemetry) {
        result.registry.merge(r.registry);
      }
      digest.fold_u64(r.index);
      digest.fold_u64(r.logits_checksum);
      digest.fold_u64(r.inferences_done);
      digest.fold_u64(r.events);
      digest.fold_u64(r.power_failures);
      digest.fold_u64((r.completed ? 1u : 0u) | (r.deadline_missed ? 2u : 0u) |
                      (r.failed ? 4u : 0u));
      sink.on_device(r);
    }
  }
  result.checksum = digest.value();
  sink.on_fleet(result);
  return result;
}

}  // namespace iprune::fleet
