#pragma once
// FleetOrchestrator: simulate every device of a FleetSpec and aggregate.
//
// Scaling model: devices are independent, so each pool lane runs whole
// devices to completion (construct -> inferences -> destroy, one device
// stack live per lane — NOT one per fleet member, which is what makes
// thousand-device fleets fit in memory). Devices are processed in batches
// of FleetSpec::batch; after each batch the per-device results are
// streamed to the gateway and folded into the aggregates in device-index
// order, then dropped.
//
// Determinism contract: device outcomes depend only on the resolved
// DeviceSpec (never on lane placement), results are gathered by index
// (runtime::parallel_map), and all aggregation is serial in index order —
// so the FleetResult, the gateway callbacks, and every file a gateway
// writes are bit-identical for any lane count, including 1.

#include "fleet/gateway.hpp"
#include "fleet/result.hpp"
#include "fleet/spec.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::fleet {

class FleetOrchestrator {
 public:
  explicit FleetOrchestrator(FleetSpec spec);

  [[nodiscard]] const FleetSpec& spec() const { return spec_; }

  /// The fully resolved per-device specs, in device-index order.
  [[nodiscard]] std::vector<DeviceSpec> device_specs() const {
    return spec_.resolve();
  }

  /// Simulate the whole fleet. `pool` defaults to the shared pool;
  /// `gateway` (optional) observes every device result plus the final
  /// aggregate. Device-level errors become failed devices in the result;
  /// only infrastructure errors (e.g. a gateway that cannot write) throw.
  FleetResult run(runtime::ThreadPool* pool = nullptr,
                  MetricsGateway* gateway = nullptr) const;

 private:
  FleetSpec spec_;
};

}  // namespace iprune::fleet
