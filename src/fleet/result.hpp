#pragma once
// Fleet-wide aggregates. Folded serially in device-index order from
// DeviceResults (doubles summed in a fixed order are bit-deterministic),
// so a FleetResult is identical for any lane count.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace iprune::fleet {

/// Aggregates over one device group (or the whole fleet: name "fleet").
struct GroupStats {
  std::string name;
  std::size_t devices = 0;
  std::size_t completed = 0;
  std::size_t deadline_missed = 0;
  std::size_t failed = 0;
  std::uint64_t inferences = 0;
  std::uint64_t power_failures = 0;
  std::uint64_t injected_outages = 0;
  std::uint64_t events = 0;  // chargeable device events ("device steps")
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double wasted_j = 0.0;
  double on_s = 0.0;
  double off_s = 0.0;
  double max_sim_s = 0.0;  // slowest member's simulated clock
  telemetry::Histogram latency_us;
};

struct FleetResult {
  GroupStats total;                // name == "fleet"
  std::vector<GroupStats> groups;  // spec group order
  /// Merged per-device telemetry (FleetSpec::telemetry only), folded in
  /// device-index order.
  telemetry::MetricsRegistry registry;
  /// FNV-1a digest over every device's outcome (index order): logits
  /// checksums + counters. Equal digests mean bit-identical fleet runs —
  /// the determinism contract checked across lane counts.
  std::uint64_t checksum = 0;

  [[nodiscard]] std::size_t devices() const { return total.devices; }
};

}  // namespace iprune::fleet
