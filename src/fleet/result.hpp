#pragma once
// Fleet-wide aggregates. Folded serially in device-index order from
// DeviceResults (doubles summed in a fixed order are bit-deterministic),
// so a FleetResult is identical for any lane count.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace iprune::fleet {

/// Outcome of one device's NVM-integrity machinery over its whole run.
/// Anything other than consistent/recovered means the device served (or
/// would have served) corrupted results — fleet_run exits nonzero on it.
enum class IntegrityVerdict : std::uint8_t {
  kConsistent,   // no corruption observed
  kRecovered,    // corruption detected and rolled back / re-executed
  kCompromised,  // detected but unrecoverable (failed scrub, torn progress)
};

inline const char* integrity_verdict_name(IntegrityVerdict verdict) {
  switch (verdict) {
    case IntegrityVerdict::kConsistent:
      return "consistent";
    case IntegrityVerdict::kRecovered:
      return "recovered";
    case IntegrityVerdict::kCompromised:
      return "compromised";
  }
  return "?";
}

/// Aggregates over one device group (or the whole fleet: name "fleet").
struct GroupStats {
  std::string name;
  std::size_t devices = 0;
  std::size_t completed = 0;
  std::size_t deadline_missed = 0;
  std::size_t failed = 0;
  /// Devices whose integrity verdict is kCompromised (subset of failed).
  std::size_t compromised = 0;
  std::uint64_t inferences = 0;
  std::uint64_t power_failures = 0;
  std::uint64_t injected_outages = 0;
  std::uint64_t events = 0;  // chargeable device events ("device steps")
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double wasted_j = 0.0;
  double on_s = 0.0;
  double off_s = 0.0;
  double max_sim_s = 0.0;  // slowest member's simulated clock
  telemetry::Histogram latency_us;
};

struct FleetResult {
  GroupStats total;                // name == "fleet"
  std::vector<GroupStats> groups;  // spec group order
  /// Merged per-device telemetry (FleetSpec::telemetry only), folded in
  /// device-index order.
  telemetry::MetricsRegistry registry;
  /// FNV-1a digest over every device's outcome (index order): logits
  /// checksums + counters. Equal digests mean bit-identical fleet runs —
  /// the determinism contract checked across lane counts.
  std::uint64_t checksum = 0;

  [[nodiscard]] std::size_t devices() const { return total.devices; }
};

}  // namespace iprune::fleet
