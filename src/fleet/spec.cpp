#include "fleet/spec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/checker.hpp"
#include "util/rng.hpp"
#include "util/splitmix.hpp"

namespace iprune::fleet {

namespace {

std::string format_g17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
  }
  return value;
}

bool parse_bool(const std::string& text, const std::string& what) {
  if (text == "on" || text == "true" || text == "1") {
    return true;
  }
  if (text == "off" || text == "false" || text == "0") {
    return false;
  }
  throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
}

/// Split a line into whitespace-separated key=value fields. Schedule
/// descriptions contain ';' and '=', so the separator is whitespace and
/// only the FIRST '=' splits key from value.
std::vector<std::pair<std::string, std::string>> parse_fields(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fleet spec: expected key=value, got '" +
                                  token + "'");
    }
    fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return fields;
}

}  // namespace

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTiny:
      return "tiny";
    case ModelKind::kMultipath:
      return "multipath";
  }
  return "?";
}

ModelKind parse_model_kind(const std::string& name) {
  if (name == "tiny") {
    return ModelKind::kTiny;
  }
  if (name == "multipath") {
    return ModelKind::kMultipath;
  }
  throw std::invalid_argument("fleet spec: unknown model '" + name + "'");
}

const char* sim_kind_name(SimKind kind) {
  switch (kind) {
    case SimKind::kStepping:
      return "stepping";
    case SimKind::kScheduler:
      return "scheduler";
    case SimKind::kBatched:
      return "batched";
  }
  return "?";
}

SimKind parse_sim_kind(const std::string& name) {
  if (name == "stepping") {
    return SimKind::kStepping;
  }
  if (name == "scheduler") {
    return SimKind::kScheduler;
  }
  if (name == "batched") {
    return SimKind::kBatched;
  }
  throw std::invalid_argument("fleet spec: unknown sim '" + name + "'");
}

PowerProfile PowerProfile::continuous() {
  PowerProfile p;
  p.kind = Kind::kContinuous;
  return p;
}

PowerProfile PowerProfile::strong() {
  PowerProfile p;
  p.kind = Kind::kStrong;
  return p;
}

PowerProfile PowerProfile::weak() {
  PowerProfile p;
  p.kind = Kind::kWeak;
  return p;
}

PowerProfile PowerProfile::constant(double watts) {
  PowerProfile p;
  p.kind = Kind::kConstant;
  p.watts = watts;
  return p;
}

PowerProfile PowerProfile::solar(double peak_w, double day_s) {
  PowerProfile p;
  p.kind = Kind::kSolar;
  p.peak_w = peak_w;
  p.day_s = day_s;
  return p;
}

PowerProfile PowerProfile::rf(double burst_w, double period_s, double duty) {
  PowerProfile p;
  p.kind = Kind::kRf;
  p.watts = burst_w;
  p.period_s = period_s;
  p.duty = duty;
  return p;
}

PowerProfile PowerProfile::kinetic(double impulse_w, double period_s,
                                   std::uint64_t steps, double decay) {
  PowerProfile p;
  p.kind = Kind::kKinetic;
  p.watts = impulse_w;
  p.period_s = period_s;
  p.steps = steps;
  p.decay = decay;
  return p;
}

PowerProfile PowerProfile::indoor(double lit_w, double dim_w,
                                  double period_s, double duty) {
  PowerProfile p;
  p.kind = Kind::kIndoor;
  p.watts = lit_w;
  p.dim_w = dim_w;
  p.period_s = period_s;
  p.duty = duty;
  return p;
}

PowerProfile PowerProfile::diurnal(double peak_w, double day_s,
                                   double daylight) {
  PowerProfile p;
  p.kind = Kind::kDiurnal;
  p.peak_w = peak_w;
  p.day_s = day_s;
  p.duty = daylight;
  return p;
}

PowerProfile PowerProfile::trace(std::string path, double sample_period_s) {
  PowerProfile p;
  p.kind = Kind::kTrace;
  p.trace_path = std::move(path);
  p.period_s = sample_period_s;
  return p;
}

std::unique_ptr<power::PowerSupply> PowerProfile::make() const {
  switch (kind) {
    case Kind::kContinuous:
      return power::SupplyPresets::continuous();
    case Kind::kStrong:
      return power::SupplyPresets::strong();
    case Kind::kWeak:
      return power::SupplyPresets::weak();
    case Kind::kConstant:
      return std::make_unique<power::ConstantSupply>(watts);
    case Kind::kSolar:
      return power::SupplyPresets::solar_day(peak_w, day_s);
    case Kind::kRf:
      return std::make_unique<power::RfSupply>(watts, period_s, duty);
    case Kind::kKinetic:
      return std::make_unique<power::KineticSupply>(
          watts, period_s, static_cast<std::size_t>(steps), decay);
    case Kind::kIndoor:
      return std::make_unique<power::IndoorSolarSupply>(watts, dim_w,
                                                        period_s, duty);
    case Kind::kDiurnal:
      return std::make_unique<power::DiurnalSupply>(peak_w, day_s, duty);
    case Kind::kTrace:
      return std::make_unique<power::TraceSupply>(
          power::TraceSupply::from_csv(trace_path, period_s));
  }
  throw std::logic_error("fleet spec: bad power profile kind");
}

namespace {

[[noreturn]] void supply_range_error(const std::string& field,
                                     const std::string& constraint) {
  throw std::invalid_argument("fleet spec: supply " + field + " must be " +
                              constraint);
}

void require_positive(double value, const std::string& field) {
  if (!std::isfinite(value) || value <= 0.0) {
    supply_range_error(field, "finite and > 0");
  }
}

void require_fraction(double value, const std::string& field) {
  if (!std::isfinite(value) || value <= 0.0 || value > 1.0) {
    supply_range_error(field, "in (0, 1]");
  }
}

}  // namespace

void PowerProfile::validate() const {
  switch (kind) {
    case Kind::kContinuous:
    case Kind::kStrong:
    case Kind::kWeak:
      return;
    case Kind::kConstant:
      require_positive(watts, "watts");
      return;
    case Kind::kSolar:
      require_positive(peak_w, "solar peak_w");
      require_positive(day_s, "solar day_s");
      return;
    case Kind::kRf:
      require_positive(watts, "rf burst_w");
      require_positive(period_s, "rf period_s");
      require_fraction(duty, "rf duty");
      return;
    case Kind::kKinetic:
      require_positive(watts, "kinetic impulse_w");
      require_positive(period_s, "kinetic period_s");
      require_fraction(decay, "kinetic decay");
      if (steps == 0 || steps > 4096) {
        supply_range_error("kinetic steps", "in [1, 4096]");
      }
      return;
    case Kind::kIndoor:
      require_positive(watts, "indoor lit_w");
      require_positive(period_s, "indoor period_s");
      require_fraction(duty, "indoor duty");
      if (!std::isfinite(dim_w) || dim_w < 0.0 || dim_w > watts) {
        supply_range_error("indoor dim_w", "in [0, lit_w]");
      }
      return;
    case Kind::kDiurnal:
      require_positive(peak_w, "diurnal peak_w");
      require_positive(day_s, "diurnal day_s");
      require_fraction(duty, "diurnal daylight");
      return;
    case Kind::kTrace:
      require_positive(period_s, "trace period_s");
      if (trace_path.empty()) {
        supply_range_error("trace path", "non-empty");
      }
      return;
  }
  throw std::logic_error("fleet spec: bad power profile kind");
}

std::string PowerProfile::describe() const {
  switch (kind) {
    case Kind::kContinuous:
      return "continuous";
    case Kind::kStrong:
      return "strong";
    case Kind::kWeak:
      return "weak";
    case Kind::kConstant:
      return "const:" + format_g17(watts);
    case Kind::kSolar:
      return "solar:" + format_g17(peak_w) + ":" + format_g17(day_s);
    case Kind::kRf:
      return "rf:" + format_g17(watts) + ":" + format_g17(period_s) + ":" +
             format_g17(duty);
    case Kind::kKinetic:
      return "kinetic:" + format_g17(watts) + ":" + format_g17(period_s) +
             ":" + std::to_string(steps) + ":" + format_g17(decay);
    case Kind::kIndoor:
      return "indoor:" + format_g17(watts) + ":" + format_g17(dim_w) + ":" +
             format_g17(period_s) + ":" + format_g17(duty);
    case Kind::kDiurnal:
      return "diurnal:" + format_g17(peak_w) + ":" + format_g17(day_s) +
             ":" + format_g17(duty);
    case Kind::kTrace:
      // Period before path: the path may itself contain ':' and is
      // terminated only by the end of the token.
      return "trace:" + format_g17(period_s) + ":" + trace_path;
  }
  return "?";
}

namespace {

/// Split "a:b:c" into exactly `arity` parts; throws naming the supply
/// form when the arity is wrong.
std::vector<std::string> supply_args(const std::string& text,
                                     const std::string& rest,
                                     std::size_t arity,
                                     const std::string& form) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= rest.size()) {
    const std::size_t colon = rest.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(rest.substr(begin));
      break;
    }
    parts.push_back(rest.substr(begin, colon - begin));
    begin = colon + 1;
  }
  if (parts.size() != arity) {
    throw std::invalid_argument("fleet spec: supply needs " + form +
                                ", got '" + text + "'");
  }
  return parts;
}

}  // namespace

PowerProfile PowerProfile::parse(const std::string& text) {
  PowerProfile profile;
  if (text == "continuous") {
    profile = continuous();
  } else if (text == "strong") {
    profile = strong();
  } else if (text == "weak") {
    profile = weak();
  } else if (text.rfind("const:", 0) == 0) {
    profile = constant(parse_double(text.substr(6), "supply watts"));
  } else if (text.rfind("solar:", 0) == 0) {
    const auto args = supply_args(text, text.substr(6), 2,
                                  "solar:<peak_w>:<day_s>");
    profile = solar(parse_double(args[0], "solar peak_w"),
                    parse_double(args[1], "solar day_s"));
  } else if (text.rfind("rf:", 0) == 0) {
    const auto args = supply_args(text, text.substr(3), 3,
                                  "rf:<burst_w>:<period_s>:<duty>");
    profile = rf(parse_double(args[0], "rf burst_w"),
                 parse_double(args[1], "rf period_s"),
                 parse_double(args[2], "rf duty"));
  } else if (text.rfind("kinetic:", 0) == 0) {
    const auto args =
        supply_args(text, text.substr(8), 4,
                    "kinetic:<impulse_w>:<period_s>:<steps>:<decay>");
    profile = kinetic(parse_double(args[0], "kinetic impulse_w"),
                      parse_double(args[1], "kinetic period_s"),
                      parse_u64(args[2], "kinetic steps"),
                      parse_double(args[3], "kinetic decay"));
  } else if (text.rfind("indoor:", 0) == 0) {
    const auto args =
        supply_args(text, text.substr(7), 4,
                    "indoor:<lit_w>:<dim_w>:<period_s>:<duty>");
    profile = indoor(parse_double(args[0], "indoor lit_w"),
                     parse_double(args[1], "indoor dim_w"),
                     parse_double(args[2], "indoor period_s"),
                     parse_double(args[3], "indoor duty"));
  } else if (text.rfind("diurnal:", 0) == 0) {
    const auto args = supply_args(text, text.substr(8), 3,
                                  "diurnal:<peak_w>:<day_s>:<daylight>");
    profile = diurnal(parse_double(args[0], "diurnal peak_w"),
                      parse_double(args[1], "diurnal day_s"),
                      parse_double(args[2], "diurnal daylight"));
  } else if (text.rfind("trace:", 0) == 0) {
    const std::string rest = text.substr(6);
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "fleet spec: supply needs trace:<period_s>:<path>, got '" + text +
          "'");
    }
    profile = trace(rest.substr(colon + 1),
                    parse_double(rest.substr(0, colon), "trace period_s"));
  } else {
    throw std::invalid_argument("fleet spec: unknown supply '" + text + "'");
  }
  profile.validate();
  return profile;
}

const char* integrity_mode_name(IntegrityMode mode) {
  switch (mode) {
    case IntegrityMode::kAuto:
      return "auto";
    case IntegrityMode::kOn:
      return "on";
    case IntegrityMode::kOff:
      return "off";
  }
  return "?";
}

IntegrityMode parse_integrity_mode(const std::string& name) {
  if (name == "auto") {
    return IntegrityMode::kAuto;
  }
  if (name == "on") {
    return IntegrityMode::kOn;
  }
  if (name == "off") {
    return IntegrityMode::kOff;
  }
  throw std::invalid_argument("fleet spec: unknown integrity mode '" + name +
                              "'");
}

std::string DeviceGroup::describe() const {
  std::string out = "group: name=" + name + " count=" + std::to_string(count) +
                    " model=" + model_kind_name(model) + " mode=" +
                    fault::preservation_mode_name(mode) + " supply=" +
                    power.describe();
  if (schedule.mode != fault::ScheduleMode::kNone) {
    out += " schedule=" + schedule.describe();
  }
  if (write_ber != 0.0) {
    out += " write_ber=" + format_g17(write_ber);
  }
  if (read_ber != 0.0) {
    out += " read_ber=" + format_g17(read_ber);
  }
  if (integrity != IntegrityMode::kAuto) {
    out += " integrity=" + std::string(integrity_mode_name(integrity));
  }
  if (backend != engine::BackendConfig::msp430_fram()) {
    out += " backend=" + backend.describe();
  }
  return out;
}

DeviceGroup DeviceGroup::parse(const std::string& text) {
  DeviceGroup group;
  bool named = false;
  for (const auto& [key, value] : parse_fields(text)) {
    if (key == "name") {
      group.name = value;
      named = true;
    } else if (key == "count") {
      group.count = static_cast<std::size_t>(parse_u64(value, "count"));
    } else if (key == "model") {
      group.model = parse_model_kind(value);
    } else if (key == "mode") {
      group.mode = fault::parse_preservation_mode(value);
    } else if (key == "supply") {
      group.power = PowerProfile::parse(value);
    } else if (key == "schedule") {
      group.schedule = fault::OutageSchedule::parse(value);
    } else if (key == "write_ber") {
      group.write_ber = parse_double(value, "write_ber");
    } else if (key == "read_ber") {
      group.read_ber = parse_double(value, "read_ber");
    } else if (key == "integrity") {
      group.integrity = parse_integrity_mode(value);
    } else if (key == "backend") {
      try {
        group.backend = engine::BackendConfig::parse(value);
      } catch (const std::runtime_error&) {
        throw std::invalid_argument("fleet spec: unknown backend '" + value +
                                    "'");
      }
    } else {
      throw std::invalid_argument("fleet spec: unknown group field '" + key +
                                  "'");
    }
  }
  if (!named || group.name.empty()) {
    throw std::invalid_argument("fleet spec: group line needs a name");
  }
  if (group.count == 0) {
    throw std::invalid_argument("fleet spec: group '" + group.name +
                                "' has count=0");
  }
  if (group.write_ber < 0.0 || group.write_ber > 1.0 ||
      group.read_ber < 0.0 || group.read_ber > 1.0) {
    throw std::invalid_argument("fleet spec: group '" + group.name +
                                "' bit-error rates must be in [0, 1]");
  }
  // The functional backend has no power model: harvest profiles and
  // outage schedules cannot apply to it, so reject specs that pretend
  // otherwise instead of silently ignoring the fields.
  if (group.backend.kind == engine::BackendKind::kFunctional) {
    if (group.power.kind != PowerProfile::Kind::kContinuous) {
      throw std::invalid_argument(
          "fleet spec: group '" + group.name +
          "' backend=functional requires supply=continuous (no power model)");
    }
    if (group.schedule.mode != fault::ScheduleMode::kNone) {
      throw std::invalid_argument(
          "fleet spec: group '" + group.name +
          "' backend=functional cannot take an outage schedule");
    }
  }
  return group;
}

std::size_t FleetSpec::total_devices() const {
  std::size_t total = 0;
  for (const DeviceGroup& group : groups) {
    total += group.count;
  }
  return total;
}

FleetSpec FleetSpec::with_devices(std::size_t n) const {
  if (n == 0) {
    throw std::invalid_argument("fleet spec: device count must be >= 1");
  }
  if (groups.empty()) {
    throw std::invalid_argument("fleet spec: no groups to scale");
  }
  const std::size_t total = total_devices();
  FleetSpec scaled = *this;
  // Largest-remainder apportionment: floor each share, then hand the
  // leftover devices to the groups with the largest fractional parts
  // (ties to earlier groups). Deterministic and order-preserving.
  std::size_t assigned = 0;
  std::vector<std::size_t> remainder_num(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t share = n * groups[i].count;  // spec counts are small
    scaled.groups[i].count = share / total;
    remainder_num[i] = share % total;
    assigned += scaled.groups[i].count;
  }
  while (assigned < n) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < groups.size(); ++i) {
      if (remainder_num[i] > remainder_num[best]) {
        best = i;
      }
    }
    ++scaled.groups[best].count;
    remainder_num[best] = 0;
    ++assigned;
  }
  // Drop groups scaled to zero devices (n smaller than the group count):
  // a zero-count group would fail the count>=1 invariant on re-parse.
  std::vector<DeviceGroup> kept;
  for (const DeviceGroup& group : scaled.groups) {
    if (group.count > 0) {
      kept.push_back(group);
    }
  }
  scaled.groups = std::move(kept);
  return scaled;
}

std::vector<DeviceSpec> FleetSpec::resolve() const {
  std::vector<DeviceSpec> devices;
  devices.reserve(total_devices());
  // One fleet-level Rng; each device's model stream is a split child
  // (Rng::split hands the child Rng(parent.next_u64()), so storing the
  // drawn word reproduces the exact split stream on the device).
  util::Rng fleet_rng(seed);
  std::size_t index = 0;
  for (const DeviceGroup& group : groups) {
    for (std::size_t i = 0; i < group.count; ++i, ++index) {
      DeviceSpec d;
      d.index = index;
      d.group = group.name;
      d.model = group.model;
      d.mode = group.mode;
      d.power = group.power;
      d.write_ber = group.write_ber;
      d.read_ber = group.read_ber;
      d.integrity = group.integrity;
      d.backend = group.backend;
      d.model_seed = fleet_rng.next_u64();
      d.stream_seed = util::splitmix64_at(seed, index);
      d.schedule = group.schedule;
      if (d.schedule.mode == fault::ScheduleMode::kRandom) {
        // Decorrelate group members: same outage statistics, different
        // (deterministic) outage points per device.
        d.schedule.seed ^= d.stream_seed;
      }
      d.inferences = inferences;
      d.deadline_s = deadline_s;
      d.event_budget = event_budget;
      d.telemetry = telemetry;
      d.sim = sim;
      devices.push_back(std::move(d));
    }
  }
  return devices;
}

std::string FleetSpec::describe() const {
  std::string out = "fleet: seed=" + std::to_string(seed) + " inferences=" +
                    std::to_string(inferences) + " batch=" +
                    std::to_string(batch) + " telemetry=" +
                    (telemetry ? "on" : "off") + " event_budget=" +
                    std::to_string(event_budget);
  if (deadline_s != 0.0) {
    out += " deadline_s=" + format_g17(deadline_s);
  }
  if (sim != SimKind::kStepping) {
    out += " sim=" + std::string(sim_kind_name(sim));
  }
  out += "\n";
  for (const DeviceGroup& group : groups) {
    out += group.describe() + "\n";
  }
  return out;
}

FleetSpec FleetSpec::parse(const std::string& text) {
  FleetSpec spec;
  spec.groups.clear();
  bool saw_fleet = false;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const std::string body = line.substr(start);
    if (body.rfind("fleet:", 0) == 0) {
      if (saw_fleet) {
        throw std::invalid_argument(
            "fleet spec: duplicate fleet: line (line " +
            std::to_string(line_no) + ")");
      }
      saw_fleet = true;
      for (const auto& [key, value] : parse_fields(body.substr(6))) {
        if (key == "seed") {
          spec.seed = parse_u64(value, "seed");
        } else if (key == "deadline_s") {
          spec.deadline_s = parse_double(value, "deadline_s");
        } else if (key == "inferences") {
          spec.inferences = static_cast<std::size_t>(
              parse_u64(value, "inferences"));
        } else if (key == "batch") {
          spec.batch = static_cast<std::size_t>(parse_u64(value, "batch"));
        } else if (key == "telemetry") {
          spec.telemetry = parse_bool(value, "telemetry");
        } else if (key == "event_budget") {
          spec.event_budget = parse_u64(value, "event_budget");
        } else if (key == "sim") {
          spec.sim = parse_sim_kind(value);
        } else {
          throw std::invalid_argument("fleet spec: unknown fleet field '" +
                                      key + "'");
        }
      }
    } else if (body.rfind("group:", 0) == 0) {
      spec.groups.push_back(DeviceGroup::parse(body.substr(6)));
    } else {
      throw std::invalid_argument(
          "fleet spec: line " + std::to_string(line_no) +
          " must start with 'fleet:', 'group:', or '#'");
    }
  }
  if (spec.groups.empty()) {
    throw std::invalid_argument("fleet spec: no group: lines");
  }
  if (spec.inferences == 0) {
    throw std::invalid_argument("fleet spec: inferences must be >= 1");
  }
  if (spec.batch == 0) {
    throw std::invalid_argument("fleet spec: batch must be >= 1");
  }
  return spec;
}

FleetSpec FleetSpec::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("fleet spec: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

FleetSpec FleetSpec::example(std::size_t devices) {
  FleetSpec spec;
  spec.seed = 2026;
  // Enough inferences to outrun the energy buffer (~104 uJ usable, ~20 uJ
  // per tiny inference): the weak/harsh groups brown out organically.
  spec.inferences = 8;

  DeviceGroup mains;
  mains.name = "mains";
  mains.count = 2;
  mains.model = ModelKind::kTiny;
  mains.mode = engine::PreservationMode::kAccumulateInVm;
  mains.power = PowerProfile::continuous();

  DeviceGroup strong;
  strong.name = "strong";
  strong.count = 3;
  strong.model = ModelKind::kTiny;
  strong.mode = engine::PreservationMode::kImmediate;
  strong.power = PowerProfile::strong();

  DeviceGroup weak;
  weak.name = "weak";
  weak.count = 2;
  weak.model = ModelKind::kMultipath;
  weak.mode = engine::PreservationMode::kTaskAtomic;
  weak.power = PowerProfile::weak();

  DeviceGroup solar;
  solar.name = "solar";
  solar.count = 2;
  solar.model = ModelKind::kTiny;
  solar.mode = engine::PreservationMode::kImmediate;
  solar.power = PowerProfile::solar(8.0e-3, 0.5);

  // Sub-milliwatt harvest: the buffer sustains ~10 ms of inference per
  // charge, so these devices duty-cycle through organic brown-outs.
  DeviceGroup harsh;
  harsh.name = "harsh";
  harsh.count = 2;
  harsh.model = ModelKind::kTiny;
  harsh.mode = engine::PreservationMode::kImmediate;
  harsh.power = PowerProfile::constant(5.0e-4);

  DeviceGroup faulty;
  faulty.name = "faulty";
  faulty.count = 1;
  faulty.model = ModelKind::kTiny;
  faulty.mode = engine::PreservationMode::kImmediate;
  faulty.power = PowerProfile::strong();
  faulty.schedule = fault::OutageSchedule::random(7, 1.0e-2, 16);

  spec.groups = {mains, strong, weak, solar, harsh, faulty};
  return spec.with_devices(devices);
}

}  // namespace iprune::fleet
