#include "fleet/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/checker.hpp"
#include "util/rng.hpp"
#include "util/splitmix.hpp"

namespace iprune::fleet {

namespace {

std::string format_g17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
  }
  return value;
}

bool parse_bool(const std::string& text, const std::string& what) {
  if (text == "on" || text == "true" || text == "1") {
    return true;
  }
  if (text == "off" || text == "false" || text == "0") {
    return false;
  }
  throw std::invalid_argument("fleet spec: bad " + what + " '" + text + "'");
}

/// Split a line into whitespace-separated key=value fields. Schedule
/// descriptions contain ';' and '=', so the separator is whitespace and
/// only the FIRST '=' splits key from value.
std::vector<std::pair<std::string, std::string>> parse_fields(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fleet spec: expected key=value, got '" +
                                  token + "'");
    }
    fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return fields;
}

}  // namespace

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTiny:
      return "tiny";
    case ModelKind::kMultipath:
      return "multipath";
  }
  return "?";
}

ModelKind parse_model_kind(const std::string& name) {
  if (name == "tiny") {
    return ModelKind::kTiny;
  }
  if (name == "multipath") {
    return ModelKind::kMultipath;
  }
  throw std::invalid_argument("fleet spec: unknown model '" + name + "'");
}

const char* sim_kind_name(SimKind kind) {
  switch (kind) {
    case SimKind::kStepping:
      return "stepping";
    case SimKind::kScheduler:
      return "scheduler";
    case SimKind::kBatched:
      return "batched";
  }
  return "?";
}

SimKind parse_sim_kind(const std::string& name) {
  if (name == "stepping") {
    return SimKind::kStepping;
  }
  if (name == "scheduler") {
    return SimKind::kScheduler;
  }
  if (name == "batched") {
    return SimKind::kBatched;
  }
  throw std::invalid_argument("fleet spec: unknown sim '" + name + "'");
}

PowerProfile PowerProfile::continuous() {
  PowerProfile p;
  p.kind = Kind::kContinuous;
  return p;
}

PowerProfile PowerProfile::strong() {
  PowerProfile p;
  p.kind = Kind::kStrong;
  return p;
}

PowerProfile PowerProfile::weak() {
  PowerProfile p;
  p.kind = Kind::kWeak;
  return p;
}

PowerProfile PowerProfile::constant(double watts) {
  PowerProfile p;
  p.kind = Kind::kConstant;
  p.watts = watts;
  return p;
}

PowerProfile PowerProfile::solar(double peak_w, double day_s) {
  PowerProfile p;
  p.kind = Kind::kSolar;
  p.peak_w = peak_w;
  p.day_s = day_s;
  return p;
}

std::unique_ptr<power::PowerSupply> PowerProfile::make() const {
  switch (kind) {
    case Kind::kContinuous:
      return power::SupplyPresets::continuous();
    case Kind::kStrong:
      return power::SupplyPresets::strong();
    case Kind::kWeak:
      return power::SupplyPresets::weak();
    case Kind::kConstant:
      return std::make_unique<power::ConstantSupply>(watts);
    case Kind::kSolar:
      return power::SupplyPresets::solar_day(peak_w, day_s);
  }
  throw std::logic_error("fleet spec: bad power profile kind");
}

std::string PowerProfile::describe() const {
  switch (kind) {
    case Kind::kContinuous:
      return "continuous";
    case Kind::kStrong:
      return "strong";
    case Kind::kWeak:
      return "weak";
    case Kind::kConstant:
      return "const:" + format_g17(watts);
    case Kind::kSolar:
      return "solar:" + format_g17(peak_w) + ":" + format_g17(day_s);
  }
  return "?";
}

PowerProfile PowerProfile::parse(const std::string& text) {
  if (text == "continuous") {
    return continuous();
  }
  if (text == "strong") {
    return strong();
  }
  if (text == "weak") {
    return weak();
  }
  if (text.rfind("const:", 0) == 0) {
    return constant(parse_double(text.substr(6), "supply watts"));
  }
  if (text.rfind("solar:", 0) == 0) {
    const std::string rest = text.substr(6);
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "fleet spec: solar supply needs solar:<peak_w>:<day_s>, got '" +
          text + "'");
    }
    return solar(parse_double(rest.substr(0, colon), "solar peak_w"),
                 parse_double(rest.substr(colon + 1), "solar day_s"));
  }
  throw std::invalid_argument("fleet spec: unknown supply '" + text + "'");
}

std::string DeviceGroup::describe() const {
  std::string out = "group: name=" + name + " count=" + std::to_string(count) +
                    " model=" + model_kind_name(model) + " mode=" +
                    fault::preservation_mode_name(mode) + " supply=" +
                    power.describe();
  if (schedule.mode != fault::ScheduleMode::kNone) {
    out += " schedule=" + schedule.describe();
  }
  if (write_ber != 0.0) {
    out += " write_ber=" + format_g17(write_ber);
  }
  if (read_ber != 0.0) {
    out += " read_ber=" + format_g17(read_ber);
  }
  return out;
}

DeviceGroup DeviceGroup::parse(const std::string& text) {
  DeviceGroup group;
  bool named = false;
  for (const auto& [key, value] : parse_fields(text)) {
    if (key == "name") {
      group.name = value;
      named = true;
    } else if (key == "count") {
      group.count = static_cast<std::size_t>(parse_u64(value, "count"));
    } else if (key == "model") {
      group.model = parse_model_kind(value);
    } else if (key == "mode") {
      group.mode = fault::parse_preservation_mode(value);
    } else if (key == "supply") {
      group.power = PowerProfile::parse(value);
    } else if (key == "schedule") {
      group.schedule = fault::OutageSchedule::parse(value);
    } else if (key == "write_ber") {
      group.write_ber = parse_double(value, "write_ber");
    } else if (key == "read_ber") {
      group.read_ber = parse_double(value, "read_ber");
    } else {
      throw std::invalid_argument("fleet spec: unknown group field '" + key +
                                  "'");
    }
  }
  if (!named || group.name.empty()) {
    throw std::invalid_argument("fleet spec: group line needs a name");
  }
  if (group.count == 0) {
    throw std::invalid_argument("fleet spec: group '" + group.name +
                                "' has count=0");
  }
  if (group.write_ber < 0.0 || group.write_ber > 1.0 ||
      group.read_ber < 0.0 || group.read_ber > 1.0) {
    throw std::invalid_argument("fleet spec: group '" + group.name +
                                "' bit-error rates must be in [0, 1]");
  }
  return group;
}

std::size_t FleetSpec::total_devices() const {
  std::size_t total = 0;
  for (const DeviceGroup& group : groups) {
    total += group.count;
  }
  return total;
}

FleetSpec FleetSpec::with_devices(std::size_t n) const {
  if (n == 0) {
    throw std::invalid_argument("fleet spec: device count must be >= 1");
  }
  if (groups.empty()) {
    throw std::invalid_argument("fleet spec: no groups to scale");
  }
  const std::size_t total = total_devices();
  FleetSpec scaled = *this;
  // Largest-remainder apportionment: floor each share, then hand the
  // leftover devices to the groups with the largest fractional parts
  // (ties to earlier groups). Deterministic and order-preserving.
  std::size_t assigned = 0;
  std::vector<std::size_t> remainder_num(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t share = n * groups[i].count;  // spec counts are small
    scaled.groups[i].count = share / total;
    remainder_num[i] = share % total;
    assigned += scaled.groups[i].count;
  }
  while (assigned < n) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < groups.size(); ++i) {
      if (remainder_num[i] > remainder_num[best]) {
        best = i;
      }
    }
    ++scaled.groups[best].count;
    remainder_num[best] = 0;
    ++assigned;
  }
  // Drop groups scaled to zero devices (n smaller than the group count):
  // a zero-count group would fail the count>=1 invariant on re-parse.
  std::vector<DeviceGroup> kept;
  for (const DeviceGroup& group : scaled.groups) {
    if (group.count > 0) {
      kept.push_back(group);
    }
  }
  scaled.groups = std::move(kept);
  return scaled;
}

std::vector<DeviceSpec> FleetSpec::resolve() const {
  std::vector<DeviceSpec> devices;
  devices.reserve(total_devices());
  // One fleet-level Rng; each device's model stream is a split child
  // (Rng::split hands the child Rng(parent.next_u64()), so storing the
  // drawn word reproduces the exact split stream on the device).
  util::Rng fleet_rng(seed);
  std::size_t index = 0;
  for (const DeviceGroup& group : groups) {
    for (std::size_t i = 0; i < group.count; ++i, ++index) {
      DeviceSpec d;
      d.index = index;
      d.group = group.name;
      d.model = group.model;
      d.mode = group.mode;
      d.power = group.power;
      d.write_ber = group.write_ber;
      d.read_ber = group.read_ber;
      d.model_seed = fleet_rng.next_u64();
      d.stream_seed = util::splitmix64_at(seed, index);
      d.schedule = group.schedule;
      if (d.schedule.mode == fault::ScheduleMode::kRandom) {
        // Decorrelate group members: same outage statistics, different
        // (deterministic) outage points per device.
        d.schedule.seed ^= d.stream_seed;
      }
      d.inferences = inferences;
      d.deadline_s = deadline_s;
      d.event_budget = event_budget;
      d.telemetry = telemetry;
      d.sim = sim;
      devices.push_back(std::move(d));
    }
  }
  return devices;
}

std::string FleetSpec::describe() const {
  std::string out = "fleet: seed=" + std::to_string(seed) + " inferences=" +
                    std::to_string(inferences) + " batch=" +
                    std::to_string(batch) + " telemetry=" +
                    (telemetry ? "on" : "off") + " event_budget=" +
                    std::to_string(event_budget);
  if (deadline_s != 0.0) {
    out += " deadline_s=" + format_g17(deadline_s);
  }
  if (sim != SimKind::kStepping) {
    out += " sim=" + std::string(sim_kind_name(sim));
  }
  out += "\n";
  for (const DeviceGroup& group : groups) {
    out += group.describe() + "\n";
  }
  return out;
}

FleetSpec FleetSpec::parse(const std::string& text) {
  FleetSpec spec;
  spec.groups.clear();
  bool saw_fleet = false;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const std::string body = line.substr(start);
    if (body.rfind("fleet:", 0) == 0) {
      if (saw_fleet) {
        throw std::invalid_argument(
            "fleet spec: duplicate fleet: line (line " +
            std::to_string(line_no) + ")");
      }
      saw_fleet = true;
      for (const auto& [key, value] : parse_fields(body.substr(6))) {
        if (key == "seed") {
          spec.seed = parse_u64(value, "seed");
        } else if (key == "deadline_s") {
          spec.deadline_s = parse_double(value, "deadline_s");
        } else if (key == "inferences") {
          spec.inferences = static_cast<std::size_t>(
              parse_u64(value, "inferences"));
        } else if (key == "batch") {
          spec.batch = static_cast<std::size_t>(parse_u64(value, "batch"));
        } else if (key == "telemetry") {
          spec.telemetry = parse_bool(value, "telemetry");
        } else if (key == "event_budget") {
          spec.event_budget = parse_u64(value, "event_budget");
        } else if (key == "sim") {
          spec.sim = parse_sim_kind(value);
        } else {
          throw std::invalid_argument("fleet spec: unknown fleet field '" +
                                      key + "'");
        }
      }
    } else if (body.rfind("group:", 0) == 0) {
      spec.groups.push_back(DeviceGroup::parse(body.substr(6)));
    } else {
      throw std::invalid_argument(
          "fleet spec: line " + std::to_string(line_no) +
          " must start with 'fleet:', 'group:', or '#'");
    }
  }
  if (spec.groups.empty()) {
    throw std::invalid_argument("fleet spec: no group: lines");
  }
  if (spec.inferences == 0) {
    throw std::invalid_argument("fleet spec: inferences must be >= 1");
  }
  if (spec.batch == 0) {
    throw std::invalid_argument("fleet spec: batch must be >= 1");
  }
  return spec;
}

FleetSpec FleetSpec::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("fleet spec: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

FleetSpec FleetSpec::example(std::size_t devices) {
  FleetSpec spec;
  spec.seed = 2026;
  // Enough inferences to outrun the energy buffer (~104 uJ usable, ~20 uJ
  // per tiny inference): the weak/harsh groups brown out organically.
  spec.inferences = 8;

  DeviceGroup mains;
  mains.name = "mains";
  mains.count = 2;
  mains.model = ModelKind::kTiny;
  mains.mode = engine::PreservationMode::kAccumulateInVm;
  mains.power = PowerProfile::continuous();

  DeviceGroup strong;
  strong.name = "strong";
  strong.count = 3;
  strong.model = ModelKind::kTiny;
  strong.mode = engine::PreservationMode::kImmediate;
  strong.power = PowerProfile::strong();

  DeviceGroup weak;
  weak.name = "weak";
  weak.count = 2;
  weak.model = ModelKind::kMultipath;
  weak.mode = engine::PreservationMode::kTaskAtomic;
  weak.power = PowerProfile::weak();

  DeviceGroup solar;
  solar.name = "solar";
  solar.count = 2;
  solar.model = ModelKind::kTiny;
  solar.mode = engine::PreservationMode::kImmediate;
  solar.power = PowerProfile::solar(8.0e-3, 0.5);

  // Sub-milliwatt harvest: the buffer sustains ~10 ms of inference per
  // charge, so these devices duty-cycle through organic brown-outs.
  DeviceGroup harsh;
  harsh.name = "harsh";
  harsh.count = 2;
  harsh.model = ModelKind::kTiny;
  harsh.mode = engine::PreservationMode::kImmediate;
  harsh.power = PowerProfile::constant(5.0e-4);

  DeviceGroup faulty;
  faulty.name = "faulty";
  faulty.count = 1;
  faulty.model = ModelKind::kTiny;
  faulty.mode = engine::PreservationMode::kImmediate;
  faulty.power = PowerProfile::strong();
  faulty.schedule = fault::OutageSchedule::random(7, 1.0e-2, 16);

  spec.groups = {mains, strong, weak, solar, harsh, faulty};
  return spec.with_devices(devices);
}

}  // namespace iprune::fleet
