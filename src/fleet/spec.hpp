#pragma once
// FleetSpec: a declarative description of a heterogeneous population of
// intermittently-powered devices.
//
// A fleet is a list of device groups; each group names a model
// architecture, a preservation mode, a harvest profile, and optional
// fault/corruption schedules, plus a `count` that doubles as the group's
// weight when the population is rescaled (`fleet_run --devices N`). The
// whole spec round-trips through describe()/parse() — one line per
// group, space-separated key=value fields — so a fleet experiment is a
// small text file (docs/fleet.md documents the format).
//
// Determinism contract: resolve() expands the spec into per-device
// DeviceSpecs *serially*, deriving every device's seed material from the
// single fleet seed (model/sample streams via util::Rng::split semantics,
// auxiliary corruption/schedule seeds via util::splitmix64), so a given
// spec text always yields the exact same fleet — independent of how many
// lanes later simulate it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/config.hpp"
#include "fault/schedule.hpp"
#include "power/supply.hpp"

namespace iprune::fleet {

/// Model architecture a device runs (the fault-testbed builders: small
/// deterministic graphs that exercise every lowered node kind).
enum class ModelKind : std::uint8_t { kTiny, kMultipath };

const char* model_kind_name(ModelKind kind);
ModelKind parse_model_kind(const std::string& name);

/// How the orchestrator advances devices through simulated time. All
/// three produce bit-identical FleetResults (the differential tests pin
/// this); they differ only in wall-clock cost.
enum class SimKind : std::uint8_t {
  kStepping,   // event-by-event oracle (power stepped per primitive)
  kScheduler,  // discrete-event charge grants over hook-quiet windows
  kBatched,    // scheduler + lockstep cohorts for eligible groups
};

const char* sim_kind_name(SimKind kind);
SimKind parse_sim_kind(const std::string& name);

/// Harvest profile of one device group.
struct PowerProfile {
  enum class Kind : std::uint8_t {
    kContinuous,  // paper's bench supply (1.65 W)
    kStrong,      // 8 mW harvest
    kWeak,        // 4 mW harvest
    kConstant,    // explicit watts
    kSolar,       // day-curve peaking at peak_w over day_s seconds
    kRf,          // RF bursts: burst_w for duty of every period_s
    kKinetic,     // decaying impulse train (steps slots, decay ratio)
    kIndoor,      // office lighting: lit watts for duty, dim floor after
    kDiurnal,     // sin^2 day arc + night, daylight fraction of day_s
    kTrace,       // measured trace file (power::TraceSupply CSV)
  };

  Kind kind = Kind::kStrong;
  double watts = 0.0;     // kConstant / kRf burst / kKinetic impulse /
                          // kIndoor lit watts
  double peak_w = 0.0;    // kSolar / kDiurnal peak watts
  double day_s = 0.0;     // kSolar / kDiurnal day length
  double period_s = 0.0;  // kRf / kKinetic / kIndoor cycle length
  double duty = 0.0;      // kRf / kIndoor on-fraction, kDiurnal daylight
  double dim_w = 0.0;     // kIndoor lights-off floor
  double decay = 0.0;     // kKinetic per-slot decay ratio
  std::uint64_t steps = 0;  // kKinetic impulse slots
  /// kTrace sample file (one mW sample per line; '#' comments). period_s
  /// is the trace's sample period. The path is NOT existence-checked by
  /// validate() — the spec stays pure data; make() throws if it is
  /// missing or empty.
  std::string trace_path;

  static PowerProfile continuous();
  static PowerProfile strong();
  static PowerProfile weak();
  static PowerProfile constant(double watts);
  static PowerProfile solar(double peak_w, double day_s);
  static PowerProfile rf(double burst_w, double period_s, double duty);
  static PowerProfile kinetic(double impulse_w, double period_s,
                              std::uint64_t steps, double decay);
  static PowerProfile indoor(double lit_w, double dim_w, double period_s,
                             double duty);
  static PowerProfile diurnal(double peak_w, double day_s, double daylight);
  static PowerProfile trace(std::string path, double sample_period_s);

  /// Instantiate the power::PowerSupply this profile describes.
  /// Requires validate() to hold.
  [[nodiscard]] std::unique_ptr<power::PowerSupply> make() const;

  /// Range-check every parameter of the active kind; throws
  /// std::invalid_argument with a "fleet spec: supply ..." message naming
  /// the offending field. parse() and the scenario validator both call
  /// this, so a profile that parses (or validates) always make()s.
  void validate() const;

  /// "continuous" | "strong" | "weak" | "const:<w>" | "solar:<peak>:<day>"
  /// | "rf:<burst>:<period>:<duty>" | "kinetic:<w>:<period>:<steps>:<decay>"
  /// | "indoor:<lit>:<dim>:<period>:<duty>" | "diurnal:<peak>:<day>:<frac>"
  /// | "trace:<period_s>:<path>" (period first: the path may contain ':').
  [[nodiscard]] std::string describe() const;
  static PowerProfile parse(const std::string& text);

  bool operator==(const PowerProfile& other) const = default;
};

/// Whether a device arms the engine's NVM integrity layer (CRC-protected
/// progress records, sealed regions, boot scrub).
enum class IntegrityMode : std::uint8_t {
  kAuto,  // armed iff the group injects NVM corruption (the default)
  kOn,    // always armed
  kOff,   // never armed — corrupted groups run as the unprotected
          // baseline and may serve silently-wrong logits by design
};

const char* integrity_mode_name(IntegrityMode mode);
IntegrityMode parse_integrity_mode(const std::string& name);

/// One homogeneous slice of the fleet.
struct DeviceGroup {
  std::string name;
  /// Device count; also the group's weight under with_devices() rescaling.
  std::size_t count = 1;
  ModelKind model = ModelKind::kTiny;
  engine::PreservationMode mode = engine::PreservationMode::kImmediate;
  PowerProfile power;
  /// Forced-outage schedule (kNone = organic outages only). Seeded modes
  /// are re-seeded per device (seed XOR the device's splitmix stream) so
  /// group members fail at different, deterministic points.
  fault::OutageSchedule schedule;
  /// NVM corruption (0 = perfect memory). Under IntegrityMode::kAuto any
  /// non-zero rate arms the engine's integrity layer (protected progress
  /// + sealed regions + boot scrub) — an unprotected corrupted fleet
  /// reports silent garbage.
  double write_ber = 0.0;
  double read_ber = 0.0;
  /// Integrity-layer override (kAuto = armed iff corruption is injected).
  IntegrityMode integrity = IntegrityMode::kAuto;
  /// Device backend preset ("msp430-fram" default, omitted from
  /// describe()). Functional groups have no power model: they require
  /// supply=continuous and forbid an outage schedule (parse validates).
  engine::BackendConfig backend = engine::BackendConfig::msp430_fram();

  [[nodiscard]] std::string describe() const;
  static DeviceGroup parse(const std::string& text);

  bool operator==(const DeviceGroup& other) const = default;
};

/// Everything needed to construct one device stack, fully resolved from
/// the spec. Pure data: the differential tests rebuild the standalone
/// engine path from a DeviceSpec and require bit-identical results.
struct DeviceSpec {
  std::size_t index = 0;  // fleet-wide device index
  std::string group;
  ModelKind model = ModelKind::kTiny;
  engine::PreservationMode mode = engine::PreservationMode::kImmediate;
  PowerProfile power;
  fault::OutageSchedule schedule;  // per-device seed already applied
  double write_ber = 0.0;
  double read_ber = 0.0;
  IntegrityMode integrity = IntegrityMode::kAuto;
  engine::BackendConfig backend = engine::BackendConfig::msp430_fram();
  /// Seed of the device's model/sample Rng stream, drawn from the fleet
  /// Rng in device-index order (Rng::split semantics: the child stream is
  /// Rng(parent.next_u64())).
  std::uint64_t model_seed = 0;
  /// Auxiliary splitmix64-derived material (corruption seed, schedule
  /// re-seeding).
  std::uint64_t stream_seed = 0;
  std::size_t inferences = 1;
  double deadline_s = 0.0;  // 0 = no deadline
  std::uint64_t event_budget = 0;
  bool telemetry = false;
  SimKind sim = SimKind::kStepping;
};

struct FleetSpec {
  std::uint64_t seed = 2026;
  /// Per-device simulated-time completion deadline (seconds; 0 = none).
  double deadline_s = 0.0;
  /// Inferences each device must finish to count as completed.
  std::size_t inferences = 1;
  /// Devices simulated concurrently per batch (bounds peak memory: one
  /// batch of device stacks — NVM images included — is live at a time).
  std::size_t batch = 256;
  /// Collect per-device telemetry registries and merge them fleet-wide.
  bool telemetry = false;
  /// Per-device chargeable-event watchdog (guards against schedules
  /// denser than forward progress); exceeding it marks the device failed.
  std::uint64_t event_budget = 1ull << 23;
  /// Simulation strategy (stepping oracle, event-driven scheduler, or
  /// batched lockstep cohorts). Never changes results, only wall-clock.
  SimKind sim = SimKind::kStepping;
  std::vector<DeviceGroup> groups;

  [[nodiscard]] std::size_t total_devices() const;

  /// Rescale group counts to `n` total devices, proportional to the
  /// existing counts (largest-remainder rounding, ties to earlier groups).
  /// Group order is preserved; n >= 1 required.
  [[nodiscard]] FleetSpec with_devices(std::size_t n) const;

  /// Serially expand into per-device specs (see determinism contract).
  [[nodiscard]] std::vector<DeviceSpec> resolve() const;

  /// Canonical text form; parse(describe()) == *this.
  [[nodiscard]] std::string describe() const;
  static FleetSpec parse(const std::string& text);
  static FleetSpec load(const std::string& path);

  /// Built-in heterogeneous mix used by fleet_run when no --spec is
  /// given: mains/strong/weak/solar harvest groups plus a fault-injected
  /// group, across both testbed models and all preservation modes.
  static FleetSpec example(std::size_t devices);

  bool operator==(const FleetSpec& other) const = default;
};

}  // namespace iprune::fleet
