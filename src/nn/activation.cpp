#include "nn/activation.hpp"

#include <cassert>
#include <stdexcept>

namespace iprune::nn {

Shape Relu::output_shape(std::span<const Shape> input_shapes) const {
  if (input_shapes.size() != 1) {
    throw std::invalid_argument(name() + ": expects one input");
  }
  return input_shapes[0];
}

Tensor Relu::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    output[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return output;
}

Tensor Relu::forward(std::span<const Tensor* const> inputs, bool training) {
  if (!training) {
    return infer(inputs);
  }
  const Tensor& input = *inputs[0];
  Tensor output(input.shape());
  active_.assign(input.numel(), false);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool pass = input[i] > 0.0f;
    output[i] = pass ? input[i] : 0.0f;
    active_[i] = pass;
  }
  cached_shape_ = input.shape();
  return output;
}

std::vector<Tensor> Relu::backward(const Tensor& grad_output) {
  assert(grad_output.numel() == active_.size());
  Tensor grad_input(cached_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = active_[i] ? grad_output[i] : 0.0f;
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Shape Flatten::output_shape(std::span<const Shape> input_shapes) const {
  if (input_shapes.size() != 1) {
    throw std::invalid_argument(name() + ": expects one input");
  }
  return {shape_numel(input_shapes[0])};
}

Tensor Flatten::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  assert(input.rank() >= 2);
  Tensor output = input;
  const std::size_t batch = input.dim(0);
  output.reshape({batch, input.numel() / batch});
  return output;
}

Tensor Flatten::forward(std::span<const Tensor* const> inputs,
                        bool training) {
  if (training) {
    cached_shape_ = (*inputs[0]).shape();
  }
  return infer(inputs);
}

std::vector<Tensor> Flatten::backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  grad_input.reshape(cached_shape_);
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace iprune::nn
