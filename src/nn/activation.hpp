#pragma once
// Elementwise activations. Only ReLU is needed by the paper's models; the
// engine folds a ReLU following a CONV/FC into that layer's jobs (applied in
// VM before the output is preserved, matching HAWAII+).

#include "nn/layer.hpp"

namespace iprune::nn {

class Relu final : public Layer {
 public:
  explicit Relu(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kRelu; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new Relu(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

 private:
  Relu(const Relu&) = default;

  std::vector<bool> active_;  // per-element pass-through mask from forward
  Shape cached_shape_;
};

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kFlatten; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new Flatten(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

 private:
  Flatten(const Flatten&) = default;

  Shape cached_shape_;
};

}  // namespace iprune::nn
