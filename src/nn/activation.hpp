#pragma once
// Elementwise activations. Only ReLU is needed by the paper's models; the
// engine folds a ReLU following a CONV/FC into that layer's jobs (applied in
// VM before the output is preserved, matching HAWAII+).

#include "nn/layer.hpp"

namespace iprune::nn {

class Relu final : public Layer {
 public:
  explicit Relu(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kRelu; }
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

 private:
  std::vector<bool> active_;  // per-element pass-through mask from forward
  Shape cached_shape_;
};

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kFlatten; }
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

 private:
  Shape cached_shape_;
};

}  // namespace iprune::nn
