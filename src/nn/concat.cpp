#include "nn/concat.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace iprune::nn {

Shape Concat::output_shape(std::span<const Shape> input_shapes) const {
  if (input_shapes.empty()) {
    throw std::invalid_argument(name() + ": needs at least one input");
  }
  Shape out = input_shapes[0];
  if (out.size() != 3) {
    throw std::invalid_argument(name() + ": expects [C,H,W] inputs");
  }
  for (std::size_t i = 1; i < input_shapes.size(); ++i) {
    const Shape& in = input_shapes[i];
    if (in.size() != 3 || in[1] != out[1] || in[2] != out[2]) {
      throw std::invalid_argument(name() + ": spatial dims must match");
    }
    out[0] += in[0];
  }
  return out;
}

Tensor Concat::infer(std::span<const Tensor* const> inputs) const {
  assert(!inputs.empty());
  const std::size_t batch = inputs[0]->dim(0);
  const std::size_t h = inputs[0]->dim(2);
  const std::size_t w = inputs[0]->dim(3);
  std::size_t total_channels = 0;
  for (const Tensor* in : inputs) {
    assert(in->rank() == 4 && in->dim(0) == batch && in->dim(2) == h &&
           in->dim(3) == w);
    total_channels += in->dim(1);
  }

  Tensor output({batch, total_channels, h, w});
  const std::size_t plane = h * w;
  for (std::size_t n = 0; n < batch; ++n) {
    std::size_t channel_base = 0;
    for (const Tensor* in : inputs) {
      const std::size_t c_in = in->dim(1);
      std::memcpy(output.data() + (n * total_channels + channel_base) * plane,
                  in->data() + n * c_in * plane,
                  c_in * plane * sizeof(float));
      channel_base += c_in;
    }
  }
  return output;
}

Tensor Concat::forward(std::span<const Tensor* const> inputs, bool training) {
  if (training) {
    cached_input_shapes_.clear();
    for (const Tensor* in : inputs) {
      cached_input_shapes_.push_back(in->shape());
    }
  }
  return infer(inputs);
}

std::vector<Tensor> Concat::backward(const Tensor& grad_output) {
  std::vector<Tensor> grads;
  grads.reserve(cached_input_shapes_.size());
  const std::size_t batch = grad_output.dim(0);
  const std::size_t total_channels = grad_output.dim(1);
  const std::size_t plane = grad_output.dim(2) * grad_output.dim(3);

  std::size_t channel_base = 0;
  for (const Shape& in_shape : cached_input_shapes_) {
    Tensor grad(in_shape);
    const std::size_t c_in = in_shape[1];
    for (std::size_t n = 0; n < batch; ++n) {
      std::memcpy(
          grad.data() + n * c_in * plane,
          grad_output.data() + (n * total_channels + channel_base) * plane,
          c_in * plane * sizeof(float));
    }
    channel_base += c_in;
    grads.push_back(std::move(grad));
  }
  return grads;
}

}  // namespace iprune::nn
