#pragma once
// Channel-axis concatenation for multi-path networks (SqueezeNet-style fire
// modules). HAWAII+'s "support for multiple path networks" maps onto this
// node: the engine materializes each branch's OFM in NVM and the consumer
// reads the concatenated region.

#include "nn/layer.hpp"

namespace iprune::nn {

class Concat final : public Layer {
 public:
  explicit Concat(std::string name) : Layer(std::move(name)) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kConcat; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new Concat(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

 private:
  Concat(const Concat&) = default;

  std::vector<Shape> cached_input_shapes_;
};

}  // namespace iprune::nn
