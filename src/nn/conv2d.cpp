#include "nn/conv2d.hpp"

#include <cassert>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "util/scratch_pool.hpp"

namespace iprune::nn {

Conv2d::Conv2d(std::string name, Conv2dSpec spec, util::Rng& rng)
    : Layer(std::move(name)),
      spec_(spec),
      weight_({spec.out_channels, spec.in_channels * spec.kernel_h *
                                      spec.kernel_w}),
      bias_({spec.out_channels}),
      mask_({spec.out_channels,
             spec.in_channels * spec.kernel_h * spec.kernel_w}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  kaiming_uniform(weight_, lowered_k(), rng);
  mask_.fill(1.0f);
}

std::size_t Conv2d::out_h(std::size_t in_h) const {
  assert(in_h + 2 * spec_.pad_h >= spec_.kernel_h);
  return (in_h + 2 * spec_.pad_h - spec_.kernel_h) / spec_.stride + 1;
}

std::size_t Conv2d::out_w(std::size_t in_w) const {
  assert(in_w + 2 * spec_.pad_w >= spec_.kernel_w);
  return (in_w + 2 * spec_.pad_w - spec_.kernel_w) / spec_.stride + 1;
}

Shape Conv2d::output_shape(std::span<const Shape> input_shapes) const {
  if (input_shapes.size() != 1 || input_shapes[0].size() != 3) {
    throw std::invalid_argument(name() + ": expects one [C,H,W] input");
  }
  const Shape& in = input_shapes[0];
  if (in[0] != spec_.in_channels) {
    throw std::invalid_argument(name() + ": channel mismatch, got " +
                                shape_str(in));
  }
  return {spec_.out_channels, out_h(in[1]), out_w(in[2])};
}

void Conv2d::im2col(const float* input, std::size_t in_h, std::size_t in_w,
                    float* col) const {
  // col is [K, Ho*Wo] with K = Cin*kh*kw, laid out so each GEMM column is
  // one output pixel's receptive field.
  const std::size_t ho = out_h(in_h);
  const std::size_t wo = out_w(in_w);
  const std::size_t spatial = ho * wo;
  std::size_t k_row = 0;
  for (std::size_t c = 0; c < spec_.in_channels; ++c) {
    const float* in_plane = input + c * in_h * in_w;
    for (std::size_t kh = 0; kh < spec_.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < spec_.kernel_w; ++kw, ++k_row) {
        float* col_row = col + k_row * spatial;
        for (std::size_t oy = 0; oy < ho; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * spec_.stride + kh) -
              static_cast<std::ptrdiff_t>(spec_.pad_h);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
            for (std::size_t ox = 0; ox < wo; ++ox) {
              col_row[oy * wo + ox] = 0.0f;
            }
            continue;
          }
          const float* in_row =
              in_plane + static_cast<std::size_t>(iy) * in_w;
          for (std::size_t ox = 0; ox < wo; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * spec_.stride + kw) -
                static_cast<std::ptrdiff_t>(spec_.pad_w);
            col_row[oy * wo + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w))
                    ? 0.0f
                    : in_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, std::size_t in_h, std::size_t in_w,
                    float* grad_input) const {
  const std::size_t ho = out_h(in_h);
  const std::size_t wo = out_w(in_w);
  const std::size_t spatial = ho * wo;
  std::size_t k_row = 0;
  for (std::size_t c = 0; c < spec_.in_channels; ++c) {
    float* grad_plane = grad_input + c * in_h * in_w;
    for (std::size_t kh = 0; kh < spec_.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < spec_.kernel_w; ++kw, ++k_row) {
        const float* col_row = col + k_row * spatial;
        for (std::size_t oy = 0; oy < ho; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * spec_.stride + kh) -
              static_cast<std::ptrdiff_t>(spec_.pad_h);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
            continue;
          }
          float* grad_row = grad_plane + static_cast<std::size_t>(iy) * in_w;
          for (std::size_t ox = 0; ox < wo; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * spec_.stride + kw) -
                static_cast<std::ptrdiff_t>(spec_.pad_w);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) {
              continue;
            }
            grad_row[static_cast<std::size_t>(ix)] += col_row[oy * wo + ox];
          }
        }
      }
    }
  }
}

Tensor Conv2d::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  assert(input.rank() == 4 && input.dim(1) == spec_.in_channels);
  const std::size_t batch = input.dim(0);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  const std::size_t ho = out_h(in_h);
  const std::size_t wo = out_w(in_w);
  const std::size_t spatial = ho * wo;
  const std::size_t k = lowered_k();

  Tensor output({batch, spec_.out_channels, ho, wo});
  // Lane-local scratch: im2col overwrites every element, so reused bytes
  // are fine, and infer() stays safe under parallel_map (one pool per lane).
  auto col = util::ScratchPool::local().acquire<float>(k * spatial);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * spec_.in_channels * in_h * in_w, in_h, in_w,
           col.data());
    float* out_mat = output.data() + n * spec_.out_channels * spatial;
    gemm_accumulate(weight_.data(), col.data(), out_mat, spec_.out_channels,
                    k, spatial);
    for (std::size_t c = 0; c < spec_.out_channels; ++c) {
      const float b = bias_[c];
      float* out_row = out_mat + c * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        out_row[s] += b;
      }
    }
  }
  return output;
}

Tensor Conv2d::forward(std::span<const Tensor* const> inputs, bool training) {
  if (training) {
    cached_input_ = *inputs[0];
  }
  return infer(inputs);
}

std::vector<Tensor> Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  assert(input.rank() == 4);
  const std::size_t batch = input.dim(0);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  const std::size_t ho = out_h(in_h);
  const std::size_t wo = out_w(in_w);
  const std::size_t spatial = ho * wo;
  const std::size_t k = lowered_k();

  Tensor grad_input(input.shape());
  auto& pool = util::ScratchPool::local();
  auto col = pool.acquire<float>(k * spatial);
  auto grad_col = pool.acquire<float>(k * spatial);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * spec_.in_channels * in_h * in_w, in_h, in_w,
           col.data());
    const float* grad_mat =
        grad_output.data() + n * spec_.out_channels * spatial;
    // dW[Cout,K] += dOut[Cout,S] * col^T[S,K]
    gemm_a_bt(grad_mat, col.data(), weight_grad_.data(), spec_.out_channels,
              spatial, k);
    // db[Cout] += row sums of dOut
    for (std::size_t c = 0; c < spec_.out_channels; ++c) {
      const float* grad_row = grad_mat + c * spatial;
      float acc = 0.0f;
      for (std::size_t s = 0; s < spatial; ++s) {
        acc += grad_row[s];
      }
      bias_grad_[c] += acc;
    }
    // dcol[K,S] = W^T[K,Cout] * dOut[Cout,S]
    grad_col.fill(0.0f);
    gemm_at_b(weight_.data(), grad_mat, grad_col.data(), k,
              spec_.out_channels, spatial);
    col2im(grad_col.data(),
           in_h, in_w,
           grad_input.data() + n * spec_.in_channels * in_h * in_w);
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &weight_grad_, &mask_}, {&bias_, &bias_grad_, nullptr}};
}

void Conv2d::apply_mask() {
  weight_.hadamard(mask_);
}

}  // namespace iprune::nn
