#pragma once
// 2-D convolution layer.
//
// Weights are stored GEMM-ready as a [Cout, K] matrix with K = Cin*kh*kw —
// the same "lowered" layout the HAWAII+ engine tiles on the device (paper
// §III-D cites Anderson et al. [2] for this loop tiling/ordering). The
// pruning mask has the same [Cout, K] shape so a weight block here maps 1:1
// to an accelerator-operation block on the device.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace iprune::nn {

struct Conv2dSpec {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel_h = 3;
  std::size_t kernel_w = 3;
  std::size_t stride = 1;
  std::size_t pad_h = 0;
  std::size_t pad_w = 0;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, Conv2dSpec spec, util::Rng& rng);

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kConv2d; }

  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new Conv2d(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

  [[nodiscard]] const Conv2dSpec& spec() const { return spec_; }
  /// Lowered reduction depth K = Cin * kh * kw.
  [[nodiscard]] std::size_t lowered_k() const {
    return spec_.in_channels * spec_.kernel_h * spec_.kernel_w;
  }

  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] const Tensor& weight() const { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }
  [[nodiscard]] Tensor& weight_mask() { return mask_; }
  [[nodiscard]] const Tensor& weight_mask() const { return mask_; }

  /// Re-apply the mask to the weights (used after pruning edits the mask).
  void apply_mask();

  /// Spatial output size for the given input H/W.
  [[nodiscard]] std::size_t out_h(std::size_t in_h) const;
  [[nodiscard]] std::size_t out_w(std::size_t in_w) const;

 private:
  Conv2d(const Conv2d&) = default;

  void im2col(const float* input, std::size_t in_h, std::size_t in_w,
              float* col) const;
  void col2im(const float* col, std::size_t in_h, std::size_t in_w,
              float* grad_input) const;

  Conv2dSpec spec_;
  Tensor weight_;  // [Cout, K]
  Tensor bias_;    // [Cout]
  Tensor mask_;    // [Cout, K], 0/1
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;  // [N, Cin, H, W]
};

}  // namespace iprune::nn
