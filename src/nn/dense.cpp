#include "nn/dense.hpp"

#include <cassert>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace iprune::nn {

Dense::Dense(std::string name, std::size_t in_features,
             std::size_t out_features, util::Rng& rng)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      mask_({out_features, in_features}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  kaiming_uniform(weight_, in_features, rng);
  mask_.fill(1.0f);
}

Shape Dense::output_shape(std::span<const Shape> input_shapes) const {
  if (input_shapes.size() != 1 || input_shapes[0].size() != 1 ||
      input_shapes[0][0] != in_features_) {
    throw std::invalid_argument(name() + ": expects one [in_features] input");
  }
  return {out_features_};
}

Tensor Dense::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  assert(input.rank() == 2 && input.dim(1) == in_features_);
  const std::size_t batch = input.dim(0);

  Tensor output({batch, out_features_});
  // out[N,O] = X[N,I] * W^T[I,O]
  gemm_a_bt(input.data(), weight_.data(), output.data(), batch, in_features_,
            out_features_);
  for (std::size_t n = 0; n < batch; ++n) {
    float* out_row = output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      out_row[o] += bias_[o];
    }
  }
  return output;
}

Tensor Dense::forward(std::span<const Tensor* const> inputs, bool training) {
  if (training) {
    cached_input_ = *inputs[0];
  }
  return infer(inputs);
}

std::vector<Tensor> Dense::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  assert(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
         grad_output.dim(1) == out_features_);

  // dW[O,I] += dOut^T[O,N] * X[N,I]
  gemm_at_b(grad_output.data(), input.data(), weight_grad_.data(),
            out_features_, batch, in_features_);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* grad_row = grad_output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      bias_grad_[o] += grad_row[o];
    }
  }
  // dX[N,I] = dOut[N,O] * W[O,I]
  Tensor grad_input({batch, in_features_});
  gemm_accumulate(grad_output.data(), weight_.data(), grad_input.data(),
                  batch, out_features_, in_features_);
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

std::vector<ParamRef> Dense::params() {
  return {{&weight_, &weight_grad_, &mask_}, {&bias_, &bias_grad_, nullptr}};
}

void Dense::apply_mask() {
  weight_.hadamard(mask_);
}

}  // namespace iprune::nn
