#pragma once
// Fully-connected layer. Weights [out, in] with a same-shaped pruning mask;
// on the device this is the LEA vector-matrix multiply, tiled into
// (Bo x Bi) blocks by the engine.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace iprune::nn {

class Dense final : public Layer {
 public:
  Dense(std::string name, std::size_t in_features, std::size_t out_features,
        util::Rng& rng);

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kDense; }

  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new Dense(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t out_features() const { return out_features_; }

  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] const Tensor& weight() const { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }
  [[nodiscard]] Tensor& weight_mask() { return mask_; }
  [[nodiscard]] const Tensor& weight_mask() const { return mask_; }

  void apply_mask();

 private:
  Dense(const Dense&) = default;

  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out]
  Tensor mask_;    // [out, in]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;  // [N, in]
};

}  // namespace iprune::nn
