#include "nn/gemm.hpp"

namespace iprune::nn {

namespace ref {

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  // i-k-j order: the inner loop streams both B's row and C's row, which
  // autovectorizes and keeps one A element in a register.
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) {
        continue;  // sparse weights after pruning make this branch pay off
      }
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ik * b_row[j];
      }
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) {
        continue;
      }
      float* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ki * b_row[j];
      }
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a_row[kk] * b_row[kk];
      }
      c_row[j] += acc;
    }
  }
}

}  // namespace ref

namespace {

// A row (or A-row in the transposed kernel) runs the dense fast path when
// at least 3/4 of its weights survive: the few zero multiply-adds it no
// longer branches around are cheaper than a data-dependent branch per
// element. Zero contributions cannot change C: every accumulator starts
// at +0 (callers pre-zero C or accumulate sums that IEEE-754 round-to-
// nearest can never drive to -0), and x + (+/-0) == x bit-exactly then.
constexpr std::size_t kDenseNum = 3;
constexpr std::size_t kDenseDen = 4;

inline std::size_t count_nonzero(const float* __restrict row, std::size_t k) {
  std::size_t nnz = 0;
  for (std::size_t kk = 0; kk < k; ++kk) {
    nnz += row[kk] != 0.0f ? 1 : 0;
  }
  return nnz;
}

/// c_row[j] += a_ik * b_row[j] for all j, 4x-unrolled. The per-element
/// accumulation order is exactly the naive loop's.
inline void axpy_row(const float* __restrict b_row, float* __restrict c_row,
                     float a_ik, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    c_row[j] += a_ik * b_row[j];
    c_row[j + 1] += a_ik * b_row[j + 1];
    c_row[j + 2] += a_ik * b_row[j + 2];
    c_row[j + 3] += a_ik * b_row[j + 3];
  }
  for (; j < n; ++j) {
    c_row[j] += a_ik * b_row[j];
  }
}

/// Dense register-tiled row update: 4 reduction steps per pass share one
/// load/store of each C element. Each C element still receives its four
/// contributions as separate rounded adds in ascending-k order, so the
/// result is bit-identical to four axpy_row calls.
inline void dense_row_update(const float* __restrict a_row,
                             const float* __restrict b, float* __restrict c_row,
                             std::size_t k, std::size_t n) {
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float a0 = a_row[kk];
    const float a1 = a_row[kk + 1];
    const float a2 = a_row[kk + 2];
    const float a3 = a_row[kk + 3];
    const float* __restrict b0 = b + kk * n;
    const float* __restrict b1 = b0 + n;
    const float* __restrict b2 = b1 + n;
    const float* __restrict b3 = b2 + n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = c_row[j];
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      c_row[j] = acc;
    }
  }
  for (; kk < k; ++kk) {
    axpy_row(b + kk * n, c_row, a_row[kk], n);
  }
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  // i-k-j order like ref::gemm_accumulate; per row, one nonzero scan picks
  // between the zero-skipping sparse path and the branch-free dense path.
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict c_row = c + i * n;
    const float* __restrict a_row = a + i * k;
    const std::size_t nnz = count_nonzero(a_row, k);
    if (nnz * kDenseDen >= k * kDenseNum) {
      dense_row_update(a_row, b, c_row, k, n);
      continue;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) {
        continue;  // sparse weights after pruning make this branch pay off
      }
      axpy_row(b + kk * n, c_row, a_ik, n);
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  // k-i-j order like ref::gemm_at_b: per C element the k-contributions
  // still arrive in ascending order, because the k loop stays outermost.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict a_row = a + kk * m;
    const float* __restrict b_row = b + kk * n;
    const std::size_t nnz = count_nonzero(a_row, m);
    if (nnz * kDenseDen >= m * kDenseNum) {
      for (std::size_t i = 0; i < m; ++i) {
        axpy_row(b_row, c + i * n, a_row[i], n);
      }
      continue;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) {
        continue;
      }
      axpy_row(b_row, c + i * n, a_ki, n);
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  // Register-tile 4 output columns per pass: each dot product keeps its
  // own accumulator and walks k in ascending order (naive semantics), but
  // the four share every a_row load.
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict a_row = a + i * k;
    float* __restrict c_row = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + j * k;
      const float* __restrict b1 = b0 + k;
      const float* __restrict b2 = b1 + k;
      const float* __restrict b3 = b2 + k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float a_ik = a_row[kk];
        acc0 += a_ik * b0[kk];
        acc1 += a_ik * b1[kk];
        acc2 += a_ik * b2[kk];
        acc3 += a_ik * b3[kk];
      }
      c_row[j] += acc0;
      c_row[j + 1] += acc1;
      c_row[j + 2] += acc2;
      c_row[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* __restrict b_row = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a_row[kk] * b_row[kk];
      }
      c_row[j] += acc;
    }
  }
}

}  // namespace iprune::nn
