#include "nn/gemm.hpp"

namespace iprune::nn {

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  // i-k-j order: the inner loop streams both B's row and C's row, which
  // autovectorizes and keeps one A element in a register.
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) {
        continue;  // sparse weights after pruning make this branch pay off
      }
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ik * b_row[j];
      }
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) {
        continue;
      }
      float* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ki * b_row[j];
      }
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a_row[kk] * b_row[kk];
      }
      c_row[j] += acc;
    }
  }
}

}  // namespace iprune::nn
