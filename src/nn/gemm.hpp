#pragma once
// Small dense matrix-multiply kernels used by the training-side conv/dense
// layers. Not a BLAS; just cache-friendly loop orders that autovectorize
// well enough for the CI-scale training runs this project performs.

#include <cstddef>

namespace iprune::nn {

/// C[m x n] += A[m x k] * B[k x n]   (all row-major, C must be pre-zeroed
/// by the caller when accumulation is not wanted).
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// C[m x n] += A^T[k x m] * B[k x n]  (A stored row-major as [k x m]).
void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

/// C[m x n] += A[m x k] * B^T[n x k]  (B stored row-major as [n x k]).
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

}  // namespace iprune::nn
