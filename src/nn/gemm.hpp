#pragma once
// Small dense matrix-multiply kernels used by the training-side conv/dense
// layers. Not a BLAS; register-tiled loop nests that autovectorize well
// for the CI-scale training runs this project performs.
//
// Every kernel is BIT-IDENTICAL to its naive counterpart in nn::ref for
// finite inputs: optimizations only reorder memory traffic, never the
// per-element floating-point accumulation sequence (each C element still
// receives its k-contributions one rounded add at a time, in ascending-k
// order). tests/nn/gemm_property_test.cpp pins this across shapes,
// sparsities, and alignment offsets.
//
// Runtime path selection: the kernels count a row's nonzeros once and
// either skip zero weights block-free (pruned rows) or run a dense fast
// path that drops the per-element zero branch and register-tiles the
// reduction (see docs/performance.md).

#include <cstddef>

namespace iprune::nn {

/// C[m x n] += A[m x k] * B[k x n]   (all row-major, C must be pre-zeroed
/// by the caller when accumulation is not wanted).
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// C[m x n] += A^T[k x m] * B[k x n]  (A stored row-major as [k x m]).
void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

/// C[m x n] += A[m x k] * B^T[n x k]  (B stored row-major as [n x k]).
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

namespace ref {

// Retained naive seed kernels: the executable specification the optimized
// kernels are differentially tested against. Not used on any hot path.

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);
void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

}  // namespace ref

}  // namespace iprune::nn
