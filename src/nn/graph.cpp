#include "nn/graph.hpp"

#include <cassert>
#include <stdexcept>

namespace iprune::nn {

Graph::Graph(Shape input_shape) {
  shapes_.push_back(std::move(input_shape));
}

NodeId Graph::add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("Graph::add: node needs at least one input");
  }
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  for (const NodeId id : inputs) {
    if (id >= node_count()) {
      throw std::invalid_argument("Graph::add: unknown input node " +
                                  std::to_string(id));
    }
    in_shapes.push_back(shapes_[id]);
  }
  shapes_.push_back(layer->output_shape(in_shapes));
  layers_.push_back(std::move(layer));
  inputs_.push_back(std::move(inputs));
  output_ = node_count() - 1;
  return output_;
}

void Graph::set_output(NodeId node) {
  if (node >= node_count()) {
    throw std::invalid_argument("Graph::set_output: unknown node");
  }
  output_ = node;
}

const Shape& Graph::node_shape(NodeId node) const {
  assert(node < shapes_.size());
  return shapes_[node];
}

Layer& Graph::layer(NodeId node) {
  assert(node >= 1 && node < node_count());
  return *layers_[node - 1];
}

const Layer& Graph::layer(NodeId node) const {
  assert(node >= 1 && node < node_count());
  return *layers_[node - 1];
}

const std::vector<NodeId>& Graph::node_inputs(NodeId node) const {
  assert(node >= 1 && node < node_count());
  return inputs_[node - 1];
}

std::vector<NodeId> Graph::consumers(NodeId node) const {
  std::vector<NodeId> result;
  for (NodeId n = 1; n < node_count(); ++n) {
    for (const NodeId in : node_inputs(n)) {
      if (in == node) {
        result.push_back(n);
        break;
      }
    }
  }
  return result;
}

Graph Graph::clone() const {
  Graph copy(shapes_[0]);
  copy.shapes_ = shapes_;
  copy.inputs_ = inputs_;
  copy.output_ = output_;
  copy.layers_.reserve(layers_.size());
  for (const auto& l : layers_) {
    copy.layers_.push_back(l->clone());
  }
  return copy;
}

namespace {
void check_batch_shape(const Tensor& batch, const Shape& input_shape) {
  if (batch.rank() != input_shape.size() + 1) {
    throw std::invalid_argument("Graph::forward: batch rank mismatch");
  }
  for (std::size_t axis = 0; axis < input_shape.size(); ++axis) {
    if (batch.dim(axis + 1) != input_shape[axis]) {
      throw std::invalid_argument("Graph::forward: input shape mismatch");
    }
  }
}
}  // namespace

std::vector<Tensor> Graph::infer_nodes(const Tensor& batch) const {
  check_batch_shape(batch, shapes_[0]);
  std::vector<Tensor> activations(node_count());
  activations[0] = batch;
  std::vector<const Tensor*> ins;
  for (NodeId node = 1; node < node_count(); ++node) {
    ins.clear();
    for (const NodeId id : node_inputs(node)) {
      ins.push_back(&activations[id]);
    }
    activations[node] = layers_[node - 1]->infer(ins);
  }
  return activations;
}

Tensor Graph::infer(const Tensor& batch) const {
  std::vector<Tensor> activations = infer_nodes(batch);
  return std::move(activations[output_]);
}

std::vector<Tensor> Graph::forward_nodes(const Tensor& batch, bool training) {
  if (!training) {
    return infer_nodes(batch);
  }
  check_batch_shape(batch, shapes_[0]);
  std::vector<Tensor> activations(node_count());
  activations[0] = batch;
  std::vector<const Tensor*> ins;
  for (NodeId node = 1; node < node_count(); ++node) {
    ins.clear();
    for (const NodeId id : node_inputs(node)) {
      ins.push_back(&activations[id]);
    }
    activations[node] = layers_[node - 1]->forward(ins, true);
  }
  return activations;
}

Tensor Graph::forward(const Tensor& batch, bool training) {
  std::vector<Tensor> activations = forward_nodes(batch, training);
  return std::move(activations[output_]);
}

void Graph::backward(const Tensor& grad_output) {
  // Gradients accumulate per node; traverse in reverse insertion order,
  // which is a reverse topological order by construction.
  std::vector<Tensor> grads(node_count());
  grads[output_] = grad_output;
  for (NodeId node = node_count() - 1; node >= 1; --node) {
    if (grads[node].numel() == 0) {
      continue;  // node not on any path to the output
    }
    std::vector<Tensor> input_grads = layers_[node - 1]->backward(grads[node]);
    const std::vector<NodeId>& ins = node_inputs(node);
    assert(input_grads.size() == ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
      Tensor& slot = grads[ins[i]];
      if (slot.numel() == 0) {
        slot = std::move(input_grads[i]);
      } else {
        slot.add_scaled(input_grads[i], 1.0f);
      }
    }
  }
}

std::vector<ParamRef> Graph::params() {
  std::vector<ParamRef> all;
  for (const auto& l : layers_) {
    for (const ParamRef& p : l->params()) {
      all.push_back(p);
    }
  }
  return all;
}

void Graph::zero_grads() {
  for (const auto& l : layers_) {
    l->zero_grads();
  }
}

std::size_t Graph::parameter_count() {
  std::size_t total = 0;
  for (const ParamRef& p : params()) {
    total += p.value->numel();
  }
  return total;
}

std::size_t Graph::nonzero_parameter_count() {
  std::size_t total = 0;
  for (const ParamRef& p : params()) {
    if (p.mask != nullptr) {
      total += p.mask->count_nonzero();
    } else {
      total += p.value->numel();
    }
  }
  return total;
}

}  // namespace iprune::nn
