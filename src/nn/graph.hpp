#pragma once
// DAG model container: nodes are layers wired by node ids, executed in
// insertion order (which must be topological — builders add producers before
// consumers, which the ctor-time shape check enforces).

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace iprune::nn {

using NodeId = std::size_t;

class Graph {
 public:
  /// A graph has one input of the given per-sample shape (e.g. [3,32,32]).
  explicit Graph(Shape input_shape);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Deep copy: every layer (weights, masks, specs) is duplicated, so the
  /// clone can be pruned, trained, or evaluated independently of the
  /// original. Used by the parallel search paths to give each worker its
  /// own mutable model.
  [[nodiscard]] Graph clone() const;

  /// Node id of the graph input.
  [[nodiscard]] NodeId input() const { return 0; }

  /// Append a layer consuming the given nodes; returns the new node's id.
  /// Throws if any input id is unknown or shapes are inconsistent.
  NodeId add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs);

  /// The graph output defaults to the last added node; override if needed.
  void set_output(NodeId node);
  [[nodiscard]] NodeId output() const { return output_; }

  /// Forward a batch (leading dim = N). Returns the output node's tensor.
  /// With training=false this delegates to the const infer() path.
  Tensor forward(const Tensor& batch, bool training = false);

  /// Forward a batch and return every node's activation (index = node id;
  /// entry 0 is the input itself). Used for quantization calibration.
  /// With training=false this delegates to the const infer_nodes() path.
  std::vector<Tensor> forward_nodes(const Tensor& batch,
                                    bool training = false);

  /// Inference-only forward: touches no layer caches, so concurrent calls
  /// on the same graph are safe as long as nothing mutates it.
  [[nodiscard]] Tensor infer(const Tensor& batch) const;

  /// Inference-only forward returning every node's activation.
  [[nodiscard]] std::vector<Tensor> infer_nodes(const Tensor& batch) const;

  /// Backward from a gradient of the output (after a forward(training=true)).
  void backward(const Tensor& grad_output);

  /// All trainable parameters, in node order.
  [[nodiscard]] std::vector<ParamRef> params();

  void zero_grads();

  /// Per-sample output shape of a node (no batch dim).
  [[nodiscard]] const Shape& node_shape(NodeId node) const;
  [[nodiscard]] const Shape& input_shape() const { return shapes_[0]; }

  [[nodiscard]] std::size_t node_count() const { return layers_.size() + 1; }
  /// Layer of a non-input node (node >= 1).
  [[nodiscard]] Layer& layer(NodeId node);
  [[nodiscard]] const Layer& layer(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& node_inputs(NodeId node) const;

  /// Ids of the nodes consuming `node` (computed on demand).
  [[nodiscard]] std::vector<NodeId> consumers(NodeId node) const;

  /// Total trainable parameter count (weights + biases).
  [[nodiscard]] std::size_t parameter_count();
  /// Parameters surviving the current masks (pruned weights excluded).
  [[nodiscard]] std::size_t nonzero_parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;   // node i+1 -> layers_[i]
  std::vector<std::vector<NodeId>> inputs_;      // parallel to layers_
  std::vector<Shape> shapes_;                    // per node incl. input
  NodeId output_ = 0;
};

}  // namespace iprune::nn
