#include "nn/init.hpp"

#include <cmath>

namespace iprune::nn {

void kaiming_uniform(Tensor& weights, std::size_t fan_in, util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < weights.numel(); ++i) {
    weights[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void xavier_uniform(Tensor& weights, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::size_t i = 0; i < weights.numel(); ++i) {
    weights[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace iprune::nn
