#pragma once
// Weight initialization. Deterministic given the Rng.

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace iprune::nn {

/// Kaiming/He uniform init: U(-b, b) with b = sqrt(6 / fan_in). Suits the
/// ReLU networks used throughout this project.
void kaiming_uniform(Tensor& weights, std::size_t fan_in, util::Rng& rng);

/// Xavier/Glorot uniform init: U(-b, b) with b = sqrt(6 / (fan_in+fan_out)).
void xavier_uniform(Tensor& weights, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng);

}  // namespace iprune::nn
