#include "nn/layer.hpp"

namespace iprune::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "INPUT";
    case LayerKind::kConv2d:
      return "CONV";
    case LayerKind::kDense:
      return "FC";
    case LayerKind::kMaxPool:
      return "POOL(max)";
    case LayerKind::kAvgPool:
      return "POOL(avg)";
    case LayerKind::kRelu:
      return "RELU";
    case LayerKind::kFlatten:
      return "FLATTEN";
    case LayerKind::kConcat:
      return "CONCAT";
  }
  return "?";
}

void Layer::zero_grads() {
  for (const ParamRef& p : params()) {
    if (p.grad != nullptr) {
      p.grad->zero();
    }
  }
}

}  // namespace iprune::nn
