#pragma once
// Layer abstraction for the server-side training graph.
//
// Layers are trained in float32 on the "server" (this process), then
// quantized and lowered to device jobs by src/engine/. Each layer caches
// what it needs in forward(training=true) to run backward(); the
// inference path (infer()) is const and touches no caches, so it is safe
// to call concurrently on a shared layer, and clone() deep-copies a layer
// so parallel search candidates never share mutable state.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace iprune::nn {

enum class LayerKind {
  kInput,
  kConv2d,
  kDense,
  kMaxPool,
  kAvgPool,
  kRelu,
  kFlatten,
  kConcat,
};

/// Human-readable tag ("CONV", "FC", ...) matching the paper's notation.
const char* layer_kind_name(LayerKind kind);

/// Reference to one trainable parameter plus its gradient and (optionally)
/// its pruning mask. The optimizer keeps pruned weights at exactly zero by
/// multiplying both the gradient and the updated value by the mask.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  Tensor* mask = nullptr;  // nullptr when the parameter is not prunable
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual LayerKind kind() const = 0;

  /// Deep copy (parameters, masks, and cached state). The clone shares no
  /// storage with the original; Graph::clone() builds on this.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Pure inference: compute the output without writing any backward
  /// cache. Bit-identical to forward(inputs, /*training=*/false) and safe
  /// to call concurrently on a shared layer.
  [[nodiscard]] virtual Tensor infer(
      std::span<const Tensor* const> inputs) const = 0;

  /// Compute the output for a batch. `inputs` are the producing nodes'
  /// outputs in graph order; all our layers produce exactly one output.
  /// With training=true the layer also caches what backward() needs.
  virtual Tensor forward(std::span<const Tensor* const> inputs,
                         bool training) = 0;

  /// Propagate `grad_output` (same shape as the last forward() result):
  /// accumulates parameter gradients and returns one gradient tensor per
  /// input, in the same order as forward()'s `inputs`.
  virtual std::vector<Tensor> backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Output shape for one sample given per-sample input shapes (no batch
  /// dimension). Used for model construction checks and engine lowering.
  [[nodiscard]] virtual Shape output_shape(
      std::span<const Shape> input_shapes) const = 0;

  void zero_grads();

 protected:
  /// Memberwise copy for the clone() implementations.
  Layer(const Layer&) = default;

 private:
  std::string name_;
};

}  // namespace iprune::nn
