#pragma once
// Layer abstraction for the server-side training graph.
//
// Layers are trained in float32 on the "server" (this process), then
// quantized and lowered to device jobs by src/engine/. Each layer caches
// what it needs in forward() to run backward(); graphs are executed
// single-threaded and deterministically.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace iprune::nn {

enum class LayerKind {
  kInput,
  kConv2d,
  kDense,
  kMaxPool,
  kAvgPool,
  kRelu,
  kFlatten,
  kConcat,
};

/// Human-readable tag ("CONV", "FC", ...) matching the paper's notation.
const char* layer_kind_name(LayerKind kind);

/// Reference to one trainable parameter plus its gradient and (optionally)
/// its pruning mask. The optimizer keeps pruned weights at exactly zero by
/// multiplying both the gradient and the updated value by the mask.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  Tensor* mask = nullptr;  // nullptr when the parameter is not prunable
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual LayerKind kind() const = 0;

  /// Compute the output for a batch. `inputs` are the producing nodes'
  /// outputs in graph order; all our layers produce exactly one output.
  virtual Tensor forward(std::span<const Tensor* const> inputs,
                         bool training) = 0;

  /// Propagate `grad_output` (same shape as the last forward() result):
  /// accumulates parameter gradients and returns one gradient tensor per
  /// input, in the same order as forward()'s `inputs`.
  virtual std::vector<Tensor> backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Output shape for one sample given per-sample input shapes (no batch
  /// dimension). Used for model construction checks and engine lowering.
  [[nodiscard]] virtual Shape output_shape(
      std::span<const Shape> input_shapes) const = 0;

  void zero_grads();

 private:
  std::string name_;
};

}  // namespace iprune::nn
