#include "nn/loss.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace iprune::nn {

Tensor softmax(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* out = probs.data() + n * classes;
    float max_logit = row[0];
    for (std::size_t c = 1; c < classes; ++c) {
      max_logit = std::max(max_logit, row[c]);
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] = std::exp(row[c] - max_logit);
      denom += out[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] *= inv;
    }
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: shape mismatch");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);

  LossResult result;
  result.grad = softmax(logits);
  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const int label = labels[n];
    assert(label >= 0 && static_cast<std::size_t>(label) < classes);
    float* grad_row = result.grad.data() + n * classes;

    // argmax for accuracy
    std::size_t best = 0;
    const float* logit_row = logits.data() + n * classes;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logit_row[c] > logit_row[best]) {
        best = c;
      }
    }
    if (best == static_cast<std::size_t>(label)) {
      ++result.correct;
    }

    const float p_label = grad_row[static_cast<std::size_t>(label)];
    total_loss += -std::log(std::max(p_label, 1e-12f));
    grad_row[static_cast<std::size_t>(label)] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      grad_row[c] *= inv_batch;
    }
  }
  result.loss = total_loss / static_cast<double>(batch);
  return result;
}

}  // namespace iprune::nn
