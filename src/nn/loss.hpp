#pragma once
// Softmax cross-entropy, fused for numerical stability.

#include <span>

#include "nn/tensor.hpp"

namespace iprune::nn {

struct LossResult {
  double loss = 0.0;           // mean over the batch
  Tensor grad;                 // d(loss)/d(logits), [N, classes]
  std::size_t correct = 0;     // argmax(logits) == label count
};

/// logits: [N, classes]; labels: N class indices. The returned gradient is
/// already divided by N (suits plain SGD accumulation).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

/// Softmax probabilities per row (for inspection / calibration).
Tensor softmax(const Tensor& logits);

}  // namespace iprune::nn
