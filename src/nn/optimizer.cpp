#include "nn/optimizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace iprune::nn {

namespace {
void ensure_state(std::vector<Tensor>& state, std::span<ParamRef> params) {
  if (state.empty()) {
    state.reserve(params.size());
    for (const ParamRef& p : params) {
      state.emplace_back(p.value->shape());
    }
  }
  if (state.size() != params.size()) {
    throw std::logic_error("optimizer: parameter set changed between steps");
  }
}
}  // namespace

void Sgd::step(std::span<ParamRef> params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ParamRef& p = params[i];
    Tensor& vel = velocity_[i];
    float* value = p.value->data();
    float* grad = p.grad->data();
    const float* mask = p.mask != nullptr ? p.mask->data() : nullptr;
    for (std::size_t j = 0; j < p.value->numel(); ++j) {
      float g = grad[j] + config_.weight_decay * value[j];
      if (mask != nullptr) {
        g *= mask[j];
      }
      vel[j] = config_.momentum * vel[j] - config_.learning_rate * g;
      value[j] += vel[j];
      if (mask != nullptr) {
        value[j] *= mask[j];
      }
    }
  }
}

void Sgd::reset_state() {
  velocity_.clear();
}

void Adam::step(std::span<ParamRef> params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ParamRef& p = params[i];
    float* value = p.value->data();
    float* grad = p.grad->data();
    const float* mask = p.mask != nullptr ? p.mask->data() : nullptr;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value->numel(); ++j) {
      float g = grad[j] + config_.weight_decay * value[j];
      if (mask != nullptr) {
        g *= mask[j];
      }
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= config_.learning_rate * m_hat /
                  (std::sqrt(v_hat) + config_.epsilon);
      if (mask != nullptr) {
        value[j] *= mask[j];
      }
    }
  }
}

void Adam::reset_state() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

}  // namespace iprune::nn
