#pragma once
// Gradient-descent optimizers. Both honor pruning masks: masked gradients
// are zeroed and updated values re-masked, so pruned weights stay exactly
// zero through fine-tuning (required by the iterative prune-retrain loop).

#include <vector>

#include "nn/layer.hpp"

namespace iprune::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step to the given parameters using their accumulated
  /// gradients, then honor masks. Does not zero the gradients.
  virtual void step(std::span<ParamRef> params) = 0;
  virtual void reset_state() = 0;
};

struct SgdConfig {
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  void step(std::span<ParamRef> params) override;
  void reset_state() override;

  [[nodiscard]] SgdConfig& config() { return config_; }

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;  // lazily sized on first step
};

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  void step(std::span<ParamRef> params) override;
  void reset_state() override;

  [[nodiscard]] AdamConfig& config() { return config_; }

 private:
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::size_t t_ = 0;
};

}  // namespace iprune::nn
