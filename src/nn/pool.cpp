#include "nn/pool.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace iprune::nn {

std::size_t pooled_extent(std::size_t input, std::size_t window,
                          std::size_t stride) {
  if (input < window) {
    throw std::invalid_argument("pool window larger than input");
  }
  return (input - window) / stride + 1;
}

namespace {
Shape pool_output_shape(const std::string& name, const PoolSpec& spec,
                        std::span<const Shape> input_shapes) {
  if (input_shapes.size() != 1 || input_shapes[0].size() != 3) {
    throw std::invalid_argument(name + ": expects one [C,H,W] input");
  }
  const Shape& in = input_shapes[0];
  return {in[0], pooled_extent(in[1], spec.window_h, spec.stride),
          pooled_extent(in[2], spec.window_w, spec.stride)};
}
}  // namespace

Shape MaxPool2d::output_shape(std::span<const Shape> input_shapes) const {
  return pool_output_shape(name(), spec_, input_shapes);
}

Shape AvgPool2d::output_shape(std::span<const Shape> input_shapes) const {
  return pool_output_shape(name(), spec_, input_shapes);
}

Tensor MaxPool2d::compute(const Tensor& input,
                          std::vector<std::size_t>* argmax) const {
  assert(input.rank() == 4);
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  const std::size_t ho = pooled_extent(in_h, spec_.window_h, spec_.stride);
  const std::size_t wo = pooled_extent(in_w, spec_.window_w, spec_.stride);

  Tensor output({batch, channels, ho, wo});
  if (argmax != nullptr) {
    argmax->assign(output.numel(), 0);
  }
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      const std::size_t plane_base = (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < spec_.window_h; ++wy) {
            for (std::size_t wx = 0; wx < spec_.window_w; ++wx) {
              const std::size_t iy = oy * spec_.stride + wy;
              const std::size_t ix = ox * spec_.stride + wx;
              const float v = plane[iy * in_w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * in_w + ix;
              }
            }
          }
          output[out_idx] = best;
          if (argmax != nullptr) {
            (*argmax)[out_idx] = best_idx;
          }
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  return compute(*inputs[0], nullptr);
}

Tensor MaxPool2d::forward(std::span<const Tensor* const> inputs,
                          bool training) {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  if (!training) {
    return compute(input, nullptr);
  }
  cached_input_shape_ = input.shape();
  return compute(input, &argmax_);
}

std::vector<Tensor> MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_shape_);
  assert(grad_output.numel() == argmax_.size());
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Tensor AvgPool2d::infer(std::span<const Tensor* const> inputs) const {
  assert(inputs.size() == 1);
  const Tensor& input = *inputs[0];
  assert(input.rank() == 4);
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  const std::size_t ho = pooled_extent(in_h, spec_.window_h, spec_.stride);
  const std::size_t wo = pooled_extent(in_w, spec_.window_w, spec_.stride);
  const float inv_area =
      1.0f / static_cast<float>(spec_.window_h * spec_.window_w);

  Tensor output({batch, channels, ho, wo});
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          float acc = 0.0f;
          for (std::size_t wy = 0; wy < spec_.window_h; ++wy) {
            for (std::size_t wx = 0; wx < spec_.window_w; ++wx) {
              acc += plane[(oy * spec_.stride + wy) * in_w +
                           (ox * spec_.stride + wx)];
            }
          }
          output[out_idx] = acc * inv_area;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2d::forward(std::span<const Tensor* const> inputs,
                          bool training) {
  if (training) {
    cached_input_shape_ = (*inputs[0]).shape();
  }
  return infer(inputs);
}

std::vector<Tensor> AvgPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_shape_);
  const std::size_t batch = cached_input_shape_[0];
  const std::size_t channels = cached_input_shape_[1];
  const std::size_t in_h = cached_input_shape_[2];
  const std::size_t in_w = cached_input_shape_[3];
  const std::size_t ho = pooled_extent(in_h, spec_.window_h, spec_.stride);
  const std::size_t wo = pooled_extent(in_w, spec_.window_w, spec_.stride);
  const float inv_area =
      1.0f / static_cast<float>(spec_.window_h * spec_.window_w);

  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      float* plane = grad_input.data() + (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          const float g = grad_output[out_idx] * inv_area;
          for (std::size_t wy = 0; wy < spec_.window_h; ++wy) {
            for (std::size_t wx = 0; wx < spec_.window_w; ++wx) {
              plane[(oy * spec_.stride + wy) * in_w +
                    (ox * spec_.stride + wx)] += g;
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace iprune::nn
