#pragma once
// Max / average pooling over [N,C,H,W] feature maps.

#include "nn/layer.hpp"

namespace iprune::nn {

struct PoolSpec {
  std::size_t window_h = 2;
  std::size_t window_w = 2;
  std::size_t stride = 2;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, PoolSpec spec)
      : Layer(std::move(name)), spec_(spec) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kMaxPool; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new MaxPool2d(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;
  [[nodiscard]] const PoolSpec& spec() const { return spec_; }

 private:
  MaxPool2d(const MaxPool2d&) = default;

  /// Shared compute; fills `argmax` (flat input index per output element)
  /// when non-null (the training path needs it for backward()).
  Tensor compute(const Tensor& input, std::vector<std::size_t>* argmax) const;

  PoolSpec spec_;
  Shape cached_input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::string name, PoolSpec spec)
      : Layer(std::move(name)), spec_(spec) {}

  [[nodiscard]] LayerKind kind() const override { return LayerKind::kAvgPool; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::unique_ptr<Layer>(new AvgPool2d(*this));
  }
  [[nodiscard]] Tensor infer(
      std::span<const Tensor* const> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs,
                 bool training) override;
  std::vector<Tensor> backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(
      std::span<const Shape> input_shapes) const override;
  [[nodiscard]] const PoolSpec& spec() const { return spec_; }

 private:
  AvgPool2d(const AvgPool2d&) = default;

  PoolSpec spec_;
  Shape cached_input_shape_;
};

/// Output spatial extent shared by both pool layers.
std::size_t pooled_extent(std::size_t input, std::size_t window,
                          std::size_t stride);

}  // namespace iprune::nn
