#include "nn/quantize.hpp"

#include <cmath>

namespace iprune::nn {

QTensor quantize_q15(const Tensor& tensor) {
  QTensor q;
  q.shape = tensor.shape();
  q.data.resize(tensor.numel());
  const float abs_max = tensor.abs_max();
  if (abs_max == 0.0f) {
    q.scale = 1.0f;
    return q;
  }
  q.scale = abs_max / 32767.0f;
  const float inv_scale = 1.0f / q.scale;
  for (std::size_t i = 0; i < tensor.numel(); ++i) {
    const float scaled = tensor[i] * inv_scale;
    const float clamped = std::fmin(32767.0f, std::fmax(-32768.0f, scaled));
    q.data[i] = static_cast<std::int16_t>(std::lrintf(clamped));
  }
  return q;
}

Tensor dequantize(const QTensor& q) {
  Tensor out(q.shape);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    out[i] = static_cast<float>(q.data[i]) * q.scale;
  }
  return out;
}

float quantization_error(const Tensor& tensor) {
  const Tensor round_trip = dequantize(quantize_q15(tensor));
  float worst = 0.0f;
  for (std::size_t i = 0; i < tensor.numel(); ++i) {
    worst = std::fmax(worst, std::fabs(tensor[i] - round_trip[i]));
  }
  return worst;
}

}  // namespace iprune::nn
