#pragma once
// 16-bit fixed-point quantization (LEA-style Q15).
//
// The paper deploys models "quantized from the 32-bit floating point
// representation used during pruning to a 16-bit fixed point representation"
// (§IV-A). We use symmetric per-tensor scaling into the int16 range; the
// device engine computes on the quantized weights, and tests check the
// quantization accuracy delta stays small.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace iprune::nn {

struct QTensor {
  Shape shape;
  std::vector<std::int16_t> data;
  /// Dequantized value = data[i] * scale.
  float scale = 1.0f;

  [[nodiscard]] std::size_t numel() const { return data.size(); }
  /// Bytes occupied on the device (2 bytes per element).
  [[nodiscard]] std::size_t byte_size() const { return data.size() * 2; }
};

/// Quantize symmetrically so that abs_max maps to 32767. A zero tensor gets
/// scale 1 (all zeros).
QTensor quantize_q15(const Tensor& tensor);

Tensor dequantize(const QTensor& q);

/// Max absolute elementwise error introduced by quantize->dequantize.
float quantization_error(const Tensor& tensor);

}  // namespace iprune::nn
