#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace iprune::nn {

namespace {

constexpr std::uint32_t kMagic = 0x49505231;  // "IPR1"

bool write_tensor(std::ofstream& out, const Tensor& t) {
  const auto rank = static_cast<std::uint32_t>(t.rank());
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (std::size_t d = 0; d < t.rank(); ++d) {
    const auto dim = static_cast<std::uint64_t>(t.dim(d));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  return static_cast<bool>(out);
}

bool read_tensor(std::ifstream& in, Tensor& t) {
  std::uint32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank != t.rank()) {
    return false;
  }
  for (std::size_t d = 0; d < t.rank(); ++d) {
    std::uint64_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (!in || dim != t.dim(d)) {
      return false;
    }
  }
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  return static_cast<bool>(in);
}

}  // namespace

bool save_parameters(Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto params = graph.params();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const ParamRef& p : params) {
    if (!write_tensor(out, *p.value)) {
      return false;
    }
    const std::uint8_t has_mask = p.mask != nullptr ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&has_mask), sizeof(has_mask));
    if (has_mask != 0 && !write_tensor(out, *p.mask)) {
      return false;
    }
  }
  return static_cast<bool>(out);
}

bool load_parameters(Graph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    return false;
  }
  auto params = graph.params();
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) {
    return false;
  }
  for (const ParamRef& p : params) {
    if (!read_tensor(in, *p.value)) {
      return false;
    }
    std::uint8_t has_mask = 0;
    in.read(reinterpret_cast<char*>(&has_mask), sizeof(has_mask));
    if (!in) {
      return false;
    }
    const bool expects_mask = p.mask != nullptr;
    if ((has_mask != 0) != expects_mask) {
      return false;
    }
    if (expects_mask && !read_tensor(in, *p.mask)) {
      return false;
    }
  }
  return true;
}

}  // namespace iprune::nn
