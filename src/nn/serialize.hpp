#pragma once
// Model parameter (de)serialization.
//
// The graph *structure* is code (src/apps builders); only parameters and
// masks are persisted. Benches cache trained/pruned models in an artifacts
// directory so the Table III flow is not recomputed by every binary.

#include <string>

#include "nn/graph.hpp"

namespace iprune::nn {

/// Write all parameters (values + masks where present) of the graph.
/// Returns false on I/O failure.
[[nodiscard]] bool save_parameters(Graph& graph, const std::string& path);

/// Load parameters saved by save_parameters into a structurally identical
/// graph. Returns false on I/O failure or structural mismatch.
[[nodiscard]] bool load_parameters(Graph& graph, const std::string& path);

}  // namespace iprune::nn
