#include "nn/summary.hpp"

#include "util/table.hpp"

namespace iprune::nn {

ModelSummary summarize(Graph& graph) {
  ModelSummary summary;
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    Layer& layer = graph.layer(id);
    LayerSummaryRow row;
    row.node = id;
    row.name = layer.name();
    row.kind = layer_kind_name(layer.kind());
    row.output_shape = graph.node_shape(id);
    for (const ParamRef& p : layer.params()) {
      row.parameters += p.value->numel();
      row.nonzero_parameters += p.mask != nullptr
                                    ? p.mask->count_nonzero()
                                    : p.value->numel();
    }
    summary.total_parameters += row.parameters;
    summary.nonzero_parameters += row.nonzero_parameters;
    summary.rows.push_back(std::move(row));
  }
  return summary;
}

std::string summary_table(Graph& graph) {
  const ModelSummary summary = summarize(graph);
  util::Table table({"#", "Layer", "Kind", "Output", "Params", "Nonzero"});
  for (const LayerSummaryRow& row : summary.rows) {
    table.row()
        .cell(row.node)
        .cell(row.name)
        .cell(row.kind)
        .cell(shape_str(row.output_shape))
        .cell(row.parameters)
        .cell(row.nonzero_parameters);
  }
  table.row()
      .cell("")
      .cell("total")
      .cell("")
      .cell("")
      .cell(summary.total_parameters)
      .cell(summary.nonzero_parameters);
  std::string out = table.str();
  out += "sparsity: " +
         util::Table::format(summary.sparsity() * 100.0, 1) + "% | dense " +
         util::Table::format(
             static_cast<double>(summary.dense_bytes()) / 1024.0, 1) +
         " KB @16-bit\n";
  return out;
}

}  // namespace iprune::nn
