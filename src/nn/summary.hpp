#pragma once
// Human-readable model summaries (layer table + parameter totals), in the
// spirit of torchsummary. Used by the examples and handy when composing
// new architectures.

#include <string>

#include "nn/graph.hpp"

namespace iprune::nn {

struct LayerSummaryRow {
  NodeId node = 0;
  std::string name;
  std::string kind;
  Shape output_shape;       // per-sample
  std::size_t parameters = 0;
  std::size_t nonzero_parameters = 0;
};

struct ModelSummary {
  std::vector<LayerSummaryRow> rows;
  std::size_t total_parameters = 0;
  std::size_t nonzero_parameters = 0;

  /// 16-bit deployed size of all parameters (dense, pre-BSR).
  [[nodiscard]] std::size_t dense_bytes() const {
    return total_parameters * 2;
  }
  [[nodiscard]] double sparsity() const {
    return total_parameters == 0
               ? 0.0
               : 1.0 - static_cast<double>(nonzero_parameters) /
                           static_cast<double>(total_parameters);
  }
};

ModelSummary summarize(Graph& graph);

/// Render as an aligned ASCII table.
std::string summary_table(Graph& graph);

}  // namespace iprune::nn
