#include "nn/tensor.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace iprune::nn {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) {
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: values size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + shape_str(shape_));
  }
}

std::size_t Tensor::dim(std::size_t axis) const {
  assert(axis < shape_.size());
  return shape_[axis];
}

float& Tensor::at(std::size_t i0) {
  assert(rank() == 1 && i0 < shape_[0]);
  return data_[i0];
}

float& Tensor::at(std::size_t i0, std::size_t i1) {
  assert(rank() == 2 && i0 < shape_[0] && i1 < shape_[1]);
  return data_[i0 * shape_[1] + i1];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) {
  assert(rank() == 3 && i0 < shape_[0] && i1 < shape_[1] && i2 < shape_[2]);
  return data_[(i0 * shape_[1] + i1) * shape_[2] + i2];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3) {
  assert(rank() == 4 && i0 < shape_[0] && i1 < shape_[1] && i2 < shape_[2] &&
         i3 < shape_[3]);
  return data_[((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3];
}

float Tensor::at(std::size_t i0) const {
  return const_cast<Tensor*>(this)->at(i0);
}
float Tensor::at(std::size_t i0, std::size_t i1) const {
  return const_cast<Tensor*>(this)->at(i0, i1);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                 std::size_t i3) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
}

std::size_t Tensor::offset(std::span<const std::size_t> index) const {
  assert(index.size() == shape_.size());
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < index.size(); ++axis) {
    assert(index[axis] < shape_[axis]);
    flat = flat * shape_[axis] + index[axis];
  }
  return flat;
}

void Tensor::fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

void Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_str(shape_) + " -> " +
                                shape_str(new_shape));
  }
  shape_ = std::move(new_shape);
}

void Tensor::add_scaled(const Tensor& other, float scale_factor) {
  assert(other.numel() == numel());
  const float* src = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale_factor * src[i];
  }
}

void Tensor::scale(float factor) {
  for (auto& v : data_) {
    v *= factor;
  }
}

void Tensor::hadamard(const Tensor& mask) {
  assert(mask.numel() == numel());
  const float* src = mask.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= src[i];
  }
}

float Tensor::sum() const {
  double total = 0.0;
  for (const float v : data_) {
    total += v;
  }
  return static_cast<float>(total);
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (const float v : data_) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

float Tensor::rms() const {
  if (data_.empty()) {
    return 0.0f;
  }
  double total = 0.0;
  for (const float v : data_) {
    total += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(total / static_cast<double>(data_.size())));
}

std::size_t Tensor::count_nonzero() const {
  std::size_t count = 0;
  for (const float v : data_) {
    if (v != 0.0f) {
      ++count;
    }
  }
  return count;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

}  // namespace iprune::nn
