#pragma once
// Dense float32 tensor used by the server-side training library.
//
// Row-major, up to 4-D in practice ([N,C,H,W] for feature maps,
// [Cout,Cin,kh,kw] for conv weights, [out,in] for dense weights). The
// device-side engine consumes quantized copies (nn/quantize.hpp); this type
// is deliberately simple and owns its storage.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iprune::nn {

using Shape = std::vector<std::size_t>;

/// Number of elements described by a shape (1 for a scalar / empty shape).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]" form for diagnostics.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; values.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> values() { return data_; }
  [[nodiscard]] std::span<const float> values() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  const float& operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access (asserts in debug builds).
  float& at(std::size_t i0);
  float& at(std::size_t i0, std::size_t i1);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3);
  [[nodiscard]] float at(std::size_t i0) const;
  [[nodiscard]] float at(std::size_t i0, std::size_t i1) const;
  [[nodiscard]] float at(std::size_t i0, std::size_t i1, std::size_t i2) const;
  [[nodiscard]] float at(std::size_t i0, std::size_t i1, std::size_t i2,
                         std::size_t i3) const;

  /// Flat offset of a multi-index (row-major).
  [[nodiscard]] std::size_t offset(std::span<const std::size_t> index) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reinterpret with a new shape of identical element count.
  void reshape(Shape new_shape);

  /// Elementwise in-place helpers used by the optimizers / pruners.
  void add_scaled(const Tensor& other, float scale);
  void scale(float factor);
  void hadamard(const Tensor& mask);

  /// Reductions.
  [[nodiscard]] float sum() const;
  [[nodiscard]] float abs_max() const;
  [[nodiscard]] float rms() const;
  [[nodiscard]] std::size_t count_nonzero() const;

  /// True when shapes and all values match exactly.
  [[nodiscard]] bool equals(const Tensor& other) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace iprune::nn
