#include "nn/trainer.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/loss.hpp"

namespace iprune::nn {

Tensor gather_rows(const Tensor& x, std::span<const std::size_t> indices) {
  assert(x.rank() >= 1);
  const std::size_t row_elems = x.numel() / x.dim(0);
  Shape out_shape = x.shape();
  out_shape[0] = indices.size();
  Tensor out(out_shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < x.dim(0));
    std::memcpy(out.data() + i * row_elems,
                x.data() + indices[i] * row_elems, row_elems * sizeof(float));
  }
  return out;
}

void Trainer::train(const Tensor& x, std::span<const int> y,
                    const TrainConfig& config,
                    const std::function<void(std::size_t, double)>& on_epoch) {
  if (x.dim(0) != y.size()) {
    throw std::invalid_argument("Trainer::train: sample/label count mismatch");
  }
  const std::size_t count = x.dim(0);
  util::Rng rng(config.shuffle_seed);
  Sgd optimizer(config.sgd);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(count);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < count; start += config.batch_size) {
      const std::size_t end = std::min(count, start + config.batch_size);
      const std::span<const std::size_t> batch_idx(order.data() + start,
                                                   end - start);
      Tensor batch = gather_rows(x, batch_idx);
      std::vector<int> labels(batch_idx.size());
      for (std::size_t i = 0; i < batch_idx.size(); ++i) {
        labels[i] = y[batch_idx[i]];
      }

      graph_.zero_grads();
      Tensor logits = graph_.forward(batch, /*training=*/true);
      LossResult loss = softmax_cross_entropy(logits, labels);
      graph_.backward(loss.grad);
      auto params = graph_.params();
      if (config.clip_grad_norm > 0.0f) {
        double norm_sq = 0.0;
        for (const ParamRef& p : params) {
          for (std::size_t i = 0; i < p.grad->numel(); ++i) {
            norm_sq += static_cast<double>((*p.grad)[i]) * (*p.grad)[i];
          }
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > config.clip_grad_norm) {
          const float scale =
              config.clip_grad_norm / static_cast<float>(norm);
          for (const ParamRef& p : params) {
            p.grad->scale(scale);
          }
        }
      }
      optimizer.step(params);

      epoch_loss += loss.loss;
      ++batches;
    }
    optimizer.config().learning_rate *= config.lr_decay;
    if (on_epoch) {
      on_epoch(epoch, epoch_loss / static_cast<double>(std::max<std::size_t>(
                          batches, 1)));
    }
  }
}

EvalResult evaluate_graph(const Graph& graph, const Tensor& x,
                          std::span<const int> y, std::size_t batch_size) {
  if (x.dim(0) != y.size()) {
    throw std::invalid_argument(
        "Trainer::evaluate: sample/label count mismatch");
  }
  const std::size_t count = x.dim(0);
  std::size_t correct = 0;
  double total_loss = 0.0;
  std::size_t batches = 0;
  std::vector<std::size_t> idx(batch_size);
  for (std::size_t start = 0; start < count; start += batch_size) {
    const std::size_t end = std::min(count, start + batch_size);
    idx.resize(end - start);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      idx[i] = start + i;
    }
    Tensor batch = gather_rows(x, idx);
    Tensor logits = graph.infer(batch);
    LossResult loss =
        softmax_cross_entropy(logits, y.subspan(start, end - start));
    correct += loss.correct;
    total_loss += loss.loss;
    ++batches;
  }
  EvalResult result;
  result.accuracy = static_cast<double>(correct) / static_cast<double>(count);
  result.loss = total_loss / static_cast<double>(std::max<std::size_t>(
                    batches, 1));
  return result;
}

EvalResult Trainer::evaluate(const Tensor& x, std::span<const int> y,
                             std::size_t batch_size) {
  return evaluate_graph(graph_, x, y, batch_size);
}

}  // namespace iprune::nn
