#pragma once
// Mini-batch training / evaluation driver for Graph models.

#include <functional>
#include <span>

#include "nn/graph.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace iprune::nn {

struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  SgdConfig sgd;
  std::uint64_t shuffle_seed = 7;
  /// Multiply the learning rate by this after each epoch.
  float lr_decay = 1.0f;
  /// Clip the global gradient L2 norm to this value (0 disables). Keeps
  /// training stable on the noisier synthetic datasets.
  float clip_grad_norm = 5.0f;
};

struct EvalResult {
  double accuracy = 0.0;  // in [0, 1]
  double loss = 0.0;
};

/// Slice rows `indices` out of X ([N, ...]) into a new batch tensor.
Tensor gather_rows(const Tensor& x, std::span<const std::size_t> indices);

/// Accuracy / mean loss over (x, y) through the const inference path.
/// Touches no layer caches, so concurrent calls on the same graph are safe.
EvalResult evaluate_graph(const Graph& graph, const Tensor& x,
                          std::span<const int> y, std::size_t batch_size = 64);

class Trainer {
 public:
  explicit Trainer(Graph& graph) : graph_(graph) {}

  /// SGD training over (x, y). Optional per-epoch callback receives
  /// (epoch index, train loss); useful for logging / early stopping tests.
  void train(const Tensor& x, std::span<const int> y, const TrainConfig& config,
             const std::function<void(std::size_t, double)>& on_epoch = {});

  /// Accuracy / mean loss over (x, y), evaluated in inference mode.
  EvalResult evaluate(const Tensor& x, std::span<const int> y,
                      std::size_t batch_size = 64);

 private:
  Graph& graph_;
};

}  // namespace iprune::nn
