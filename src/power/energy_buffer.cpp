#include "power/energy_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace iprune::power {

EnergyBuffer::EnergyBuffer(BufferConfig config) : config_(config) {
  if (config_.capacitance_f <= 0.0 || config_.v_on <= config_.v_off ||
      config_.v_off < 0.0) {
    throw std::invalid_argument("EnergyBuffer: invalid configuration");
  }
  usable_j_ = 0.5 * config_.capacitance_f *
              (config_.v_on * config_.v_on - config_.v_off * config_.v_off);
  stored_j_ = usable_j_;  // start fully charged, as the paper's setup does
}

double EnergyBuffer::deposit(double joules) {
  const double accepted = std::min(joules, usable_j_ - stored_j_);
  stored_j_ += accepted;
  return joules - accepted;
}

bool EnergyBuffer::withdraw(double joules) {
  if (joules > stored_j_) {
    stored_j_ = 0.0;
    return false;
  }
  stored_j_ -= joules;
  return true;
}

}  // namespace iprune::power
