#pragma once
// Capacitor energy buffer behind a BQ25504-style switch: the device turns
// on when the capacitor reaches v_on and off when it sags to v_off, so the
// usable energy per power cycle is E = 1/2 C (v_on^2 - v_off^2).

#include <cstddef>

namespace iprune::power {

struct BufferConfig {
  double capacitance_f = 100e-6;  // 100 uF (paper Table I)
  double v_on = 2.8;
  double v_off = 2.4;
};

class EnergyBuffer {
 public:
  explicit EnergyBuffer(BufferConfig config);

  /// Usable joules between the on and off thresholds.
  [[nodiscard]] double usable_j() const { return usable_j_; }
  [[nodiscard]] double stored_j() const { return stored_j_; }
  [[nodiscard]] const BufferConfig& config() const { return config_; }

  /// Add harvested energy; saturates at the usable window. Returns the
  /// overflow that could not be stored (wasted harvest), so callers can
  /// keep an exact energy-conservation ledger.
  double deposit(double joules);

  /// Try to draw `joules`; returns false (leaving the buffer empty, i.e.
  /// the device browns out) when insufficient.
  [[nodiscard]] bool withdraw(double joules);

  /// Refill to the on-threshold (end of a recharge phase).
  void refill() { stored_j_ = usable_j_; }
  void drain() { stored_j_ = 0.0; }

 private:
  BufferConfig config_;
  double usable_j_;
  double stored_j_;
};

}  // namespace iprune::power
