#pragma once
// Deterministic fault-injection hook for the power subsystem.
//
// Organic power failures only occur where the energy buffer happens to
// drain, so adversarial recovery boundaries (mid-commit, first/last job of
// a node, back-to-back failures during reboot) are never exercised by
// energy accounting alone. A FaultHook installed on the PowerManager is
// consulted once per chargeable device operation — the operation's kind is
// the FaultPoint — and can force a brown-out at a precise event index,
// independent of how much energy the buffer holds. src/fault/ builds the
// schedule-driven injector and the differential crash-consistency checker
// on top of this interface.

#include <cstddef>
#include <cstdint>

namespace iprune::power {

/// Kind of chargeable operation a forced outage can interrupt. Mirrors
/// device::CostTag (the power layer cannot depend on the device layer).
enum class FaultPoint : std::uint8_t {
  kNvmRead = 0,  // DMA NVM -> VM (includes the recovery re-read)
  kNvmWrite,     // DMA VM -> NVM (progress commits land here)
  kLea,          // accelerator invocation
  kCpu,          // CPU-executed work
  kReboot,       // firmware reboot after a recharge
  kOther,
  kPointCount,
};

inline const char* fault_point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::kNvmRead:
      return "nvm_read";
    case FaultPoint::kNvmWrite:
      return "nvm_write";
    case FaultPoint::kLea:
      return "lea";
    case FaultPoint::kCpu:
      return "cpu";
    case FaultPoint::kReboot:
      return "reboot";
    case FaultPoint::kOther:
      return "other";
    case FaultPoint::kPointCount:
      break;
  }
  return "?";
}

/// Consulted by PowerManager::consume() for every chargeable operation.
/// Returning true forces a brown-out for that operation: the buffer is
/// drained and the device goes through the ordinary recharge + reboot
/// path, exactly as if the capacitor had emptied organically.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  [[nodiscard]] virtual bool should_fail(FaultPoint point) = 0;

  /// When an injected outage interrupts a staged multi-byte NVM commit of
  /// `total_bytes`, how many leading bytes still land (a torn write).
  /// Return 0 for the classic all-or-nothing model. The device clamps the
  /// answer to total_bytes - 1: a torn write by definition loses at least
  /// its final byte (a fully-landed commit is just an outage at the next
  /// boundary, which the schedule can express directly).
  [[nodiscard]] virtual std::size_t torn_write_bytes(std::size_t total_bytes) {
    (void)total_bytes;
    return 0;
  }

  /// Lower bound on the number of *upcoming consecutive* chargeable
  /// events (of any FaultPoint) for which should_fail would return false
  /// and not throw. The discrete-event scheduler uses this to grant the
  /// device a hook-free window it can charge through without per-event
  /// calls; events inside the window are later settled in bulk via
  /// skip_quiet_events. 0 (the default) disables the fast path, so
  /// existing custom hooks keep exact per-event behaviour.
  [[nodiscard]] virtual std::uint64_t quiet_events() const { return 0; }

  /// Settle `count` events that were skipped inside a quiet window:
  /// advance internal ordinals exactly as if should_fail had been called
  /// `count` times and returned false. `per_point[kPointCount]` gives the
  /// per-FaultPoint breakdown (summing to count) for hooks that track
  /// per-point ordinals. No-op by default.
  virtual void skip_quiet_events(std::uint64_t count,
                                 const std::uint64_t* per_point) {
    (void)count;
    (void)per_point;
  }
};

}  // namespace iprune::power
