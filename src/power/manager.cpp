#include "power/manager.hpp"

#include <stdexcept>

namespace iprune::power {

PowerManager::PowerManager(std::unique_ptr<PowerSupply> supply,
                           BufferConfig buffer)
    : supply_(std::move(supply)), buffer_(buffer) {
  if (supply_ == nullptr) {
    throw std::invalid_argument("PowerManager: null supply");
  }
}

bool PowerManager::consume(double now_s, double duration_s, double energy_j,
                           FaultPoint point) {
  const double harvested = supply_->power_w(now_s) * duration_s;
  stats_.harvested_j += harvested;
  stats_.wasted_j += buffer_.deposit(harvested);

  last_outage_injected_ =
      fault_hook_ != nullptr && fault_hook_->should_fail(point);
  if (!last_outage_injected_) {
    const double stored = buffer_.stored_j();
    if (buffer_.withdraw(energy_j)) {
      stats_.consumed_j += energy_j;
      return true;
    }
    // Organic brown-out: the device drew everything the buffer held
    // before dying partway through the operation (withdraw() drained it).
    stats_.consumed_j += stored;
  } else {
    // Injected outage: the supply is cut at this exact event regardless of
    // the energy balance; the residual charge is discarded, not consumed.
    stats_.wasted_j += buffer_.stored_j();
    buffer_.drain();
    ++stats_.injected_failures;
  }
  ++stats_.power_failures;
  if (trace_on_) {
    telemetry::Event event;
    event.cls = telemetry::EventClass::kBrownOut;
    event.phase = telemetry::EventPhase::kInstant;
    event.t_us = (now_s + duration_s) * 1e6;
    event.energy_j = energy_j;
    event.seq = stats_.power_failures;
    sink_->record(event);
    if (last_outage_injected_) {
      telemetry::Event inject;
      inject.cls = telemetry::EventClass::kFaultInject;
      inject.phase = telemetry::EventPhase::kInstant;
      inject.t_us = event.t_us;
      inject.seq = stats_.injected_failures;
      inject.name = fault_point_name(point);
      sink_->record(inject);
    }
  }
  return false;
}

bool PowerManager::consume_quiet(double duration_s, double energy_j,
                                 double power_w) {
  // EXACT floating-point replica of consume() minus the hook call and
  // telemetry; the caller guarantees the hook would have been quiet and
  // `power_w` matches the supply's virtual answer over the operation.
  const double harvested = power_w * duration_s;
  stats_.harvested_j += harvested;
  stats_.wasted_j += buffer_.deposit(harvested);

  last_outage_injected_ = false;
  const double stored = buffer_.stored_j();
  if (buffer_.withdraw(energy_j)) {
    stats_.consumed_j += energy_j;
    return true;
  }
  stats_.consumed_j += stored;
  ++stats_.power_failures;
  return false;
}

void PowerManager::record_recharge(double now_s, double duration_s,
                                   double harvested_j) {
  if (!trace_on_) {
    return;
  }
  telemetry::Event event;
  event.cls = telemetry::EventClass::kRecharge;
  event.phase = telemetry::EventPhase::kSpan;
  event.t_us = now_s * 1e6;
  event.dur_us = duration_s * 1e6;
  // Recharge dead time is exposed wall-clock by definition.
  event.attributed_us = event.dur_us;
  event.energy_j = harvested_j;
  event.seq = stats_.power_failures;
  sink_->record(event);
}

double PowerManager::recharge(double now_s) {
  // Integrate the (possibly time-varying) supply in fixed steps until the
  // buffer is full. Constant supplies converge in one closed-form step.
  const double needed = buffer_.usable_j() - buffer_.stored_j();
  const double p0 = supply_->power_w(now_s);

  double elapsed = 0.0;
  double accumulated = 0.0;
  if (p0 > 0.0) {
    const double estimate = needed / p0;
    // Probe whether the supply is constant over the estimated window; if
    // so, finish in closed form.
    if (supply_->power_w(now_s + estimate) == p0 &&
        supply_->power_w(now_s + estimate * 0.5) == p0) {
      buffer_.refill();
      stats_.harvested_j += needed;
      stats_.off_time_s += estimate;
      record_recharge(now_s, estimate, needed);
      return estimate;
    }
  }

  constexpr double kStepS = 1e-3;
  constexpr double kMaxRechargeS = 3600.0 * 24.0;
  // Segment-cached stepping: each step still samples the supply at its
  // start time like the original per-step loop, but within a declared
  // constant window the cached value substitutes for the virtual call.
  // SupplySegment's contract (power_w(t) == seg.power_w for t < end_s)
  // makes the sum bit-identical to per-step power_w() queries.
  SupplySegment seg{0.0, now_s};
  while (accumulated < needed) {
    const double t = now_s + elapsed;
    if (t >= seg.end_s) {
      seg = supply_->segment(t);
    }
    accumulated += seg.power_w * kStepS;
    elapsed += kStepS;
    if (elapsed > kMaxRechargeS) {
      throw std::runtime_error(
          "PowerManager::recharge: supply cannot refill the buffer within "
          "24 simulated hours (dead energy source)");
    }
  }
  buffer_.refill();
  // The last integration step overshoots the on-threshold; the overshoot
  // is harvested but not storable (the converter stops charging).
  stats_.harvested_j += accumulated;
  stats_.wasted_j += accumulated - needed;
  stats_.off_time_s += elapsed;
  record_recharge(now_s, elapsed, needed);
  return elapsed;
}

}  // namespace iprune::power
