#pragma once
// Energy accounting for the on/off duty-cycling of an intermittently
// powered device: while the device runs, harvested power partially offsets
// the load; when the buffer empties the device browns out and the manager
// computes the recharge time until the on-threshold is reached again.

#include <memory>

#include "power/energy_buffer.hpp"
#include "power/supply.hpp"
#include "telemetry/sink.hpp"

namespace iprune::power {

struct PowerStats {
  std::size_t power_failures = 0;
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double off_time_s = 0.0;
};

class PowerManager {
 public:
  PowerManager(std::unique_ptr<PowerSupply> supply, BufferConfig buffer);

  /// Account one device operation of `duration_s` drawing `energy_j`
  /// starting at simulated time `now_s`. Returns true if the buffer
  /// sustained it; false on brown-out (buffer left empty; call recharge()).
  [[nodiscard]] bool consume(double now_s, double duration_s,
                             double energy_j);

  /// Recharge from empty to the on-threshold starting at `now_s`.
  /// Returns the recharge duration in seconds. Throws if the supply
  /// cannot ever refill the buffer (dead supply).
  [[nodiscard]] double recharge(double now_s);

  [[nodiscard]] const PowerStats& stats() const { return stats_; }
  [[nodiscard]] const EnergyBuffer& buffer() const { return buffer_; }
  [[nodiscard]] const PowerSupply& supply() const { return *supply_; }

  void reset_stats() { stats_ = {}; }

  /// Route brown-out / recharge telemetry to `sink` (nullptr restores the
  /// null sink). Non-owning; the sink must outlive the manager.
  void set_trace_sink(telemetry::TraceSink* sink) {
    sink_ = sink != nullptr ? sink : &telemetry::NullSink::instance();
  }

 private:
  void record_recharge(double now_s, double duration_s, double harvested_j);

  std::unique_ptr<PowerSupply> supply_;
  EnergyBuffer buffer_;
  PowerStats stats_;
  telemetry::TraceSink* sink_ = &telemetry::NullSink::instance();
};

}  // namespace iprune::power
