#pragma once
// Energy accounting for the on/off duty-cycling of an intermittently
// powered device: while the device runs, harvested power partially offsets
// the load; when the buffer empties the device browns out and the manager
// computes the recharge time until the on-threshold is reached again.
//
// A FaultHook (fault_hook.hpp) can additionally force a brown-out at a
// precise chargeable-operation index, independent of the energy balance —
// the substrate of the src/fault crash-consistency harness.

#include <memory>

#include "power/energy_buffer.hpp"
#include "power/fault_hook.hpp"
#include "power/supply.hpp"
#include "telemetry/sink.hpp"

namespace iprune::power {

/// Energy ledger. Conservation invariant (pinned by tests):
///   initial_stored + harvested_j == consumed_j + wasted_j + stored_j
/// where wasted_j covers harvest that overflowed the full buffer, recharge
/// overshoot beyond the on-threshold, and charge discarded by an injected
/// outage.
struct PowerStats {
  std::size_t power_failures = 0;
  /// Failures forced by the fault hook (subset of power_failures).
  std::size_t injected_failures = 0;
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double wasted_j = 0.0;
  double off_time_s = 0.0;
};

/// How the simulation advances time. kStepping is the reference model:
/// every chargeable event runs the full consume() path (virtual supply
/// query + fault-hook call). kScheduler is the discrete-event mode: the
/// device charges through hook-quiet, constant-supply windows with
/// consume_quiet() and settles hook ordinals in bulk — bit-identical to
/// stepping by construction, just cheaper per event.
enum class SimMode : std::uint8_t { kStepping, kScheduler };

class PowerManager {
 public:
  PowerManager(std::unique_ptr<PowerSupply> supply, BufferConfig buffer);

  /// Account one device operation of `duration_s` drawing `energy_j`
  /// starting at simulated time `now_s`. Returns true if the buffer
  /// sustained it; false on brown-out (buffer left empty; call recharge()).
  /// `point` names the operation kind for the fault hook.
  [[nodiscard]] bool consume(double now_s, double duration_s, double energy_j,
                             FaultPoint point = FaultPoint::kOther);

  /// Fast-path consume for the discrete-event scheduler: identical energy
  /// arithmetic to consume(), minus the fault-hook call and telemetry.
  /// Caller contract: the fault hook is quiet for this event (a granted
  /// quiet window covers it), telemetry tracing is off, and `power_w`
  /// equals supply().power_w(now) for the whole operation (a current
  /// SupplySegment covers it). The skipped hook ordinal must be settled
  /// later via FaultHook::skip_quiet_events.
  [[nodiscard]] bool consume_quiet(double duration_s, double energy_j,
                                   double power_w);

  /// Recharge from empty to the on-threshold starting at `now_s`.
  /// Returns the recharge duration in seconds. Throws if the supply
  /// cannot ever refill the buffer (dead supply).
  [[nodiscard]] double recharge(double now_s);

  [[nodiscard]] const PowerStats& stats() const { return stats_; }
  [[nodiscard]] const EnergyBuffer& buffer() const { return buffer_; }
  [[nodiscard]] const PowerSupply& supply() const { return *supply_; }

  /// True when the most recent consume() failure was forced by the fault
  /// hook rather than by the energy balance. Lets the device distinguish
  /// an injected reboot outage (retry) from a misconfigured reboot cost
  /// (fatal).
  [[nodiscard]] bool last_outage_injected() const {
    return last_outage_injected_;
  }

  void reset_stats() { stats_ = {}; }

  /// Install a deterministic outage-injection hook (nullptr removes it).
  /// Non-owning; the hook must outlive the manager.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  [[nodiscard]] FaultHook* fault_hook() const { return fault_hook_; }
  [[nodiscard]] bool trace_on() const { return trace_on_; }

  /// Route brown-out / recharge telemetry to `sink` (nullptr restores the
  /// null sink). Non-owning; the sink must outlive the manager.
  void set_trace_sink(telemetry::TraceSink* sink) {
    sink_ = sink != nullptr ? sink : &telemetry::NullSink::instance();
    trace_on_ = sink_->enabled();
  }

 private:
  void record_recharge(double now_s, double duration_s, double harvested_j);

  std::unique_ptr<PowerSupply> supply_;
  EnergyBuffer buffer_;
  PowerStats stats_;
  FaultHook* fault_hook_ = nullptr;
  bool last_outage_injected_ = false;
  telemetry::TraceSink* sink_ = &telemetry::NullSink::instance();
  // Cached sink_->enabled() so the consume() hot path tests one member
  // bool instead of chasing the sink pointer per charge.
  bool trace_on_ = false;
};

}  // namespace iprune::power
