#include "power/supply.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace iprune::power {

std::string ConstantSupply::describe() const {
  return "constant " + std::to_string(watts_ * 1e3) + " mW";
}

TraceSupply::TraceSupply(std::vector<double> samples_w,
                         double sample_period_s)
    : samples_w_(std::move(samples_w)), period_s_(sample_period_s) {
  if (samples_w_.empty() || period_s_ <= 0.0) {
    throw std::invalid_argument("TraceSupply: need samples and period > 0");
  }
  for (const double w : samples_w_) {
    // NaN compares false against everything, so test finiteness first.
    if (!std::isfinite(w)) {
      throw std::invalid_argument("TraceSupply: non-finite power sample");
    }
    if (w < 0.0) {
      throw std::invalid_argument("TraceSupply: negative power sample");
    }
  }
}

TraceSupply TraceSupply::from_csv(const std::string& path,
                                  double sample_period_s) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("TraceSupply::from_csv: cannot open " + path);
  }
  std::vector<double> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    // strtod (unlike stream extraction) also parses "nan"/"inf" spellings,
    // so corrupt samples reach the finiteness check below instead of being
    // silently skipped as unparseable.
    const char* begin = line.c_str();
    char* parse_end = nullptr;
    const double mw = std::strtod(begin, &parse_end);
    const auto blank = [](const char* s) {
      while (*s != '\0') {
        if (std::isspace(static_cast<unsigned char>(*s)) == 0) {
          return false;
        }
        ++s;
      }
      return true;
    };
    if (parse_end == begin) {
      if (blank(begin)) {
        continue;  // empty or comment-only line
      }
      throw std::runtime_error("TraceSupply::from_csv: malformed sample at "
                               "line " +
                               std::to_string(line_no) + " of " + path);
    }
    if (!blank(parse_end)) {
      throw std::runtime_error(
          "TraceSupply::from_csv: trailing garbage after sample at line " +
          std::to_string(line_no) + " of " + path);
    }
    if (!std::isfinite(mw)) {
      throw std::runtime_error("TraceSupply::from_csv: non-finite power "
                               "sample at line " +
                               std::to_string(line_no) + " of " + path);
    }
    if (mw < 0.0) {
      throw std::runtime_error("TraceSupply::from_csv: negative power "
                               "sample at line " +
                               std::to_string(line_no) + " of " + path);
    }
    samples.push_back(mw * 1e-3);
  }
  if (samples.empty()) {
    throw std::runtime_error("TraceSupply::from_csv: no samples in " + path);
  }
  return TraceSupply(std::move(samples), sample_period_s);
}

double TraceSupply::power_w(double time_s) const {
  const double cycle =
      period_s_ * static_cast<double>(samples_w_.size());
  double t = std::fmod(time_s, cycle);
  if (t < 0.0) {
    t += cycle;
  }
  const auto index = static_cast<std::size_t>(t / period_s_);
  return samples_w_[std::min(index, samples_w_.size() - 1)];
}

SupplySegment TraceSupply::segment(double time_s) const {
  const double cycle = period_s_ * static_cast<double>(samples_w_.size());
  double t = std::fmod(time_s, cycle);
  if (t < 0.0) {
    t += cycle;
  }
  const auto index =
      std::min(static_cast<std::size_t>(t / period_s_),
               samples_w_.size() - 1);
  // End of the current sample in absolute time. fmod and the division
  // above round, so hold back a guard band: an event starting inside it
  // takes the exact slow path instead of trusting the cached power, which
  // keeps the fast path bit-identical to per-event power_w() calls.
  const double guard = period_s_ * 1e-9;
  const double sample_end =
      time_s + (static_cast<double>(index + 1) * period_s_ - t) - guard;
  if (sample_end <= time_s) {
    return {samples_w_[index], time_s};  // inside the guard band: slow path
  }
  return {samples_w_[index], sample_end};
}

std::string TraceSupply::describe() const {
  return "trace (" + std::to_string(samples_w_.size()) + " samples @ " +
         std::to_string(period_s_) + " s)";
}

std::unique_ptr<PowerSupply> SupplyPresets::continuous() {
  return std::make_unique<ConstantSupply>(kContinuousW);
}

std::unique_ptr<PowerSupply> SupplyPresets::strong() {
  return std::make_unique<ConstantSupply>(kStrongW);
}

std::unique_ptr<PowerSupply> SupplyPresets::weak() {
  return std::make_unique<ConstantSupply>(kWeakW);
}

std::unique_ptr<PowerSupply> SupplyPresets::solar_day(double peak_w,
                                                      double day_length_s) {
  constexpr std::size_t kSamples = 96;
  std::vector<double> samples(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    // Half-sine day curve with zero "night" floor.
    const double phase =
        std::numbers::pi * static_cast<double>(i) / (kSamples - 1);
    samples[i] = peak_w * std::max(0.0, std::sin(phase));
  }
  return std::make_unique<TraceSupply>(std::move(samples),
                                       day_length_s / kSamples);
}

}  // namespace iprune::power
