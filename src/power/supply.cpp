#include "power/supply.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace iprune::power {

std::string ConstantSupply::describe() const {
  return "constant " + std::to_string(watts_ * 1e3) + " mW";
}

TraceSupply::TraceSupply(std::vector<double> samples_w,
                         double sample_period_s)
    : samples_w_(std::move(samples_w)), period_s_(sample_period_s) {
  if (samples_w_.empty() || period_s_ <= 0.0) {
    throw std::invalid_argument("TraceSupply: need samples and period > 0");
  }
  for (const double w : samples_w_) {
    // NaN compares false against everything, so test finiteness first.
    if (!std::isfinite(w)) {
      throw std::invalid_argument("TraceSupply: non-finite power sample");
    }
    if (w < 0.0) {
      throw std::invalid_argument("TraceSupply: negative power sample");
    }
  }
}

TraceSupply TraceSupply::from_csv(const std::string& path,
                                  double sample_period_s) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("TraceSupply::from_csv: cannot open " + path);
  }
  std::vector<double> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    // strtod (unlike stream extraction) also parses "nan"/"inf" spellings,
    // so corrupt samples reach the finiteness check below instead of being
    // silently skipped as unparseable.
    const char* begin = line.c_str();
    char* parse_end = nullptr;
    const double mw = std::strtod(begin, &parse_end);
    const auto blank = [](const char* s) {
      while (*s != '\0') {
        if (std::isspace(static_cast<unsigned char>(*s)) == 0) {
          return false;
        }
        ++s;
      }
      return true;
    };
    if (parse_end == begin) {
      if (blank(begin)) {
        continue;  // empty or comment-only line
      }
      throw std::runtime_error("TraceSupply::from_csv: malformed sample at "
                               "line " +
                               std::to_string(line_no) + " of " + path);
    }
    if (!blank(parse_end)) {
      throw std::runtime_error(
          "TraceSupply::from_csv: trailing garbage after sample at line " +
          std::to_string(line_no) + " of " + path);
    }
    if (!std::isfinite(mw)) {
      throw std::runtime_error("TraceSupply::from_csv: non-finite power "
                               "sample at line " +
                               std::to_string(line_no) + " of " + path);
    }
    if (mw < 0.0) {
      throw std::runtime_error("TraceSupply::from_csv: negative power "
                               "sample at line " +
                               std::to_string(line_no) + " of " + path);
    }
    samples.push_back(mw * 1e-3);
  }
  if (samples.empty()) {
    throw std::runtime_error("TraceSupply::from_csv: no samples in " + path);
  }
  return TraceSupply(std::move(samples), sample_period_s);
}

double TraceSupply::power_w(double time_s) const {
  const double cycle =
      period_s_ * static_cast<double>(samples_w_.size());
  double t = std::fmod(time_s, cycle);
  if (t < 0.0) {
    t += cycle;
  }
  const auto index = static_cast<std::size_t>(t / period_s_);
  return samples_w_[std::min(index, samples_w_.size() - 1)];
}

SupplySegment TraceSupply::segment(double time_s) const {
  const double cycle = period_s_ * static_cast<double>(samples_w_.size());
  double t = std::fmod(time_s, cycle);
  if (t < 0.0) {
    t += cycle;
  }
  const auto index =
      std::min(static_cast<std::size_t>(t / period_s_),
               samples_w_.size() - 1);
  // End of the current sample in absolute time. fmod and the division
  // above round, so hold back a guard band: an event starting inside it
  // takes the exact slow path instead of trusting the cached power, which
  // keeps the fast path bit-identical to per-event power_w() calls.
  const double guard = period_s_ * 1e-9;
  const double sample_end =
      time_s + (static_cast<double>(index + 1) * period_s_ - t) - guard;
  if (sample_end <= time_s) {
    return {samples_w_[index], time_s};  // inside the guard band: slow path
  }
  return {samples_w_[index], sample_end};
}

std::string TraceSupply::describe() const {
  return "trace (" + std::to_string(samples_w_.size()) + " samples @ " +
         std::to_string(period_s_) + " s)";
}

namespace {

void require_finite_positive(double value, const char* what,
                             const char* who) {
  if (!std::isfinite(value) || value <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": " + what +
                                " must be finite and > 0");
  }
}

void require_fraction(double value, const char* what, const char* who) {
  if (!std::isfinite(value) || value <= 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string(who) + ": " + what +
                                " must be in (0, 1]");
  }
}

std::string format_mw(double watts) {
  return std::to_string(watts * 1e3) + " mW";
}

}  // namespace

PhasedSupply::PhasedSupply(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("PhasedSupply: need at least one phase");
  }
  ends_.reserve(phases_.size());
  for (const Phase& phase : phases_) {
    if (!std::isfinite(phase.power_w) || phase.power_w < 0.0) {
      throw std::invalid_argument(
          "PhasedSupply: phase power must be finite and >= 0");
    }
    if (!std::isfinite(phase.duration_s) || phase.duration_s <= 0.0) {
      throw std::invalid_argument(
          "PhasedSupply: phase duration must be finite and > 0");
    }
    cycle_s_ += phase.duration_s;
    ends_.push_back(cycle_s_);
  }
}

std::size_t PhasedSupply::phase_index(double in_cycle_s) const {
  // First phase whose cumulative end lies strictly beyond the query
  // point; fmod rounding can land exactly on cycle_s_, which folds into
  // the last phase.
  const auto it = std::upper_bound(ends_.begin(), ends_.end(), in_cycle_s);
  if (it == ends_.end()) {
    return phases_.size() - 1;
  }
  return static_cast<std::size_t>(it - ends_.begin());
}

double PhasedSupply::power_w(double time_s) const {
  double t = std::fmod(time_s, cycle_s_);
  if (t < 0.0) {
    t += cycle_s_;
  }
  return phases_[phase_index(t)].power_w;
}

SupplySegment PhasedSupply::segment(double time_s) const {
  double t = std::fmod(time_s, cycle_s_);
  if (t < 0.0) {
    t += cycle_s_;
  }
  const std::size_t index = phase_index(t);
  // Hold back a guard band before the phase boundary: fmod and the
  // cumulative sums round, so an event starting inside the band takes the
  // exact slow path instead of trusting the cached power — the same
  // pattern (and bit-exactness argument) as TraceSupply::segment.
  const double guard = cycle_s_ * 1e-9;
  const double phase_end = time_s + (ends_[index] - t) - guard;
  if (phase_end <= time_s) {
    return {phases_[index].power_w, time_s};  // in the guard band: slow path
  }
  return {phases_[index].power_w, phase_end};
}

std::string PhasedSupply::describe() const {
  return "phased (" + std::to_string(phases_.size()) + " phases @ " +
         std::to_string(cycle_s_) + " s cycle)";
}

RfSupply::RfSupply(double burst_w, double period_s, double duty)
    : PhasedSupply([&] {
        require_finite_positive(burst_w, "burst_w", "RfSupply");
        require_finite_positive(period_s, "period_s", "RfSupply");
        require_fraction(duty, "duty", "RfSupply");
        std::vector<Phase> phases;
        phases.push_back({burst_w, period_s * duty});
        if (duty < 1.0) {
          phases.push_back({0.0, period_s - period_s * duty});
        }
        return phases;
      }()),
      burst_w_(burst_w),
      period_s_(period_s),
      duty_(duty) {}

std::string RfSupply::describe() const {
  return "rf " + format_mw(burst_w_) + " bursts, duty " +
         std::to_string(duty_) + " @ " + std::to_string(period_s_) + " s";
}

KineticSupply::KineticSupply(double impulse_w, double period_s,
                             std::size_t steps, double decay)
    : PhasedSupply([&] {
        require_finite_positive(impulse_w, "impulse_w", "KineticSupply");
        require_finite_positive(period_s, "period_s", "KineticSupply");
        require_fraction(decay, "decay", "KineticSupply");
        if (steps == 0) {
          throw std::invalid_argument("KineticSupply: steps must be >= 1");
        }
        // Impulse decays over the first half-period; second half is quiet.
        const double slot_s =
            period_s * 0.5 / static_cast<double>(steps);
        std::vector<Phase> phases;
        double level = impulse_w;
        for (std::size_t k = 0; k < steps; ++k) {
          phases.push_back({level, slot_s});
          level *= decay;
        }
        phases.push_back({0.0, period_s * 0.5});
        return phases;
      }()),
      impulse_w_(impulse_w),
      period_s_(period_s),
      steps_(steps),
      decay_(decay) {}

std::string KineticSupply::describe() const {
  return "kinetic " + format_mw(impulse_w_) + " impulses, " +
         std::to_string(steps_) + " steps, decay " + std::to_string(decay_) +
         " @ " + std::to_string(period_s_) + " s";
}

IndoorSolarSupply::IndoorSolarSupply(double lit_w, double dim_w,
                                     double period_s, double duty)
    : PhasedSupply([&] {
        require_finite_positive(lit_w, "lit_w", "IndoorSolarSupply");
        require_finite_positive(period_s, "period_s", "IndoorSolarSupply");
        require_fraction(duty, "duty", "IndoorSolarSupply");
        if (!std::isfinite(dim_w) || dim_w < 0.0) {
          throw std::invalid_argument(
              "IndoorSolarSupply: dim_w must be finite and >= 0");
        }
        if (dim_w > lit_w) {
          throw std::invalid_argument(
              "IndoorSolarSupply: dim_w must be <= lit_w");
        }
        std::vector<Phase> phases;
        phases.push_back({lit_w, period_s * duty});
        if (duty < 1.0) {
          phases.push_back({dim_w, period_s - period_s * duty});
        }
        return phases;
      }()),
      lit_w_(lit_w),
      dim_w_(dim_w),
      period_s_(period_s),
      duty_(duty) {}

std::string IndoorSolarSupply::describe() const {
  return "indoor-solar " + format_mw(lit_w_) + " lit / " + format_mw(dim_w_) +
         " dim, duty " + std::to_string(duty_) + " @ " +
         std::to_string(period_s_) + " s";
}

DiurnalSupply::DiurnalSupply(double peak_w, double day_s, double daylight)
    : PhasedSupply([&] {
        require_finite_positive(peak_w, "peak_w", "DiurnalSupply");
        require_finite_positive(day_s, "day_s", "DiurnalSupply");
        require_fraction(daylight, "daylight", "DiurnalSupply");
        const double slot_s =
            day_s * daylight / static_cast<double>(kSlots);
        std::vector<Phase> phases;
        phases.reserve(kSlots + 1);
        for (std::size_t k = 0; k < kSlots; ++k) {
          const double s = std::sin(std::numbers::pi *
                                    (static_cast<double>(k) + 0.5) /
                                    static_cast<double>(kSlots));
          phases.push_back({peak_w * s * s, slot_s});
        }
        if (daylight < 1.0) {
          phases.push_back({0.0, day_s - day_s * daylight});
        }
        return phases;
      }()),
      peak_w_(peak_w),
      day_s_(day_s),
      daylight_(daylight) {}

std::string DiurnalSupply::describe() const {
  return "diurnal peak " + format_mw(peak_w_) + ", daylight " +
         std::to_string(daylight_) + " @ " + std::to_string(day_s_) +
         " s day";
}

std::unique_ptr<PowerSupply> SupplyPresets::continuous() {
  return std::make_unique<ConstantSupply>(kContinuousW);
}

std::unique_ptr<PowerSupply> SupplyPresets::strong() {
  return std::make_unique<ConstantSupply>(kStrongW);
}

std::unique_ptr<PowerSupply> SupplyPresets::weak() {
  return std::make_unique<ConstantSupply>(kWeakW);
}

std::unique_ptr<PowerSupply> SupplyPresets::solar_day(double peak_w,
                                                      double day_length_s) {
  constexpr std::size_t kSamples = 96;
  std::vector<double> samples(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    // Half-sine day curve with zero "night" floor.
    const double phase =
        std::numbers::pi * static_cast<double>(i) / (kSamples - 1);
    samples[i] = peak_w * std::max(0.0, std::sin(phase));
  }
  return std::make_unique<TraceSupply>(std::move(samples),
                                       day_length_s / kSamples);
}

}  // namespace iprune::power
