#pragma once
// Harvested-power sources. The paper drives a BQ25504 from a programmable
// supply at three strengths (continuous 1.65 W, strong 8 mW, weak 4 mW);
// we model those as constant sources plus a trace-driven source for the
// solar-profile example.

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace iprune::power {

/// A window of constant harvest: power_w(t) == power_w for every t in
/// [query time, end_s). The discrete-event scheduler uses segments to skip
/// the per-event virtual power_w() call: within a segment the cached value
/// is exact, so fast-path accounting stays bit-identical to the stepping
/// oracle. A zero-length segment (end_s == query time) means "no constant
/// window known" and forces the exact slow path.
struct SupplySegment {
  double power_w = 0.0;
  double end_s = 0.0;
};

class PowerSupply {
 public:
  virtual ~PowerSupply() = default;
  /// Instantaneous harvestable power (watts) at simulated time t (seconds).
  [[nodiscard]] virtual double power_w(double time_s) const = 0;

  /// Constant-power window starting at `time_s`. The default — a
  /// zero-length segment — is always correct and merely disables the
  /// scheduler fast path for supplies that do not override it.
  [[nodiscard]] virtual SupplySegment segment(double time_s) const {
    return {power_w(time_s), time_s};
  }

  [[nodiscard]] virtual std::string describe() const = 0;
};

class ConstantSupply final : public PowerSupply {
 public:
  explicit ConstantSupply(double watts) : watts_(watts) {}
  [[nodiscard]] double power_w(double) const override { return watts_; }
  [[nodiscard]] SupplySegment segment(double) const override {
    return {watts_, std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] std::string describe() const override;

 private:
  double watts_;
};

/// Piecewise-constant trace sampled at a fixed period; repeats cyclically.
/// Used to emulate time-varying solar harvest.
class TraceSupply final : public PowerSupply {
 public:
  TraceSupply(std::vector<double> samples_w, double sample_period_s);

  /// Load a trace from a CSV/text file: one sample per line, power in
  /// milliwatts; '#' starts a comment. Throws std::runtime_error when the
  /// file is missing or contains no valid samples.
  static TraceSupply from_csv(const std::string& path,
                              double sample_period_s);
  [[nodiscard]] double power_w(double time_s) const override;
  [[nodiscard]] SupplySegment segment(double time_s) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<double> samples_w_;
  double period_s_;
};

/// Cyclic piecewise-constant supply built from explicit phases. The
/// shared implementation behind the analytic harvest models below: each
/// phase holds one power level for a duration, the whole list repeats.
/// power_w() and segment() use the same phase lookup, so the scheduler's
/// cached segment power is bit-identical to per-event power_w() calls
/// (segment ends hold back a tiny guard band against fmod rounding, the
/// same trick TraceSupply uses).
class PhasedSupply : public PowerSupply {
 public:
  struct Phase {
    double power_w = 0.0;
    double duration_s = 0.0;
  };

  /// Phases with non-positive durations are rejected; at least one phase
  /// is required and every power level must be finite and >= 0.
  explicit PhasedSupply(std::vector<Phase> phases);

  [[nodiscard]] double power_w(double time_s) const override;
  [[nodiscard]] SupplySegment segment(double time_s) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double cycle_s() const { return cycle_s_; }
  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

 private:
  [[nodiscard]] std::size_t phase_index(double in_cycle_s) const;

  std::vector<Phase> phases_;
  std::vector<double> ends_;  // cumulative phase end times within a cycle
  double cycle_s_ = 0.0;
};

/// RF energy harvest: a dedicated transmitter delivers bursts of
/// rectified power with period `period_s`, active for the leading `duty`
/// fraction of every period and silent otherwise (Gobieski et al.'s
/// RF-powered deployment regime):
///   p(t) = burst_w   if fmod(t, T) <  duty * T
///        = 0         otherwise
class RfSupply final : public PhasedSupply {
 public:
  RfSupply(double burst_w, double period_s, double duty);
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double burst_w() const { return burst_w_; }
  [[nodiscard]] double period_s() const { return period_s_; }
  [[nodiscard]] double duty() const { return duty_; }

 private:
  double burst_w_;
  double period_s_;
  double duty_;
};

/// Kinetic (piezo/electromagnetic) harvest: a periodic impulse — e.g. a
/// footfall every `period_s` — whose rectified output decays geometrically
/// over `steps` equal slots spanning the first half of the period:
///   p_k = impulse_w * decay^k,  k in [0, steps),  slot width T/(2*steps)
/// with the second half of the period quiet (the Islam et al. kinetic
/// profile, discretized so segment() is exact).
class KineticSupply final : public PhasedSupply {
 public:
  KineticSupply(double impulse_w, double period_s, std::size_t steps,
                double decay);
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double impulse_w() const { return impulse_w_; }
  [[nodiscard]] double period_s() const { return period_s_; }
  [[nodiscard]] std::size_t steps() const { return steps_; }
  [[nodiscard]] double decay() const { return decay_; }

 private:
  double impulse_w_;
  double period_s_;
  std::size_t steps_;
  double decay_;
};

/// Indoor photovoltaic harvest under scheduled office lighting: `lit_w`
/// for the leading `duty` fraction of every period (lights on), a dim
/// floor `dim_w` otherwise (emergency lighting / ambient):
///   p(t) = lit_w  if fmod(t, T) < duty * T,  else dim_w
class IndoorSolarSupply final : public PhasedSupply {
 public:
  IndoorSolarSupply(double lit_w, double dim_w, double period_s, double duty);
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double lit_w() const { return lit_w_; }
  [[nodiscard]] double dim_w() const { return dim_w_; }
  [[nodiscard]] double period_s() const { return period_s_; }
  [[nodiscard]] double duty() const { return duty_; }

 private:
  double lit_w_;
  double dim_w_;
  double period_s_;
  double duty_;
};

/// Outdoor diurnal harvest: a day of length `day_s` whose leading
/// `daylight` fraction carries a sin^2 irradiance arc quantized into
/// kSlots piecewise-constant slots (so segment() stays exact), followed
/// by a zero-power night:
///   p_k = peak_w * sin^2(pi * (k + 0.5) / kSlots),  k in [0, kSlots)
class DiurnalSupply final : public PhasedSupply {
 public:
  static constexpr std::size_t kSlots = 64;

  DiurnalSupply(double peak_w, double day_s, double daylight);
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double peak_w() const { return peak_w_; }
  [[nodiscard]] double day_s() const { return day_s_; }
  [[nodiscard]] double daylight() const { return daylight_; }

 private:
  double peak_w_;
  double day_s_;
  double daylight_;
};

/// The paper's three evaluation conditions.
struct SupplyPresets {
  static constexpr double kContinuousW = 1.65;    // 3.3 V x 0.5 A
  static constexpr double kStrongW = 8.0e-3;      // 1 V x 8 mA
  static constexpr double kWeakW = 4.0e-3;        // 1 V x 4 mA

  static std::unique_ptr<PowerSupply> continuous();
  static std::unique_ptr<PowerSupply> strong();
  static std::unique_ptr<PowerSupply> weak();
  /// Day-curve solar profile peaking at `peak_w`.
  static std::unique_ptr<PowerSupply> solar_day(double peak_w,
                                                double day_length_s);
};

}  // namespace iprune::power
