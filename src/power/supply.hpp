#pragma once
// Harvested-power sources. The paper drives a BQ25504 from a programmable
// supply at three strengths (continuous 1.65 W, strong 8 mW, weak 4 mW);
// we model those as constant sources plus a trace-driven source for the
// solar-profile example.

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace iprune::power {

/// A window of constant harvest: power_w(t) == power_w for every t in
/// [query time, end_s). The discrete-event scheduler uses segments to skip
/// the per-event virtual power_w() call: within a segment the cached value
/// is exact, so fast-path accounting stays bit-identical to the stepping
/// oracle. A zero-length segment (end_s == query time) means "no constant
/// window known" and forces the exact slow path.
struct SupplySegment {
  double power_w = 0.0;
  double end_s = 0.0;
};

class PowerSupply {
 public:
  virtual ~PowerSupply() = default;
  /// Instantaneous harvestable power (watts) at simulated time t (seconds).
  [[nodiscard]] virtual double power_w(double time_s) const = 0;

  /// Constant-power window starting at `time_s`. The default — a
  /// zero-length segment — is always correct and merely disables the
  /// scheduler fast path for supplies that do not override it.
  [[nodiscard]] virtual SupplySegment segment(double time_s) const {
    return {power_w(time_s), time_s};
  }

  [[nodiscard]] virtual std::string describe() const = 0;
};

class ConstantSupply final : public PowerSupply {
 public:
  explicit ConstantSupply(double watts) : watts_(watts) {}
  [[nodiscard]] double power_w(double) const override { return watts_; }
  [[nodiscard]] SupplySegment segment(double) const override {
    return {watts_, std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] std::string describe() const override;

 private:
  double watts_;
};

/// Piecewise-constant trace sampled at a fixed period; repeats cyclically.
/// Used to emulate time-varying solar harvest.
class TraceSupply final : public PowerSupply {
 public:
  TraceSupply(std::vector<double> samples_w, double sample_period_s);

  /// Load a trace from a CSV/text file: one sample per line, power in
  /// milliwatts; '#' starts a comment. Throws std::runtime_error when the
  /// file is missing or contains no valid samples.
  static TraceSupply from_csv(const std::string& path,
                              double sample_period_s);
  [[nodiscard]] double power_w(double time_s) const override;
  [[nodiscard]] SupplySegment segment(double time_s) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<double> samples_w_;
  double period_s_;
};

/// The paper's three evaluation conditions.
struct SupplyPresets {
  static constexpr double kContinuousW = 1.65;    // 3.3 V x 0.5 A
  static constexpr double kStrongW = 8.0e-3;      // 1 V x 8 mA
  static constexpr double kWeakW = 4.0e-3;        // 1 V x 4 mA

  static std::unique_ptr<PowerSupply> continuous();
  static std::unique_ptr<PowerSupply> strong();
  static std::unique_ptr<PowerSupply> weak();
  /// Day-curve solar profile peaking at `peak_w`.
  static std::unique_ptr<PowerSupply> solar_day(double peak_w,
                                                double day_length_s);
};

}  // namespace iprune::power
