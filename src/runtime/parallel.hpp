#pragma once
// Deterministic data-parallel helpers over runtime::ThreadPool.
//
// parallel_map evaluates fn(0..count-1) on the pool and gathers results
// BY INDEX, so the output vector is identical for any lane count. Each
// invocation writes only its own slot; exception semantics follow
// ThreadPool::parallel_for (lowest failing index wins).

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/retry.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::runtime {

template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  std::vector<std::optional<Result>> slots(count);
  pool.parallel_for(count,
                    [&](std::size_t index) { slots[index].emplace(fn(index)); });
  std::vector<Result> results;
  results.reserve(count);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

/// parallel_map with per-task retry: each index runs under `retry`
/// (runtime/retry.hpp), so a TransientError re-runs only that task, with
/// backoff, instead of aborting the whole map. Determinism is unchanged —
/// a retried task recomputes the same pure function into the same slot.
/// Non-transient exceptions keep parallel_for's lowest-index-wins
/// semantics.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn,
                  const RetryPolicy& retry, const RetrySleep& sleep = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  if (!retry.enabled()) {
    return parallel_map(pool, count, std::forward<Fn>(fn));
  }
  return parallel_map(pool, count, [&](std::size_t index) {
    return retry_call(retry, [&] { return fn(index); }, sleep);
  });
}

}  // namespace iprune::runtime
