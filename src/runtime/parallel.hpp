#pragma once
// Deterministic data-parallel helpers over runtime::ThreadPool.
//
// parallel_map evaluates fn(0..count-1) on the pool and gathers results
// BY INDEX, so the output vector is identical for any lane count. Each
// invocation writes only its own slot; exception semantics follow
// ThreadPool::parallel_for (lowest failing index wins).

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace iprune::runtime {

template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  std::vector<std::optional<Result>> slots(count);
  pool.parallel_for(count,
                    [&](std::size_t index) { slots[index].emplace(fn(index)); });
  std::vector<Result> results;
  results.reserve(count);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace iprune::runtime
