#include "runtime/retry.hpp"

#include <cmath>

namespace iprune::runtime {

std::chrono::milliseconds RetryPolicy::backoff_after(int attempt) const {
  if (attempt < 0 || initial_backoff.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  // Saturating exponential: once initial * mult^k passes max_backoff the
  // pow() result can no longer matter, so overflow is bounded by clamping
  // in double space before the cast.
  const double factor =
      std::pow(backoff_multiplier < 1.0 ? 1.0 : backoff_multiplier,
               static_cast<double>(attempt));
  const double raw = static_cast<double>(initial_backoff.count()) * factor;
  const double cap = static_cast<double>(max_backoff.count());
  return std::chrono::milliseconds{
      static_cast<std::chrono::milliseconds::rep>(raw < cap ? raw : cap)};
}

std::chrono::milliseconds Retrier::handle_exception(
    int attempt, const std::exception& error) const {
  if (dynamic_cast<const TransientError*>(&error) == nullptr) {
    throw;  // not transient: fail fast with the original exception
  }
  if (attempt + 1 >= policy_.max_attempts) {
    throw;  // attempts exhausted: surface the transient error itself
  }
  return policy_.backoff_after(attempt);
}

}  // namespace iprune::runtime
