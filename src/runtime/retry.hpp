#pragma once
// Bounded retry-with-backoff for transient evaluation failures.
//
// Long searches dispatch thousands of candidate evaluations through
// runtime::parallel_map; a single transient failure (an artifact file
// briefly locked, a flaky external scorer, an injected fault in a test
// harness) used to abort the whole run. A RetryPolicy re-runs the failed
// task with exponential backoff, capped, and rethrows anything it does
// not recognize as transient:
//
//   * only exceptions derived from runtime::TransientError are retried —
//     a deterministic bug (std::logic_error, IntegrityError, ...) fails
//     fast on the first attempt, exactly as before;
//   * attempt k (0-based) that fails transiently sleeps
//     min(initial_backoff * multiplier^k, max_backoff) and retries;
//   * the max_attempts-th failure rethrows the transient error itself.
//
// The Retrier exposes the decision function (handle_exception) separately
// from the sleeping so tests can pin the exact backoff schedule without
// waiting it out.

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace iprune::runtime {

/// Marker base for failures worth retrying. Throw (or wrap into) this for
/// errors where re-running the same task can plausibly succeed.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  int max_attempts = 1;
  std::chrono::milliseconds initial_backoff{5};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{1000};

  /// A policy that retries transient failures a few times with a short
  /// exponential backoff — the default for search evaluation tasks.
  static RetryPolicy transient_default() {
    RetryPolicy p;
    p.max_attempts = 4;
    return p;
  }

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }

  /// Backoff slept after the (0-based) `attempt`-th failed attempt:
  /// min(initial_backoff * multiplier^attempt, max_backoff).
  [[nodiscard]] std::chrono::milliseconds backoff_after(int attempt) const;
};

/// Decision engine for one task's retry loop (SNIPPETS.md
/// `default_retrier` exemplar): feed it each caught exception with the
/// attempt index; it either returns the backoff to sleep before the next
/// attempt or rethrows when the error is non-transient / attempts are
/// exhausted. Tracks nothing but the policy, so one Retrier may be shared
/// by sequential tasks.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy = RetryPolicy::transient_default())
      : policy_(policy) {}

  /// `attempt` is 0-based. Rethrows `error` unless it is a TransientError
  /// and attempt + 1 < max_attempts; otherwise returns backoff_after(
  /// attempt). Call from inside the catch block so rethrowing preserves
  /// the active exception's dynamic type.
  std::chrono::milliseconds handle_exception(int attempt,
                                             const std::exception& error) const;

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
};

/// Sleep hook for retry_call; tests inject a recorder instead of waiting.
using RetrySleep = std::function<void(std::chrono::milliseconds)>;

/// Run `fn` under `policy`. Returns fn's result; retries transient
/// failures with backoff (via `sleep`, defaulting to a real
/// sleep_for) and rethrows non-transient errors immediately.
template <typename Fn>
auto retry_call(const RetryPolicy& policy, Fn&& fn,
                const RetrySleep& sleep = {}) {
  const Retrier retrier(policy);
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const std::exception& error) {
      const std::chrono::milliseconds delay =
          retrier.handle_exception(attempt, error);
      if (sleep) {
        sleep(delay);
      } else if (delay.count() > 0) {
        std::this_thread::sleep_for(delay);
      }
    }
  }
}

}  // namespace iprune::runtime
