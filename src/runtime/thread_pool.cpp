#include "runtime/thread_pool.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>

namespace iprune::runtime {

namespace {

/// Set while a thread is executing pool work, so nested parallel_for
/// calls degrade to inline serial loops instead of deadlocking on the
/// queue they are themselves draining.
thread_local bool t_in_pool_task = false;

std::size_t hardware_lane_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return 1;
  }
  return hw > 16 ? 16 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t parse_lane_count(const char* text, std::size_t fallback,
                             std::string* warning) {
  char* end = nullptr;
  const unsigned long value =
      text != nullptr ? std::strtoul(text, &end, 10) : 0;
  if (text != nullptr && end != text && *end == '\0' && value >= 1 &&
      value <= 256) {
    return static_cast<std::size_t>(value);
  }
  if (warning != nullptr) {
    *warning = "IPRUNE_THREADS='" +
               std::string(text != nullptr ? text : "") +
               "' is not an integer in [1, 256]; falling back to " +
               std::to_string(fallback) + " lane(s)";
  }
  return fallback;
}

std::size_t default_lane_count() {
  const std::size_t fallback = hardware_lane_count();
  const char* env = std::getenv("IPRUNE_THREADS");
  if (env == nullptr) {
    return fallback;
  }
  std::string warning;
  const std::size_t lanes = parse_lane_count(env, fallback, &warning);
  if (!warning.empty()) {
    // Warn once per process: default_lane_count() runs again for every
    // explicitly constructed pool, and a warning per pool would drown the
    // bench output the misconfiguration actually matters for.
    static bool warned = [&warning] {
      std::fprintf(stderr, "iprune: warning: %s\n", warning.c_str());
      return true;
    }();
    (void)warned;
  }
  return lanes;
}

/// Shared state of one parallel_for call. Participants (worker tasks plus
/// the calling thread) claim indices in ascending order from `next` and
/// record the lowest failing index; the caller waits until nothing is
/// running and nothing more will be claimed.
struct ThreadPool::ForLoop {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::mutex mutex;
  std::condition_variable done;
  std::size_t next = 0;    // next unclaimed index
  std::size_t active = 0;  // bodies currently executing
  bool has_error = false;
  std::size_t error_index = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t lanes) {
  if (lanes == 0) {
    lanes = 1;
  }
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_main() {
  t_in_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_loop(ForLoop& loop) {
  std::unique_lock<std::mutex> lock(loop.mutex);
  while (loop.next < loop.count && !loop.has_error) {
    const std::size_t index = loop.next++;
    ++loop.active;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*loop.body)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    --loop.active;
    if (error != nullptr && (!loop.has_error || index < loop.error_index)) {
      // Indices are claimed in ascending order, so the lowest-index error
      // is always claimed (and recorded) before the loop drains: the
      // rethrown error matches the serial loop's.
      loop.has_error = true;
      loop.error_index = index;
      loop.error = error;
    }
  }
  if (loop.active == 0) {
    loop.done.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t helpers =
      count > 1 ? std::min(workers_.size(), count - 1) : 0;
  if (helpers == 0 || t_in_pool_task) {
    // Serial path: ascending order, first error propagates immediately.
    for (std::size_t index = 0; index < count; ++index) {
      body(index);
    }
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->count = count;
  loop->body = &body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([loop] { run_loop(*loop); });
    }
  }
  wake_.notify_all();

  run_loop(*loop);
  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->done.wait(lock, [&] {
    return loop->active == 0 && (loop->next >= loop->count || loop->has_error);
  });
  // `body` outlives every claimed index from here on: helper tasks that
  // wake late see next >= count (or has_error) and exit without touching
  // it; the shared_ptr keeps the loop state itself alive for them.
  if (loop->has_error) {
    std::rethrow_exception(loop->error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::resolve(ThreadPool* pool) {
  return pool != nullptr ? *pool : shared();
}

}  // namespace iprune::runtime
