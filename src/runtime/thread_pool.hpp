#pragma once
// Deterministic parallel evaluation runtime.
//
// A fixed-size, work-stealing-free thread pool for the search loops that
// dominate the pruning framework (sensitivity probes, ratio-search chains,
// architecture candidates). Work is handed out as index ranges [0, count)
// claimed in ascending order from a shared cursor; results are gathered by
// index (see runtime/parallel.hpp), so any lane count — including 1 —
// produces bit-identical output. The lane count of the shared pool comes
// from IPRUNE_THREADS (see default_lane_count()).
//
// Determinism contract (docs/parallelism.md):
//   * callers generate per-candidate inputs (RNG streams via Rng::split(),
//     configs, clones) serially before dispatch;
//   * task bodies only touch their own candidate state and their own
//     result slot;
//   * parallel_for rethrows the error of the lowest failing index, which
//     is the same error the serial loop would have thrown.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace iprune::runtime {

/// Lane count used by ThreadPool::shared(): IPRUNE_THREADS when set to an
/// integer in [1, 256], otherwise the hardware concurrency (at least 1,
/// capped at 16 so unconfigured CI machines do not oversubscribe). A set
/// but invalid IPRUNE_THREADS (garbage, 0, > 256) falls back to the
/// hardware default AND emits a one-time warning to stderr naming the
/// rejected value — a silent fallback here used to disguise typos as
/// mysterious nondeterministic thread counts.
std::size_t default_lane_count();

/// Parse one IPRUNE_THREADS-style override. Returns the parsed value when
/// `text` is an integer in [1, 256]; otherwise returns `fallback` and,
/// when `warning` is non-null, fills it with a one-line explanation that
/// names the rejected value and the fallback. Pure (no I/O, no env):
/// default_lane_count() owns the once-per-process stderr emission.
std::size_t parse_lane_count(const char* text, std::size_t fallback,
                             std::string* warning = nullptr);

class ThreadPool {
 public:
  /// A pool with `lanes` execution lanes. The calling thread of a
  /// parallel_for is always one lane, so `lanes - 1` worker threads are
  /// spawned; lanes == 1 spawns none and runs everything inline.
  explicit ThreadPool(std::size_t lanes = default_lane_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread).
  [[nodiscard]] std::size_t lanes() const { return workers_.size() + 1; }

  /// Run body(0) ... body(count - 1), each exactly once, distributed over
  /// the lanes; the caller participates and the call returns only when
  /// every claimed index has finished. Indices are claimed in ascending
  /// order. If any body throws, the exception of the lowest failing index
  /// is rethrown (identical to what a serial ascending loop would throw)
  /// and no further indices are claimed. Calls from inside a pool task
  /// run the loop inline (serially) instead of deadlocking.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized by default_lane_count(), created on first use.
  static ThreadPool& shared();

  /// `pool` when non-null, otherwise the shared pool. Search APIs take an
  /// optional pool pointer and resolve it through this.
  static ThreadPool& resolve(ThreadPool* pool);

 private:
  struct ForLoop;

  void worker_main();
  static void run_loop(ForLoop& loop);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace iprune::runtime
