#include "scenario/fuzz.hpp"

#include <exception>
#include <utility>

#include "util/splitmix.hpp"

namespace iprune::scenario {

namespace {

using fleet::PowerProfile;

engine::PreservationMode random_mode(util::Rng& rng) {
  const std::uint64_t draw = rng.uniform_index(10);
  if (draw < 5) {
    return engine::PreservationMode::kImmediate;
  }
  if (draw < 8) {
    return engine::PreservationMode::kTaskAtomic;
  }
  return engine::PreservationMode::kAccumulateInVm;
}

}  // namespace

PowerProfile random_power_profile(util::Rng& rng) {
  // Watts/periods are chosen so every profile averages >= ~0.5 mW — enough
  // to recharge the ~104 uJ energy buffer within a bounded simulated
  // window (the example fleet's "harsh" group runs at 0.5 mW in tier-1).
  switch (rng.uniform_index(9)) {
    case 0:
      return PowerProfile::continuous();
    case 1:
      return PowerProfile::strong();
    case 2:
      return PowerProfile::weak();
    case 3:
      return PowerProfile::constant(rng.uniform(1.0e-3, 2.0e-2));
    case 4:
      return PowerProfile::solar(rng.uniform(4.0e-3, 2.0e-2),
                                 rng.uniform(0.05, 0.5));
    case 5:
      return PowerProfile::rf(rng.uniform(4.0e-3, 2.0e-2),
                              rng.uniform(0.005, 0.1),
                              rng.uniform(0.2, 1.0));
    case 6:
      return PowerProfile::kinetic(rng.uniform(8.0e-3, 4.0e-2),
                                   rng.uniform(0.005, 0.1),
                                   1 + rng.uniform_index(8),
                                   rng.uniform(0.5, 1.0));
    case 7: {
      const double lit = rng.uniform(2.0e-3, 2.0e-2);
      return PowerProfile::indoor(lit, lit * rng.uniform(0.0, 0.5),
                                  rng.uniform(0.01, 0.2),
                                  rng.uniform(0.3, 1.0));
    }
    default:
      return PowerProfile::diurnal(rng.uniform(4.0e-3, 2.0e-2),
                                   rng.uniform(0.05, 0.5),
                                   rng.uniform(0.3, 1.0));
  }
}

fault::OutageSchedule random_schedule(util::Rng& rng) {
  fault::OutageSchedule schedule;
  switch (rng.uniform_index(5)) {
    case 0:
      schedule = fault::OutageSchedule::none();
      break;
    case 1: {
      std::vector<std::uint64_t> events;
      const std::size_t n = 1 + rng.uniform_index(4);
      for (std::size_t i = 0; i < n; ++i) {
        events.push_back(rng.uniform_index(400));
      }
      schedule = fault::OutageSchedule::at_events(std::move(events));
      break;
    }
    case 2:
      // max_outages is always bounded: an uncapped dense schedule in
      // accumulate mode never completes (the watchdog would fire, which
      // is a device failure the fuzzer would mis-read as a finding).
      schedule = fault::OutageSchedule::every_nth(20 + rng.uniform_index(380),
                                                  1 + rng.uniform_index(8));
      break;
    case 3:
      schedule = fault::OutageSchedule::random(rng.next_u64() | 1,
                                               rng.uniform(1.0e-4, 1.0e-2),
                                               1 + rng.uniform_index(8));
      break;
    default:
      schedule = fault::OutageSchedule::at_write(rng.uniform_index(40));
      break;
  }
  if (schedule.mode != fault::ScheduleMode::kNone) {
    const std::uint64_t torn = rng.uniform_index(10);
    if (torn < 2) {
      schedule = schedule.with_torn_keep(rng.uniform_index(9));
    } else if (torn < 4) {
      schedule = schedule.with_torn_random();
    }
  }
  return schedule;
}

fleet::DeviceGroup random_group(util::Rng& rng, std::size_t index,
                                const FuzzConfig& config) {
  fleet::DeviceGroup group;
  group.name = "g";
  group.name += std::to_string(index);
  group.count = 1 + rng.uniform_index(config.max_count);
  group.model = rng.bernoulli(0.2) ? fleet::ModelKind::kMultipath
                                   : fleet::ModelKind::kTiny;
  group.mode = random_mode(rng);
  group.power = random_power_profile(rng);
  group.schedule = random_schedule(rng);
  if (rng.bernoulli(0.15)) {
    group.write_ber = rng.uniform(1.0e-6, 5.0e-5);
  }
  if (rng.bernoulli(0.1)) {
    group.read_ber = rng.uniform(1.0e-6, 5.0e-5);
  }
  const std::uint64_t integrity = rng.uniform_index(10);
  if (integrity == 8) {
    group.integrity = fleet::IntegrityMode::kOn;
  } else if (integrity == 9) {
    group.integrity = fleet::IntegrityMode::kOff;
  }
  // Backend presets ride the same round-trip/differential properties as
  // every other field. Functional groups must stay valid: no power model
  // means continuous supply and no outage schedule.
  switch (rng.uniform_index(8)) {
    case 5:
      group.backend = engine::BackendConfig::reram();
      break;
    case 6:
      group.backend = engine::BackendConfig::stt_mram();
      break;
    case 7:
      group.backend = engine::BackendConfig::functional();
      group.power = fleet::PowerProfile::continuous();
      group.schedule = {};
      break;
    default:
      break;
  }
  return group;
}

fleet::FleetSpec random_fleet_spec(util::Rng& rng,
                                   const FuzzConfig& config) {
  fleet::FleetSpec spec;
  spec.seed = rng.next_u64();
  spec.inferences = 1 + rng.uniform_index(config.max_inferences);
  spec.batch = 1 + rng.uniform_index(512);
  spec.telemetry = rng.bernoulli(0.2);
  spec.event_budget = 1 + rng.uniform_index(1ull << 24);
  if (rng.bernoulli(0.3)) {
    spec.deadline_s = rng.uniform(0.01, 0.5);
  }
  switch (rng.uniform_index(3)) {
    case 0:
      spec.sim = fleet::SimKind::kStepping;
      break;
    case 1:
      spec.sim = fleet::SimKind::kScheduler;
      break;
    default:
      spec.sim = fleet::SimKind::kBatched;
      break;
  }
  const std::size_t n = 1 + rng.uniform_index(config.max_groups);
  for (std::size_t i = 0; i < n; ++i) {
    spec.groups.push_back(random_group(rng, i, config));
  }
  return spec;
}

Scenario random_scenario(const FuzzConfig& config, std::uint64_t index) {
  util::Rng rng(util::splitmix64_at(config.seed, index));
  Scenario scenario;
  scenario.name = "fuzz-" + std::to_string(config.seed) + "-" +
                  std::to_string(index);
  scenario.seed = rng.next_u64();
  scenario.inferences = 1 + rng.uniform_index(config.max_inferences);
  if (rng.bernoulli(0.1)) {
    scenario.telemetry = true;
  }
  if (rng.bernoulli(0.1)) {
    scenario.deadline_s = rng.uniform(0.05, 0.5);
  }
  if (rng.bernoulli(0.2)) {
    // Explicit sim subset — always anchored on the stepping oracle.
    scenario.sims = {fleet::SimKind::kStepping};
    if (rng.bernoulli(0.5)) {
      scenario.sims.push_back(fleet::SimKind::kScheduler);
    }
    if (rng.bernoulli(0.5)) {
      scenario.sims.push_back(fleet::SimKind::kBatched);
    }
  }
  const std::size_t n = 1 + rng.uniform_index(config.max_groups);
  for (std::size_t i = 0; i < n; ++i) {
    scenario.groups.push_back(random_group(rng, i, config));
  }
  return scenario;
}

Scenario shrink_scenario(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    std::size_t max_attempts) {
  Scenario best = failing;
  std::size_t attempts = 0;
  bool progress = true;

  const auto accept = [&](Scenario candidate) -> bool {
    if (attempts >= max_attempts || candidate == best) {
      return false;
    }
    try {
      candidate.validate();
    } catch (const std::exception&) {
      return false;
    }
    ++attempts;
    if (!still_fails(candidate)) {
      return false;
    }
    best = std::move(candidate);
    progress = true;
    return true;
  };
  const auto try_mutation =
      [&](const std::function<void(Scenario&)>& mutate) {
        Scenario candidate = best;
        mutate(candidate);
        (void)accept(std::move(candidate));
      };

  const Scenario defaults;
  while (progress && attempts < max_attempts) {
    progress = false;

    // Drop whole groups first — the biggest single reduction. On success
    // retry the same index (the next group shifted into it).
    for (std::size_t i = 0; best.groups.size() > 1 && i < best.groups.size();) {
      Scenario candidate = best;
      candidate.groups.erase(candidate.groups.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (!accept(std::move(candidate))) {
        ++i;
      }
    }

    // Scenario-level fields back to their (omitted-from-JSON) defaults.
    if (best.telemetry) {
      try_mutation([](Scenario& s) { s.telemetry = false; });
    }
    if (best.deadline_s != 0.0) {
      try_mutation([](Scenario& s) { s.deadline_s = 0.0; });
    }
    if (best.inferences != 1) {
      try_mutation([](Scenario& s) { s.inferences = 1; });
    }
    if (best.batch != defaults.batch) {
      try_mutation([&](Scenario& s) { s.batch = defaults.batch; });
    }
    if (best.event_budget != Scenario::kDefaultEventBudget) {
      try_mutation(
          [](Scenario& s) { s.event_budget = Scenario::kDefaultEventBudget; });
    }
    for (std::size_t i = 0; best.sims.size() > 1 && i < best.sims.size();) {
      Scenario candidate = best;
      candidate.sims.erase(candidate.sims.begin() +
                           static_cast<std::ptrdiff_t>(i));
      if (!accept(std::move(candidate))) {
        ++i;
      }
    }
    for (std::size_t i = 0;
         best.checks.size() > 1 && i < best.checks.size();) {
      Scenario candidate = best;
      candidate.checks.erase(candidate.checks.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (!accept(std::move(candidate))) {
        ++i;
      }
    }

    // Group-level fields back to their defaults, one field at a time.
    for (std::size_t g = 0; g < best.groups.size(); ++g) {
      const auto field = [&](const std::function<void(fleet::DeviceGroup&)>&
                                 mutate) {
        try_mutation([&](Scenario& s) { mutate(s.groups[g]); });
      };
      if (best.groups[g].count != 1) {
        field([](fleet::DeviceGroup& grp) { grp.count = 1; });
      }
      if (best.groups[g].model != fleet::ModelKind::kTiny) {
        field([](fleet::DeviceGroup& grp) {
          grp.model = fleet::ModelKind::kTiny;
        });
      }
      if (best.groups[g].mode != engine::PreservationMode::kImmediate) {
        field([](fleet::DeviceGroup& grp) {
          grp.mode = engine::PreservationMode::kImmediate;
        });
      }
      if (best.groups[g].power != fleet::PowerProfile()) {
        field([](fleet::DeviceGroup& grp) {
          grp.power = fleet::PowerProfile();
        });
      }
      // Re-read best.groups[g].schedule at every check: accept() replaces
      // `best` wholesale, so a reference held across field() calls would
      // dangle as soon as any schedule mutation lands.
      if (best.groups[g].schedule.mode != fault::ScheduleMode::kNone) {
        field([](fleet::DeviceGroup& grp) {
          grp.schedule = fault::OutageSchedule::none();
        });
      }
      if (best.groups[g].schedule.torn != fault::TornMode::kDropAll) {
        field([](fleet::DeviceGroup& grp) {
          grp.schedule.torn = fault::TornMode::kDropAll;
          grp.schedule.torn_keep = 0;
        });
      }
      if (best.groups[g].schedule.mode == fault::ScheduleMode::kFixed &&
          best.groups[g].schedule.fixed_events.size() > 1) {
        // Copied, not referenced: an accepted mutation frees best's vector
        // mid-loop otherwise.
        const std::vector<std::uint64_t> events =
            best.groups[g].schedule.fixed_events;
        for (const std::uint64_t event : events) {
          field([event](fleet::DeviceGroup& grp) {
            grp.schedule.fixed_events = {event};
          });
        }
      }
      if (best.groups[g].schedule.max_outages !=
              fault::OutageSchedule::kUnlimited &&
          best.groups[g].schedule.max_outages > 1) {
        field([](fleet::DeviceGroup& grp) {
          grp.schedule.max_outages = 1;
        });
      }
      if (best.groups[g].write_ber != 0.0) {
        field([](fleet::DeviceGroup& grp) { grp.write_ber = 0.0; });
      }
      if (best.groups[g].read_ber != 0.0) {
        field([](fleet::DeviceGroup& grp) { grp.read_ber = 0.0; });
      }
      if (best.groups[g].integrity != fleet::IntegrityMode::kAuto) {
        field([](fleet::DeviceGroup& grp) {
          grp.integrity = fleet::IntegrityMode::kAuto;
        });
      }
    }
  }
  return best;
}

}  // namespace iprune::scenario
