#pragma once
// Seeded scenario fuzzer + greedy ddmin shrinker.
//
// random_scenario(config, i) is a pure function of (config.seed, i): the
// i-th document of a seed stream is identical across runs, machines, and
// lane counts, so `scenario_fuzz --seed S --count N` is a reproducible
// campaign and any failure can be regenerated from its index alone.
//
// Generated scenarios are always valid (validate() holds by construction)
// and bounded so every check terminates: forced-outage schedules carry an
// explicit max_outages cap, harvest profiles keep enough average power to
// recharge the buffer, and fleets stay small (a few devices, 1-2
// inferences) — the point is schema coverage, not scale.
//
// shrink_scenario() minimizes a failing document: greedy passes drop
// groups, reset scenario fields to their defaults, and reset group fields
// to their defaults, keeping any candidate for which `still_fails` holds,
// until a fixpoint (or the attempt budget) is reached. Candidates are
// generated deterministically, so the shrunk repro is stable too.

#include <cstdint>
#include <functional>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace iprune::scenario {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t max_groups = 3;
  std::size_t max_count = 3;  // devices per group
  std::size_t max_inferences = 2;
};

/// Individual generators (exposed for the round-trip property tests).
/// Every value produced round-trips exactly through the describe()/parse()
/// pair of its type.
fleet::PowerProfile random_power_profile(util::Rng& rng);
fault::OutageSchedule random_schedule(util::Rng& rng);
fleet::DeviceGroup random_group(util::Rng& rng, std::size_t index,
                                const FuzzConfig& config);
fleet::FleetSpec random_fleet_spec(util::Rng& rng, const FuzzConfig& config);

/// The i-th random scenario of the config's seed stream. Named
/// "fuzz-<seed>-<index>"; validate() always holds.
Scenario random_scenario(const FuzzConfig& config, std::uint64_t index);

/// Greedy deterministic shrink. Returns the smallest (by schema_fields())
/// scenario reached from `failing` for which still_fails() returned true;
/// every candidate is validated before the predicate sees it, and at most
/// `max_attempts` predicate evaluations are spent.
Scenario shrink_scenario(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    std::size_t max_attempts = 256);

}  // namespace iprune::scenario
