#include "scenario/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace iprune::scenario {

namespace {

[[noreturn]] void type_error(const std::string& what,
                             const std::string& detail) {
  throw std::invalid_argument("scenario json: expected " + what + ", got " +
                              detail);
}

/// Cursor over the source text tracking 1-based line/column for
/// diagnostics.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("scenario json: " + why + " at line " +
                                std::to_string(line_) + " column " +
                                std::to_string(column_));
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (eof()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      (void)take();
    }
  }

  void expect(char c, const char* what) {
    skip_whitespace();
    if (eof() || peek() != c) {
      fail(std::string("expected ") + what);
    }
    (void)take();
  }

  Json parse_value() {
    skip_whitespace();
    if (eof()) {
      fail("unexpected end of input");
    }
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return Json::null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return Json::number_raw(parse_number());
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

 private:
  void parse_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (eof() || peek() != *p) {
        fail(std::string("expected '") + literal + "'");
      }
      (void)take();
    }
  }

  Json parse_bool() {
    if (peek() == 't') {
      parse_literal("true");
      return Json::boolean(true);
    }
    parse_literal("false");
    return Json::boolean(false);
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
      }
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) {
        fail("unterminated string");
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        default:
          // \uXXXX is deliberately unsupported: the schema is ASCII and a
          // loud error beats silently mangled identifiers.
          fail(std::string("unsupported escape '\\") + esc + "'");
      }
    }
  }

  std::string parse_number() {
    std::string out;
    const auto take_digits = [&] {
      if (eof() || peek() < '0' || peek() > '9') {
        fail("malformed number");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') {
        out += take();
      }
    };
    if (peek() == '-') {
      out += take();
    }
    take_digits();
    if (!eof() && peek() == '.') {
      out += take();
      take_digits();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      out += take();
      if (!eof() && (peek() == '+' || peek() == '-')) {
        out += take();
      }
      take_digits();
    }
    return out;
  }

  Json parse_array() {
    expect('[', "'['");
    Json out = Json::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      (void)take();
      return out;
    }
    while (true) {
      out.push(parse_value());
      skip_whitespace();
      if (eof()) {
        fail("unterminated array");
      }
      const char c = take();
      if (c == ']') {
        return out;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  Json parse_object() {
    expect('{', "'{'");
    Json out = Json::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      (void)take();
      return out;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      if (out.get(key) != nullptr) {
        fail("duplicate key \"" + key + "\"");
      }
      expect(':', "':'");
      out.set(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) {
        fail("unterminated object");
      }
      const char c = take();
      if (c == '}') {
        return out;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

void write_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

Json Json::null() { return {}; }

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number_raw(std::string literal) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::move(literal);
  return j;
}

Json Json::number(std::uint64_t value) {
  return number_raw(std::to_string(value));
}

Json Json::number(std::int64_t value) {
  return number_raw(std::to_string(value));
}

Json Json::number(double value) {
  if (!std::isfinite(value)) {
    // %.17g would emit "inf"/"nan" — not JSON. Refuse at the writer so no
    // caller can ever produce an unparseable document.
    throw std::invalid_argument(
        "scenario json: number must be finite, got " +
        std::to_string(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return number_raw(buf);
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

const char* Json::kind_name() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "?";
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) {
    type_error("bool", kind_name());
  }
  return bool_;
}

std::uint64_t Json::as_u64() const {
  if (kind_ != Kind::kNumber) {
    type_error("integer", kind_name());
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || scalar_.empty() ||
      scalar_[0] == '-' || errno == ERANGE) {
    type_error("unsigned integer", "'" + scalar_ + "'");
  }
  return value;
}

std::size_t Json::as_size() const {
  return static_cast<std::size_t>(as_u64());
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) {
    type_error("number", kind_name());
  }
  char* end = nullptr;
  const double value = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || scalar_.empty()) {
    type_error("number", "'" + scalar_ + "'");
  }
  return value;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) {
    type_error("string", kind_name());
  }
  return scalar_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) {
    type_error("array", kind_name());
  }
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) {
    type_error("object", kind_name());
  }
  return members_;
}

const std::string& Json::literal() const {
  if (kind_ != Kind::kNumber) {
    type_error("number", kind_name());
  }
  return scalar_;
}

const Json* Json::get(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    type_error("object", kind_name());
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) {
    type_error("object", kind_name());
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    type_error("array", kind_name());
  }
  items_.push_back(std::move(value));
}

void Json::write_to(std::string& out, std::size_t indent) const {
  const std::string pad(indent * 2, ' ');
  const std::string inner_pad((indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      out += scalar_;
      return;
    case Kind::kString:
      write_escaped(out, scalar_);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars stay on one line; arrays holding any container
      // break one item per line (the groups list).
      bool nested = false;
      for (const Json& item : items_) {
        nested = nested || item.kind_ == Kind::kArray ||
                 item.kind_ == Kind::kObject;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out += ',';
          if (!nested) {
            out += ' ';
          }
        }
        if (nested) {
          out += '\n';
          out += inner_pad;
        }
        items_[i].write_to(out, indent + 1);
      }
      if (nested) {
        out += '\n';
        out += pad;
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '\n';
        out += inner_pad;
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write_to(out, indent + 1);
      }
      out += '\n';
      out += pad;
      out += '}';
      return;
    }
  }
}

std::string Json::write() const {
  std::string out;
  write_to(out, 0);
  out += '\n';
  return out;
}

Json Json::parse(const std::string& text) {
  Reader reader(text);
  Json value = reader.parse_value();
  reader.skip_whitespace();
  if (!reader.eof()) {
    reader.fail("trailing content after document");
  }
  return value;
}

}  // namespace iprune::scenario
