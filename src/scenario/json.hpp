#pragma once
// Minimal JSON for the scenario schema — no external dependency, exact
// diagnostics.
//
// Two properties matter more than generality:
//   1. Numbers are kept as their literal source text and converted on
//      demand (as_u64 / as_double / as_size), so 64-bit seeds round-trip
//      losslessly — a double would silently truncate anything past 2^53.
//   2. Every parse error carries the 1-based line and column of the
//      offending byte ("scenario json: <why> at line L column C"), which
//      the schema tests pin verbatim.
//
// Objects preserve insertion order, so a written document has a stable,
// canonical key order and describe()/parse() round-trips byte-for-byte.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace iprune::scenario {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;

  static Json null();
  static Json boolean(bool value);
  /// Stores the literal token; the caller guarantees it is a valid JSON
  /// number (the writers below always are).
  static Json number_raw(std::string literal);
  static Json number(std::uint64_t value);
  static Json number(std::int64_t value);
  /// %.17g — shortest form that round-trips the exact double. Throws
  /// std::invalid_argument for non-finite values (no JSON spelling).
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const char* kind_name() const;
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors. Each throws std::invalid_argument naming the actual
  /// kind (and, for numbers, the offending literal) when the value does
  /// not convert: "scenario json: expected <what>, got <detail>".
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;
  /// The raw number literal (numbers only).
  [[nodiscard]] const std::string& literal() const;

  /// Object helpers. get() returns nullptr when the key is absent;
  /// push/set build documents for the writer.
  [[nodiscard]] const Json* get(const std::string& key) const;
  void set(std::string key, Json value);
  void push(Json value);

  /// Render with 2-space indentation and '\n' separators; objects keep
  /// insertion order. The inverse of parse() for every value this class
  /// can hold.
  [[nodiscard]] std::string write() const;

  /// Parse one JSON document (trailing content after the value is an
  /// error). Throws std::invalid_argument:
  ///   "scenario json: <why> at line <l> column <c>"
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const = default;

 private:
  void write_to(std::string& out, std::size_t indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number literal or string payload
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace iprune::scenario
