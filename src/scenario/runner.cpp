#include "scenario/runner.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "fault/checker.hpp"
#include "fault/integrity.hpp"
#include "fault/testbed.hpp"
#include "fleet/orchestrator.hpp"
#include "util/splitmix.hpp"

namespace iprune::scenario {

namespace {

constexpr std::size_t kCalibrationSamples = 8;

std::string hex_digest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

std::uint64_t run_digest(const Scenario& scenario, fleet::SimKind sim,
                         runtime::ThreadPool* pool,
                         fleet::MetricsGateway* gateway,
                         fleet::FleetResult* out = nullptr) {
  const fleet::FleetOrchestrator orchestrator(scenario.to_fleet(sim));
  fleet::FleetResult result = orchestrator.run(pool, gateway);
  const std::uint64_t digest = result.checksum;
  if (out != nullptr) {
    *out = std::move(result);
  }
  return digest;
}

/// Shared testbed for the differential checkers: one deterministic
/// (graph, calibration, sample) triple per model kind, seeded from the
/// scenario seed so a scenario document fully determines every replay.
struct Testbed {
  nn::Graph graph;
  nn::Tensor calibration;
  nn::Tensor sample;
};

Testbed make_testbed(fleet::ModelKind model, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Graph graph = model == fleet::ModelKind::kTiny
                        ? fault::make_tiny_graph(rng)
                        : fault::make_multipath_graph(rng);
  nn::Tensor calibration =
      fault::make_batch(rng, graph, kCalibrationSamples);
  nn::Tensor batch = fault::make_batch(rng, graph, 1);
  nn::Tensor sample = fault::slice_sample(batch, 0);
  return {std::move(graph), std::move(calibration), std::move(sample)};
}

CheckOutcome check_sim_digest(const Scenario& scenario,
                              const std::vector<fleet::SimKind>& sims,
                              std::uint64_t reference,
                              runtime::ThreadPool* pool) {
  CheckOutcome outcome{Check::kSimDigest, true, ""};
  for (std::size_t i = 1; i < sims.size(); ++i) {
    const std::uint64_t digest =
        run_digest(scenario, sims[i], pool, nullptr);
    if (digest != reference) {
      outcome.passed = false;
      if (!outcome.detail.empty()) {
        outcome.detail += "; ";
      }
      outcome.detail += std::string(fleet::sim_kind_name(sims[i])) + "=" +
                        hex_digest(digest) + " != " +
                        fleet::sim_kind_name(sims[0]) + "=" +
                        hex_digest(reference);
    }
  }
  return outcome;
}

CheckOutcome check_lane_determinism(const Scenario& scenario,
                                    fleet::SimKind sim,
                                    std::uint64_t reference) {
  CheckOutcome outcome{Check::kLaneDeterminism, true, ""};
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{3}}) {
    runtime::ThreadPool pool(lanes);
    const std::uint64_t digest = run_digest(scenario, sim, &pool, nullptr);
    if (digest != reference) {
      outcome.passed = false;
      if (!outcome.detail.empty()) {
        outcome.detail += "; ";
      }
      outcome.detail += std::to_string(lanes) + "-lane digest " +
                        hex_digest(digest) + " != reference " +
                        hex_digest(reference);
    }
  }
  return outcome;
}

CheckOutcome check_consistency(const Scenario& scenario,
                               const RunOptions& options) {
  CheckOutcome outcome{Check::kConsistency, true, ""};
  std::map<fleet::ModelKind, Testbed> testbeds;
  std::size_t checked = 0;
  std::size_t skipped = 0;
  for (const fleet::DeviceGroup& group : scenario.groups) {
    if (!forces_clean_outages(group)) {
      continue;
    }
    if (checked >= options.max_differential) {
      ++skipped;
      continue;
    }
    ++checked;
    auto it = testbeds.find(group.model);
    if (it == testbeds.end()) {
      it = testbeds
               .emplace(group.model,
                        make_testbed(group.model, scenario.seed))
               .first;
    }
    const Testbed& bed = it->second;
    const fault::ConsistencyChecker checker(bed.graph, bed.calibration);
    fault::ScheduleOutcome result =
        checker.check(bed.sample, group.schedule, group.mode);
    if (!result.passed) {
      if (options.shrink) {
        result = checker.shrink(bed.sample, result);
      }
      outcome.passed = false;
      if (!outcome.detail.empty()) {
        outcome.detail += "; ";
      }
      outcome.detail += "group \"" + group.name + "\" (" +
                        fleet::model_kind_name(group.model) +
                        "): " + result.failure + " [" + result.repro() + "]";
    }
  }
  if (outcome.passed && skipped > 0) {
    outcome.detail =
        std::to_string(skipped) + " qualifying group(s) beyond the cap";
  }
  return outcome;
}

CheckOutcome check_integrity(const Scenario& scenario,
                             const RunOptions& options) {
  CheckOutcome outcome{Check::kIntegrity, true, ""};
  std::map<fleet::ModelKind, Testbed> testbeds;
  std::size_t checked = 0;
  std::size_t skipped = 0;
  std::size_t group_index = 0;
  for (const fleet::DeviceGroup& group : scenario.groups) {
    const std::size_t index = group_index++;
    if (!injects_protected_corruption(group)) {
      continue;
    }
    if (checked >= options.max_differential) {
      ++skipped;
      continue;
    }
    ++checked;
    auto it = testbeds.find(group.model);
    if (it == testbeds.end()) {
      it = testbeds
               .emplace(group.model,
                        make_testbed(group.model, scenario.seed))
               .first;
    }
    const Testbed& bed = it->second;
    const fault::IntegrityChecker checker(bed.graph, bed.calibration);
    fault::CorruptionScenario load;
    load.label = group.name;
    load.schedule = group.schedule;
    load.seed = util::splitmix64_at(scenario.seed, index) | 1ull;
    load.write_ber = group.write_ber;
    load.read_ber = group.read_ber;
    const fault::ScenarioOutcome result =
        checker.check(bed.sample, load, group.mode, /*protect=*/true);
    const bool contained =
        result.verdict != fault::IntegrityVerdict::kSilent &&
        result.verdict != fault::IntegrityVerdict::kCrashed;
    if (!contained) {
      outcome.passed = false;
      if (!outcome.detail.empty()) {
        outcome.detail += "; ";
      }
      outcome.detail +=
          "group \"" + group.name + "\" (" +
          fleet::model_kind_name(group.model) + ", mode=" +
          fault::preservation_mode_name(group.mode) + "): " +
          fault::integrity_verdict_name(result.verdict) +
          (result.detail.empty() ? "" : " — " + result.detail);
    }
  }
  if (outcome.passed && skipped > 0) {
    outcome.detail =
        std::to_string(skipped) + " qualifying group(s) beyond the cap";
  }
  return outcome;
}

}  // namespace

bool ScenarioReport::passed() const { return failed() == 0; }

std::size_t ScenarioReport::failed() const {
  std::size_t count = 0;
  for (const CheckOutcome& outcome : checks) {
    count += outcome.passed ? 0 : 1;
  }
  return count;
}

int ScenarioReport::exit_code() const { return passed() ? 0 : 1; }

std::string ScenarioReport::to_string() const {
  std::string out = "scenario " + name + ": digest " + hex_digest(digest) +
                    ", " + std::to_string(reference.devices()) +
                    " device(s), " + std::to_string(reference.total.failed) +
                    " failed\n";
  for (const CheckOutcome& outcome : checks) {
    out += std::string("  check ") + check_name(outcome.check) + ": " +
           (outcome.passed ? "ok" : "FAIL");
    if (!outcome.detail.empty()) {
      out += " (" + outcome.detail + ")";
    }
    out += "\n";
  }
  return out;
}

ScenarioReport run_scenario(const Scenario& scenario,
                            const RunOptions& options) {
  scenario.validate();
  ScenarioReport report;
  report.name = scenario.name;

  const std::vector<fleet::SimKind> sims = scenario.effective_sims();
  report.digest = run_digest(scenario, sims[0], options.pool,
                             options.gateway, &report.reference);

  for (const Check check : scenario.effective_checks()) {
    switch (check) {
      case Check::kSimDigest:
        report.checks.push_back(
            check_sim_digest(scenario, sims, report.digest, options.pool));
        break;
      case Check::kLaneDeterminism:
        report.checks.push_back(
            check_lane_determinism(scenario, sims[0], report.digest));
        break;
      case Check::kConsistency:
        report.checks.push_back(check_consistency(scenario, options));
        break;
      case Check::kIntegrity:
        report.checks.push_back(check_integrity(scenario, options));
        break;
    }
  }
  return report;
}

}  // namespace iprune::scenario
