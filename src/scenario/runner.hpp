#pragma once
// ScenarioRunner: drive one Scenario through the differential oracles.
//
// run_scenario() simulates the scenario's fleet under every requested sim
// strategy and asserts each requested check:
//
//   sim_digest        all sim kinds produce the same FNV-1a fleet digest
//                     (stepping is the oracle; the first sim kind's run is
//                     the reference the gateway observes)
//   lane_determinism  re-running the reference sim on 1-lane and 3-lane
//                     pools reproduces the reference digest exactly
//   consistency       each clean-outage group's schedule passes the
//                     ConsistencyChecker on that group's (model, mode)
//                     testbed; a failure detail carries the ddmin-shrunk
//                     repro token
//   integrity         each protected corrupted group's fault load is
//                     contained by the IntegrityChecker (no silent escape,
//                     no unrecovered crash)
//
// Every run derives its inputs from the scenario alone, so a report — and
// each check's pass/fail — is deterministic for a given scenario document.

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/gateway.hpp"
#include "fleet/result.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/scenario.hpp"

namespace iprune::scenario {

struct RunOptions {
  /// Observes the reference run only (first effective sim kind).
  fleet::MetricsGateway* gateway = nullptr;
  /// Pool for the reference and sim-digest runs (nullptr = shared). The
  /// lane_determinism check always builds its own 1- and 3-lane pools.
  runtime::ThreadPool* pool = nullptr;
  /// Cap on differential-checker replays per check (distinct qualifying
  /// groups beyond the cap are skipped; the outcome notes how many).
  std::size_t max_differential = 3;
  /// ddmin-shrink failing consistency schedules into the failure detail.
  bool shrink = true;
};

struct CheckOutcome {
  Check check = Check::kSimDigest;
  bool passed = false;
  /// Failure explanation (repro tokens, digests); empty when passed.
  std::string detail;
};

struct ScenarioReport {
  std::string name;
  /// Reference fleet digest (first effective sim kind).
  std::uint64_t digest = 0;
  /// Aggregate of the reference run.
  fleet::FleetResult reference;
  std::vector<CheckOutcome> checks;

  [[nodiscard]] bool passed() const;
  [[nodiscard]] std::size_t failed() const;
  /// CLI contract (mirrors fleet_run): 0 = every check passed, 1 = at
  /// least one check failed. (2 is reserved for usage/parse errors and
  /// never produced by a completed run.)
  [[nodiscard]] int exit_code() const;
  /// Human-readable verdict: one header line plus one line per check.
  [[nodiscard]] std::string to_string() const;
};

ScenarioReport run_scenario(const Scenario& scenario,
                            const RunOptions& options = {});

}  // namespace iprune::scenario
