#include "scenario/scenario.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/checker.hpp"

namespace iprune::scenario {

namespace {

[[noreturn]] void scenario_error(const std::string& why) {
  throw std::invalid_argument("scenario: " + why);
}

bool valid_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

fleet::SimKind parse_sim(const std::string& name) {
  try {
    return fleet::parse_sim_kind(name);
  } catch (const std::invalid_argument&) {
    scenario_error("unknown sim \"" + name + "\"");
  }
}

/// Outage-schedule ranges FleetSpec::parse leaves to the factories.
void validate_schedule(const fault::OutageSchedule& schedule,
                       const std::string& owner) {
  if (schedule.mode == fault::ScheduleMode::kEveryNth &&
      schedule.every_n == 0) {
    throw std::invalid_argument(owner + " outage period must be >= 1");
  }
  if (schedule.mode == fault::ScheduleMode::kRandom &&
      (!std::isfinite(schedule.probability) || schedule.probability < 0.0 ||
       schedule.probability > 1.0)) {
    throw std::invalid_argument(owner +
                                " outage probability must be in [0, 1]");
  }
}

Json group_to_json(const fleet::DeviceGroup& group) {
  Json out = Json::object();
  out.set("name", Json::string(group.name));
  if (group.count != 1) {
    out.set("count", Json::number(static_cast<std::uint64_t>(group.count)));
  }
  if (group.model != fleet::ModelKind::kTiny) {
    out.set("model", Json::string(fleet::model_kind_name(group.model)));
  }
  if (group.mode != engine::PreservationMode::kImmediate) {
    out.set("mode", Json::string(fault::preservation_mode_name(group.mode)));
  }
  if (group.power != fleet::PowerProfile()) {
    out.set("supply", Json::string(group.power.describe()));
  }
  if (group.schedule.mode != fault::ScheduleMode::kNone) {
    out.set("schedule", Json::string(group.schedule.describe()));
  }
  if (group.write_ber != 0.0) {
    out.set("write_ber", Json::number(group.write_ber));
  }
  if (group.read_ber != 0.0) {
    out.set("read_ber", Json::number(group.read_ber));
  }
  if (group.integrity != fleet::IntegrityMode::kAuto) {
    out.set("integrity",
            Json::string(fleet::integrity_mode_name(group.integrity)));
  }
  if (group.backend != engine::BackendConfig::msp430_fram()) {
    out.set("backend", Json::string(group.backend.describe()));
  }
  return out;
}

fleet::DeviceGroup group_from_json(const Json& doc) {
  if (!doc.is_object()) {
    scenario_error("each group must be an object, got " +
                   std::string(doc.kind_name()));
  }
  fleet::DeviceGroup group;
  bool named = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "name") {
      group.name = value.as_string();
      named = true;
    } else if (key == "count") {
      group.count = value.as_size();
    } else if (key == "model") {
      group.model = fleet::parse_model_kind(value.as_string());
    } else if (key == "mode") {
      group.mode = fault::parse_preservation_mode(value.as_string());
    } else if (key == "supply") {
      group.power = fleet::PowerProfile::parse(value.as_string());
    } else if (key == "schedule") {
      group.schedule = fault::OutageSchedule::parse(value.as_string());
    } else if (key == "write_ber") {
      group.write_ber = value.as_double();
    } else if (key == "read_ber") {
      group.read_ber = value.as_double();
    } else if (key == "integrity") {
      group.integrity = fleet::parse_integrity_mode(value.as_string());
    } else if (key == "backend") {
      try {
        group.backend = engine::BackendConfig::parse(value.as_string());
      } catch (const std::runtime_error&) {
        scenario_error("unknown backend \"" + value.as_string() + "\"");
      }
    } else {
      scenario_error("unknown group field \"" + key + "\"");
    }
  }
  if (!named) {
    scenario_error("group is missing required field \"name\"");
  }
  return group;
}

std::size_t count_leaves(const Json& value) {
  switch (value.kind()) {
    case Json::Kind::kArray: {
      std::size_t total = 0;
      for (const Json& item : value.items()) {
        total += count_leaves(item);
      }
      return total;
    }
    case Json::Kind::kObject: {
      std::size_t total = 0;
      for (const auto& [key, member] : value.members()) {
        (void)key;
        total += count_leaves(member);
      }
      return total;
    }
    default:
      return 1;
  }
}

}  // namespace

bool forces_clean_outages(const fleet::DeviceGroup& group) {
  return group.schedule.mode != fault::ScheduleMode::kNone &&
         group.schedule.torn == fault::TornMode::kDropAll &&
         group.write_ber == 0.0 && group.read_ber == 0.0 &&
         group.mode != engine::PreservationMode::kAccumulateInVm;
}

bool injects_protected_corruption(const fleet::DeviceGroup& group) {
  const bool torn = group.schedule.mode != fault::ScheduleMode::kNone &&
                    group.schedule.torn != fault::TornMode::kDropAll;
  // The containment oracle covers exactly the threat the integrity layer
  // fully owns: commit-boundary torn writes (CRC'd progress records +
  // rollback). Bit-error loads can flip unprotected activation bytes and
  // go silent *by design*, so BER groups are exercised through the digest
  // checks instead of a containment assertion. Torn-only groups arm the
  // layer only under integrity=on (kAuto arms on bit errors alone).
  return torn && group.write_ber == 0.0 && group.read_ber == 0.0 &&
         group.integrity == fleet::IntegrityMode::kOn;
}

const char* check_name(Check check) {
  switch (check) {
    case Check::kSimDigest:
      return "sim_digest";
    case Check::kLaneDeterminism:
      return "lane_determinism";
    case Check::kConsistency:
      return "consistency";
    case Check::kIntegrity:
      return "integrity";
  }
  return "?";
}

Check parse_check(const std::string& name) {
  if (name == "sim_digest") {
    return Check::kSimDigest;
  }
  if (name == "lane_determinism") {
    return Check::kLaneDeterminism;
  }
  if (name == "consistency") {
    return Check::kConsistency;
  }
  if (name == "integrity") {
    return Check::kIntegrity;
  }
  scenario_error("unknown check \"" + name + "\"");
}

std::vector<fleet::SimKind> Scenario::effective_sims() const {
  if (!sims.empty()) {
    return sims;
  }
  return {fleet::SimKind::kStepping, fleet::SimKind::kScheduler,
          fleet::SimKind::kBatched};
}

std::vector<Check> Scenario::effective_checks() const {
  if (!checks.empty()) {
    return checks;
  }
  std::vector<Check> derived = {Check::kSimDigest, Check::kLaneDeterminism};
  bool consistency = false;
  bool integrity = false;
  for (const fleet::DeviceGroup& group : groups) {
    consistency = consistency || forces_clean_outages(group);
    integrity = integrity || injects_protected_corruption(group);
  }
  if (consistency) {
    derived.push_back(Check::kConsistency);
  }
  if (integrity) {
    derived.push_back(Check::kIntegrity);
  }
  return derived;
}

std::size_t Scenario::total_devices() const {
  std::size_t total = 0;
  for (const fleet::DeviceGroup& group : groups) {
    total += group.count;
  }
  return total;
}

fleet::FleetSpec Scenario::to_fleet(fleet::SimKind sim) const {
  fleet::FleetSpec spec;
  spec.seed = seed;
  spec.deadline_s = deadline_s;
  spec.inferences = inferences;
  spec.batch = batch;
  spec.telemetry = telemetry;
  spec.event_budget = event_budget;
  spec.sim = sim;
  spec.groups = groups;
  return spec;
}

void Scenario::validate() const {
  if (name.empty()) {
    scenario_error("name is required");
  }
  if (!valid_name(name)) {
    scenario_error("name must match [A-Za-z0-9_.-]+");
  }
  if (inferences == 0) {
    scenario_error("inferences must be >= 1");
  }
  if (batch == 0) {
    scenario_error("batch must be >= 1");
  }
  if (event_budget == 0) {
    scenario_error("event_budget must be >= 1");
  }
  if (!std::isfinite(deadline_s) || deadline_s < 0.0) {
    scenario_error("deadline_s must be finite and >= 0");
  }
  for (std::size_t i = 0; i < sims.size(); ++i) {
    for (std::size_t j = i + 1; j < sims.size(); ++j) {
      if (sims[i] == sims[j]) {
        scenario_error("duplicate sim \"" +
                       std::string(fleet::sim_kind_name(sims[i])) + "\"");
      }
    }
  }
  for (std::size_t i = 0; i < checks.size(); ++i) {
    for (std::size_t j = i + 1; j < checks.size(); ++j) {
      if (checks[i] == checks[j]) {
        scenario_error("duplicate check \"" +
                       std::string(check_name(checks[i])) + "\"");
      }
    }
  }
  if (groups.empty()) {
    scenario_error("at least one group is required");
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const fleet::DeviceGroup& group = groups[i];
    if (group.name.empty()) {
      scenario_error("group " + std::to_string(i) + " needs a name");
    }
    if (!valid_name(group.name)) {
      scenario_error("group \"" + group.name +
                     "\" name must match [A-Za-z0-9_.-]+");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (groups[j].name == group.name) {
        scenario_error("duplicate group name \"" + group.name + "\"");
      }
    }
    if (group.count == 0) {
      scenario_error("group \"" + group.name + "\" count must be >= 1");
    }
    if (group.write_ber < 0.0 || group.write_ber > 1.0 ||
        group.read_ber < 0.0 || group.read_ber > 1.0 ||
        !std::isfinite(group.write_ber) || !std::isfinite(group.read_ber)) {
      scenario_error("group \"" + group.name +
                     "\" bit-error rates must be in [0, 1]");
    }
    group.power.validate();
    validate_schedule(group.schedule, "scenario: group \"" + group.name +
                                          "\"");
    if (group.backend.kind == engine::BackendKind::kFunctional) {
      if (group.power.kind != fleet::PowerProfile::Kind::kContinuous) {
        scenario_error("group \"" + group.name +
                       "\" backend=functional requires supply=continuous");
      }
      if (group.schedule.mode != fault::ScheduleMode::kNone) {
        scenario_error("group \"" + group.name +
                       "\" backend=functional cannot take an outage schedule");
      }
    }
  }
  if (total_devices() > 65536) {
    scenario_error("fleet exceeds 65536 devices");
  }
}

Json Scenario::to_json() const {
  Json out = Json::object();
  out.set("version", Json::number(kVersion));
  out.set("name", Json::string(name));
  if (seed != Scenario().seed) {
    out.set("seed", Json::number(seed));
  }
  if (inferences != 1) {
    out.set("inferences",
            Json::number(static_cast<std::uint64_t>(inferences)));
  }
  if (batch != Scenario().batch) {
    out.set("batch", Json::number(static_cast<std::uint64_t>(batch)));
  }
  if (deadline_s != 0.0) {
    out.set("deadline_s", Json::number(deadline_s));
  }
  if (event_budget != kDefaultEventBudget) {
    out.set("event_budget", Json::number(event_budget));
  }
  if (telemetry) {
    out.set("telemetry", Json::boolean(true));
  }
  if (!sims.empty()) {
    Json list = Json::array();
    for (const fleet::SimKind sim : sims) {
      list.push(Json::string(fleet::sim_kind_name(sim)));
    }
    out.set("sims", std::move(list));
  }
  if (!checks.empty()) {
    Json list = Json::array();
    for (const Check check : checks) {
      list.push(Json::string(check_name(check)));
    }
    out.set("checks", std::move(list));
  }
  Json group_list = Json::array();
  for (const fleet::DeviceGroup& group : groups) {
    group_list.push(group_to_json(group));
  }
  out.set("groups", std::move(group_list));
  return out;
}

std::string Scenario::describe() const { return to_json().write(); }

std::size_t Scenario::schema_fields() const {
  return count_leaves(to_json());
}

Scenario Scenario::from_json(const Json& doc) {
  if (!doc.is_object()) {
    scenario_error("top-level value must be an object, got " +
                   std::string(doc.kind_name()));
  }
  Scenario scenario;
  bool versioned = false;
  bool named = false;
  bool grouped = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "version") {
      if (value.as_u64() != kVersion) {
        scenario_error("unsupported version " + value.literal());
      }
      versioned = true;
    } else if (key == "name") {
      scenario.name = value.as_string();
      named = true;
    } else if (key == "seed") {
      scenario.seed = value.as_u64();
    } else if (key == "inferences") {
      scenario.inferences = value.as_size();
    } else if (key == "batch") {
      scenario.batch = value.as_size();
    } else if (key == "deadline_s") {
      scenario.deadline_s = value.as_double();
    } else if (key == "event_budget") {
      scenario.event_budget = value.as_u64();
    } else if (key == "telemetry") {
      scenario.telemetry = value.as_bool();
    } else if (key == "sims") {
      for (const Json& item : value.items()) {
        scenario.sims.push_back(parse_sim(item.as_string()));
      }
    } else if (key == "checks") {
      for (const Json& item : value.items()) {
        scenario.checks.push_back(parse_check(item.as_string()));
      }
    } else if (key == "groups") {
      for (const Json& item : value.items()) {
        scenario.groups.push_back(group_from_json(item));
      }
      grouped = true;
    } else {
      scenario_error("unknown field \"" + key + "\"");
    }
  }
  if (!versioned) {
    scenario_error("missing required field \"version\"");
  }
  if (!named) {
    scenario_error("missing required field \"name\"");
  }
  if (!grouped) {
    scenario_error("missing required field \"groups\"");
  }
  scenario.validate();
  return scenario;
}

Scenario Scenario::parse(const std::string& text) {
  return from_json(Json::parse(text));
}

Scenario Scenario::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("scenario: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

namespace {

/// Specs need unique group names just like scenarios: gateways aggregate
/// per group name, and rescale_strict's dropped-group diagnostic matches
/// by name.
void require_unique_group_names(const fleet::FleetSpec& spec) {
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.groups[j].name == spec.groups[i].name) {
        throw std::invalid_argument("fleet spec: duplicate group name '" +
                                    spec.groups[i].name + "'");
      }
    }
  }
}

}  // namespace

void validate_fleet(const fleet::FleetSpec& spec) {
  if (spec.groups.empty()) {
    throw std::invalid_argument("fleet spec: no group: lines");
  }
  require_unique_group_names(spec);
  if (spec.inferences == 0) {
    throw std::invalid_argument("fleet spec: inferences must be >= 1");
  }
  if (spec.batch == 0) {
    throw std::invalid_argument("fleet spec: batch must be >= 1");
  }
  if (spec.event_budget == 0) {
    throw std::invalid_argument("fleet spec: event_budget must be >= 1");
  }
  if (!std::isfinite(spec.deadline_s) || spec.deadline_s < 0.0) {
    throw std::invalid_argument(
        "fleet spec: deadline_s must be finite and >= 0");
  }
  for (const fleet::DeviceGroup& group : spec.groups) {
    if (group.name.empty()) {
      throw std::invalid_argument("fleet spec: group line needs a name");
    }
    if (group.count == 0) {
      throw std::invalid_argument("fleet spec: group '" + group.name +
                                  "' has count=0");
    }
    if (group.write_ber < 0.0 || group.write_ber > 1.0 ||
        group.read_ber < 0.0 || group.read_ber > 1.0 ||
        !std::isfinite(group.write_ber) || !std::isfinite(group.read_ber)) {
      throw std::invalid_argument("fleet spec: group '" + group.name +
                                  "' bit-error rates must be in [0, 1]");
    }
    group.power.validate();
    validate_schedule(group.schedule,
                      "fleet spec: group '" + group.name + "'");
    if (group.backend.kind == engine::BackendKind::kFunctional) {
      if (group.power.kind != fleet::PowerProfile::Kind::kContinuous) {
        throw std::invalid_argument(
            "fleet spec: group '" + group.name +
            "' backend=functional requires supply=continuous (no power "
            "model)");
      }
      if (group.schedule.mode != fault::ScheduleMode::kNone) {
        throw std::invalid_argument(
            "fleet spec: group '" + group.name +
            "' backend=functional cannot take an outage schedule");
      }
    }
  }
}

fleet::FleetSpec rescale_strict(const fleet::FleetSpec& spec,
                                std::size_t devices) {
  // Checked here too (fleet_run rescales before validate_fleet): with
  // duplicate names the dropped-group walk below could blame the wrong
  // group.
  require_unique_group_names(spec);
  const fleet::FleetSpec scaled = spec.with_devices(devices);
  if (scaled.groups.size() != spec.groups.size()) {
    // with_devices preserves group order, so the dropped names are the
    // ones missing from the scaled walk.
    std::string dropped;
    std::size_t kept = 0;
    for (const fleet::DeviceGroup& group : spec.groups) {
      if (kept < scaled.groups.size() &&
          scaled.groups[kept].name == group.name) {
        ++kept;
        continue;
      }
      if (!dropped.empty()) {
        dropped += ", ";
      }
      dropped += "'" + group.name + "'";
    }
    throw std::invalid_argument(
        "fleet spec: rescaling to " + std::to_string(devices) +
        " devices would drop group(s) " + dropped +
        " — raise the device count or remove the group");
  }
  return scaled;
}

}  // namespace iprune::scenario
