#pragma once
// Scenario: a versioned, declarative description of one end-to-end
// intermittent-computing experiment, built for the differential oracles.
//
// One JSON document composes everything the simulator can vary — harvest
// profile, forced-outage/torn-write schedule, NVM corruption rates,
// integrity-layer policy, workload mix, and fleet composition — plus the
// list of checks the runner should hold the simulation to. The schema is
// strict both ways:
//
//   * parse() rejects unknown fields, wrong types, and out-of-range
//     values with exact, pinned error messages ("scenario: ..."), and
//   * describe() emits the canonical form — default-valued fields are
//     omitted, keys appear in a fixed order — so parse(describe(x)) == x
//     byte-for-byte and a ddmin-shrunk repro is as small as its schema.
//
// Leaf values reuse the fleet/fault text DSLs (supply "rf:0.01:0.5:0.2",
// schedule "every:50;max=3", mode "immediate"), so every repro token
// printed by fault_check is pasteable into a scenario and vice versa.
// docs/scenarios.md is the schema reference.

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "scenario/json.hpp"

namespace iprune::scenario {

/// One invariant the scenario runner asserts over the simulation.
enum class Check : std::uint8_t {
  kSimDigest,        // stepping/scheduler/batched fleet digests agree
  kLaneDeterminism,  // 1-lane and multi-lane digests agree
  kConsistency,      // ConsistencyChecker passes each group's schedule
  kIntegrity,        // IntegrityChecker: no silent escape / crash
};

/// "sim_digest" | "lane_determinism" | "consistency" | "integrity".
const char* check_name(Check check);
/// Inverse of check_name; throws std::invalid_argument
/// ("scenario: unknown check \"<name>\"").
Check parse_check(const std::string& name);

struct Scenario {
  /// Schema version every document must carry (the only accepted value).
  static constexpr std::uint64_t kVersion = 1;
  static constexpr std::uint64_t kDefaultEventBudget = 1ull << 23;

  std::string name;
  std::uint64_t seed = 2026;
  std::size_t inferences = 1;
  std::size_t batch = 256;
  double deadline_s = 0.0;
  std::uint64_t event_budget = kDefaultEventBudget;
  bool telemetry = false;
  /// Simulation strategies to run and cross-check; empty = all three.
  std::vector<fleet::SimKind> sims;
  /// Checks to assert; empty = auto-derived from the fleet composition
  /// (see effective_checks()).
  std::vector<Check> checks;
  std::vector<fleet::DeviceGroup> groups;

  /// `sims` with the empty-means-all default applied (stepping first: it
  /// is the oracle and the reference digest).
  [[nodiscard]] std::vector<fleet::SimKind> effective_sims() const;

  /// `checks` with the empty-means-auto default applied: sim_digest and
  /// lane_determinism always; consistency when some group forces clean
  /// (drop-all) outages in an intermittent-safe mode without corruption;
  /// integrity when some group injects corruption or torn writes and has
  /// not opted out of the integrity layer.
  [[nodiscard]] std::vector<Check> effective_checks() const;

  [[nodiscard]] std::size_t total_devices() const;

  /// The FleetSpec this scenario describes, under one sim strategy.
  [[nodiscard]] fleet::FleetSpec to_fleet(fleet::SimKind sim) const;

  /// Range-check every field; throws std::invalid_argument with a
  /// "scenario: ..." (or, for supply leaves, "fleet spec: supply ...")
  /// message naming the offending field. parse() always validates.
  void validate() const;

  /// Canonical JSON document: fixed key order, default-valued fields
  /// omitted (version, name, and groups always present).
  [[nodiscard]] Json to_json() const;
  /// to_json().write() — the canonical text form; parse(describe()) == *this.
  [[nodiscard]] std::string describe() const;
  /// Number of scalar leaves in the canonical document — the "schema
  /// fields" a shrunk repro is measured in.
  [[nodiscard]] std::size_t schema_fields() const;

  static Scenario from_json(const Json& doc);
  static Scenario parse(const std::string& text);
  static Scenario load(const std::string& path);

  bool operator==(const Scenario& other) const = default;
};

/// True when `group` forces clean (drop-all) power outages in an
/// intermittent-safe mode with no corruption — the ConsistencyChecker's
/// domain (bit-identical logits despite every outage).
[[nodiscard]] bool forces_clean_outages(const fleet::DeviceGroup& group);

/// True when `group` injects pure torn-write corruption (no bit errors)
/// with the integrity layer forced on — the IntegrityChecker's
/// containment domain. Bit-error groups are excluded: unconfined flips
/// can land in activation bytes the layer does not CRC and go silent by
/// design, so BER coverage comes from the digest checks instead. Torn-only
/// groups need integrity=on because kAuto arms only on bit errors.
[[nodiscard]] bool injects_protected_corruption(
    const fleet::DeviceGroup& group);

/// Strict FleetSpec range validation — the checks FleetSpec::parse
/// performs, applied to a spec however it was built (CLI flags mutate
/// parsed specs, which used to bypass them). Throws std::invalid_argument
/// with the same "fleet spec: ..." messages as parse().
void validate_fleet(const fleet::FleetSpec& spec);

/// FleetSpec::with_devices that refuses to silently drop groups: when
/// rescaling to `devices` would apportion zero devices to some group, the
/// error names every dropped group instead of returning a smaller fleet.
[[nodiscard]] fleet::FleetSpec rescale_strict(const fleet::FleetSpec& spec,
                                              std::size_t devices);

}  // namespace iprune::scenario
