#pragma once
// Little-endian byte (de)serialization for the search-state journal and
// the evaluation-cache vault. Deliberately tiny: fixed-width integers,
// doubles by bit pattern, and length-prefixed strings/vectors — enough to
// round-trip checkpoints byte-exactly across platforms.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace iprune::search {

class ByteWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  /// Doubles travel as their IEEE-754 bit pattern: restoring a checkpoint
  /// must reproduce the exact value, not a close decimal.
  void f64(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }

  void str(const std::string& value) {
    u64(value.size());
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }

  void f64_vec(const std::vector<double>& values) {
    u64(values.size());
    for (const double v : values) {
      f64(v);
    }
  }

  void u64_vec(const std::vector<std::uint64_t>& values) {
    u64(values.size());
    for (const std::uint64_t v : values) {
      u64(v);
    }
  }

  /// Raw bytes, no length prefix (caller frames them).
  void bytes_append(const std::vector<std::uint8_t>& raw) {
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Throws std::runtime_error("search codec: ...") on truncated or
/// oversized input — the journal loader treats that like a bad CRC.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
      value = (value << 8) | p[i];
    }
    return value;
  }

  std::uint64_t u64() {
    const std::uint8_t* p = take(8);
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) | p[i];
    }
    return value;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string str() {
    const std::uint64_t count = length(1);
    const std::uint8_t* p = take(count);
    return {reinterpret_cast<const char*>(p), count};
  }

  std::vector<double> f64_vec() {
    const std::uint64_t count = length(8);
    std::vector<double> values(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      values[i] = f64();
    }
    return values;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t count = length(8);
    std::vector<std::uint64_t> values(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      values[i] = u64();
    }
    return values;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t count) {
    if (count > size_ - pos_) {
      throw std::runtime_error("search codec: truncated input");
    }
    const std::uint8_t* p = data_ + pos_;
    pos_ += count;
    return p;
  }

  /// Length prefix sanity-checked against the bytes actually left, so a
  /// corrupted count fails cleanly instead of allocating gigabytes.
  std::uint64_t length(std::size_t element_bytes) {
    const std::uint64_t count = u64();
    if (element_bytes != 0 && count > remaining() / element_bytes) {
      throw std::runtime_error("search codec: implausible length");
    }
    return count;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace iprune::search
