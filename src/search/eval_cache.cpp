#include "search/eval_cache.hpp"

#include "search/vault.hpp"

namespace iprune::search {

EvalCache::EvalCache(CacheVault* vault) : vault_(vault) {
  if (vault_ != nullptr) {
    for (const VaultRecord& record : vault_->records()) {
      entries_.insert_or_assign(record.key, record.value);
    }
  }
}

std::optional<EvalValue> EvalCache::lookup(const EvalKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void EvalCache::insert(const EvalKey& key, const EvalValue& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, value);
  if (!inserted) {
    return;  // racing duplicate: keep the first result (they are identical)
  }
  ++stats_.inserts;
  if (vault_ != nullptr) {
    vault_->append(key, value);
  }
}

CacheStats EvalCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EvalCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace iprune::search
