#pragma once
// Content-addressed evaluation cache (docs/search_cache.md).
//
// Maps EvalKey -> EvalValue: the complete, deterministic outcome of one
// candidate evaluation (accuracy, loss, intermittent latency/energy, a
// logits checksum, and auxiliary counters). Because every evaluation in
// this codebase is a pure function of (graph, masks, config, dataset,
// per-candidate seed material folded into the key), a hit can substitute
// for re-running training + the intermittent engine — which is what makes
// crash-resume cheap: the restarted process replays the search loop but
// answers almost every evaluation from the vault.
//
// Thread safety: lookup/insert take a mutex; the cache is shared by the
// parallel_map lanes of the arch-search generation loop.

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "search/eval_key.hpp"

namespace iprune::search {

class CacheVault;

/// Fixed-layout cached result. `flags` bit 0 marks an infeasible
/// candidate (VM overflow etc.) whose numeric fields are zero; aux0/aux1
/// carry evaluation-specific counters (e.g. accelerator output count,
/// surviving parameter count).
struct EvalValue {
  double accuracy = 0.0;
  double loss = 0.0;
  double latency_us = 0.0;
  double energy_j = 0.0;
  std::uint64_t aux0 = 0;
  std::uint64_t aux1 = 0;
  std::uint64_t checksum = 0;
  std::uint64_t flags = 0;

  static constexpr std::uint64_t kInfeasible = 1ull << 0;

  [[nodiscard]] bool infeasible() const { return (flags & kInfeasible) != 0; }

  bool operator==(const EvalValue& other) const = default;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  /// Fraction of lookups served from memory; 0 when nothing was looked up.
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class EvalCache {
 public:
  /// In-memory only.
  EvalCache() = default;
  /// Write-through: inserts append to `vault` (not owned; must outlive the
  /// cache), and the vault's scrubbed records are preloaded.
  explicit EvalCache(CacheVault* vault);

  /// Counts a hit or a miss.
  [[nodiscard]] std::optional<EvalValue> lookup(const EvalKey& key);

  /// Insert (first writer wins on a racing duplicate) and write through to
  /// the vault if attached.
  void insert(const EvalKey& key, const EvalValue& value);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<EvalKey, EvalValue, EvalKeyHash> entries_;
  CacheStats stats_;
  CacheVault* vault_ = nullptr;
};

}  // namespace iprune::search
