#include "search/eval_key.hpp"

#include <cstdio>
#include <cstring>

#include "device/config.hpp"
#include "engine/backend.hpp"
#include "util/hash.hpp"

namespace iprune::search {

std::string EvalKey::hex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

void KeyHasher::bytes(const void* data, std::size_t count) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < count; ++i) {
    hi_ ^= p[i];
    hi_ *= 0x100000001b3ull;
    // Second stream: same bytes, distinct basis, salted with the running
    // byte position so streams cannot collapse onto each other.
    lo_ ^= static_cast<std::uint64_t>(p[i]) ^ (salt_ & 0xFF);
    lo_ *= 0x100000001b3ull;
    ++salt_;
  }
}

void KeyHasher::u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  bytes(buf, sizeof(buf));
}

void KeyHasher::f64(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void KeyHasher::str(const std::string& value) {
  u64(value.size());
  bytes(value.data(), value.size());
}

void KeyHasher::tensor(const nn::Tensor& tensor) {
  u64(tensor.rank());
  for (std::size_t d = 0; d < tensor.rank(); ++d) {
    u64(tensor.dim(d));
  }
  bytes(tensor.data(), tensor.numel() * sizeof(float));
}

void fold_graph(KeyHasher& hasher, nn::Graph& graph) {
  hasher.str("graph/1");
  const nn::Shape& in = graph.input_shape();
  hasher.u64(in.size());
  for (const std::size_t d : in) {
    hasher.u64(d);
  }
  hasher.u64(graph.node_count());
  hasher.u64(graph.output());
  for (nn::NodeId node = 1; node < graph.node_count(); ++node) {
    const nn::Layer& layer = graph.layer(node);
    hasher.u8(static_cast<std::uint8_t>(layer.kind()));
    hasher.str(layer.name());
    const std::vector<nn::NodeId>& inputs = graph.node_inputs(node);
    hasher.u64(inputs.size());
    for (const nn::NodeId input : inputs) {
      hasher.u64(input);
    }
    const nn::Shape& shape = graph.node_shape(node);
    hasher.u64(shape.size());
    for (const std::size_t d : shape) {
      hasher.u64(d);
    }
  }
  // Parameters and masks, in graph.params() order (node order). A pruned
  // weight is zero AND masked, so folding both distinguishes "weight
  // happens to be zero" from "weight pruned".
  for (const nn::ParamRef& param : graph.params()) {
    hasher.tensor(*param.value);
    if (param.mask != nullptr) {
      hasher.u8(1);
      hasher.tensor(*param.mask);
    } else {
      hasher.u8(0);
    }
  }
}

void fold_engine_config(KeyHasher& hasher, const engine::EngineConfig& config,
                        const device::MemoryConfig& memory) {
  hasher.str("engine/1");
  hasher.u8(static_cast<std::uint8_t>(config.mode));
  hasher.u8(config.integrity.protect_progress ? 1 : 0);
  hasher.u8(config.integrity.seal_regions ? 1 : 0);
  hasher.u8(config.integrity.scrub_on_boot ? 1 : 0);
  hasher.u64(config.max_k_per_op);
  hasher.u64(config.block_rows);
  hasher.u64(config.max_cols_per_tile);
  hasher.u64(config.psum_bytes);
  hasher.u64(config.counter_bytes);
  hasher.u64(config.vm_reserve_bytes);
  hasher.u64(config.cpu_cycles_per_job);
  hasher.u64(config.copy_chunk_bytes);
  hasher.u8(config.fold_relu ? 1 : 0);
  hasher.u64(memory.vm_bytes);
  hasher.u64(memory.nvm_bytes);
}

void fold_backend(KeyHasher& hasher, const engine::BackendConfig& backend) {
  hasher.str("backend/1");
  hasher.u8(static_cast<std::uint8_t>(backend.kind));
  hasher.str(backend.preset);
  const device::DeviceConfig& d = backend.device;
  hasher.u64(d.memory.vm_bytes);
  hasher.u64(d.memory.nvm_bytes);
  hasher.f64(d.dma.invocation_us);
  hasher.f64(d.dma.read_us_per_byte);
  hasher.f64(d.dma.write_us_per_byte);
  hasher.f64(d.lea.mac_us);
  hasher.f64(d.lea.invoke_us);
  hasher.f64(d.cpu.cycle_us);
  hasher.f64(d.rails.base_active_w);
  hasher.f64(d.rails.lea_active_w);
  hasher.f64(d.rails.nvm_read_w);
  hasher.f64(d.rails.nvm_write_w);
  hasher.f64(d.rails.cpu_active_w);
  hasher.f64(d.reboot_us);
}

std::uint64_t dataset_fingerprint(const nn::Tensor& inputs,
                                  std::span<const int> labels) {
  util::Fnv1a fnv;
  fnv.fold_u64(inputs.rank());
  for (std::size_t d = 0; d < inputs.rank(); ++d) {
    fnv.fold_u64(inputs.dim(d));
  }
  fnv.fold(inputs.data(), inputs.numel() * sizeof(float));
  fnv.fold_u64(labels.size());
  for (const int label : labels) {
    fnv.fold_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(label)));
  }
  return fnv.value();
}

}  // namespace iprune::search
