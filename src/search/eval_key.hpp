#pragma once
// Content-addressed evaluation keys (docs/search_cache.md).
//
// The prune–retrain loop and the architecture search evaluate
// near-identical configurations thousands of times; the evaluation cache
// keys each result by WHAT was evaluated, not when: a 128-bit FNV-1a
// fingerprint folded over
//
//   * the graph structure (layer kinds, names, wiring, shapes),
//   * every parameter tensor and pruning mask (raw float bytes),
//   * the engine/memory configuration that prices the evaluation, and
//   * the dataset identity (shape + label + sample bytes, folded once per
//     search and reused as a 64-bit fingerprint).
//
// Two independent 64-bit FNV-1a streams (distinct offset bases, the
// second stream folds a per-byte position salt) make accidental collisions
// across a multi-month search campaign implausible; this is a cache key,
// not a cryptographic commitment.

#include <cstdint>
#include <span>
#include <string>

#include "engine/config.hpp"
#include "nn/graph.hpp"
#include "nn/tensor.hpp"

namespace iprune::device {
struct MemoryConfig;
}

namespace iprune::engine {
struct BackendConfig;
}

namespace iprune::search {

struct EvalKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const EvalKey& other) const = default;

  /// 32 hex digits, hi then lo (stable across platforms).
  [[nodiscard]] std::string hex() const;
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& key) const noexcept {
    // hi and lo are already well-mixed FNV words.
    return static_cast<std::size_t>(key.hi ^ (key.lo * 0x9E3779B97F4A7C15ull));
  }
};

/// Incremental 128-bit fingerprint builder. Fold order matters (the key
/// is a running hash), so callers fold fields in a fixed documented order.
class KeyHasher {
 public:
  void bytes(const void* data, std::size_t count);
  void u8(std::uint8_t value) { bytes(&value, 1); }
  void u64(std::uint64_t value);
  void f64(double value);
  void str(const std::string& value);
  /// Shape then raw float contents.
  void tensor(const nn::Tensor& tensor);

  [[nodiscard]] EvalKey key() const { return {hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  std::uint64_t lo_ = 0x6c62272e07bb0142ull;  // FNV-1a 128 basis (high word)
  std::uint64_t salt_ = 0;
};

/// Fold a model: structure (node kinds, names, wiring, per-node shapes,
/// output id) plus every trainable parameter and its mask. Takes the graph
/// non-const because Layer::params() is a mutable accessor; nothing is
/// modified.
void fold_graph(KeyHasher& hasher, nn::Graph& graph);

/// Fold every field of the engine configuration (and the memory split,
/// which changes tile plans and therefore latency/energy).
void fold_engine_config(KeyHasher& hasher, const engine::EngineConfig& config,
                        const device::MemoryConfig& memory);

/// Fold the backend identity: kind, preset name, and the full device cost
/// table (memory split, DMA/LEA/CPU latencies, power rails, reboot cost).
/// Two backends — even two presets of the same kind — can therefore never
/// alias a cache entry: any constant that changes pricing changes the key.
void fold_backend(KeyHasher& hasher, const engine::BackendConfig& backend);

/// One-shot 64-bit fingerprint of a dataset (inputs shape + bytes +
/// labels). Computed once per search and folded into each key as u64 —
/// hashing megabytes of samples per evaluation would dominate cache cost.
std::uint64_t dataset_fingerprint(const nn::Tensor& inputs,
                                  std::span<const int> labels);

}  // namespace iprune::search
