#include "search/run.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/criterion.hpp"
#include "core/ratio_search.hpp"
#include "core/sensitivity.hpp"
#include "data/dataset.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "search/codec.hpp"
#include "search/eval_key.hpp"
#include "search/vault.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace iprune::search {
namespace {

// ---------------------------------------------------------------------------
// Built-in workload: a width-parameterized Dense family over a 2-class
// synthetic dataset (the arch-search test fixture's shape, seeded from the
// run config so different seeds are genuinely different searches).

data::Dataset make_dataset(util::Rng& rng, std::size_t count) {
  data::Dataset d;
  d.num_classes = 2;
  d.inputs = nn::Tensor({count, 4});
  d.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool cls = rng.bernoulli(0.5);
    for (std::size_t k = 0; k < 4; ++k) {
      d.inputs.at(i, k) = static_cast<float>(
          (cls ? 1.0 : -1.0) * (k < 2 ? 1.0 : 0.1) + rng.normal(0, 0.3));
    }
    d.labels[i] = cls ? 1 : 0;
  }
  return d;
}

nn::Graph build_family(const std::vector<std::size_t>& widths,
                       util::Rng& rng) {
  nn::Graph g({4});
  const auto h = g.add(
      std::make_unique<nn::Dense>("h", 4, widths.at(0), rng), {g.input()});
  const auto r = g.add(std::make_unique<nn::Relu>("r"), {h});
  const auto o = g.add(
      std::make_unique<nn::Dense>("o", widths.at(0), 2, rng), {r});
  g.set_output(o);
  return g;
}

// ---------------------------------------------------------------------------
// Checkpoint serialization (search/codec.hpp). Every journal payload
// starts with the run's config fingerprint so a journal written by a
// different seed / schedule is ignored, never mis-applied.

void write_rng(ByteWriter& w, const util::RngState& rng) {
  for (const std::uint64_t word : rng.words) {
    w.u64(word);
  }
  w.f64(rng.cached_normal);
  w.u8(rng.has_cached_normal ? 1 : 0);
}

util::RngState read_rng(ByteReader& r) {
  util::RngState rng;
  for (std::uint64_t& word : rng.words) {
    word = r.u64();
  }
  rng.cached_normal = r.f64();
  rng.has_cached_normal = r.u8() != 0;
  return rng;
}

std::vector<std::uint8_t> encode_anneal(const EvalKey& fp,
                                        const core::AnnealCheckpoint& snap) {
  ByteWriter w;
  w.u64(fp.hi);
  w.u64(fp.lo);
  w.u64(snap.step);
  w.f64(snap.temperature);
  w.f64_vec(snap.current);
  w.f64(snap.current_energy);
  w.f64_vec(snap.best);
  w.f64(snap.best_energy);
  write_rng(w, snap.rng);
  return w.bytes();
}

std::optional<core::AnnealCheckpoint> decode_anneal(
    const EvalKey& fp, const std::vector<std::uint8_t>& payload) {
  try {
    ByteReader r(payload);
    if (r.u64() != fp.hi || r.u64() != fp.lo) {
      return std::nullopt;  // journal from a different run configuration
    }
    core::AnnealCheckpoint snap;
    snap.step = r.u64();
    snap.temperature = r.f64();
    snap.current = r.f64_vec();
    snap.current_energy = r.f64();
    snap.best = r.f64_vec();
    snap.best_energy = r.f64();
    snap.rng = read_rng(r);
    return snap;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_arch(const EvalKey& fp,
                                      const core::ArchSearchCheckpoint& snap) {
  ByteWriter w;
  w.u64(fp.hi);
  w.u64(fp.lo);
  w.u64(snap.next_evaluation);
  write_rng(w, snap.rng);
  w.u64(snap.archive.size());
  for (const core::ArchCandidate& c : snap.archive) {
    std::vector<std::uint64_t> widths(c.widths.begin(), c.widths.end());
    w.u64_vec(widths);
    w.f64(c.accuracy);
    w.u64(c.acc_outputs);
    w.u64(c.parameters);
  }
  w.u64(snap.evaluated);
  w.u64(snap.infeasible);
  return w.bytes();
}

std::optional<core::ArchSearchCheckpoint> decode_arch(
    const EvalKey& fp, const std::vector<std::uint8_t>& payload) {
  try {
    ByteReader r(payload);
    if (r.u64() != fp.hi || r.u64() != fp.lo) {
      return std::nullopt;
    }
    core::ArchSearchCheckpoint snap;
    snap.next_evaluation = r.u64();
    snap.rng = read_rng(r);
    const std::uint64_t count = r.u64();
    snap.archive.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      core::ArchCandidate c;
      for (const std::uint64_t width : r.u64_vec()) {
        c.widths.push_back(static_cast<std::size_t>(width));
      }
      c.accuracy = r.f64();
      c.acc_outputs = static_cast<std::size_t>(r.u64());
      c.parameters = static_cast<std::size_t>(r.u64());
      snap.archive.push_back(std::move(c));
    }
    snap.evaluated = r.u64();
    snap.infeasible = r.u64();
    return snap;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// EvalValue packing for arch verdicts: bit 0 = infeasible, bit 1 = has a
// candidate; accuracy + aux counters carry the candidate's objectives.

constexpr std::uint64_t kHasCandidate = 1ull << 1;

EvalValue pack_verdict(const core::ArchVerdict& verdict,
                       const std::vector<std::size_t>& widths) {
  EvalValue value;
  if (verdict.infeasible) {
    value.flags |= EvalValue::kInfeasible;
  }
  if (verdict.candidate.has_value()) {
    value.flags |= kHasCandidate;
    value.accuracy = verdict.candidate->accuracy;
    value.aux0 = verdict.candidate->acc_outputs;
    value.aux1 = verdict.candidate->parameters;
  }
  util::Fnv1a fnv;
  for (const std::size_t width : widths) {
    fnv.fold_u64(width);
  }
  value.checksum = fnv.value();
  return value;
}

core::ArchVerdict unpack_verdict(const EvalValue& value,
                                 const std::vector<std::size_t>& widths) {
  core::ArchVerdict verdict;
  verdict.infeasible = value.infeasible();
  if ((value.flags & kHasCandidate) != 0) {
    core::ArchCandidate candidate;
    candidate.widths = widths;
    candidate.accuracy = value.accuracy;
    candidate.acc_outputs = static_cast<std::size_t>(value.aux0);
    candidate.parameters = static_cast<std::size_t>(value.aux1);
    verdict.candidate = std::move(candidate);
  }
  return verdict;
}

std::uint64_t fold_f64_bits(util::Fnv1a& fnv, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  fnv.fold_u64(bits);
  return bits;
}

}  // namespace

RunReport run_search(const RunConfig& config) {
  namespace fs = std::filesystem;
  RunReport report;
  runtime::ThreadPool& pool = runtime::ThreadPool::resolve(config.pool);

  const engine::EngineConfig engine_cfg;
  const device::DeviceConfig& device = config.backend.device;

  nn::TrainConfig proxy;
  proxy.epochs = 3;
  proxy.batch_size = 32;

  core::SensitivityConfig sens_cfg;

  // Deterministic workload streams, all derived from the run seed.
  util::Rng data_rng(config.seed ^ 0xDA7A);
  const data::Dataset train = make_dataset(data_rng, 200);
  const data::Dataset val = make_dataset(data_rng, 100);
  const std::uint64_t dataset_fp = dataset_fingerprint(train.inputs,
                                                       train.labels);

  // Config fingerprint: binds journals and cache keys to this exact run
  // recipe. Every knob that changes any stage's trajectory is folded.
  EvalKey config_fp;
  {
    KeyHasher h;
    h.str("run/1");
    h.u64(config.seed);
    h.u64(config.evaluations);
    h.u64(config.initial_random);
    h.u64(config.batch_size);
    h.u64(config.anneal_iterations);
    h.u64(dataset_fp);
    h.u64(proxy.epochs);
    h.u64(proxy.batch_size);
    h.f64(proxy.sgd.learning_rate);
    h.f64(proxy.sgd.momentum);
    h.f64(proxy.sgd.weight_decay);
    h.u64(proxy.shuffle_seed);
    h.f64(proxy.lr_decay);
    h.f64(proxy.clip_grad_norm);
    h.f64(sens_cfg.probe_ratio);
    h.u8(static_cast<std::uint8_t>(sens_cfg.granularity));
    h.u64(sens_cfg.max_samples);
    fold_engine_config(h, engine_cfg, device.memory);
    fold_backend(h, config.backend);
    config_fp = h.key();
  }

  // Persistent state. A fresh (non-resume) run clears any leftover state
  // so it can never silently continue a previous run.
  CacheVault vault;
  std::unique_ptr<SnapshotSlots> anneal_slots;
  std::unique_ptr<SnapshotSlots> arch_slots;
  std::unique_ptr<EvalCache> cache;
  if (!config.state_dir.empty()) {
    fs::create_directories(config.state_dir);
    anneal_slots = std::make_unique<SnapshotSlots>(
        (fs::path(config.state_dir) / "anneal").string());
    arch_slots = std::make_unique<SnapshotSlots>(
        (fs::path(config.state_dir) / "arch").string());
    const std::string vault_path =
        (fs::path(config.state_dir) / "eval_cache.bin").string();
    if (!config.resume) {
      std::error_code ec;
      fs::remove(vault_path, ec);
      for (int slot = 0; slot < 2; ++slot) {
        fs::remove(anneal_slots->slot_path(slot), ec);
        fs::remove(arch_slots->slot_path(slot), ec);
      }
    }
    const VaultScrub scrub = vault.open(vault_path);
    report.vault_records = scrub.records;
    if (scrub.dropped_bytes > 0) {
      util::log_info("search vault: scrub dropped " +
                     std::to_string(scrub.dropped_bytes) + " bytes, kept " +
                     std::to_string(scrub.records) + " records");
    }
    cache = std::make_unique<EvalCache>(&vault);
  } else {
    cache = std::make_unique<EvalCache>();
  }

  const runtime::RetryPolicy retry = runtime::RetryPolicy::transient_default();

  // -------------------------------------------------------------------------
  // Stage 1 — base model + per-layer sensitivity, probes cached.
  util::Rng init_rng(config.seed ^ 0xBA5E);
  nn::Graph base = build_family({12}, init_rng);
  {
    nn::Trainer trainer(base);
    trainer.train(train.inputs, train.labels, proxy);
  }
  std::vector<engine::PrunableLayer> layers =
      engine::prunable_layers(base, engine_cfg, device.memory);

  KeyHasher sens_base;
  sens_base.str("sens/1");
  sens_base.u64(config_fp.hi);
  sens_base.u64(config_fp.lo);
  fold_graph(sens_base, base);

  const double baseline =
      nn::evaluate_graph(base, val.inputs, val.labels).accuracy;
  report.sensitivities = runtime::parallel_map(
      pool, layers.size(),
      [&](std::size_t i) {
        KeyHasher h = sens_base;
        h.u64(i);
        const EvalKey key = h.key();
        if (const std::optional<EvalValue> hit = cache->lookup(key)) {
          return hit->accuracy;
        }
        nn::Graph probe_graph = base.clone();
        engine::PrunableLayer probe_layer =
            engine::rebind_prunable(layers[i], probe_graph);
        const double drop = core::probe_layer_sensitivity(
            probe_graph, probe_layer, val.inputs, val.labels, baseline,
            sens_cfg);
        EvalValue value;
        value.accuracy = drop;
        value.aux0 = i;
        cache->insert(key, value);
        return drop;
      },
      retry);

  // -------------------------------------------------------------------------
  // Stage 2 — annealed ratio allocation, journaled every stride steps. The
  // annealer has no cache to answer from, so resume restores the exact
  // chain state (including the RNG stream position) from the journal.
  std::vector<core::LayerStats> stats =
      core::collect_layer_stats(layers, device);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats[i].sensitivity = report.sensitivities[i];
  }

  core::AnnealHooks anneal_hooks;
  std::uint64_t anneal_seq = 0;
  if (anneal_slots != nullptr) {
    if (config.resume) {
      if (const auto snapshot = anneal_slots->load()) {
        if (auto snap = decode_anneal(config_fp, snapshot->payload)) {
          anneal_hooks.resume = std::move(*snap);
          anneal_seq = snapshot->seq + 1;
          report.resumed_anneal = true;
        }
      }
    }
    anneal_hooks.checkpoint_stride = config.anneal_checkpoint_stride;
    anneal_hooks.on_checkpoint = [&](const core::AnnealCheckpoint& snap) {
      anneal_slots->store(anneal_seq++, encode_anneal(config_fp, snap));
    };
  }

  core::AnnealingConfig anneal_cfg;
  anneal_cfg.iterations = config.anneal_iterations;
  anneal_cfg.restarts = 1;
  anneal_cfg.hooks = anneal_slots != nullptr ? &anneal_hooks : nullptr;
  const core::IPruneAllocator allocator(anneal_cfg);
  const double gamma = allocator.overall_ratio(stats, 0.5);
  util::Rng anneal_rng(config.seed ^ 0xA11EA1);
  report.ratios = allocator.allocate(stats, gamma, anneal_rng);

  // -------------------------------------------------------------------------
  // Stage 3 — architecture search. Candidate evaluations are pure
  // functions of (widths, run recipe), so the search REPLAYS its full
  // trajectory on resume and the vault answers every evaluation the
  // previous leg completed — that replay is what yields the >50% hit rate
  // after a mid-run kill. The generation journal is used as a divergence
  // check: when the replay crosses the journaled boundary, its state must
  // match the journal bit-for-bit.
  KeyHasher arch_base;
  arch_base.str("arch/1");
  arch_base.u64(config_fp.hi);
  arch_base.u64(config_fp.lo);

  std::optional<core::ArchSearchCheckpoint> journal_arch;
  if (arch_slots != nullptr && config.resume) {
    if (const auto snapshot = arch_slots->load()) {
      journal_arch = decode_arch(config_fp, snapshot->payload);
      report.resumed_arch = journal_arch.has_value();
    }
  }

  core::ArchSearchHooks arch_hooks;
  arch_hooks.intercept =
      [&](const std::vector<std::size_t>& widths,
          const std::function<core::ArchVerdict()>& evaluate)
      -> core::ArchVerdict {
    KeyHasher h = arch_base;
    h.u64(widths.size());
    for (const std::size_t width : widths) {
      h.u64(width);
    }
    const EvalKey key = h.key();
    if (const std::optional<EvalValue> hit = cache->lookup(key)) {
      return unpack_verdict(*hit, widths);
    }
    if (config.eval_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.eval_delay_ms));
    }
    const core::ArchVerdict verdict = evaluate();
    cache->insert(key, pack_verdict(verdict, widths));
    return verdict;
  };
  std::uint64_t arch_seq =
      journal_arch ? journal_arch->next_evaluation : 0;  // monotonic enough
  arch_hooks.on_generation = [&](const core::ArchSearchCheckpoint& snap) {
    if (journal_arch &&
        snap.next_evaluation == journal_arch->next_evaluation) {
      const bool matches =
          snap.rng == journal_arch->rng &&
          snap.evaluated == journal_arch->evaluated &&
          snap.infeasible == journal_arch->infeasible &&
          snap.archive.size() == journal_arch->archive.size();
      if (!matches) {
        throw std::runtime_error(
            "search resume: replayed trajectory diverged from the journal "
            "(state directory mixes incompatible runs?)");
      }
    }
    if (arch_slots != nullptr) {
      arch_slots->store(arch_seq++, encode_arch(config_fp, snap));
    }
  };

  core::ArchSearchConfig arch_cfg;
  arch_cfg.min_widths = {4};
  arch_cfg.max_widths = {24};
  arch_cfg.evaluations = config.evaluations;
  arch_cfg.initial_random = config.initial_random;
  arch_cfg.proxy_training = proxy;
  arch_cfg.seed = config.seed;
  arch_cfg.engine = engine_cfg;
  arch_cfg.memory = device.memory;
  arch_cfg.batch_size = config.batch_size;
  arch_cfg.pool = &pool;
  arch_cfg.hooks = &arch_hooks;
  report.arch = core::search_architectures(build_family, arch_cfg, train, val);

  // -------------------------------------------------------------------------
  // Digest: every numeric outcome, by bit pattern.
  util::Fnv1a fnv;
  fnv.fold_u64(report.sensitivities.size());
  for (const double s : report.sensitivities) {
    fold_f64_bits(fnv, s);
  }
  fnv.fold_u64(report.ratios.size());
  for (const double r : report.ratios) {
    fold_f64_bits(fnv, r);
  }
  fnv.fold_u64(report.arch.evaluated);
  fnv.fold_u64(report.arch.infeasible);
  fnv.fold_u64(report.arch.pareto_front.size());
  for (const core::ArchCandidate& c : report.arch.pareto_front) {
    fnv.fold_u64(c.widths.size());
    for (const std::size_t width : c.widths) {
      fnv.fold_u64(width);
    }
    fold_f64_bits(fnv, c.accuracy);
    fnv.fold_u64(c.acc_outputs);
    fnv.fold_u64(c.parameters);
  }
  report.digest = fnv.value();
  report.cache = cache->stats();
  return report;
}

}  // namespace iprune::search
