#pragma once
// Crash-resumable search driver (docs/search_cache.md).
//
// run_search composes the three long-running search stages on a small
// built-in width-family workload:
//
//   1. sensitivity — per-layer pruning probes, each answered from the
//      content-addressed evaluation cache when possible;
//   2. ratio annealing — the single-chain simulated annealer, journaled
//      every `anneal_checkpoint_stride` steps via core::AnnealHooks;
//   3. architecture search — the (1+λ) loop with every candidate
//      evaluation content-addressed and every generation journaled via
//      core::ArchSearchHooks.
//
// All persistent state lives under RunConfig::state_dir: the CRC-sealed
// append-only evaluation vault plus one double-buffered snapshot journal
// per journaled stage. Killing the process at ANY point and re-running
// with resume=true converges to the bit-identical RunReport::digest of an
// uninterrupted run: completed evaluations answer from the vault, and the
// interrupted stage restarts from its last sealed checkpoint, whose RNG
// stream position makes the replayed tail draw-for-draw identical.

#include <cstdint>
#include <string>
#include <vector>

#include "core/arch_search.hpp"
#include "engine/backend.hpp"
#include "search/eval_cache.hpp"

namespace iprune::runtime {
class ThreadPool;
}

namespace iprune::search {

struct RunConfig {
  std::uint64_t seed = 77;
  /// Architecture-search budget.
  std::size_t evaluations = 12;
  std::size_t initial_random = 4;
  std::size_t batch_size = 4;
  /// Annealer schedule / journal cadence.
  std::size_t anneal_iterations = 2000;
  std::size_t anneal_checkpoint_stride = 200;
  /// Directory for vault + journals; empty = fully in-memory (no resume).
  std::string state_dir;
  /// Restore journals / vault from state_dir instead of starting fresh.
  bool resume = false;
  /// Artificial per-candidate-evaluation delay — stretches the crash
  /// window so the CI resume-smoke job can SIGKILL mid-search reliably.
  int eval_delay_ms = 0;
  /// Pool for parallel stages; nullptr = ThreadPool::shared().
  runtime::ThreadPool* pool = nullptr;
  /// Deployment target the search prices against. The search loop itself
  /// never spins a cycle-accurate device — evaluations are host-side — so
  /// the functional backend is the natural default; the backend identity
  /// (kind, preset, full cost table) is folded into every cache key, so
  /// runs against different targets can never share vault entries.
  engine::BackendConfig backend = engine::BackendConfig::functional();
};

struct RunReport {
  std::vector<double> sensitivities;
  std::vector<double> ratios;
  core::ArchSearchResult arch;
  /// Cache statistics for THIS process leg only (a resumed leg shows the
  /// hits the vault supplied).
  CacheStats cache;
  /// Records the vault held after the boot scrub (0 for fresh runs).
  std::size_t vault_records = 0;
  bool resumed_anneal = false;
  bool resumed_arch = false;
  /// FNV-1a fingerprint over every numeric outcome above (bit patterns,
  /// not decimals) — the value the resume tests compare.
  std::uint64_t digest = 0;
};

RunReport run_search(const RunConfig& config);

}  // namespace iprune::search
