#include "search/vault.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "device/crc16.hpp"
#include "search/codec.hpp"
#include "util/atomic_write.hpp"

namespace iprune::search {
namespace {

constexpr char kVaultMagic[8] = {'I', 'P', 'E', 'V', 'C', '0', '1', '\n'};
constexpr char kSnapMagic[8] = {'I', 'P', 'S', 'J', '0', '1', '\r', '\n'};

void write_value(ByteWriter& writer, const EvalValue& value) {
  writer.f64(value.accuracy);
  writer.f64(value.loss);
  writer.f64(value.latency_us);
  writer.f64(value.energy_j);
  writer.u64(value.aux0);
  writer.u64(value.aux1);
  writer.u64(value.checksum);
  writer.u64(value.flags);
}

EvalValue read_value(ByteReader& reader) {
  EvalValue value;
  value.accuracy = reader.f64();
  value.loss = reader.f64();
  value.latency_us = reader.f64();
  value.energy_j = reader.f64();
  value.aux0 = reader.u64();
  value.aux1 = reader.u64();
  value.checksum = reader.u64();
  value.flags = reader.u64();
  return value;
}

std::vector<std::uint8_t> encode_record(const EvalKey& key,
                                        const EvalValue& value) {
  ByteWriter writer;
  writer.u64(key.hi);
  writer.u64(key.lo);
  write_value(writer, value);
  std::vector<std::uint8_t> bytes = writer.bytes();
  const std::uint16_t crc = device::crc16_ccitt({bytes.data(), bytes.size()});
  bytes.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  return bytes;
}

/// nullopt when the CRC does not match the sealed payload.
std::optional<VaultRecord> decode_record(const std::uint8_t* bytes) {
  const std::size_t payload = CacheVault::kRecordBytes - 2;
  const std::uint16_t sealed =
      static_cast<std::uint16_t>(bytes[payload]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(bytes[payload + 1])
                                 << 8);
  if (device::crc16_ccitt({bytes, payload}) != sealed) {
    return std::nullopt;
  }
  ByteReader reader(bytes, payload);
  VaultRecord record;
  record.key.hi = reader.u64();
  record.key.lo = reader.u64();
  record.value = read_value(reader);
  return record;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

CacheVault::~CacheVault() { close(); }

void CacheVault::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

VaultScrub CacheVault::open(const std::string& path) {
  close();
  records_.clear();
  path_ = path;
  VaultScrub scrub;

  const std::vector<std::uint8_t> bytes = read_all(path);
  std::size_t valid_bytes = 0;
  bool header_ok = bytes.size() >= sizeof(kVaultMagic) &&
                   std::memcmp(bytes.data(), kVaultMagic,
                               sizeof(kVaultMagic)) == 0;
  if (header_ok) {
    valid_bytes = sizeof(kVaultMagic);
    while (bytes.size() - valid_bytes >= kRecordBytes) {
      std::optional<VaultRecord> record =
          decode_record(bytes.data() + valid_bytes);
      if (!record) {
        break;  // first bad record: keep the valid prefix, drop the rest
      }
      records_.push_back(*record);
      valid_bytes += kRecordBytes;
    }
    scrub.records = records_.size();
    scrub.dropped_bytes = bytes.size() - valid_bytes;
  } else {
    scrub.rewrote_header = true;
    scrub.dropped_bytes = bytes.size();
  }

  if (scrub.dropped_bytes > 0 || scrub.rewrote_header) {
    // Rewrite the salvaged prefix atomically so the on-disk file and the
    // in-memory view agree before any new appends land.
    std::string fresh(kVaultMagic, sizeof(kVaultMagic));
    for (const VaultRecord& record : records_) {
      const std::vector<std::uint8_t> encoded =
          encode_record(record.key, record.value);
      fresh.append(reinterpret_cast<const char*>(encoded.data()),
                   encoded.size());
    }
    util::atomic_write_or_throw(path, fresh, "search vault");
  }

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("search vault: cannot open " + path);
  }
  return scrub;
}

void CacheVault::append(const EvalKey& key, const EvalValue& value) {
  if (file_ == nullptr) {
    return;  // in-memory-only cache: vault never opened
  }
  const std::vector<std::uint8_t> bytes = encode_record(key, value);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("search vault: append failed for " + path_);
  }
  std::fflush(file_);
  records_.push_back({key, value});
}

std::string SnapshotSlots::slot_path(int slot) const {
  return stem_ + (slot == 0 ? ".a" : ".b");
}

void SnapshotSlots::store(std::uint64_t seq,
                          const std::vector<std::uint8_t>& payload) {
  ByteWriter writer;
  for (const char c : kSnapMagic) {
    writer.u8(static_cast<std::uint8_t>(c));
  }
  writer.u64(seq);
  writer.u64(payload.size());
  writer.bytes_append(payload);
  std::vector<std::uint8_t> bytes = writer.bytes();
  const std::uint16_t crc = device::crc16_ccitt({bytes.data(), bytes.size()});
  bytes.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  const std::string path = slot_path(static_cast<int>(seq % 2));
  util::atomic_write_or_throw(
      path,
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size()),
      "search snapshot");
}

std::optional<SnapshotSlots::Snapshot> SnapshotSlots::load() const {
  std::optional<Snapshot> best;
  for (int slot = 0; slot < 2; ++slot) {
    const std::vector<std::uint8_t> bytes = read_all(slot_path(slot));
    if (bytes.size() < sizeof(kSnapMagic) + 8 + 8 + 2) {
      continue;
    }
    if (std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
      continue;
    }
    const std::size_t payload_bytes = bytes.size() - 2;
    const std::uint16_t sealed =
        static_cast<std::uint16_t>(bytes[payload_bytes]) |
        static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(bytes[payload_bytes + 1]) << 8);
    if (device::crc16_ccitt({bytes.data(), payload_bytes}) != sealed) {
      continue;
    }
    try {
      ByteReader reader(bytes.data() + sizeof(kSnapMagic),
                        payload_bytes - sizeof(kSnapMagic));
      Snapshot snapshot;
      snapshot.seq = reader.u64();
      const std::uint64_t length = reader.u64();
      if (length != reader.remaining()) {
        continue;
      }
      snapshot.payload.resize(length);
      for (std::uint64_t i = 0; i < length; ++i) {
        snapshot.payload[i] = reader.u8();
      }
      if (!best || snapshot.seq > best->seq) {
        best = std::move(snapshot);
      }
    } catch (const std::exception&) {
      continue;  // torn payload despite CRC match (cannot happen in practice)
    }
  }
  return best;
}

}  // namespace iprune::search
